# Convenience targets for the reproduction repository.

PYTHON ?= python

.PHONY: install test doctest docs-check bench bench-smoke examples report perf-gate trace-smoke trace-roundtrip fault-smoke ensemble-smoke metrics-smoke scenario-smoke service-smoke clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

doctest:
	$(PYTHON) -m pytest --doctest-modules \
	    src/repro/dynamics/rng.py \
	    src/repro/dynamics/batched.py \
	    src/repro/execution/backoff.py \
	    src/repro/execution/supervisor.py

docs-check:
	$(PYTHON) scripts/check_docs.py

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-smoke:
	$(PYTHON) -m repro bench --smoke

examples:
	for script in examples/*.py; do echo "== $$script =="; $(PYTHON) $$script; done

report:
	$(PYTHON) -m repro report results/

perf-gate:
	$(PYTHON) scripts/perf_gate.py

trace-smoke:
	$(PYTHON) scripts/trace_smoke.py

trace-roundtrip:
	$(PYTHON) scripts/trace_roundtrip_smoke.py

fault-smoke:
	$(PYTHON) scripts/fault_smoke.py ensemble:after_replica:2
	$(PYTHON) scripts/fault_smoke.py ensemble:after_round:25
	$(PYTHON) scripts/fault_smoke.py checkpoint:after_tmp_write:3
	$(PYTHON) scripts/fault_smoke.py heartbeat:mid_write:30
	$(PYTHON) scripts/fault_smoke.py trace:mid_write:200
	$(PYTHON) scripts/fault_smoke.py --trace-format columnar trace:mid_write:6

ensemble-smoke:
	$(PYTHON) scripts/fault_smoke.py --parallel ensemble:after_round:25

scenario-smoke:
	$(PYTHON) scripts/scenario_smoke.py ensemble:after_round:25
	$(PYTHON) scripts/scenario_smoke.py checkpoint:after_tmp_write:3

metrics-smoke:
	$(PYTHON) scripts/metrics_smoke.py

service-smoke:
	$(PYTHON) scripts/service_smoke.py jobstore:mid_commit:2
	$(PYTHON) scripts/service_smoke.py service:mid_dispatch:1
	$(PYTHON) scripts/service_smoke.py jobstore:mid_compact:1
	$(PYTHON) scripts/service_smoke.py kill:mid_job

clean:
	rm -rf results/*.txt .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
