"""Shared plumbing for the benchmark/experiment suite.

Each benchmark module reproduces one paper artifact (a theorem's scaling
claim or a figure's phenomenon).  The pattern:

* the heavy computation runs inside ``benchmark.pedantic(..., rounds=1)`` so
  ``pytest benchmarks/ --benchmark-only`` both times it and collects it;
* the resulting paper-vs-measured table is printed *and* archived under
  ``results/`` so EXPERIMENTS.md can quote it verbatim;
* soft shape assertions (who wins, bounded ratios) make regressions loud
  without pretending the simulator matches the authors' constants.

Timing telemetry: :func:`run_once` measures the wall clock of the heavy
computation, and :func:`emit` archives it as ``results/BENCH_<id>.json``
next to the text artifact.  A benchmark that knows how many simulated
rounds its computation executed can call :func:`note_rounds` so the JSON
entry also carries a ``rounds_per_second`` field (schema in
docs/OBSERVABILITY.md).

Smoke sizing: with ``REPRO_SMOKE=1`` in the environment (what
``python -m repro bench --smoke`` sets), benchmarks shrink their heavy
constants via :func:`pick` and the conftest downgrades their shape
assertions (calibrated for full sizing) to xfails — the timing records are
still written, which is all the regression ledger needs.

The regression ledger: :func:`load_baseline` reads the committed
``results/BASELINE.json`` snapshot and :func:`compare` gates the current
``BENCH_*.json`` wall clocks against it with noise-aware thresholds
(implementation in :mod:`repro.analysis.report`; ``scripts/perf_gate.py``
is the CI entry point).

Failure durability: :func:`run_once` takes an ``experiment=`` id so that a
benchmark that raises (or breaches the ``REPRO_BENCH_TIMEOUT`` wall-clock
budget that ``repro bench --timeout`` sets) still archives a
``BENCH_<id>.json`` with ``"status": "failed"`` — a crash leaves a ledger
record, not a silent gap, and ``repro report --strict`` flags it.
"""

from __future__ import annotations

import contextlib
import json
import os
import pathlib
import signal
import time
from typing import List, Mapping, Optional

from repro.analysis.report import (
    ComparisonRow,
    compare_against_baseline,
    load_baseline as _load_baseline,
    load_bench_records,
)
from repro.analysis.series import Series, Table, ascii_plot
from repro.telemetry.resources import cpu_seconds, peak_rss_bytes

# REPRO_RESULTS_DIR redirects the whole ledger (records, baseline, text
# artifacts) — how tests and the CI fault matrix keep scratch runs out of
# the committed results/ directory.
RESULTS_DIR = pathlib.Path(
    os.environ.get("REPRO_RESULTS_DIR")
    or pathlib.Path(__file__).resolve().parent.parent / "results"
)
BASELINE_PATH = RESULTS_DIR / "BASELINE.json"

# Timing of the most recent run_once(), consumed by the next emit().
_pending_timing: dict = {}


def smoke_mode() -> bool:
    """True when the suite runs in smoke sizing (``REPRO_SMOKE=1``)."""
    return os.environ.get("REPRO_SMOKE") == "1"


def bench_workers(default: int = 1) -> int:
    """Worker-pool size for ensemble benchmarks.

    ``python -m repro bench --workers N`` exports ``REPRO_BENCH_WORKERS``;
    this reads it back (clamped to >= 1, ``default`` on absence or parse
    failure).  Worker count never changes results — only shard count and
    seed do — so benchmarks are free to vary it for timing comparisons.
    """
    raw = os.environ.get("REPRO_BENCH_WORKERS")
    if not raw:
        return default
    try:
        return max(1, int(raw))
    except ValueError:
        return default


def pick(full, smoke):
    """Choose a benchmark constant by sizing mode.

    ``SIZES = pick((128, ..., 4096), (64, 128, 256))`` keeps the full-run
    calibration in view while letting ``repro bench --smoke`` finish in
    seconds per experiment.
    """
    return smoke if smoke_mode() else full


def emit(experiment_id: str, *blocks: object) -> None:
    """Print experiment output and archive it under ``results/``.

    Each block may be a :class:`Table`, a :class:`Series` (rendered as CSV),
    a pre-rendered string (e.g. an ascii plot), or anything with ``str``.
    Also writes ``results/BENCH_<experiment_id>.json`` with the wall clock
    recorded by the enclosing :func:`run_once` call (if any).
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    rendered = []
    for block in blocks:
        if isinstance(block, Table):
            rendered.append(block.render())
            rendered.append("")
            rendered.append("CSV:")
            rendered.append(block.to_csv().rstrip())
        elif isinstance(block, Series):
            rendered.append(block.to_csv().rstrip())
        else:
            rendered.append(str(block))
        rendered.append("")
    text = "\n".join(rendered)
    banner = f"\n===== {experiment_id} =====\n"
    print(banner + text)
    (RESULTS_DIR / f"{experiment_id}.txt").write_text(banner + text)
    _write_bench_record(experiment_id)


class BenchTimeout(Exception):
    """A benchmark exceeded the ``REPRO_BENCH_TIMEOUT`` wall-clock budget."""


def bench_timeout() -> Optional[float]:
    """The per-experiment wall-clock budget in seconds, or None."""
    raw = os.environ.get("REPRO_BENCH_TIMEOUT")
    if not raw:
        return None
    try:
        budget = float(raw)
    except ValueError:
        return None
    return budget if budget > 0 else None


@contextlib.contextmanager
def _alarm(budget: float):
    """Raise :class:`BenchTimeout` in the main thread after ``budget`` s."""
    if not hasattr(signal, "SIGALRM"):  # non-POSIX: budget unenforceable
        yield
        return

    def _on_alarm(signum, frame):
        raise BenchTimeout(f"exceeded the {budget:g}s wall-clock budget")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, budget)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def run_once(benchmark, fn, *args, experiment: Optional[str] = None, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The wall clock of the call is kept aside so the next :func:`emit` can
    archive it in the experiment's ``BENCH_*.json`` record.  When
    ``experiment`` is given, a raise or a ``REPRO_BENCH_TIMEOUT`` breach
    archives a ``"status": "failed"`` record for that id before
    propagating, so the ledger never holds a silent gap.
    """
    _pending_timing.clear()
    budget = bench_timeout()
    start = time.perf_counter()
    cpu_start = cpu_seconds(include_children=True)
    try:
        if budget is not None:
            with _alarm(budget):
                result = benchmark.pedantic(
                    fn, args=args, kwargs=kwargs, rounds=1, iterations=1
                )
        else:
            result = benchmark.pedantic(
                fn, args=args, kwargs=kwargs, rounds=1, iterations=1
            )
    except Exception as error:  # noqa: BLE001 — archived, then re-raised
        if experiment is not None:
            _write_failed_record(experiment, error, time.perf_counter() - start)
        raise
    _pending_timing["wall_clock_s"] = time.perf_counter() - start
    # Children folded in: ensemble benchmarks burn their CPU (and hit their
    # memory peak) inside supervised worker processes.
    _pending_timing["cpu_s"] = cpu_seconds(include_children=True) - cpu_start
    _pending_timing["max_rss_bytes"] = peak_rss_bytes(include_children=True)
    return result


def note_rounds(rounds: Optional[int]) -> None:
    """Record how many simulated rounds the pending benchmark executed.

    Call between :func:`run_once` and :func:`emit`; the next ``BENCH_*.json``
    then reports ``rounds`` and ``rounds_per_second`` alongside the wall
    clock.  Passing ``None`` is a no-op so callers can forward optional
    counts unconditionally.
    """
    if rounds is not None:
        _pending_timing["rounds"] = int(rounds)


def note_field(key: str, value) -> None:
    """Attach an extra JSON-safe field to the pending ``BENCH_*.json``.

    Like :func:`note_rounds`, call between :func:`run_once` and
    :func:`emit` (``run_once`` clears the pending record).  Used for
    benchmark-specific context such as worker counts or speedup ratios.
    """
    _pending_timing.setdefault("extra", {})[key] = value


def note_ensemble(stats) -> None:
    """Record a supervised ensemble's loss accounting in the ledger entry.

    Takes a :class:`repro.analysis.ensemble.ConvergenceStats`; the record
    then carries an ``ensemble`` block with ``failed_shards`` /
    ``attempted_trials``, which the regression gate uses to refuse
    baselines built from degraded (shards-lost) runs.
    """
    note_field(
        "ensemble",
        {
            "trials": int(stats.trials),
            "censored": int(stats.censored),
            "failed_shards": int(stats.failed_shards),
            "attempted_trials": int(stats.attempted_trials),
        },
    )


def _write_bench_record(experiment_id: str) -> None:
    record = {"experiment": experiment_id, "schema": 1, "status": "ok"}
    wall = _pending_timing.get("wall_clock_s")
    record["wall_clock_s"] = wall
    rounds = _pending_timing.get("rounds")
    record["rounds"] = rounds
    record["rounds_per_second"] = (
        rounds / wall if rounds is not None and wall else None
    )
    record["cpu_s"] = _pending_timing.get("cpu_s")
    record["max_rss_bytes"] = _pending_timing.get("max_rss_bytes")
    record.update(_pending_timing.get("extra", {}))
    if smoke_mode():
        record["smoke"] = True
    (RESULTS_DIR / f"BENCH_{experiment_id}.json").write_text(
        json.dumps(record, sort_keys=True) + "\n"
    )
    _pending_timing.clear()


def _write_failed_record(experiment_id: str, error: Exception, wall: float) -> None:
    """Archive a failure so a crashed benchmark still leaves a ledger entry."""
    RESULTS_DIR.mkdir(exist_ok=True)
    record = {
        "experiment": experiment_id,
        "schema": 1,
        "status": "failed",
        "wall_clock_s": None,
        "rounds": None,
        "rounds_per_second": None,
        "cpu_s": None,
        "max_rss_bytes": peak_rss_bytes(include_children=True),
        "error": {
            "kind": "timeout" if isinstance(error, BenchTimeout) else "exception",
            "type": type(error).__name__,
            "message": str(error),
            "elapsed_s": wall,
        },
    }
    if smoke_mode():
        record["smoke"] = True
    (RESULTS_DIR / f"BENCH_{experiment_id}.json").write_text(
        json.dumps(record, sort_keys=True) + "\n"
    )
    _pending_timing.clear()


# ----------------------------------------------------------------------
# Regression ledger
# ----------------------------------------------------------------------


def load_baseline(path: Optional[pathlib.Path] = None) -> dict:
    """Read the committed baseline snapshot (``results/BASELINE.json``)."""
    return _load_baseline(path or BASELINE_PATH)


def compare(
    current: Optional[Mapping[str, Mapping]] = None,
    baseline: Optional[Mapping] = None,
    **gate_kwargs,
) -> List[ComparisonRow]:
    """Compare ``BENCH_*.json`` records against the baseline snapshot.

    With no arguments, reads both sides from ``results/``.  The verdict
    gate is noise-aware — see
    :func:`repro.analysis.report.compare_against_baseline` for the exact
    threshold formula (``gate_kwargs`` forward to it).
    """
    if current is None:
        current = load_bench_records(RESULTS_DIR)
    if baseline is None:
        baseline = load_baseline()
    return compare_against_baseline(current, baseline, **gate_kwargs)
