"""Shared plumbing for the benchmark/experiment suite.

Each benchmark module reproduces one paper artifact (a theorem's scaling
claim or a figure's phenomenon).  The pattern:

* the heavy computation runs inside ``benchmark.pedantic(..., rounds=1)`` so
  ``pytest benchmarks/ --benchmark-only`` both times it and collects it;
* the resulting paper-vs-measured table is printed *and* archived under
  ``results/`` so EXPERIMENTS.md can quote it verbatim;
* soft shape assertions (who wins, bounded ratios) make regressions loud
  without pretending the simulator matches the authors' constants.
"""

from __future__ import annotations

import pathlib
from typing import Iterable

from repro.analysis.series import Series, Table, ascii_plot

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def emit(experiment_id: str, *blocks: object) -> None:
    """Print experiment output and archive it under ``results/``.

    Each block may be a :class:`Table`, a :class:`Series` (rendered as CSV),
    a pre-rendered string (e.g. an ascii plot), or anything with ``str``.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    rendered = []
    for block in blocks:
        if isinstance(block, Table):
            rendered.append(block.render())
            rendered.append("")
            rendered.append("CSV:")
            rendered.append(block.to_csv().rstrip())
        elif isinstance(block, Series):
            rendered.append(block.to_csv().rstrip())
        else:
            rendered.append(str(block))
        rendered.append("")
    text = "\n".join(rendered)
    banner = f"\n===== {experiment_id} =====\n"
    print(banner + text)
    (RESULTS_DIR / f"{experiment_id}.txt").write_text(banner + text)


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
