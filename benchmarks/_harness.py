"""Shared plumbing for the benchmark/experiment suite.

Each benchmark module reproduces one paper artifact (a theorem's scaling
claim or a figure's phenomenon).  The pattern:

* the heavy computation runs inside ``benchmark.pedantic(..., rounds=1)`` so
  ``pytest benchmarks/ --benchmark-only`` both times it and collects it;
* the resulting paper-vs-measured table is printed *and* archived under
  ``results/`` so EXPERIMENTS.md can quote it verbatim;
* soft shape assertions (who wins, bounded ratios) make regressions loud
  without pretending the simulator matches the authors' constants.

Timing telemetry: :func:`run_once` measures the wall clock of the heavy
computation, and :func:`emit` archives it as ``results/BENCH_<id>.json``
next to the text artifact.  A benchmark that knows how many simulated
rounds its computation executed can call :func:`note_rounds` so the JSON
entry also carries a ``rounds_per_second`` field (schema in
docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Optional

from repro.analysis.series import Series, Table, ascii_plot

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

# Timing of the most recent run_once(), consumed by the next emit().
_pending_timing: dict = {}


def emit(experiment_id: str, *blocks: object) -> None:
    """Print experiment output and archive it under ``results/``.

    Each block may be a :class:`Table`, a :class:`Series` (rendered as CSV),
    a pre-rendered string (e.g. an ascii plot), or anything with ``str``.
    Also writes ``results/BENCH_<experiment_id>.json`` with the wall clock
    recorded by the enclosing :func:`run_once` call (if any).
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    rendered = []
    for block in blocks:
        if isinstance(block, Table):
            rendered.append(block.render())
            rendered.append("")
            rendered.append("CSV:")
            rendered.append(block.to_csv().rstrip())
        elif isinstance(block, Series):
            rendered.append(block.to_csv().rstrip())
        else:
            rendered.append(str(block))
        rendered.append("")
    text = "\n".join(rendered)
    banner = f"\n===== {experiment_id} =====\n"
    print(banner + text)
    (RESULTS_DIR / f"{experiment_id}.txt").write_text(banner + text)
    _write_bench_record(experiment_id)


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The wall clock of the call is kept aside so the next :func:`emit` can
    archive it in the experiment's ``BENCH_*.json`` record.
    """
    _pending_timing.clear()
    start = time.perf_counter()
    result = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
    _pending_timing["wall_clock_s"] = time.perf_counter() - start
    return result


def note_rounds(rounds: Optional[int]) -> None:
    """Record how many simulated rounds the pending benchmark executed.

    Call between :func:`run_once` and :func:`emit`; the next ``BENCH_*.json``
    then reports ``rounds`` and ``rounds_per_second`` alongside the wall
    clock.  Passing ``None`` is a no-op so callers can forward optional
    counts unconditionally.
    """
    if rounds is not None:
        _pending_timing["rounds"] = int(rounds)


def _write_bench_record(experiment_id: str) -> None:
    record = {"experiment": experiment_id, "schema": 1}
    wall = _pending_timing.get("wall_clock_s")
    record["wall_clock_s"] = wall
    rounds = _pending_timing.get("rounds")
    record["rounds"] = rounds
    record["rounds_per_second"] = (
        rounds / wall if rounds is not None and wall else None
    )
    (RESULTS_DIR / f"BENCH_{experiment_id}.json").write_text(
        json.dumps(record, sort_keys=True) + "\n"
    )
    _pending_timing.clear()
