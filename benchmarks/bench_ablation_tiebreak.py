"""E11 — ablation: the Minority tie-break at even sample sizes.

The tie response at ``k = ell/2`` is the only free choice in Protocol 2.
The paper fixes it to a fair coin; this ablation compares the three natural
options at ``ell = 4``:

* ``uniform`` — the paper's rule (opinion-symmetric, oblivious);
* ``stay``    — keep one's opinion (symmetric, *not* oblivious);
* ``adopt-one`` — deterministic 1 (breaks opinion symmetry, shifting the
  interior root of the bias polynomial off 1/2 and making the two witness
  directions asymmetric).

Reported: the bias landscape (roots, sign profile), the Theorem-12
certificate each variant receives, and the escape behaviour at one ``n`` —
the ablation's conclusion being that the tie-break moves constants but no
variant escapes the Theorem-1 fate.
"""

from __future__ import annotations

import numpy as np

from _harness import emit, pick, run_once
from repro.analysis.series import Table
from repro.core.lower_bound import lower_bound_certificate
from repro.core.roots import sign_profile
from repro.dynamics.rng import make_rng
from repro.dynamics.run import escape_time_ensemble
from repro.protocols import minority
from repro.protocols.minority import TIE_BREAK_RULES

N = pick(2048, 256)
REPLICAS = pick(10, 3)
BUDGET = 2 * N


def _measure():
    rows = []
    for rule in TIE_BREAK_RULES:
        protocol = minority(4, tie_break=rule)
        profile = sign_profile(protocol)
        certificate = lower_bound_certificate(protocol)
        times = escape_time_ensemble(
            protocol, certificate, N, BUDGET, make_rng(hash(rule) % 2**32), REPLICAS
        )
        censored = int(np.isnan(times).sum())
        observed = np.where(np.isnan(times), BUDGET, times)
        rows.append(
            (
                rule,
                [round(float(r), 4) for r in profile.roots],
                certificate.case.split(" (")[0],
                (round(float(certificate.interval[0]), 3), round(float(certificate.interval[1]), 3)),
                float(np.median(observed)),
                censored,
                protocol.is_opinion_symmetric(),
            )
        )
    return rows


def test_ablation_tiebreak(benchmark):
    rows = run_once(benchmark, _measure, experiment="E11_ablation_tiebreak")

    table = Table(
        f"E11 / ablation — Minority(ell=4) tie-break variants at n={N} "
        f"(escape budget {BUDGET} rounds, bound sqrt(n) = {int(N**0.5)})",
        [
            "tie-break",
            "roots of F",
            "case",
            "interval",
            "median escape",
            "censored",
            "opinion-symmetric",
        ],
    )
    for row in rows:
        table.add_row(*row)
    emit(
        "E11_ablation_tiebreak",
        table,
        "All variants are Case-1 protocols whose escape censors at the "
        "budget: the tie-break shifts the bias landscape's constants "
        "(adopt-one moves the interior root off 1/2) but cannot rescue a "
        "constant sample size.",
    )

    by_rule = {row[0]: row for row in rows}
    # The symmetric rules keep the interior root at 1/2.
    assert any(abs(r - 0.5) < 1e-6 for r in by_rule["uniform"][1])
    assert any(abs(r - 0.5) < 1e-6 for r in by_rule["stay"][1])
    # adopt-one breaks symmetry and moves the root.
    assert not by_rule["adopt-one"][6]
    assert not any(abs(r - 0.5) < 1e-6 for r in by_rule["adopt-one"][1])
    # No variant beats the lower bound.
    for row in rows:
        assert row[4] >= N**0.5
