"""E15 — the adversary's view: worst starts vs the Theorem-12 witness.

The problem statement lets an adversary pick the initial configuration.
The exact chain (small ``n``) gives the true worst expected convergence
time from every admissible start; this experiment compares that optimum
with the Theorem-12 witness configuration, per protocol:

* Voter (Lemma 11): the worst start is the wrong consensus, and expected
  times decay smoothly toward the target — no metastability;
* Minority (Case 1): everything below the escape interval collapses into
  one metastable well with an essentially flat, exponentially large
  profile, and the witness sits on the same plateau as the optimum;
* Majority (Case 2-shaped drift): wrong-majority starts are the well.

The per-start expected-time profile is the experiment's "figure".
"""

from __future__ import annotations

import numpy as np

from _harness import emit, pick, run_once
from repro.analysis.series import Series, Table, ascii_plot
from repro.core.lower_bound import lower_bound_certificate
from repro.dynamics.adversary import exact_worst_start
from repro.protocols import majority, minority, voter

N = pick(56, 24)  # exact O(n^3) analysis, within extended-precision conditioning


def _measure():
    results = []
    for protocol in (voter(1), minority(3), majority(3)):
        worst = exact_worst_start(protocol, N, 1)
        certificate = lower_bound_certificate(protocol)
        witness = certificate.witness_configuration(N)
        witness_time = float(
            worst.profile[np.searchsorted(worst.probed_counts, witness.x0)]
        )
        results.append((protocol, worst, witness, witness_time))
    return results


def test_adversarial_start_profiles(benchmark):
    results = run_once(benchmark, _measure, experiment="E15_adversarial_start")

    table = Table(
        f"E15 / adversarial starts — exact E[tau] profiles at n={N}, z=1",
        [
            "protocol",
            "worst x0",
            "worst E[tau]",
            "witness x0",
            "witness E[tau]",
            "witness/worst",
        ],
    )
    series = []
    for protocol, worst, witness, witness_time in results:
        ratio = witness_time / worst.expected_rounds
        table.add_row(
            protocol.name,
            worst.config.x0,
            worst.expected_rounds,
            witness.x0,
            witness_time,
            round(ratio, 4),
        )
        profile = np.minimum(worst.profile, 1e12)  # clip for plotting
        series.append(
            Series(
                f"log10 E[tau] {protocol.name}",
                worst.probed_counts.astype(float) / N,
                np.log10(np.maximum(profile, 1.0)),
            )
        )
    emit(
        "E15_adversarial_start",
        table,
        ascii_plot(series, width=64, height=14),
        *series,
    )

    by_name = {p.name: (w, wit, wt) for p, w, wit, wt in results}
    voter_worst, _, _ = by_name["voter(ell=1)"]
    assert voter_worst.config.x0 == 1  # wrong consensus is the Voter's worst
    minority_worst, _, minority_witness_time = by_name["minority(ell=3)"]
    # The witness sits on the metastable plateau: within 10% of the optimum.
    assert minority_witness_time > 0.9 * minority_worst.expected_rounds
    assert minority_worst.expected_rounds > 1e8  # the exp(Omega(n)) well
    # Minority's well is astronomically deeper than the Voter's linear time.
    assert minority_worst.expected_rounds > 1e4 * voter_worst.expected_rounds
