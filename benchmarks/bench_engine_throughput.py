"""E13 — engine micro-benchmarks (the conventional pytest-benchmark use).

Timing of the hot paths the experiments lean on: the O(1)-per-round
count-level step at large ``n``, the batched replica step, the agent-level
ground truth (for the n-scaling contrast), and the exact-chain row builder.
These guard against performance regressions that would silently shrink the
reachable experiment sizes.

Also home of the supervised-ensemble scaling check: the same sharded
ensemble timed at ``workers=1`` and at the pool size (``repro bench
--workers N``), with the speedup ratio archived in the ledger record.  On
a single-core runner the ratio hovers near 1 (process overhead can push it
below), so the record is evidence, not an assertion — the hard assertion
is worker-count *invariance* of the results.
"""

from __future__ import annotations

import time

import numpy as np

from _harness import (
    bench_workers,
    emit,
    note_ensemble,
    note_field,
    note_rounds,
    pick,
    run_once,
)
from repro.analysis.series import Table
from repro.dynamics.agentwise import initial_opinions, step_opinions
from repro.dynamics.config import Configuration
from repro.dynamics.engine import step_count, step_counts_batch
from repro.dynamics.rng import make_rng
from repro.markov.exact import transition_row
from repro.protocols import minority, voter


def test_count_step_large_n(benchmark):
    protocol = minority(3)
    rng = make_rng(0)
    n = 10**7

    def run():
        return step_count(protocol, n, 1, n // 2, rng)

    result = benchmark(run)
    assert 1 <= result <= n


def test_batched_step_1000_replicas(benchmark):
    protocol = minority(3)
    rng = make_rng(1)
    n = 10**5
    counts = np.full(1000, n // 2, dtype=np.int64)

    def run():
        return step_counts_batch(protocol, n, 1, counts, rng)

    result = benchmark(run)
    assert result.shape == (1000,)


def test_agentwise_step_n4096(benchmark):
    protocol = minority(3)
    rng = make_rng(2)
    config = Configuration(n=4096, z=1, x0=2048)
    opinions = initial_opinions(config, rng)

    def run():
        return step_opinions(protocol, 1, opinions, rng)

    result = benchmark(run)
    assert len(result) == 4096


def test_exact_transition_row_n512(benchmark):
    protocol = minority(3)

    def run():
        return transition_row(protocol, 512, 1, 300)

    row = benchmark(run)
    assert abs(row.sum() - 1.0) < 1e-9


def test_supervised_ensemble_workers(benchmark):
    """E13b — ensemble wall clock at workers=1 vs the supervised pool.

    The workload is deliberately censored (voter from a balanced start,
    budget far below the ~n log n convergence scale) so every shard
    executes exactly ``ROUNDS`` rounds — fixed work, comparable timings.
    """
    from repro.execution.supervisor import (
        SupervisorConfig,
        run_supervised_ensemble,
        summarize_supervised,
    )

    protocol = voter(1)
    n = pick(10**5, 10**4)
    rounds = pick(1500, 150)
    replicas, shards = 8, 4
    config = Configuration(n=n, z=1, x0=n // 2)
    workers = bench_workers(4)

    def run(worker_count):
        return run_supervised_ensemble(
            protocol, config, rounds, make_rng(13), replicas,
            supervisor=SupervisorConfig(workers=worker_count, shards=shards),
        )

    serial_start = time.perf_counter()
    serial = run(1)
    serial_s = time.perf_counter() - serial_start

    pooled_start = time.perf_counter()
    result = run_once(
        benchmark, run, workers, experiment="E13_supervised_ensemble"
    )
    pooled_s = time.perf_counter() - pooled_start

    stats = summarize_supervised(result, budget=rounds)
    speedup = serial_s / pooled_s if pooled_s > 0 else float("nan")
    note_rounds(rounds * replicas)
    note_field("workers", workers)
    note_field("serial_wall_clock_s", round(serial_s, 6))
    note_field("speedup", round(speedup, 4))
    note_ensemble(stats)
    table = Table(
        f"supervised ensemble: {replicas} replicas in {shards} shards, "
        f"{rounds} rounds at n={n}",
        ["workers", "wall s", "speedup", "failed shards"],
    )
    table.add_row(1, round(serial_s, 4), 1.0, serial.failed_shards)
    table.add_row(workers, round(pooled_s, 4), round(speedup, 4), result.failed_shards)
    emit("E13_supervised_ensemble", table)

    # The hard guarantee: the worker count changes wall clock only.
    assert np.array_equal(serial.times, result.times, equal_nan=True)
    assert result.failed_shards == 0
    # Soft scaling expectation; single-core runners legitimately sit at ~1.
    assert speedup > 0.2


def test_engine_throughput_loop_vs_batched(benchmark):
    """E13c — replicas/sec of the ``engine=`` backends (docs/ENGINES.md).

    The same censored ensemble (voter from a balanced start, budget far
    below the convergence scale, so every replica executes exactly
    ``ROUNDS`` rounds) run three ways: the ``loop`` reference engine, the
    vectorized ``batched`` engine, and ``batched`` composed with the PR-5
    supervisor pool.  Where numba is importable a fourth row times
    ``batched+numba`` (after a JIT warm-up round, so compile time stays
    out of the throughput figure); the record always carries a
    ``numba_available`` field so the ledger distinguishes "not installed"
    from "not measured".  The ledger archives replica-rounds/sec per
    backend and the speedup ratios; the headline claim — batched at least
    10x the loop engine at R=1000 — is asserted, because that is the
    whole reason the batched engine exists.
    """
    from repro.dynamics.batched import HAVE_NUMBA
    from repro.dynamics.run import simulate_ensemble
    from repro.execution.supervisor import SupervisorConfig, run_supervised_ensemble

    protocol = voter(1)
    n = pick(10**5, 10**4)
    rounds = pick(60, 15)
    replicas = 1000
    config = Configuration(n=n, z=1, x0=n // 2)
    workers = bench_workers(4)
    replica_rounds = rounds * replicas

    def run_serial(engine):
        return simulate_ensemble(
            protocol, config, rounds, make_rng(17), replicas, engine=engine
        )

    loop_start = time.perf_counter()
    loop_times = run_serial("loop")
    loop_s = time.perf_counter() - loop_start

    batched_times = run_once(
        benchmark, run_serial, "batched", experiment="E13c_engine_throughput"
    )
    # run_once keeps its own wall clock for the ledger; re-measure here for
    # the table so the three backends are timed the same way.
    batched_start = time.perf_counter()
    run_serial("batched")
    batched_s = time.perf_counter() - batched_start

    pooled_start = time.perf_counter()
    pooled = run_supervised_ensemble(
        protocol, config, rounds, make_rng(17), replicas,
        supervisor=SupervisorConfig(workers=workers, shards=4),
        engine="batched",
    )
    pooled_s = time.perf_counter() - pooled_start

    numba_s = numba_times = None
    if HAVE_NUMBA:
        run_serial("batched+numba")  # JIT warm-up: compile outside the clock
        numba_start = time.perf_counter()
        numba_times = run_serial("batched+numba")
        numba_s = time.perf_counter() - numba_start

    loop_rps = replica_rounds / loop_s
    batched_rps = replica_rounds / batched_s
    pooled_rps = replica_rounds / pooled_s
    speedup_batched = loop_s / batched_s
    speedup_pooled = loop_s / pooled_s
    note_rounds(replica_rounds)
    note_field("replicas", replicas)
    note_field("loop_wall_clock_s", round(loop_s, 6))
    note_field("loop_replica_rounds_per_sec", round(loop_rps, 1))
    note_field("batched_replica_rounds_per_sec", round(batched_rps, 1))
    note_field("pooled_replica_rounds_per_sec", round(pooled_rps, 1))
    note_field("speedup_batched_vs_loop", round(speedup_batched, 2))
    note_field("speedup_pooled_vs_loop", round(speedup_pooled, 2))
    note_field("numba_available", HAVE_NUMBA)
    if numba_s is not None:
        note_field(
            "numba_replica_rounds_per_sec", round(replica_rounds / numba_s, 1)
        )
        note_field("speedup_numba_vs_loop", round(loop_s / numba_s, 2))
    table = Table(
        f"engine throughput: {replicas} replicas, {rounds} rounds at n={n} "
        f"(pool: {workers} workers, 4 shards)",
        ["engine", "wall s", "replica-rounds/s", "speedup vs loop"],
    )
    table.add_row("loop", round(loop_s, 4), round(loop_rps), 1.0)
    table.add_row("batched", round(batched_s, 4), round(batched_rps), round(speedup_batched, 1))
    table.add_row("batched+pool", round(pooled_s, 4), round(pooled_rps), round(speedup_pooled, 1))
    if numba_s is not None:
        table.add_row(
            "batched+numba", round(numba_s, 4),
            round(replica_rounds / numba_s), round(loop_s / numba_s, 1),
        )
    else:
        table.add_row("batched+numba", "-", "unavailable", "-")
    emit("E13c_engine_throughput", table)

    # Correctness rails: same censoring pattern everywhere (fixed work), and
    # loop-vs-batched bit-identity per the ENGINES.md contract (numba, when
    # present, must share the batched stream bit for bit).
    if numba_times is not None:
        assert np.array_equal(loop_times, numba_times, equal_nan=True)
    assert np.array_equal(loop_times, batched_times, equal_nan=True)
    assert pooled.failed_shards == 0
    # The acceptance bar: vectorization must buy >= 10x over the Python loop.
    assert speedup_batched >= 10.0
