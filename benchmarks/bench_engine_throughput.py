"""E13 — engine micro-benchmarks (the conventional pytest-benchmark use).

Timing of the hot paths the experiments lean on: the O(1)-per-round
count-level step at large ``n``, the batched replica step, the agent-level
ground truth (for the n-scaling contrast), and the exact-chain row builder.
These guard against performance regressions that would silently shrink the
reachable experiment sizes.
"""

from __future__ import annotations

import numpy as np

from repro.dynamics.agentwise import initial_opinions, step_opinions
from repro.dynamics.config import Configuration
from repro.dynamics.engine import step_count, step_counts_batch
from repro.dynamics.rng import make_rng
from repro.markov.exact import transition_row
from repro.protocols import minority


def test_count_step_large_n(benchmark):
    protocol = minority(3)
    rng = make_rng(0)
    n = 10**7

    def run():
        return step_count(protocol, n, 1, n // 2, rng)

    result = benchmark(run)
    assert 1 <= result <= n


def test_batched_step_1000_replicas(benchmark):
    protocol = minority(3)
    rng = make_rng(1)
    n = 10**5
    counts = np.full(1000, n // 2, dtype=np.int64)

    def run():
        return step_counts_batch(protocol, n, 1, counts, rng)

    result = benchmark(run)
    assert result.shape == (1000,)


def test_agentwise_step_n4096(benchmark):
    protocol = minority(3)
    rng = make_rng(2)
    config = Configuration(n=4096, z=1, x0=2048)
    opinions = initial_opinions(config, rng)

    def run():
        return step_opinions(protocol, 1, opinions, rng)

    result = benchmark(run)
    assert len(result) == 4096


def test_exact_transition_row_n512(benchmark):
    protocol = minority(3)

    def run():
        return transition_row(protocol, 512, 1, 300)

    row = benchmark(run)
    assert abs(row.sum() - 1.0) < 1e-9
