"""E19 — the paper's probability statements verified with ZERO Monte-Carlo error.

Two exact computations on the small-``n`` count chain:

* **Theorem 2, exactly.**  ``P(tau_voter > 2 n ln n)`` is computed by
  pushing the exact sub-distribution (phase-type analysis) and maximized
  over *every* admissible starting configuration.  The paper claims it is
  at most ``1/n``; the table shows the true worst-case value.

* **Theorem 1's witness, exactly.**  ``P(tau_minority <= sqrt(n))`` from
  the witness configuration — the probability the lower bound bounds — is
  computed exactly and shown to be numerically zero at these sizes.
"""

from __future__ import annotations

import math

import numpy as np

from _harness import emit, pick, run_once
from repro.analysis.series import Table
from repro.core.lower_bound import lower_bound_certificate
from repro.markov.absorption_time import absorption_time_cdf, exceedance_probability
from repro.markov.exact import count_chain
from repro.protocols import minority, voter

VOTER_SIZES = pick((16, 32, 64, 128), (16, 32))
MINORITY_SIZES = pick((32, 64, 128), (32,))


def _measure():
    voter_rows = []
    for n in VOTER_SIZES:
        chain = count_chain(voter(1), n, 1)
        horizon = int(math.ceil(2 * n * math.log(n)))
        survival = exceedance_probability(chain, [n], horizon)
        worst = float(survival[1 : n + 1].max())
        voter_rows.append((n, horizon, worst, 1.0 / n, worst <= 1.0 / n))

    minority_rows = []
    certificate = lower_bound_certificate(minority(3))
    for n in MINORITY_SIZES:
        chain = count_chain(minority(3), n, 1)
        witness = certificate.witness_configuration(n)
        horizon = int(math.ceil(math.sqrt(n)))
        cdf = absorption_time_cdf(chain, [n], start=witness.x0, horizon=horizon)
        minority_rows.append((n, witness.x0, horizon, float(cdf.cdf[-1])))
    return voter_rows, minority_rows


def test_exact_distributions(benchmark):
    voter_rows, minority_rows = run_once(benchmark, _measure, experiment="E19_exact_distributions")

    voter_table = Table(
        "E19a / Theorem 2 exactly — worst-case P(tau > 2 n ln n) over every "
        "admissible start (phase-type computation, no sampling)",
        ["n", "horizon 2n ln n", "worst P(tau > horizon)", "claimed 1/n", "holds"],
    )
    for row in voter_rows:
        voter_table.add_row(*row)

    minority_table = Table(
        "E19b / Theorem 1 exactly — P(tau <= n^(1/2)) from the Minority(3) "
        "witness configuration",
        ["n", "witness x0", "horizon sqrt(n)", "exact P(converged by then)"],
    )
    for row in minority_rows:
        minority_table.add_row(*row)

    emit(
        "E19_exact_distributions",
        voter_table,
        minority_table,
        "Both w.h.p. statements hold as exact finite-n inequalities at every "
        "size checked — the strongest form of agreement a reproduction can "
        "offer at small scale.",
    )

    assert all(row[-1] for row in voter_rows)
    # "w.h.p." in the paper's convention: failure <= n^-Omega(1).  The exact
    # probabilities are far smaller still (1e-6 .. 1e-16 over these sizes).
    for n, _, _, probability in minority_rows:
        assert probability <= 1.0 / n
