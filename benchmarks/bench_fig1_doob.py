"""E5 — Figure 1: the Doob-decomposition argument of Theorem 6, as data.

Figure 1 sketches the proof's three moving parts for the shifted chain
``Y_t = X_t - t``:

(a) assumption (ii): ``Y`` cannot jump from below ``a1 n - t`` past
    ``a2 n`` in one round;
(b) Claim 7: whenever ``Y_t <= M_t`` inside the interval, ``Y_{t+1}`` stays
    below ``M_{t+1}`` (the compensator is non-positive there);
(c) Claim 8: the martingale ``M_t`` stays inside
    ``(a2 n + T, a3 n - T)`` for ``T`` rounds.

This experiment realizes all three on simulated Minority trajectories from
the Theorem-6 starting state, using the *exact* drift for the
decomposition, and reports how often each event held — they must hold in
every round of every run for the reproduction to match the figure.
"""

from __future__ import annotations

import math

import numpy as np

from _harness import emit, pick, run_once
from repro.analysis.series import Series, Table, ascii_plot
from repro.core.lower_bound import lower_bound_certificate
from repro.dynamics.config import Configuration
from repro.dynamics.engine import step_count
from repro.dynamics.rng import make_rng
from repro.markov.doob import count_chain_doob
from repro.protocols import minority

# Claim 8's confinement band has half-width alpha*n = n (a3-a2)/4 while the
# martingale wanders ~ sqrt(T n)/2; the claim only has force when
# alpha^2 n^eps >> 1.  With Minority's alpha = 1/32 that means a large n and
# a large eps — cheap here because the count-level engine is O(1) per round.
N = pick(65536, 4096)
EPSILON = 0.75
RUNS = pick(10, 3)


def _measure():
    protocol = minority(3)
    certificate = lower_bound_certificate(protocol)
    a1, a2, a3 = certificate.a1, certificate.a2, certificate.a3
    horizon = int(N ** (1 - EPSILON))
    start = int(round((a2 + a3) / 2 * N))
    rng = make_rng(2024)

    domination_violations = 0
    confinement_violations = 0
    reconstruction_worst = 0.0
    kept_run = None
    for run_index in range(RUNS):
        counts = [start]
        x = start
        for _ in range(horizon):
            x = step_count(protocol, N, 1, x, rng)
            counts.append(x)
        counts = np.asarray(counts)
        decomposition = count_chain_doob(protocol, N, 1, counts)
        reconstruction_worst = max(
            reconstruction_worst, decomposition.reconstruction_error()
        )
        # Claim 9: Y_t <= M_t throughout.
        domination_violations += int(
            np.sum(decomposition.path > decomposition.martingale + 1e-9)
        )
        # Claim 8: M_t within (a2 n + T, a3 n - T).
        m = decomposition.martingale
        confinement_violations += int(
            np.sum((m <= a2 * N + horizon) | (m >= a3 * N - horizon))
        )
        if run_index == 0:
            kept_run = (counts, decomposition)
    return (
        certificate,
        horizon,
        start,
        domination_violations,
        confinement_violations,
        reconstruction_worst,
        kept_run,
    )


def test_fig1_doob_decomposition(benchmark):
    (
        certificate,
        horizon,
        start,
        domination_violations,
        confinement_violations,
        reconstruction_worst,
        (counts, decomposition),
    ) = run_once(benchmark, _measure, experiment="E5_fig1_doob")

    table = Table(
        f"E5 / Figure 1 — Doob machinery on Minority(3), n={N}, "
        f"T = n^(1-eps) = {horizon}, start = (a2+a3)/2 n = {start}",
        ["quantity", "value"],
    )
    table.add_row("runs x rounds checked", f"{RUNS} x {horizon}")
    table.add_row("max |Y - (M + A)| (exact reconstruction)", f"{reconstruction_worst:.2e}")
    table.add_row("Claim 9 violations (Y_t > M_t)", domination_violations)
    table.add_row(
        "Claim 8 violations (M_t outside (a2 n + T, a3 n - T))",
        confinement_violations,
    )
    table.add_row(
        "X stayed below a3 n for all T rounds",
        bool(np.all(counts <= certificate.a3 * N)),
    )

    time_axis = np.arange(len(counts), dtype=float)
    x_series = Series("X_t", time_axis, counts.astype(float))
    m_series = Series("M_t + t", time_axis, decomposition.martingale + time_axis)
    emit(
        "E5_fig1_doob",
        table,
        ascii_plot([x_series, m_series], width=64, height=14),
        x_series,
        m_series,
    )

    assert reconstruction_worst < 1e-8
    assert domination_violations == 0
    assert confinement_violations == 0
    assert np.all(counts <= certificate.a3 * N)
