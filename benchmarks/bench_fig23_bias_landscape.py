"""E4 — Figures 2 and 3: the Case-1 / Case-2 bias landscapes.

The paper's Figures 2 and 3 sketch the bias polynomial ``F_n``, its roots,
and the placement of the interval constants ``(a1, a2, a3)`` for the two
branches of the Theorem-12 proof.  This experiment regenerates both as
data: the ``F(p)`` series on a grid, the computed roots and sign profile,
the certificate constants, and the numerical verification of the escape
assumptions at a concrete ``n`` — everything the figures illustrate.

* Figure 2 (Case 1, ``F < 0`` before ``p = 1``, source opinion 1): the
  Minority dynamics at ``ell = 3``.
* Figure 3 (Case 2, ``F > 0`` before ``p = 1``, source opinion 0): the
  upward-biased Voter.
"""

from __future__ import annotations

import numpy as np

from _harness import emit, pick, run_once
from repro.analysis.series import Series, Table, ascii_plot
from repro.core.bias import bias_value
from repro.core.lower_bound import lower_bound_certificate, verify_escape_assumptions
from repro.core.roots import sign_profile
from repro.protocols import biased_voter, minority

N_CHECK = pick(8192, 512)
GRID = np.linspace(0.0, 1.0, pick(201, 51))

FIGURES = (
    ("fig2_case1", minority(3)),
    ("fig3_case2", biased_voter(3, 1, 0.2)),
)


def _measure():
    results = []
    for label, protocol in FIGURES:
        values = bias_value(protocol, GRID)
        profile = sign_profile(protocol)
        certificate = lower_bound_certificate(protocol)
        report = verify_escape_assumptions(certificate, N_CHECK)
        results.append((label, protocol, values, profile, certificate, report))
    return results


def test_fig23_bias_landscapes(benchmark):
    results = run_once(benchmark, _measure, experiment="E4_bias_landscapes")

    for label, protocol, values, profile, certificate, report in results:
        series = Series(f"F(p) for {protocol.name}", GRID, values)
        table = Table(
            f"E4 / {label} — lower-bound construction for {protocol.name} "
            f"(checked at n={N_CHECK})",
            ["quantity", "value"],
        )
        table.add_row("roots of F in [0,1]", np.round(profile.roots, 4).tolist())
        table.add_row("signs between roots", list(profile.signs))
        table.add_row("case", certificate.case)
        table.add_row("interval", tuple(np.round(certificate.interval, 4)))
        table.add_row(
            "(a1, a2, a3)",
            tuple(np.round((certificate.a1, certificate.a2, certificate.a3), 4)),
        )
        table.add_row("witness z", certificate.z)
        table.add_row("witness x0", certificate.witness_configuration(N_CHECK).x0)
        table.add_row("escape threshold", certificate.escape_threshold(N_CHECK))
        table.add_row("assumption (i) drift ok", report.drift_ok)
        table.add_row("assumption (i) worst margin", round(report.worst_drift_margin, 4))
        table.add_row("assumption (ii) tail", f"{report.jump_tail_bound:.3e}")
        table.add_row("assumption (iii) tail", f"{report.concentration_tail_bound:.3e}")
        table.add_row("predicted escape rounds", round(report.predicted_rounds, 1))
        emit(
            f"E4_{label}",
            table,
            ascii_plot([series], width=64, height=14),
            series,
        )

    case1 = results[0]
    case2 = results[1]
    assert "case 1" in case1[4].case and case1[4].z == 1
    assert "case 2" in case2[4].case and case2[4].z == 0
    for result in results:
        assert result[5].drift_ok and result[5].jump_ok
