"""E6 — Figure 4: the coalescing-random-walk dual of the Voter dynamics.

Figure 4 depicts the backward dual process behind Theorem 2: coalescing
walks, started one per agent, sliding backward along the sampling arrows
with the source acting as a sink.  The experiment regenerates its content:

* the coalescence profile (distinct unabsorbed walker positions per
  backward round) — the figure's red circles collapsing to the source;
* the absorption-time distribution against the ``2 n ln n`` horizon of the
  theorem;
* the exact duality on shared randomness: dual-absorbed agents hold the
  correct opinion, so full absorption implies forward consensus.
"""

from __future__ import annotations

import math

import numpy as np

from _harness import emit, pick, run_once
from repro.analysis.series import Series, Table, ascii_plot
from repro.dual.coalescing import (
    coalescence_profile,
    dual_absorption_times,
    paired_forward_dual_run,
)
from repro.dynamics.rng import make_rng, spawn_rngs

N = pick(1024, 256)
RUNS = pick(20, 5)


def _measure():
    rng = make_rng(4)
    horizon = int(2 * N * math.log(N))
    profile = coalescence_profile(N, horizon, rng)

    collapse_times = []
    for generator in spawn_rngs(5, RUNS):
        times = dual_absorption_times(N, horizon, generator)
        collapse_times.append(float(times.max()) if (times >= 0).all() else float("nan"))
    collapse_times = np.asarray(collapse_times)

    duality_checks = []
    for generator in spawn_rngs(6, RUNS):
        initial = generator.integers(0, 2, size=N).astype(np.int8)
        run = paired_forward_dual_run(initial, z=1, horizon=horizon, rng=generator)
        duality_checks.append(
            (run.duality_holds(), run.all_absorbed(), run.consensus_reached())
        )
    return horizon, profile, collapse_times, duality_checks


def test_fig4_coalescing_dual(benchmark):
    horizon, profile, collapse_times, duality_checks = run_once(benchmark, _measure, experiment="E6_fig4_dual")

    failures = int(np.isnan(collapse_times).sum())
    finite = collapse_times[~np.isnan(collapse_times)]
    table = Table(
        f"E6 / Figure 4 — coalescing dual of the Voter, n={N}, "
        f"horizon = 2 n ln n = {horizon}",
        ["quantity", "value"],
    )
    table.add_row("dual runs", RUNS)
    table.add_row("runs not fully absorbed by horizon", failures)
    table.add_row("median full-absorption time", float(np.median(finite)))
    table.add_row("90th pct full-absorption time", float(np.quantile(finite, 0.9)))
    table.add_row("absorption time / (n ln n)", float(np.median(finite) / (N * math.log(N))))
    table.add_row(
        "Eq.17 duality held in every paired run",
        all(check[0] for check in duality_checks),
    )
    table.add_row(
        "all-absorbed ==> consensus in every paired run",
        all(consensus for _, absorbed, consensus in duality_checks if absorbed),
    )

    profile_series = Series(
        "distinct unabsorbed walker positions",
        np.arange(len(profile), dtype=float),
        profile.astype(float),
    )
    emit(
        "E6_fig4_dual",
        table,
        ascii_plot([profile_series], width=64, height=14),
        profile_series,
    )

    assert failures <= 2  # w.h.p. absorption within the Theorem-2 horizon
    assert all(check[0] for check in duality_checks)
    assert profile[-1] == 0
