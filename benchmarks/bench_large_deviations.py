"""E20 — the well depth's exponent, predicted from first principles.

E18 measured the Minority(3) metastable well growing like ``exp(c n)``.
This experiment *predicts* ``c`` with no reference to the chain itself:
the Freidlin-Wentzell quasi-potential

    V = min-action path cost from the well bottom (p = 1/2)
        to the escape threshold (p = 0.875),

computed from the per-round large-deviation rate (a KL-divergence
minimization) on a fraction grid.  The measured slope
``log(depth(n2)/depth(n1)) / (n2 - n1)`` from the exact solves must match
``V`` — two completely independent routes to the same constant.
"""

from __future__ import annotations

import math

import numpy as np

from _harness import emit, pick, run_once
from repro.analysis.series import Series, Table, ascii_plot
from repro.markov.exact import count_chain
from repro.markov.large_deviations import quasi_potential
from repro.protocols import minority

SIZES = pick((16, 24, 32, 40, 48), (16, 24))
THRESHOLD = 0.875
GRID_POINTS = pick(81, 21)


def _measure():
    depths = []
    for n in SIZES:
        chain = count_chain(minority(3), n, 1)
        threshold = int(THRESHOLD * n)
        escape = chain.expected_hitting_times(list(range(threshold, n + 1)))
        depths.append(float(escape[n // 2]))
    slopes = [
        math.log(depths[i + 1] / depths[i]) / (SIZES[i + 1] - SIZES[i])
        for i in range(len(SIZES) - 1)
    ]
    predicted, potential_on_grid = quasi_potential(
        minority(3), 0.5, THRESHOLD, grid_points=GRID_POINTS
    )
    return depths, slopes, predicted, potential_on_grid


def test_large_deviation_prediction(benchmark):
    depths, slopes, predicted, potential_on_grid = run_once(benchmark, _measure, experiment="E20_large_deviations")

    table = Table(
        "E20 / Freidlin-Wentzell — Minority(3) well depth exponent: "
        "measured (exact chain) vs predicted (KL action, no chain)",
        ["n-interval", "log-depth slope"],
    )
    for i in range(len(slopes)):
        table.add_row(f"{SIZES[i]}..{SIZES[i + 1]}", round(slopes[i], 4))
    table.add_row("predicted V(1/2 -> 0.875)", round(predicted, 4))

    grid = np.linspace(0.0, 1.0, GRID_POINTS)
    finite = np.isfinite(potential_on_grid)
    series = Series(
        "quasi-potential V(p) to reach 0.875",
        grid[finite],
        potential_on_grid[finite],
    )
    emit(
        "E20_large_deviations",
        table,
        ascii_plot([series], width=60, height=12),
        series,
        f"asymptotic measured slope {slopes[-1]:.4f} vs predicted {predicted:.4f} "
        f"({100 * abs(slopes[-1] - predicted) / predicted:.1f}% apart)",
    )

    # The slopes converge to the predicted action from below (finite-n
    # corrections are sub-exponential).
    assert slopes == sorted(slopes) or max(slopes) - min(slopes) < 0.05
    assert abs(slopes[-1] - predicted) / predicted < 0.08


def test_action_zero_iff_with_the_drift(benchmark):
    """Sanity at bench scale: moving with the drift is free, against it isn't."""

    def _run():
        from repro.core.mean_field import mean_field_map
        from repro.markov.large_deviations import step_rate

        protocol = minority(3)
        rows = []
        for p in (0.2, 0.4, 0.6, 0.8):
            drift_q = float(mean_field_map(protocol, p))
            rows.append(
                (
                    p,
                    drift_q,
                    step_rate(protocol, p, drift_q),
                    step_rate(protocol, p, min(1.0, drift_q + 0.15)),
                )
            )
        return rows

    rows = run_once(benchmark, _run, experiment="E20b_action_sanity")
    table = Table(
        "E20b — per-round action: along the mean-field drift vs 0.15 above it",
        ["p", "phi(p)", "I(p -> phi(p))", "I(p -> phi(p)+0.15)"],
    )
    for row in rows:
        table.add_row(*row)
    emit("E20b_action_sanity", table)
    for _, _, along, against in rows:
        assert along < 1e-8
        assert against > 1e-3
