"""E16 — the mean-field skeleton: fixed points, overshoot, and tracking.

As ``n`` grows the count chain concentrates on the deterministic map
``phi(p) = p + F(p)`` (Proposition 5 + Hoeffding).  This experiment makes
three things measurable:

* the fixed-point structure that drives the Theorem-12 case analysis
  (attracting mid-point for Minority => metastable well; repelling
  mid-point for Majority => wrong consensus locks in);
* the [15] overshoot, in mean field: for large ``ell``, one application of
  ``phi`` maps a near-unanimous wrong configuration straight across 1/2;
* quantitative tracking: the per-round gap between a simulated run and its
  mean-field shadow shrinks like ``1/sqrt(n)``.
"""

from __future__ import annotations

import numpy as np

from _harness import emit, pick, run_once
from repro.analysis.series import Table
from repro.core.mean_field import fixed_points, mean_field_map, tracking_error
from repro.dynamics.config import Configuration
from repro.dynamics.rng import make_rng
from repro.dynamics.run import simulate
from repro.protocols import majority, minority

TRACK_SIZES = pick((1_000, 10_000, 100_000, 1_000_000), (1_000, 10_000))
TRACK_ROUNDS = 30


def _measure():
    structure_rows = []
    for protocol in (minority(3), minority(15), majority(3)):
        for point in fixed_points(protocol):
            structure_rows.append(
                (
                    protocol.name,
                    round(point.location, 4),
                    round(point.multiplier, 3),
                    point.stability,
                    point.is_oscillatory,
                )
            )

    overshoot_rows = []
    for ell in (3, 15, 63, 255):
        image = mean_field_map(minority(ell), 0.05)
        overshoot_rows.append((ell, 0.05, round(float(image), 4)))

    tracking_rows = []
    protocol = minority(3)
    for n in TRACK_SIZES:
        config = Configuration(n=n, z=1, x0=int(0.2 * n))
        result = simulate(protocol, config, TRACK_ROUNDS, make_rng(n), record=True)
        gaps = tracking_error(protocol, n, 1, result.trajectory)
        tracking_rows.append((n, float(gaps.max()), float(gaps.max() * np.sqrt(n))))
    return structure_rows, overshoot_rows, tracking_rows


def test_mean_field(benchmark):
    structure_rows, overshoot_rows, tracking_rows = run_once(benchmark, _measure, experiment="E16_mean_field")

    structure = Table(
        "E16a — fixed points of phi(p) = p + F(p) and their stability",
        ["protocol", "p*", "phi'(p*)", "stability", "oscillatory"],
    )
    for row in structure_rows:
        structure.add_row(*row)

    overshoot = Table(
        "E16b — the [15] overshoot in mean field: phi(0.05) for Minority",
        ["ell", "p", "phi(p)"],
    )
    for row in overshoot_rows:
        overshoot.add_row(*row)

    tracking = Table(
        f"E16c — max |X_t/n - p_t| over {TRACK_ROUNDS} rounds "
        "(Minority(3) from p=0.2); the sqrt(n)-scaled column must be flat",
        ["n", "max gap", "max gap * sqrt(n)"],
    )
    for row in tracking_rows:
        tracking.add_row(*row)

    emit("E16_mean_field", structure, overshoot, tracking)

    by_protocol = {}
    for name, location, multiplier, stability, _ in structure_rows:
        by_protocol.setdefault(name, {})[location] = stability
    assert by_protocol["minority(ell=3)"][0.5] == "attracting"
    assert by_protocol["majority(ell=3)"][0.5] == "repelling"
    assert by_protocol["majority(ell=3)"][0.0] == "attracting"

    # Overshoot strengthens with ell: phi(0.05) crosses 1/2 and approaches 1.
    images = [image for _, _, image in overshoot_rows]
    assert images[-1] > 0.9
    assert images == sorted(images)

    # Tracking: sqrt(n)-normalized gaps bounded (no drift with n).
    scaled = [row[2] for row in tracking_rows]
    assert max(scaled) / min(scaled) < 20
