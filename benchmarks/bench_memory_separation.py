"""E12 — the model separations of Section 1.3, on one shared workload.

The paper's lower bound is specifically about *memory-less, passive,
constant-sample* agents; each relaxation listed in Section 1.3 escapes it.
This experiment runs the same task — population of size ``n``, all
non-source agents initially wrong, source opinion 1 — across the models:

| model                                   | theory          | expectation |
|-----------------------------------------|-----------------|-------------|
| memory-less, ell=3 (Minority)           | Thm 1: n^(1-eps)| censored    |
| memory-less, ell=1 (Voter)              | Thm 2: n log n  | ~n rounds   |
| memory-less, ell=sqrt(n log n) (Minority)| [15]: log^2 n  | ~10 rounds  |
| O(log ell) bits memory, ell=log n ([7]-style trend following) | polylog | ~10 rounds |
| population protocol, active comms ([22]-style broadcast) | O(log n) | ~10 rounds |
"""

from __future__ import annotations

import math

import numpy as np

from _harness import emit, pick, run_once
from repro.analysis.series import Table
from repro.core.theory import minority_sqrt_sample_size
from repro.dynamics.config import wrong_consensus_configuration
from repro.dynamics.rng import make_rng
from repro.dynamics.run import simulate_ensemble
from repro.extensions.memory import run_memory_protocol
from repro.extensions.population import (
    broadcast_initial_states,
    run_population_protocol,
    source_broadcast_protocol,
)
from repro.protocols import minority, voter

N = pick(4096, 512)
REPLICAS = pick(5, 2)
BUDGET = 3 * N  # rounds; >> sqrt(n), >> the fast models, << minority-3's needs


def _measure():
    config = wrong_consensus_configuration(N, z=1)
    rows = []

    minority_times = simulate_ensemble(
        minority(3), config, BUDGET, make_rng(1), REPLICAS
    )
    rows.append(
        (
            "memory-less minority, ell=3",
            "Thm 1: >= n^(1-eps)",
            _fmt(minority_times, BUDGET),
            int(np.isnan(minority_times).sum()),
        )
    )

    voter_times = simulate_ensemble(voter(1), config, BUDGET, make_rng(2), REPLICAS)
    rows.append(
        (
            "memory-less voter, ell=1",
            "Thm 2: O(n log n)",
            _fmt(voter_times, BUDGET),
            int(np.isnan(voter_times).sum()),
        )
    )

    ell = minority_sqrt_sample_size(N)
    sqrt_times = simulate_ensemble(
        minority(ell), config, BUDGET, make_rng(3), REPLICAS
    )
    rows.append(
        (
            f"memory-less minority, ell={ell}",
            "[15]: O(log^2 n)",
            _fmt(sqrt_times, BUDGET),
            int(np.isnan(sqrt_times).sum()),
        )
    )

    memory_times = []
    for i in range(REPLICAS):
        t = run_memory_protocol(
            n=N, z=1, x0=1, ell=int(2 * math.log2(N)) | 1, max_rounds=BUDGET,
            rng=make_rng(40 + i),
        )
        memory_times.append(float("nan") if t is None else float(t))
    memory_times = np.asarray(memory_times)
    rows.append(
        (
            "trend-following, log n samples + counter memory",
            "[7]-style: polylog",
            _fmt(memory_times, BUDGET),
            int(np.isnan(memory_times).sum()),
        )
    )

    population_times = []
    for i in range(REPLICAS):
        rng = make_rng(50 + i)
        states = broadcast_initial_states(N, z=1, rng=rng, adversarial_informed=False)
        run = run_population_protocol(
            source_broadcast_protocol(), states, 1, BUDGET * N, rng, source_state=3
        )
        population_times.append(
            run.parallel_time(N) if run.converged else float("nan")
        )
    population_times = np.asarray(population_times)
    rows.append(
        (
            "population protocol, active comms (broadcast)",
            "[22]-style: O(log n)",
            _fmt(population_times, BUDGET),
            int(np.isnan(population_times).sum()),
        )
    )
    return rows, minority_times, voter_times, sqrt_times, memory_times, population_times


def _fmt(times: np.ndarray, budget: int) -> float:
    finite = times[~np.isnan(times)]
    return float(np.median(finite)) if len(finite) else float("inf")


def test_memory_separation(benchmark):
    (
        rows,
        minority_times,
        voter_times,
        sqrt_times,
        memory_times,
        population_times,
    ) = run_once(benchmark, _measure, experiment="E12_memory_separation")

    table = Table(
        f"E12 / Section 1.3 — one workload (n={N}, all wrong, z=1), five "
        f"models; budget {BUDGET} parallel rounds",
        ["model", "theory", "median parallel rounds", "censored"],
    )
    for row in rows:
        table.add_row(*row)
    emit(
        "E12_memory_separation",
        table,
        "The lower bound binds exactly the model it is stated for: give the "
        "agents memory, larger samples, or active communication and the same "
        "workload collapses from unattainable to tens of rounds.",
    )

    assert np.isnan(minority_times).all(), "minority-3 should censor"
    assert not np.isnan(voter_times).any()
    assert float(np.nanmedian(sqrt_times)) < 50
    assert float(np.nanmedian(memory_times)) < 50
    assert float(np.nanmedian(population_times)) < 50
    assert float(np.nanmedian(voter_times)) > N / 4  # linear-in-n regime
