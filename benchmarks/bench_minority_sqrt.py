"""E3 — the [15] regime: Minority with ell = ceil(sqrt(n log n)).

The context result the paper builds on: with a sample size of
``Omega(sqrt(n log n))`` the Minority dynamics solves bit-dissemination in
``O(log^2 n)`` parallel rounds w.h.p.  The experiment:

* sweeps ``n`` with ``ell(n) = ceil(sqrt(n log n))`` (odd), measuring
  ``tau`` from the all-wrong configuration;
* checks the polylog shape — ``tau / log^2 n`` bounded while ``n`` grows
  64-fold (a power-law fit against ``n`` must have exponent ~0);
* records one trajectory exhibiting the *overshoot mechanism* the paper
  describes: the population first swings so the correct opinion becomes the
  perceived minority, then flips to it almost simultaneously.
"""

from __future__ import annotations

import math

import numpy as np

from _harness import emit, pick, run_once
from repro.analysis.scaling import fit_power_law, is_bounded_shape, normalized_ratios
from repro.analysis.series import Series, Table, ascii_plot
from repro.core.theory import minority_sqrt_sample_size
from repro.dynamics.config import wrong_consensus_configuration
from repro.dynamics.rng import make_rng
from repro.dynamics.run import simulate, simulate_ensemble
from repro.protocols import minority

SIZES = pick((256, 1024, 4096, 16384), (256, 1024))
REPLICAS = pick(20, 5)
BUDGET = pick(2000, 500)  # rounds; >> log^2 n for every size here


def _measure():
    rows = []
    medians = []
    for n in SIZES:
        ell = minority_sqrt_sample_size(n)
        protocol = minority(ell)
        config = wrong_consensus_configuration(n, z=1)
        times = simulate_ensemble(protocol, config, BUDGET, make_rng(7 + n), REPLICAS)
        censored = int(np.isnan(times).sum())
        finite = times[~np.isnan(times)]
        median = float(np.median(finite)) if len(finite) else float("nan")
        rows.append((n, ell, median, median / math.log(n) ** 2, censored))
        medians.append(median)

    # The overshoot mechanism, on one recorded run.
    n = 4096
    protocol = minority(minority_sqrt_sample_size(n))
    run = simulate(
        protocol,
        wrong_consensus_configuration(n, z=1),
        BUDGET,
        make_rng(99),
        record=True,
    )
    trajectory = run.trajectory / n
    return rows, medians, trajectory


def test_minority_sqrt_polylog(benchmark):
    rows, medians, trajectory = run_once(benchmark, _measure, experiment="E3_minority_sqrt")

    table = Table(
        "E3 / [15] — Minority with ell = ceil(sqrt(n log n)) from the "
        "all-wrong configuration (z=1): tau = O(log^2 n)",
        ["n", "ell", "median tau", "tau / ln^2 n", "censored"],
    )
    for row in rows:
        table.add_row(*row)

    fit = fit_power_law(list(SIZES), medians)
    ratios = normalized_ratios(SIZES, medians, lambda n: math.log(n) ** 2)
    mechanism = Series(
        "fraction of opinion-1 agents (n=4096)",
        np.arange(len(trajectory), dtype=float),
        trajectory,
    )
    summary = (
        f"median tau ~ n^{fit.exponent:.3f} (polylog <=> exponent ~ 0); "
        f"tau/ln^2 n ratios: {np.round(ratios, 3).tolist()}\n"
        "Overshoot mechanism (correct opinion 1 starts at ~0; watch the dip "
        "below the start before the jump to 1):"
    )
    emit(
        "E3_minority_sqrt",
        table,
        summary,
        ascii_plot([mechanism], width=60, height=12),
        mechanism,
    )

    assert all(row[-1] == 0 for row in rows), "a run failed to converge"
    assert fit.exponent < 0.35, f"tau grows like n^{fit.exponent}: not polylog"
    assert is_bounded_shape(ratios, spread_tolerance=10.0)


def test_minority_sqrt_beats_constant_ell(benchmark):
    """The sample-size dichotomy in one row: sqrt-ell converges in tens of
    rounds where constant-ell cannot converge within the same budget."""

    def _run():
        n = 4096
        config = wrong_consensus_configuration(n, z=1)
        sqrt_times = simulate_ensemble(
            minority(minority_sqrt_sample_size(n)), config, 500, make_rng(1), 10
        )
        const_times = simulate_ensemble(minority(3), config, 500, make_rng(2), 10)
        return sqrt_times, const_times

    sqrt_times, const_times = run_once(benchmark, _run, experiment="E3b_sample_size_dichotomy")
    table = Table(
        "E3b — same workload (n=4096, all wrong), 500-round budget",
        ["protocol", "converged", "median tau"],
    )
    table.add_row(
        "minority(ell=sqrt)", int((~np.isnan(sqrt_times)).sum()), float(np.nanmedian(sqrt_times))
    )
    table.add_row("minority(ell=3)", int((~np.isnan(const_times)).sum()), float("inf"))
    emit("E3b_sample_size_dichotomy", table)

    assert not np.isnan(sqrt_times).any()
    assert np.isnan(const_times).all()
