"""E24 — protocol ecology: do Voter/Minority mixtures help?

A question the paper's setting invites: a flock of pure contrarians
(constant-sample Minority) is stuck at the mixed equilibrium, a flock of
pure copiers (Voter) is slow but sure — does a *mixture* of the two
interpolate, or does either pathology dominate?

At the count level the mixture's drift is the population-weighted blend
``alpha F_voter + (1-alpha) F_minority = (1-alpha) F_minority`` (the Voter
is zero-bias), so the mean-field prediction is: any Minority share keeps
the attracting mixed fixed point, and the mixture's escape is a *diffusion
against a scaled-down well* — faster than pure Minority, slower than pure
Voter, with a sharp cost as the Minority share grows.  The experiment
measures exactly that sweep.
"""

from __future__ import annotations

import numpy as np

from _harness import emit, pick, run_once
from repro.analysis.series import Table
from repro.dynamics.heterogeneous import initial_mixed_state, simulate_mixed
from repro.dynamics.rng import make_rng
from repro.protocols import minority, voter

N = pick(512, 128)
REPLICAS = pick(5, 2)
BUDGET = pick(20_000, 2_000)
MINORITY_SHARES = (0.0, 0.02, 0.05, 0.125, 0.5, 1.0)


def _measure():
    rows = []
    for share in MINORITY_SHARES:
        size_minority = int(round(share * (N - 1)))
        size_voter = (N - 1) - size_minority
        times = []
        censored = 0
        for i in range(REPLICAS):
            state = initial_mixed_state(
                n=N, z=1, size_a=size_voter, ones_a=0, ones_b=0
            )
            converged, rounds, _ = simulate_mixed(
                voter(1),
                minority(3),
                state,
                BUDGET,
                make_rng(3000 + int(share * 1000) + i),
            )
            if converged:
                times.append(rounds)
            else:
                censored += 1
        median = float(np.median(times)) if times else float("inf")
        rows.append((share, size_voter, size_minority, median, censored))
    return rows


def test_mixture_ecology(benchmark):
    rows = run_once(benchmark, _measure, experiment="E24_mixture_ecology")

    table = Table(
        f"E24 / protocol ecology — Voter/Minority(3) mixtures at n={N}, "
        f"all-wrong start (z=1), budget {BUDGET} rounds",
        [
            "minority share",
            "voters",
            "minority agents",
            "median tau",
            f"censored (of {REPLICAS})",
        ],
    )
    for row in rows:
        table.add_row(*row)
    emit(
        "E24_mixture_ecology",
        table,
        "Reading: the mixture's drift alpha * F_minority has the SAME roots "
        "as pure Minority — the attracting mixed equilibrium at p = 1/2 "
        "survives any positive contrarian share, only its pull weakens.  "
        "Measured: ten contrarians among 512 agents (a 2% share) already "
        "block dissemination for the entire budget.  Diversity does not "
        "rescue constant-sample populations; an arbitrarily thin contrarian "
        "admixture re-installs the Theorem-1 trap.",
    )

    by_share = {row[0]: row for row in rows}
    # Pure Voter converges; pure Minority censors.
    assert by_share[0.0][4] == 0
    assert by_share[1.0][4] == REPLICAS
    # Cost is monotone-ish in the minority share (compare the measured ends).
    assert by_share[0.0][3] < by_share[0.5][3]
