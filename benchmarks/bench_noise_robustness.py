"""E14 — extension: observation noise breaks the model's clean dichotomies.

The paper's agents read sampled opinions perfectly.  Flipping each observed
opinion with probability ``delta`` (a per-sample binary symmetric channel)
is equivalent to running the clean protocol at the distorted fraction
``p~ = p(1-delta) + (1-delta')...`` — see :mod:`repro.dynamics.noise` — and
changes the problem qualitatively:

* no protocol keeps an exact consensus (Proposition 3's mechanism breaks);
* the Voter acquires a restoring drift toward 1/2 that swamps the O(1/n)
  source pull: even 1% noise destroys bit-dissemination entirely;
* Majority-type restoring drifts *hold* an epsilon-consensus under small
  noise but still cannot reach it from the wrong side.

The experiment sweeps ``delta`` and reports time-average correct fractions
and epsilon-consensus occupancy for Voter, Majority and large-sample
Minority on adversarial and consensus starts.
"""

from __future__ import annotations

import numpy as np

from _harness import emit, pick, run_once
from repro.analysis.series import Table
from repro.core.theory import minority_sqrt_sample_size
from repro.dynamics.config import Configuration
from repro.dynamics.noise import noisy_occupancy
from repro.dynamics.rng import make_rng
from repro.protocols import majority, minority, voter

N = pick(1024, 256)
ROUNDS = pick(12000, 3000)
BURN_IN = pick(7000, 1500)  # past the clean Voter's ~1.7n-round convergence
DELTAS = (0.0, 0.01, 0.05, 0.2, 0.45)


def _measure():
    ell = minority_sqrt_sample_size(N)
    cases = [
        ("voter(1), all-wrong start", voter(1), Configuration(n=N, z=1, x0=1)),
        ("majority(5), consensus start", majority(5), Configuration(n=N, z=1, x0=N)),
        (
            f"minority({ell}), all-wrong start",
            minority(ell),
            Configuration(n=N, z=1, x0=1),
        ),
    ]
    rows = []
    for label, protocol, config in cases:
        for delta in DELTAS:
            result = noisy_occupancy(
                protocol,
                config,
                delta=delta,
                rounds=ROUNDS,
                rng=make_rng(hash((label, delta)) % 2**32),
                burn_in=BURN_IN,
            )
            rows.append(
                (label, delta, result.mean_correct_fraction, result.occupancy)
            )
    return rows


def test_noise_robustness(benchmark):
    rows = run_once(benchmark, _measure, experiment="E14_noise_robustness")

    table = Table(
        f"E14 / extension — observation noise (BSC per sample), n={N}, "
        f"{ROUNDS} rounds ({BURN_IN} burn-in); 'occupancy' = fraction of "
        "rounds with >= 95% of agents correct",
        ["case", "delta", "mean correct fraction", "eps-consensus occupancy"],
    )
    for row in rows:
        table.add_row(*row)
    emit(
        "E14_noise_robustness",
        table,
        "Reading: delta=0 reproduces the clean model (Voter and large-ell "
        "Minority disseminate; Majority merely holds).  Any delta > 0 parks "
        "the Voter at a coin flip (the noise drift delta(1-2p) dwarfs the "
        "1/n source pull) and makes the large-ell Minority *anti*-track the "
        "consensus; Majority's restoring drift degrades gracefully instead.",
    )

    by_case = {}
    for label, delta, mean_correct, occupancy in rows:
        by_case.setdefault(label, {})[delta] = (mean_correct, occupancy)

    voter_rows = by_case["voter(1), all-wrong start"]
    assert voter_rows[0.0][0] > 0.95  # clean: disseminates
    assert voter_rows[0.01][0] < 0.75  # 1% noise: stuck near 1/2
    majority_rows = by_case["majority(5), consensus start"]
    assert majority_rows[0.05][1] > 0.9  # small noise: consensus held
    assert majority_rows[0.45][0] < 0.8  # heavy noise: degraded
