"""E10 — Proposition 3: the boundary conditions are necessary.

A protocol with ``g[0](0) > 0`` cannot hold the all-zero consensus: each
round, each of the ``n - 1`` non-source agents samples all zeros and still
flips with probability ``g[0](0)``, so the consensus breaks after a
``Geometric(1 - (1 - g)^(n-1))`` number of rounds — essentially instantly
for any fixed ``g``.  The experiment measures the time to leave consensus
for a panel of violating protocols against that exact prediction, and
confirms the mirrored statement for ``g[1](ell) < 1``.
"""

from __future__ import annotations

import numpy as np

from _harness import emit, pick, run_once
from repro.analysis.series import Table
from repro.core.protocol import Protocol
from repro.dynamics.rng import make_rng
from repro.dynamics.run import time_to_leave_consensus

N = pick(256, 64)
TRIALS = pick(200, 50)


def _leak_protocol(leak: float) -> Protocol:
    return Protocol(ell=1, g0=[leak, 1.0], g1=[0.0, 1.0], name=f"leak({leak:g})")


def _top_leak_protocol(leak: float) -> Protocol:
    return Protocol(ell=1, g0=[0.0, 1.0], g1=[0.0, 1.0 - leak], name=f"top-leak({leak:g})")


def _measure():
    rows = []
    for leak in (0.001, 0.01, 0.1):
        protocol = _leak_protocol(leak)
        rng = make_rng(int(leak * 10**6))
        times = [
            time_to_leave_consensus(protocol, N, z=0, max_rounds=10**6, rng=rng)
            for _ in range(TRIALS)
        ]
        assert all(t is not None for t in times)
        break_probability = 1.0 - (1.0 - leak) ** (N - 1)
        rows.append(
            (
                protocol.name,
                "z=0 consensus",
                float(np.mean(times)),
                1.0 / break_probability,
            )
        )
    # The mirrored condition g[1](ell) < 1 breaks the all-one consensus.
    top = _top_leak_protocol(0.01)
    rng = make_rng(17)
    times = [
        time_to_leave_consensus(top, N, z=1, max_rounds=10**6, rng=rng)
        for _ in range(TRIALS)
    ]
    assert all(t is not None for t in times)
    rows.append(
        (
            top.name,
            "z=1 consensus",
            float(np.mean(times)),
            1.0 / (1.0 - 0.99 ** (N - 1)),
        )
    )
    return rows


def test_prop3_necessity(benchmark):
    rows = run_once(benchmark, _measure, experiment="E10_prop3_necessity")

    table = Table(
        f"E10 / Proposition 3 — violating protocols lose the consensus "
        f"(n={N}, {TRIALS} trials each); prediction = 1 / (1 - (1-g)^(n-1))",
        ["protocol", "consensus", "mean rounds to break", "geometric prediction"],
    )
    for row in rows:
        table.add_row(*row)
    emit(
        "E10_prop3_necessity",
        table,
        "Every violating protocol left the consensus in every trial; "
        "tau_n = +inf, exactly as Proposition 3's proof argues.",
    )

    for _, _, measured, predicted in rows:
        # Geometric mean vs prediction: within 3 standard errors
        # (std of a geometric ~ its mean).
        tolerance = 3 * predicted / np.sqrt(TRIALS) + 0.5
        assert abs(measured - predicted) < tolerance, (measured, predicted)
