"""E9 — Proposition 4: the one-round jump bound, measured.

From any configuration with at most ``c n`` ones, one parallel round keeps
the count below ``y(c, ell) n = (1 - (1-c)^(ell+1)/2) n`` except with
probability ``exp(-2 sqrt(n))``.  The experiment stress-tests the bound at
the extreme admissible count for a panel of protocols, sample sizes and
thresholds, and reports the observed margin — zero violations expected at
any reachable trial count (the failure probability at n=4096 is e^-128).

It also demonstrates the boundary of the proposition: for larger ``ell``
one-round reachability stops being local (the paper's remark on why the
technique cannot extend past ``ell = Omega(log n)``) — from a configuration
just below one half, a large-``ell`` Minority population perceives a
near-unanimous majority of zeros and jumps almost to the all-one consensus
in a *single* round, while ``ell = 3`` moves only marginally.
"""

from __future__ import annotations

import numpy as np

from _harness import emit, pick, run_once
from repro.analysis.series import Table
from repro.core.jump_bound import check_jump_bound, jump_failure_probability
from repro.dynamics.rng import make_rng
from repro.protocols import majority, minority, voter

N = pick(4096, 512)
TRIALS = pick(400, 100)
CASES = [
    (voter(1), 0.25),
    (voter(1), 0.5),
    (minority(3), 0.25),
    (minority(3), 0.5),
    (minority(7), 0.5),
    (minority(15), 0.5),
    (majority(3), 0.5),
]


def _measure():
    rows = []
    for protocol, c in CASES:
        check = check_jump_bound(
            protocol, n=N, c=c, trials=TRIALS, rng=make_rng(hash((protocol.name, c)) % 2**32)
        )
        rows.append(
            (
                protocol.name,
                c,
                check.y,
                check.max_fraction_reached,
                check.y - check.max_fraction_reached,
                check.violations,
            )
        )
    # The boundary demonstration: one-round reach from just below one half.
    reach = []
    for ell in (3, 31, 255):
        check = check_jump_bound(
            minority(ell), n=N, c=0.45, trials=50, rng=make_rng(900 + ell)
        )
        reach.append((ell, check.max_fraction_reached))
    return rows, reach


def test_prop4_jump_bound(benchmark):
    rows, reach = run_once(benchmark, _measure, experiment="E9_prop4_jump")

    table = Table(
        f"E9 / Proposition 4 — one-round jump bound at n={N}, {TRIALS} "
        f"trials from x = floor(c n); analytic failure prob = "
        f"{jump_failure_probability(N):.2e}",
        ["protocol", "c", "y(c,ell)", "max fraction seen", "margin", "violations"],
    )
    for row in rows:
        table.add_row(*row)

    summary = (
        "one-round reach of Minority from x = 0.45 n, by ell: "
        + ", ".join(f"ell={ell}: {frac:.3f}" for ell, frac in reach)
        + "\n(large samples make the whole population perceive the same "
        "near-majority and jump almost to consensus in one round — the "
        "paper's explanation of why the lower-bound technique cannot extend "
        "to ell = Omega(log n))"
    )
    emit("E9_prop4_jump", table, summary)

    assert all(row[-1] == 0 for row in rows), "Proposition 4 violated"
    reach_by_ell = dict(reach)
    # Constant ell: local moves.  Large ell: a near-consensus jump.
    assert reach_by_ell[3] < 0.7
    assert reach_by_ell[255] > 0.9
    assert reach_by_ell[3] < reach_by_ell[31] < reach_by_ell[255]
