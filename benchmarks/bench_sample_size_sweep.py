"""E8 — the open question: how small can the sample size be?

Section 1.2 asks for the minimal ``ell`` letting the Minority dynamics
converge in polylogarithmic time, notes the gap between the ``Omega(1)``
lower bound (this paper) and the ``O(sqrt(n log n))`` upper bound ([15]),
and remarks that "simulations suggest that its convergence might be fast
even when the sample size is qualitatively small".  This experiment *is*
that simulation: ``n`` fixed, ``ell`` swept across decades, convergence
from the all-wrong configuration under a generous round budget.

Expected picture: censored (non-converging) runs at constant ``ell``, a
transition to fast convergence somewhere well below ``sqrt(n log n)``, and
round counts collapsing to O(log n) past it.
"""

from __future__ import annotations

import math

import numpy as np

from _harness import emit, pick, run_once
from repro.analysis.series import Series, Table
from repro.core.theory import minority_sqrt_sample_size
from repro.dynamics.config import wrong_consensus_configuration
from repro.dynamics.rng import make_rng
from repro.dynamics.run import simulate_ensemble
from repro.protocols import minority

N = pick(4096, 512)
SAMPLE_SIZES = pick((3, 7, 15, 31, 63, 127, 185, 255), (3, 7, 15, 63))
REPLICAS = pick(10, 3)
BUDGET = pick(3000, 800)


def _measure():
    config = wrong_consensus_configuration(N, z=1)
    rows = []
    for ell in SAMPLE_SIZES:
        times = simulate_ensemble(
            minority(ell), config, BUDGET, make_rng(100 + ell), REPLICAS
        )
        censored = int(np.isnan(times).sum())
        finite = times[~np.isnan(times)]
        median = float(np.median(finite)) if len(finite) else float("inf")
        rows.append((ell, median, censored))
    return rows


def test_sample_size_sweep(benchmark):
    rows = run_once(benchmark, _measure, experiment="E8_sample_size_sweep")

    reference = minority_sqrt_sample_size(N)
    table = Table(
        f"E8 / open question — Minority at n={N}, all-wrong start, budget "
        f"{BUDGET} rounds; [15]'s sample size would be ell={reference}",
        ["ell", "median tau", f"censored (of {REPLICAS})"],
    )
    for row in rows:
        table.add_row(*row)

    converged = [(ell, median) for ell, median, censored in rows if censored == 0]
    threshold = min(ell for ell, _ in converged) if converged else None
    summary = (
        f"empirical fast-convergence threshold at n={N}: ell ~ {threshold} "
        f"(vs [15]'s sqrt(n log n) = {reference}).  Matches the paper's "
        "remark that simulations show fast convergence at qualitatively "
        "small sample sizes — the gap between Omega(1) and O(sqrt(n log n)) "
        "is wide open."
    )
    emit("E8_sample_size_sweep", table, summary)

    # Constant ell: no convergence within the budget (the Theorem-1 regime).
    assert rows[0][2] == REPLICAS
    # The smallest swept ell at or above [15]'s converges in every run
    # (185 at full sizing, where reference = 185).
    by_ell = {ell: (median, censored) for ell, median, censored in rows}
    paper_ell = next(ell for ell in SAMPLE_SIZES if ell >= reference)
    assert by_ell[paper_ell][1] == 0
    # The empirical threshold is strictly below sqrt(n log n).
    assert threshold is not None and threshold < reference
