"""E13e — scenario-engine overhead on the batched engine (docs/SCENARIOS.md).

The hostile-world hooks run once per *round*, so routing an ensemble
through the scenario kernel must cost almost nothing when the world is
null: the gated claim is that a ``scenario="null"`` run stays within
15% of the wall clock of a clean ``scenario=None`` run on the batched
engine (same censored workload, so fixed work on both sides).  The
record also archives the cost of a real composite —
churn + message loss + a mid-run source flip — which legitimately pays
for its churn draws (hypergeometric inversions) and is *not* gated,
plus the null/clean and composite/clean ratios so the ledger catches
creep in either.

``repro bench --scenario SPEC`` exports ``REPRO_BENCH_SCENARIO``; when
set, that spec replaces the default composite row, so one-off scenario
costings go through the same ledger plumbing.
"""

from __future__ import annotations

import os
import time

import numpy as np

from _harness import emit, note_field, note_rounds, pick, run_once
from repro.analysis.series import Table
from repro.dynamics.config import Configuration
from repro.dynamics.rng import make_rng
from repro.dynamics.run import simulate_ensemble
from repro.protocols import voter

DEFAULT_COMPOSITE = "churn:period=8,amplitude=4+lossy:rate=0.1+flip-source:at=12"

# The null-run gate.  Measured slack is ~1% (the hooks are per-round,
# the draws per-replica); 15% leaves room for noisy shared runners
# while still catching an accidentally per-replica hook.
MAX_NULL_OVERHEAD = 0.15


def _bench_scenario_spec() -> str:
    return os.environ.get("REPRO_BENCH_SCENARIO") or DEFAULT_COMPOSITE


def test_scenario_overhead_batched(benchmark):
    """E13e — clean vs null-scenario vs composite wall clock."""
    protocol = voter(1)
    n = pick(10**5, 10**4)
    rounds = pick(60, 15)
    replicas = 1000
    # Censored workload: voter from a balanced start, budget far below
    # the convergence scale, so every replica executes exactly ``rounds``
    # rounds in every variant — fixed, comparable work.
    config = Configuration(n=n, z=1, x0=n // 2)
    composite = _bench_scenario_spec()

    def run(scenario):
        return simulate_ensemble(
            protocol, config, rounds, make_rng(17), replicas,
            engine="batched", scenario=scenario,
        )

    def best_of(scenario, repeats=3):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            run(scenario)
            best = min(best, time.perf_counter() - start)
        return best

    clean_s = best_of(None)
    null_times = run_once(benchmark, run, "null", experiment="E13e_scenarios")
    null_s = best_of("null")
    composite_s = best_of(composite)

    null_overhead = null_s / clean_s - 1.0
    composite_ratio = composite_s / clean_s
    replica_rounds = rounds * replicas

    note_rounds(replica_rounds)
    note_field("null_overhead", round(null_overhead, 4))
    note_field("composite_scenario", composite)
    note_field("composite_ratio", round(composite_ratio, 4))
    table = Table(
        f"scenario overhead: {replicas} replicas, {rounds} rounds at "
        f"n={n} (batched engine)",
        ["world", "wall s", "vs clean"],
    )
    table.add_row("clean (scenario=None)", round(clean_s, 4), 1.0)
    table.add_row("null scenario", round(null_s, 4), round(null_s / clean_s, 4))
    table.add_row(composite, round(composite_s, 4), round(composite_ratio, 4))
    emit("E13e_scenarios", table)

    # The null world consumes exactly the clean stream, so the results —
    # not just the distributions — must agree bit-for-bit.
    np.testing.assert_array_equal(run(None), null_times)
    # The gate: scenario plumbing must stay per-round, not per-replica.
    assert null_overhead < MAX_NULL_OVERHEAD, (
        f"null-scenario run is {null_overhead:.1%} slower than clean "
        f"(gate: {MAX_NULL_OVERHEAD:.0%})"
    )
    # Sanity floor on the composite: it must actually have run hostile.
    assert composite_ratio > 1.0
