"""E23 — self-stabilization, the quantifier made visible.

The problem demands convergence from *every* initial configuration — the
adversary chooses the starting opinions, including the correct one.  This
experiment runs the adversarial panel (wrong consensus, near-wrong,
balanced, thin correct majority — for both source opinions) against the
main protocols and tabulates who converges from where:

* Voter: converges from the entire panel (self-stabilizing, slowly);
* Minority ℓ=√(n log n): converges from the entire panel (self-stabilizing,
  fast) — the [15] result is a for-all statement, not a lucky start;
* Minority ℓ=3 and Majority ℓ=3: each fails on part of the panel, in
  complementary ways — Minority stalls at the mixed equilibrium, Majority
  is only defeated by wrong-majority starts.
"""

from __future__ import annotations

import numpy as np

from _harness import emit, pick, run_once
from repro.analysis.series import Table
from repro.core.theory import minority_sqrt_sample_size
from repro.dynamics.config import adversarial_configurations
from repro.dynamics.rng import make_rng
from repro.dynamics.run import simulate_ensemble
from repro.protocols import majority, minority, voter

N = pick(1024, 256)
REPLICAS = pick(5, 2)
BUDGET = pick(20_000, 3_000)


def _measure():
    panel = adversarial_configurations(N)
    ell = minority_sqrt_sample_size(N)
    protocols = [
        voter(1),
        minority(ell),
        minority(3),
        majority(3),
    ]
    rows = []
    for protocol in protocols:
        for config in panel:
            times = simulate_ensemble(
                protocol, config, BUDGET, make_rng(hash((protocol.name, config.x0, config.z)) % 2**32), REPLICAS
            )
            censored = int(np.isnan(times).sum())
            finite = times[~np.isnan(times)]
            rows.append(
                (
                    protocol.name,
                    config.z,
                    config.x0,
                    round(config.x0 / N, 3),
                    float(np.median(finite)) if len(finite) else float("inf"),
                    censored,
                )
            )
    return rows


def test_self_stabilization_panel(benchmark):
    rows = run_once(benchmark, _measure, experiment="E23_self_stabilization")

    table = Table(
        f"E23 / self-stabilization — adversarial start panel at n={N}, "
        f"budget {BUDGET} rounds, {REPLICAS} replicas per cell",
        ["protocol", "z", "x0", "x0/n", "median tau", "censored"],
    )
    for row in rows:
        table.add_row(*row)

    def summarize(name):
        cells = [r for r in rows if r[0] == name]
        failed = sum(1 for r in cells if r[5] > 0)
        return len(cells), failed

    lines = []
    for name in {r[0] for r in rows}:
        total, failed = summarize(name)
        lines.append(f"  {name}: failed on {failed}/{total} panel cells")
    emit(
        "E23_self_stabilization",
        table,
        "Panel verdicts:\n" + "\n".join(sorted(lines)) + "\n"
        "Self-stabilization is the hard part of the problem: plenty of "
        "dynamics reach *a* consensus from friendly starts; only the "
        "self-stabilizing ones survive the adversary's quantifier.",
    )

    ell = minority_sqrt_sample_size(N)
    by_protocol = {}
    for name in {r[0] for r in rows}:
        by_protocol[name] = summarize(name)
    assert by_protocol["voter(ell=1)"][1] == 0
    assert by_protocol[f"minority(ell={ell})"][1] == 0
    assert by_protocol["minority(ell=3)"][1] > 0
    assert by_protocol["majority(ell=3)"][1] > 0
