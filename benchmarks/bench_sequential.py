"""E7 — the sequential setting ([14]): Omega(n) floor, Voter O(n log^2 n).

The paper contrasts its parallel lower bound with the sequential setting,
where [14] showed (via the birth-death structure) that *no* protocol beats
``Omega(n)`` parallel rounds, while the Voter achieves ``O(n log^2 n)``.
Because the sequential count chain is birth-death, expected hitting times
are computed *exactly* here (closed-form ladder sums — no Monte Carlo), and
a sampled run cross-checks the simulator.

Reported shapes:

* Voter: ``E[tau] / n`` parallel rounds stays within ``[c, C log^2 n]``;
* Minority(3): the adverse-drift region makes sequential convergence
  astronomically slower than the Voter — the dichotomy is *reversed*
  relative to the large-ell parallel setting.
"""

from __future__ import annotations

import math

import numpy as np

from _harness import emit, pick, run_once
from repro.analysis.series import Table
from repro.dynamics.config import Configuration, wrong_consensus_configuration
from repro.dynamics.rng import make_rng
from repro.dynamics.sequential import simulate_sequential
from repro.markov.birth_death import sequential_birth_death_chain
from repro.protocols import minority, voter

SIZES = pick((64, 128, 256, 512, 1024), (64, 128, 256))


def _measure():
    rows = []
    for n in SIZES:
        start = 1  # all-wrong configuration for z = 1
        voter_chain = sequential_birth_death_chain(voter(1), n, 1)
        voter_rounds = voter_chain.expected_time_to_top(start) / n
        minority_chain = sequential_birth_death_chain(minority(3), n, 1)
        minority_rounds = minority_chain.expected_time_to_top(start) / n
        rows.append(
            (
                n,
                voter_rounds,
                voter_rounds / n,
                voter_rounds / (n * math.log(n) ** 2),
                minority_rounds,
            )
        )

    # Simulator cross-check at one size.
    n = 128
    exact = sequential_birth_death_chain(voter(1), n, 1).expected_time_to_top(1)
    rng = make_rng(11)
    samples = [
        simulate_sequential(
            voter(1), wrong_consensus_configuration(n, 1), 10**9, rng
        ).activations
        for _ in range(60)
    ]

    # The exact worst case over (z, x0) for the whole zoo at one size — the
    # finite-n shadow of [14]'s theorem across every protocol we implement.
    from repro.markov.sequential_bound import sequential_worst_case
    from repro.protocols import majority, two_choices

    zoo_rows = []
    for protocol in (voter(1), voter(3), minority(3), majority(3), two_choices()):
        worst = sequential_worst_case(protocol, 128)
        zoo_rows.append(
            (protocol.name, worst.rounds_per_n, worst.z, worst.x0)
        )
    return rows, exact, samples, zoo_rows


def test_sequential_setting(benchmark):
    rows, exact, samples, zoo_rows = run_once(benchmark, _measure, experiment="E7_sequential")

    table = Table(
        "E7 / [14] — sequential setting, exact E[tau] in parallel rounds "
        "from the all-wrong configuration (z=1)",
        [
            "n",
            "voter E[tau]",
            "voter E[tau]/n",
            "voter E[tau]/(n ln^2 n)",
            "minority(3) E[tau]",
        ],
    )
    for row in rows:
        table.add_row(*row)

    mean = float(np.mean(samples))
    stderr = float(np.std(samples) / math.sqrt(len(samples)))
    summary = (
        f"simulator cross-check at n=128: exact E[activations]={exact:.0f}, "
        f"sampled mean={mean:.0f} +- {stderr:.0f}\n"
        "Omega(n) floor: E[tau]/n bounded below; O(n log^2 n): "
        "E[tau]/(n ln^2 n) bounded above.  Minority's exact sequential times "
        "explode: the parallel-setting hero is the sequential-setting "
        "disaster — [14]'s point that the settings differ exponentially."
    )
    zoo_table = Table(
        "E7b — exact worst case over (z, x0) at n=128, whole zoo: "
        "E[tau]/n >= Omega(1) for every protocol ([14], finite-n shadow)",
        ["protocol", "worst E[tau] / n (rounds per n)", "worst z", "worst x0"],
    )
    for name, rounds_per_n, z, x0 in zoo_rows:
        zoo_table.add_row(name, rounds_per_n, z, x0)
    emit("E7_sequential", table, summary, zoo_table)

    # [14] finite-n: every protocol's worst-case rounds/n is bounded below.
    assert all(r[1] > 0.5 for r in zoo_rows)

    # Omega(n): per-n ratios bounded away from 0.
    assert all(row[2] > 0.3 for row in rows)
    # O(n log^2 n): normalized ratios bounded above.
    assert all(row[3] < 2.0 for row in rows)
    # The simulator agrees with the exact chain.
    assert abs(mean - exact) < 5 * stderr + 1.0
    # Minority(3) sequentially much slower than Voter at every size.
    assert all(row[4] > 10 * row[1] for row in rows)
