"""E13f — job service overhead: submission→completion vs a direct call.

The service exists for robustness (journaled state, crash recovery,
retries), not throughput — but robustness that taxes every job heavily
would push users back to bare ``convergence_ensemble`` calls and lose the
durability guarantees.  This experiment prices the machinery:

* **direct** — ``convergence_ensemble`` in-process with the *same*
  durability the worker composes (a :class:`Checkpointer` at the same
  cadence plus a :class:`HeartbeatRecorder`): what a careful user runs by
  hand today;
* **service** — the same spec submitted to an in-process
  :class:`~repro.service.server.Service` (``workers=1``) and drained to
  ``done``: everything the direct leg pays *plus* WAL commits for every
  state transition, a forked worker process, dispatch/reap polling, and
  an atomic result publish.

Both legs compute the identical ensemble (same protocol, configuration,
seed) with identical checkpoint/heartbeat IO, so the wall-clock
difference *is* the service tax — journal, fork, scheduling.  The
acceptance bar (ISSUE 10 / E13f): **under 10% overhead at smoke
sizing** — the robustness plumbing must be a rounding error next to the
simulation it protects.

The ledger record ``BENCH_E13f_service_overhead.json`` archives the
service-side wall clock (what the regression gate watches) plus both leg
timings and the overhead ratio as ``extra`` fields.
"""

from __future__ import annotations

import dataclasses
import tempfile
import time
from pathlib import Path

from _harness import emit, note_field, pick, run_once
from repro.analysis.ensemble import convergence_ensemble
from repro.analysis.series import Table
from repro.dynamics.config import wrong_consensus_configuration
from repro.dynamics.rng import make_rng
from repro.execution import Checkpointer
from repro.protocols import voter
from repro.service import Service, ServiceConfig
from repro.telemetry import HeartbeatRecorder
from repro.telemetry.heartbeat import heartbeat_path

N_AGENTS = 96
MAX_ROUNDS = 5000
SEED = 7
CHECKPOINT_EVERY = 5
HEARTBEAT_EVERY_S = 0.5


def _spec(replicas: int) -> dict:
    return {
        "kind": "ensemble",
        "protocol": "voter",
        "n": N_AGENTS,
        "z": 1,
        "max_rounds": MAX_ROUNDS,
        "replicas": replicas,
        "seed": SEED,
        # Same durability cadence as the direct leg composes by hand.
        "checkpoint_every": CHECKPOINT_EVERY,
        "heartbeat_every_s": HEARTBEAT_EVERY_S,
    }


def _direct_leg(root: Path, replicas: int):
    root.mkdir(parents=True, exist_ok=True)
    beat = HeartbeatRecorder(
        heartbeat_path(root / "job"), role="job", interval_s=HEARTBEAT_EVERY_S
    )
    start = time.perf_counter()
    stats = convergence_ensemble(
        voter(1),
        wrong_consensus_configuration(N_AGENTS, 1),
        MAX_ROUNDS,
        make_rng(SEED),
        replicas,
        recorder=beat,
        checkpoint=Checkpointer(root / "job.ckpt", every=CHECKPOINT_EVERY),
    )
    return time.perf_counter() - start, dataclasses.asdict(stats)


def _service_leg(root: Path, replicas: int):
    service = Service(root, ServiceConfig(workers=1, poll_s=0.01))
    try:
        start = time.perf_counter()
        job = service.submit(_spec(replicas))
        assert service.drain(timeout_s=600), "service never drained"
        wall = time.perf_counter() - start
        finished = service.store.get(job.id)
        assert finished.state == "done", finished.error
        return wall, finished.result["stats"]
    finally:
        service.shutdown()


def test_service_overhead(benchmark):
    """E13f — submission→completion overhead of the job service."""
    replicas = pick(1024, 256)
    # Interleaved min-of-3 per leg: host noise (shared runners, single
    # cores) is additive and spiky, so the minimum is the honest estimate
    # of each leg's intrinsic cost — one scheduler hiccup cannot fake a tax.
    reps = 3

    with tempfile.TemporaryDirectory(prefix="repro_e13f_") as scratch:
        scratch = Path(scratch)
        # Warm leg outside the timed region: imports, fork-context setup.
        direct_warm_s, _ = _direct_leg(scratch / "warmup", 1)

        def both_legs():
            direct_s, service_s = float("inf"), float("inf")
            direct_stats = service_stats = None
            for rep in range(reps):
                wall, direct_stats = _direct_leg(
                    scratch / f"direct{rep}", replicas
                )
                direct_s = min(direct_s, wall)
                wall, service_stats = _service_leg(
                    scratch / f"svc{rep}", replicas
                )
                service_s = min(service_s, wall)
            return direct_s, direct_stats, service_s, service_stats

        direct_s, direct_stats, service_s, service_stats = run_once(
            benchmark, both_legs, experiment="E13f_service_overhead"
        )

    overhead_ratio = service_s / direct_s
    note_field("replicas", replicas)
    note_field("direct_s", round(direct_s, 4))
    note_field("service_s", round(service_s, 4))
    note_field("overhead_ratio", round(overhead_ratio, 4))
    note_field("overhead_pct", round(100.0 * (overhead_ratio - 1.0), 2))
    note_field("warmup_s", round(direct_warm_s, 4))

    table = Table(
        f"job service overhead ({replicas} replicas, n={N_AGENTS}, "
        f"seed {SEED})",
        ["path", "wall s", "vs direct"],
    )
    table.add_row("direct call", round(direct_s, 4), "1.00x")
    table.add_row(
        "service job", round(service_s, 4), f"{overhead_ratio:.2f}x"
    )
    emit("E13f_service_overhead", table)

    # Correctness rail: the service leg computes the very same ensemble.
    assert service_stats == direct_stats, (
        "service job diverged from the direct call"
    )
    # The acceptance bar (ISSUE 10): the durability machinery costs under
    # 10% of the direct call at smoke sizing.
    assert overhead_ratio < 1.10, (
        f"service overhead {100 * (overhead_ratio - 1):.1f}% breaches the "
        "10% budget"
    )
