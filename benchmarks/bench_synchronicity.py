"""E17 — the power of synchronicity, as a dial.

[15]'s title phenomenon: the Minority overshoot needs *simultaneity*.  The
k-activation model (k uniformly chosen non-source agents update per step,
``n/k`` steps = one parallel round) interpolates between the sequential
setting (k=1, Omega(n) floor) and the parallel one (k=n-1, O(log^2 n) with
a sqrt-size sample).  The experiment sweeps k on the [15] workload and
locates where the speedup switches on.

Expected shape: convergence within the budget only once k is a large
fraction of n — small batches re-equilibrate toward the mixed fixed point
before a coherent overshoot can form.
"""

from __future__ import annotations

import numpy as np

from _harness import emit, pick, run_once
from repro.analysis.series import Table
from repro.core.theory import minority_sqrt_sample_size
from repro.dynamics.config import wrong_consensus_configuration
from repro.dynamics.kactivation import simulate_k_activation
from repro.dynamics.rng import make_rng
from repro.protocols import minority

N = pick(1024, 256)
BUDGET_ROUNDS = 300.0
REPLICAS = pick(5, 2)
FRACTIONS = (1 / N, 0.01, 0.05, 0.25, 0.5, 0.75, 1.0)


def _measure():
    protocol = minority(minority_sqrt_sample_size(N))
    config = wrong_consensus_configuration(N, z=1)
    rows = []
    for fraction in FRACTIONS:
        k = max(1, min(N - 1, int(round(fraction * (N - 1)))))
        rounds = []
        converged = 0
        for i in range(REPLICAS):
            result = simulate_k_activation(
                protocol, config, k, BUDGET_ROUNDS, make_rng(1000 * k + i)
            )
            if result.converged:
                converged += 1
                rounds.append(result.parallel_rounds)
        median = float(np.median(rounds)) if rounds else float("inf")
        rows.append((k, round(k / (N - 1), 4), converged, median))
    return rows


def test_synchronicity_dial(benchmark):
    rows = run_once(benchmark, _measure, experiment="E17_synchronicity")

    table = Table(
        f"E17 / the synchronicity dial — Minority(ell=sqrt(n log n)) at "
        f"n={N}, all-wrong start, budget {BUDGET_ROUNDS:.0f} parallel rounds",
        ["k (agents/step)", "k / (n-1)", f"converged (of {REPLICAS})", "median parallel rounds"],
    )
    for row in rows:
        table.add_row(*row)
    emit(
        "E17_synchronicity",
        table,
        "Reading: the overshoot mechanism is a *collective* jump — it exists "
        "only when most of the population updates on the same snapshot.  "
        "Small activation batches keep relaxing toward the mixed "
        "equilibrium, recovering the sequential-like slowness; this is the "
        "paper's parallel/sequential dichotomy with the crossover made "
        "visible.",
    )

    by_fraction = {round(k / (N - 1), 4): (conv, med) for k, _, conv, med in [
        (r[0], r[1], r[2], r[3]) for r in rows
    ]}
    # Sequential-like end: no convergence within the budget.
    assert rows[0][2] == 0
    # Fully parallel end: converges in every run, fast.
    assert rows[-1][2] == REPLICAS and rows[-1][3] < 50
    # Convergence counts are monotone-ish across the dial: the parallel half
    # dominates the sequential half.
    first_half = sum(r[2] for r in rows[: len(rows) // 2])
    second_half = sum(r[2] for r in rows[len(rows) // 2 :])
    assert second_half > first_half
