"""E1 — Theorem 1: the almost-linear lower bound for constant sample size.

For each constant-``ell`` protocol, Theorem 12 produces a witness
configuration and an escape threshold whose crossing time lower-bounds the
convergence time.  This experiment measures the escape time over a sweep of
``n`` and checks the paper's claim: it exceeds ``n^(1-eps)`` (we use
``eps = 1/2``, so the bound is ``sqrt(n)``) in every run.

Expected shapes:

* zero-bias protocols (Voter) escape diffusively — measurable times growing
  linearly in ``n``, comfortably above ``sqrt(n)``;
* biased protocols (Minority and friends) face adverse drift — runs censor
  at the budget (many times the bound), i.e. the escape is *much* slower
  than the guaranteed ``n^(1-eps)``.
"""

from __future__ import annotations

import numpy as np

from _harness import emit, pick, run_once
from repro.analysis.scaling import fit_power_law
from repro.core.lower_bound import lower_bound_certificate
from repro.core.theory import lower_bound_rounds
from repro.dynamics.rng import make_rng
from repro.dynamics.run import escape_time_ensemble
from repro.analysis.series import Table
from repro.protocols import double_lobe, minority, voter, voter_minority_blend

EPSILON = 0.5
# n = 256 sits below the asymptotic regime for the diffusive (zero-bias)
# case — the Voter's escape median lands a hair under sqrt(n) there — so the
# sweep starts where the w.h.p. statement has room to hold.
SIZES = pick((512, 1024, 2048, 4096, 8192), (512, 1024))
REPLICAS = pick(10, 3)
BUDGET_MULTIPLIER = 2  # budget = 2 n rounds >> n^(1-eps) = sqrt(n)

PROTOCOLS = (
    voter(1),
    minority(3),
    minority(5),
    voter_minority_blend(3, 0.5),
    double_lobe(0.3),
)


def _measure():
    rows = []
    voter_medians = []
    for protocol in PROTOCOLS:
        certificate = lower_bound_certificate(protocol)
        for n in SIZES:
            bound = lower_bound_rounds(n, EPSILON)
            budget = BUDGET_MULTIPLIER * n
            times = escape_time_ensemble(
                protocol, certificate, n, budget, make_rng(1234 + n), REPLICAS
            )
            observed = np.where(np.isnan(times), budget, times)
            censored = int(np.isnan(times).sum())
            median = float(np.median(observed))
            rows.append(
                (
                    protocol.name,
                    certificate.case.split(" (")[0],
                    n,
                    bound,
                    median,
                    censored,
                    median >= bound,
                )
            )
            if protocol.name.startswith("voter"):
                voter_medians.append((n, median))
    return rows, voter_medians


def test_thm1_escape_times_exceed_bound(benchmark):
    rows, voter_medians = run_once(benchmark, _measure, experiment="E1_thm1_lower_bound")

    table = Table(
        "E1 / Theorem 1 — escape time from the witness configuration "
        f"(eps={EPSILON}; bound = n^(1-eps); censored runs hit the "
        f"{BUDGET_MULTIPLIER}n budget, i.e. escape is even slower)",
        ["protocol", "case", "n", "bound n^0.5", "median escape", "censored", "holds"],
    )
    for row in rows:
        table.add_row(*row)

    fit = fit_power_law([n for n, _ in voter_medians], [t for _, t in voter_medians])
    summary = (
        f"Voter escape-time fit: tau ~ n^{fit.exponent:.2f} "
        f"(r^2={fit.r_squared:.3f}); paper guarantees exponent >= 1 - eps = 0.5"
    )
    emit("E1_thm1_lower_bound", table, summary)

    # The headline claim: every measured (or censored) escape beats the bound.
    assert all(row[-1] for row in rows), "an escape undercut the Theorem-1 bound"
    # Zero-bias diffusion: the Voter's exponent clears 1 - eps with margin.
    assert fit.exponent > 0.5
