"""E2 — Theorem 2: the Voter dynamics solves the problem in O(n log n) rounds.

The paper proves: from *any* initial configuration, the Voter reaches the
correct consensus within ``2 n ln n`` parallel rounds with probability at
least ``1 - 1/n``.  This experiment sweeps ``n``, runs an ensemble from the
worst-case initialization (every non-source agent wrong), and reports:

* the fraction of runs exceeding the paper's ``2 n ln n`` horizon — must be
  consistent with the ``<= 1/n`` failure rate;
* the scaling shape: the measured median grows polynomially with exponent
  ``~1`` (the typical Voter consensus time is ``Theta(n)``, below the
  ``O(n log n)`` w.h.p. envelope).
"""

from __future__ import annotations

import math

import numpy as np

from _harness import emit, note_rounds, pick, run_once
from repro.analysis.scaling import fit_power_law
from repro.analysis.series import Table
from repro.core.theory import voter_upper_bound_rounds
from repro.dynamics.config import wrong_consensus_configuration
from repro.dynamics.rng import make_rng
from repro.dynamics.run import simulate_ensemble
from repro.protocols import voter
from repro.telemetry import MetricsRecorder

SIZES = pick((128, 256, 512, 1024, 2048, 4096), (128, 256, 512))
REPLICAS = pick(40, 10)


def _measure():
    rows = []
    medians = []
    total_rounds = 0
    for n in SIZES:
        config = wrong_consensus_configuration(n, z=1)
        horizon = int(math.ceil(voter_upper_bound_rounds(n)))
        recorder = MetricsRecorder()
        times = simulate_ensemble(
            voter(1), config, horizon, make_rng(42 + n), REPLICAS, recorder
        )
        total_rounds += recorder.metrics().rounds
        over_horizon = int(np.isnan(times).sum())
        finite = times[~np.isnan(times)]
        median = float(np.median(finite)) if len(finite) else float("nan")
        rows.append((n, horizon, median, float(np.max(finite)), over_horizon))
        medians.append(median)
    return rows, medians, total_rounds


def test_thm2_voter_upper_bound(benchmark):
    rows, medians, total_rounds = run_once(benchmark, _measure, experiment="E2_thm2_voter_upper_bound")
    note_rounds(total_rounds)

    table = Table(
        "E2 / Theorem 2 — Voter from the all-wrong configuration (z=1, x0=1); "
        "bound = 2 n ln n, failure must be <= ~1/n per run",
        ["n", "bound 2n ln n", "median tau", "max tau", "runs over bound"],
    )
    for row in rows:
        table.add_row(*row)

    fit = fit_power_law(list(SIZES), medians)
    summary = (
        f"median tau ~ n^{fit.exponent:.2f} (r^2={fit.r_squared:.3f}); "
        "paper guarantees O(n log n) w.h.p. — median slope in [0.9, 1.2] and "
        "all maxima under the bound confirm the shape"
    )
    emit("E2_thm2_voter_upper_bound", table, summary)

    total_runs = len(SIZES) * REPLICAS
    total_failures = sum(row[-1] for row in rows)
    # Expected failures: sum over n of REPLICAS / n  (< 1 here).
    expected = sum(REPLICAS / n for n in SIZES)
    assert total_failures <= max(5, 5 * expected), (
        f"{total_failures}/{total_runs} runs exceeded the 2 n ln n bound"
    )
    assert 0.8 <= fit.exponent <= 1.3, f"unexpected scaling {fit.exponent}"
