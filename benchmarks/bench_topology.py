"""E21 — extension: topology as a hidden resource.

The paper's agents sample from the *whole* population — the well-mixed /
complete-graph assumption.  Replacing global sampling by neighbour
sampling on a fixed graph shows how much that assumption buys: the Voter's
``O(n log n)`` bound relies on the source being one uniform sample away
from everyone.  The experiment runs the Voter workload across topologies
at fixed ``n``:

* complete graph — the paper's setting (minus self-samples);
* random 4-regular graph — an expander: constant-degree locality, but
  still logarithmic diameter; near-complete behaviour expected;
* cycle — diameter ``n/2``: consensus needs poly(n) extra rounds;
* star with an ordinary hub — two hops from the source to anyone, but the
  hub bottleneck makes leaf opinions churn.
"""

from __future__ import annotations

import numpy as np

from _harness import emit, pick, run_once
from repro.analysis.series import Table
from repro.dynamics.graphs import (
    complete_graph,
    cycle_graph,
    random_regular_graph,
    simulate_on_graph,
    star_graph,
)
from repro.dynamics.rng import make_rng
from repro.protocols import voter

N = 64
REPLICAS = pick(10, 3)
BUDGET = pick(200_000, 40_000)

TOPOLOGIES = (
    ("complete", complete_graph),
    ("random 4-regular", lambda n: random_regular_graph(n, 4, seed=7)),
    ("cycle", cycle_graph),
    ("star (ordinary hub)", star_graph),
)


def _measure():
    rows = []
    medians = {}
    for label, builder in TOPOLOGIES:
        graph = builder(N)
        times = []
        censored = 0
        for i in range(REPLICAS):
            initial = np.zeros(N, dtype=np.int8)  # all wrong, z = 1
            rounds = simulate_on_graph(
                voter(1), graph, 1, initial, BUDGET, make_rng(500 + i)
            )
            if rounds is None:
                censored += 1
            else:
                times.append(rounds)
        median = float(np.median(times)) if times else float("inf")
        rows.append((label, graph.number_of_edges(), median, censored))
        medians[label] = median
    return rows, medians


def test_topology(benchmark):
    rows, medians = run_once(benchmark, _measure, experiment="E21_topology")

    table = Table(
        f"E21 / extension — Voter bit-dissemination across topologies "
        f"(n={N}, all-wrong start, budget {BUDGET} rounds)",
        ["topology", "edges", "median tau (rounds)", f"censored (of {REPLICAS})"],
    )
    for row in rows:
        table.add_row(*row)
    emit(
        "E21_topology",
        table,
        "Reading: the paper's O(n log n) Voter bound silently uses the "
        "complete graph.  Expanders with constant degree track it within a "
        "small factor — locality per se is cheap — but low-conductance "
        "topologies (cycle) pay polynomially, and the star funnels all "
        "information through one churning hub.",
    )

    assert all(row[3] == 0 for row in rows), "a topology failed to converge"
    # The expander is within a small factor of complete; the cycle is far.
    assert medians["random 4-regular"] < 10 * medians["complete"]
    assert medians["cycle"] > 3 * medians["complete"]
