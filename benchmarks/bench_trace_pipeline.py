"""E13d — trace pipeline: sink hot-path overhead and report-query latency.

The columnar trace container exists for two measurable reasons, and this
module measures exactly those:

* **Write side** — per-record cost of the trace sinks, driven directly
  (no simulation in the way): the JSONL sink pays a JSON encode plus one
  unbuffered ``write(2)`` per round, the columnar sink buffers rounds and
  pays an amortised numpy column encode per chunk.  The assertion is the
  design's reason to exist: columnar per-record overhead strictly below
  JSONL's.
* **Read side** — ``repro report`` query latency over a trace directory
  (full sizing: 10^6 round records across 8 files).  Four strategies are
  timed on identical record streams: JSONL re-parse (the pre-columnar
  status quo), columnar cold decode (memory-mapped column chunks), index
  build (first ``TRACE_INDEX.json`` refresh), and index warm hit (the
  repeated-query case).  The headline assertion is the acceptance bar:
  columnar cold decode at least 5x faster than the JSONL re-parse.

The ledger record ``BENCH_E13d_trace_pipeline.json`` archives the query
phase's wall clock (what the regression gate watches) plus every
per-strategy timing and the sink overhead ratios as ``extra`` fields.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

from _harness import emit, note_field, note_rounds, pick, run_once
from repro.analysis.index import refresh_trace_index
from repro.analysis.report import summarize_trace_dir
from repro.analysis.series import Table
from repro.dynamics.rng import make_rng
from repro.protocols import minority
from repro.telemetry import (
    ColumnarTraceWriter,
    JsonlTraceWriter,
    run_provenance,
    write_trace_records,
)
from repro.telemetry.recorder import TRACE_SCHEMA_VERSION

PROTOCOL = minority(3)
N_AGENTS = 4096


def _provenance(seed: int):
    return run_provenance(
        "simulate", PROTOCOL, make_rng(seed),
        n=N_AGENTS, z=1, x0=N_AGENTS // 3, seed=seed,
    )


def _synthetic_records(seed: int, rounds: int):
    """A valid ``simulate``-shaped record stream: clipped random-walk counts.

    Drift fields are included so the report layer exercises its Prop-5
    comparison (the expensive part of a summary) on both read paths.
    """
    rng = make_rng(seed)
    steps = rng.integers(-3, 4, size=rounds)
    counts = np.clip(
        np.cumsum(steps) + N_AGENTS // 3, 1, N_AGENTS - 1
    ).astype(float)
    drifts = np.diff(np.concatenate(([float(N_AGENTS // 3)], counts)))
    counts_list, drifts_list = counts.tolist(), drifts.tolist()
    start = {"kind": "run_start", "schema": TRACE_SCHEMA_VERSION}
    start.update(_provenance(seed).to_dict())
    records = [start]
    records.extend(
        {
            "kind": "round",
            "t": t + 1,
            "count": counts_list[t],
            "drift": drifts_list[t],
        }
        for t in range(rounds)
    )
    records.append(
        {
            "kind": "run_end",
            "converged": False,
            "rounds": rounds,
            "final_round": rounds,
            "rounds_recorded": rounds,
        }
    )
    return records


def _drive_sink(writer, rounds: int) -> float:
    """Wall clock of streaming ``rounds`` round records through a sink."""
    start = time.perf_counter()
    writer.run_started(_provenance(0))
    count = float(N_AGENTS // 3)
    for t in range(1, rounds + 1):
        writer.round_recorded(t, count, {"drift": 0.5})
    writer.run_finished({"converged": False, "rounds": rounds})
    writer.close()
    return time.perf_counter() - start


def test_trace_pipeline(benchmark):
    """E13d — columnar sink overhead + zero-reparse report queries."""
    sink_rounds = pick(200_000, 20_000)
    files = 8
    rounds_per_file = pick(125_000, 6_000)  # full: 10^6 records total
    total_rounds = files * rounds_per_file

    with tempfile.TemporaryDirectory(prefix="repro_e13d_") as scratch:
        scratch = Path(scratch)

        # -- write side: per-record sink cost, identical record streams --
        jsonl_write_s = _drive_sink(
            JsonlTraceWriter(scratch / "sink.jsonl", include_timings=False),
            sink_rounds,
        )
        columnar_write_s = _drive_sink(
            ColumnarTraceWriter(scratch / "sink.ctrace", include_timings=False),
            sink_rounds,
        )
        jsonl_us = 1e6 * jsonl_write_s / sink_rounds
        columnar_us = 1e6 * columnar_write_s / sink_rounds
        jsonl_bytes = (scratch / "sink.jsonl").stat().st_size
        columnar_bytes = (scratch / "sink.ctrace").stat().st_size

        # -- read side: one record population, two containers --
        jsonl_dir = scratch / "jsonl"
        columnar_dir = scratch / "columnar"
        jsonl_dir.mkdir()
        columnar_dir.mkdir()
        for k in range(files):
            records = _synthetic_records(seed=100 + k, rounds=rounds_per_file)
            write_trace_records(jsonl_dir / f"run{k}.jsonl", records, "jsonl")
            write_trace_records(
                columnar_dir / f"run{k}.ctrace", records, "columnar"
            )

        def query_phase():
            timings = {}
            start = time.perf_counter()
            jsonl_summaries = summarize_trace_dir(jsonl_dir)
            timings["jsonl_reparse_s"] = time.perf_counter() - start
            start = time.perf_counter()
            columnar_summaries = summarize_trace_dir(columnar_dir)
            timings["columnar_cold_s"] = time.perf_counter() - start
            start = time.perf_counter()
            refresh_trace_index(columnar_dir)
            timings["index_build_s"] = time.perf_counter() - start
            start = time.perf_counter()
            indexed_summaries = summarize_trace_dir(
                columnar_dir, use_index=True
            )
            timings["index_warm_s"] = time.perf_counter() - start
            return timings, jsonl_summaries, columnar_summaries, indexed_summaries

        timings, jsonl_summaries, columnar_summaries, indexed_summaries = (
            run_once(benchmark, query_phase, experiment="E13d_trace_pipeline")
        )

    speedup_cold = timings["jsonl_reparse_s"] / timings["columnar_cold_s"]
    speedup_warm = timings["jsonl_reparse_s"] / timings["index_warm_s"]
    note_rounds(total_rounds)
    note_field("sink_rounds", sink_rounds)
    note_field("jsonl_write_us_per_record", round(jsonl_us, 3))
    note_field("columnar_write_us_per_record", round(columnar_us, 3))
    note_field("sink_overhead_ratio", round(jsonl_us / columnar_us, 2))
    note_field("jsonl_trace_bytes", jsonl_bytes)
    note_field("columnar_trace_bytes", columnar_bytes)
    note_field("query_records", total_rounds)
    note_field("jsonl_reparse_s", round(timings["jsonl_reparse_s"], 4))
    note_field("columnar_cold_s", round(timings["columnar_cold_s"], 4))
    note_field("index_build_s", round(timings["index_build_s"], 4))
    note_field("index_warm_s", round(timings["index_warm_s"], 4))
    note_field("report_speedup_cold", round(speedup_cold, 2))
    note_field("report_speedup_warm", round(speedup_warm, 2))

    sink_table = Table(
        f"trace sink hot path ({sink_rounds} rounds, timings off)",
        ["sink", "wall s", "us/record", "bytes"],
    )
    sink_table.add_row("jsonl", round(jsonl_write_s, 4), round(jsonl_us, 3), jsonl_bytes)
    sink_table.add_row(
        "columnar", round(columnar_write_s, 4), round(columnar_us, 3), columnar_bytes
    )
    query_table = Table(
        f"report query over {files} traces x {rounds_per_file} rounds "
        f"({total_rounds} records)",
        ["strategy", "wall s", "speedup vs jsonl"],
    )
    query_table.add_row("jsonl re-parse", round(timings["jsonl_reparse_s"], 4), 1.0)
    query_table.add_row(
        "columnar cold", round(timings["columnar_cold_s"], 4), round(speedup_cold, 1)
    )
    query_table.add_row(
        "index build", round(timings["index_build_s"], 4),
        round(timings["jsonl_reparse_s"] / timings["index_build_s"], 1),
    )
    query_table.add_row(
        "index warm", round(timings["index_warm_s"], 4), round(speedup_warm, 1)
    )
    emit("E13d_trace_pipeline", sink_table, query_table)

    # Correctness rail: every strategy reads the same analytics.  Paths
    # differ across directories; everything else must match exactly.
    def strip(summaries):
        return [
            (s.rounds, s.fingerprint, round(s.mean_realized_drift, 12),
             round(s.drift_gap, 12))
            for s in summaries
        ]

    assert strip(jsonl_summaries) == strip(columnar_summaries)
    assert strip(columnar_summaries) == strip(indexed_summaries)
    # The acceptance bars (ISSUE 8): columnar strictly cheaper on the hot
    # path, and report queries at least 5x faster than the JSONL re-parse.
    assert columnar_us < jsonl_us
    assert speedup_cold >= 5.0
