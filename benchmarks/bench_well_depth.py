"""E18 — the metastable well behind Theorem 1, measured three ways.

For constant-sample Minority the Theorem-12 interval hides an
``exp(Omega(n))`` well: the bias pins the population at the mixed fixed
point and escaping to the consensus side requires a large deviation.  The
experiment quantifies the well depth per ``n`` via three independent
routes and checks they agree:

1. exact expected hitting time of the escape threshold (linear solve);
2. the quasi-stationary escape rate ``1/(1 - lambda_1)`` of the restricted
   chain (power iteration);
3. direct simulation of escape times (for the shallow sizes where that is
   feasible).

The log-depth growing linearly in ``n`` is the strongest quantitative form
of the paper's lower bound this repository exhibits: not just
``n^(1-eps)`` but genuinely exponential for the flagship dynamics.
"""

from __future__ import annotations

import math

import numpy as np

from _harness import emit, pick, run_once
from repro.analysis.scaling import fit_power_law
from repro.analysis.series import Table
from repro.dynamics.rng import make_rng
from repro.markov.exact import count_chain
from repro.markov.quasistationary import quasi_stationary
from repro.protocols import minority

SIZES = pick((16, 24, 32, 40, 48), (16, 24))
THRESHOLD_FRACTION = 0.875  # the certificate's a3 for Minority(3)
SIM_SIZE = 16
SIM_RUNS = pick(30, 10)


def _measure():
    rows = []
    depths = []
    for n in SIZES:
        chain = count_chain(minority(3), n, 1)
        threshold = int(THRESHOLD_FRACTION * n)
        exact = float(
            chain.expected_hitting_times(list(range(threshold, n + 1)))[n // 2]
        )
        well_states = np.arange(1, threshold)
        qsd = quasi_stationary(chain.transition[np.ix_(well_states, well_states)])
        rows.append((n, threshold, exact, qsd.mean_escape_time, exact / qsd.mean_escape_time))
        depths.append(exact)

    # Simulation cross-check at the shallow end.
    from repro.dynamics.engine import step_count

    n = SIM_SIZE
    threshold = int(THRESHOLD_FRACTION * n)
    rng = make_rng(123)
    samples = []
    for _ in range(SIM_RUNS):
        x = n // 2
        t = 0
        while x < threshold:
            x = step_count(minority(3), n, 1, x, rng)
            t += 1
        samples.append(t)
    return rows, depths, samples


def test_well_depth(benchmark):
    rows, depths, samples = run_once(benchmark, _measure, experiment="E18_well_depth")

    table = Table(
        "E18 / the exp(Omega(n)) well of Minority(3) — escape from x=n/2 "
        f"past {THRESHOLD_FRACTION}n, three routes",
        ["n", "threshold", "exact E[escape]", "QSD 1/(1-lambda1)", "ratio"],
    )
    for row in rows:
        table.add_row(*row)

    growth = [depths[i + 1] / depths[i] for i in range(len(depths) - 1)]
    simulated_mean = float(np.mean(samples))
    exact_small = rows[0][2]
    summary = (
        f"depth growth per +8 agents: {[round(g, 1) for g in growth]} "
        "(roughly constant multiplicative factor = exponential in n)\n"
        f"simulation cross-check at n={SIM_SIZE}: mean of {SIM_RUNS} escapes "
        f"= {simulated_mean:.1f} vs exact {exact_small:.1f}"
    )
    emit("E18_well_depth", table, summary)

    # The two analytic routes agree tightly at every size.
    for _, _, exact, qsd_time, ratio in rows:
        assert 0.9 < ratio < 1.1
    # Exponential depth: the growth factor does not decay.
    assert min(growth) > 3.0
    # Simulation consistent with the exact value (heavy-tailed; be generous).
    standard_error = np.std(samples) / math.sqrt(len(samples))
    assert abs(simulated_mean - exact_small) < 5 * standard_error + 2.0
