"""E22 — related work: competing stubborn agents ([24-28]).

The paper's problem has a single unopposed source; the surrounding
literature studies populations with immovable agents on *both* sides.
This experiment reproduces the classical picture for the Voter dynamics
([25]-flavoured) and contrasts it with Majority:

* under the Voter, the long-run mean fraction of opinion 1 equals the
  zealot share ``s1 / (s1 + s0)`` (exactly, by the martingale/duality
  argument), with fluctuations shrinking as the zealot pool grows;
* under Majority, the population ignores the zealot *ratio* and parks near
  whichever side it started on — stubborn minorities cannot re-steer a
  conformist crowd, the same brittleness that makes Majority fail
  bit-dissemination.
"""

from __future__ import annotations

import numpy as np
import pytest

from _harness import emit, pick, run_once
from repro.analysis.series import Table
from repro.dynamics.rng import make_rng
from repro.dynamics.zealots import ZealotPopulation, stationary_profile
from repro.protocols import majority, voter

N = pick(600, 200)
ROUNDS = pick(30_000, 6_000)
BURN_IN = pick(5_000, 1_000)
SHARES = ((6, 6), (9, 3), (12, 4), (20, 5), (60, 20))


def _measure():
    voter_rows = []
    for s1, s0 in SHARES:
        population = ZealotPopulation(n=N, s1=s1, s0=s0)
        trace = stationary_profile(
            voter(1), population, ROUNDS, make_rng(s1 * 100 + s0), burn_in=BURN_IN
        )
        fractions = trace / N
        voter_rows.append(
            (
                f"{s1}:{s0}",
                s1 / (s1 + s0),
                float(fractions.mean()),
                float(fractions.std()),
            )
        )

    majority_rows = []
    population = ZealotPopulation(n=N, s1=30, s0=10)  # 3:1 zealots for opinion 1
    low, high = population.count_bounds()
    for start_side, x0 in (("low", max(low, N // 10)), ("high", min(high, N - N // 10))):
        trace = stationary_profile(
            majority(3), population, 4_000, make_rng(7), burn_in=500, x0=x0
        )
        majority_rows.append((start_side, x0, float(trace.mean() / N)))
    return voter_rows, majority_rows


def test_zealots(benchmark):
    voter_rows, majority_rows = run_once(benchmark, _measure, experiment="E22_zealots")

    voter_table = Table(
        f"E22a / stubborn agents — Voter, n={N}: long-run mean fraction vs "
        "the zealot share s1/(s1+s0)",
        ["zealots 1:0", "predicted share", "measured mean", "std of fraction"],
    )
    for row in voter_rows:
        voter_table.add_row(*row)

    majority_table = Table(
        "E22b — Majority(3) with 3:1 zealots favouring opinion 1: the crowd "
        "follows its initial side, not the zealot ratio",
        ["start side", "x0", "long-run mean fraction"],
    )
    for row in majority_rows:
        majority_table.add_row(*row)

    emit(
        "E22_zealots",
        voter_table,
        majority_table,
        "Voter tracks the stubborn ratio exactly (the classical result the "
        "paper's related-work section cites); Majority locks into whichever "
        "basin it starts in.  The bit-dissemination problem is the boundary "
        "case s0 = 0, s1 = 1 — one unopposed stubborn agent.",
    )

    for _, predicted, measured, _ in voter_rows:
        assert measured == pytest.approx(predicted, abs=0.08)
    # More zealots, tighter concentration.
    assert voter_rows[-1][3] < voter_rows[1][3]
    # Majority: basin-dependent, far from the 0.75 zealot share on one side.
    low_side = majority_rows[0][2]
    high_side = majority_rows[1][2]
    assert low_side < 0.3 and high_side > 0.8
