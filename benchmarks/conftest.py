"""Make the benchmarks directory importable as a flat module set."""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
