"""Make the benchmarks directory importable as a flat module set.

In smoke sizing (``REPRO_SMOKE=1``) the shape assertions — calibrated for
the full-size runs — are downgraded to xfails: :func:`_harness.emit` has
already archived the ``BENCH_*.json`` timing record by the time they run,
which is all the regression ledger needs from a smoke pass.
"""

from __future__ import annotations

import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from _harness import smoke_mode  # noqa: E402


def pytest_collection_modifyitems(config, items):
    if not smoke_mode():
        return
    marker = pytest.mark.xfail(
        raises=AssertionError,
        strict=False,
        reason="shape assertions are calibrated for full sizing (REPRO_SMOKE=1)",
    )
    for item in items:
        item.add_marker(marker)
