"""Scenario: watching the Voter proof run backwards (Appendix B / Figure 4).

Theorem 2's proof never looks at opinions: it drops one walker on every
agent at the horizon, slides them backwards along the sampling arrows, and
observes that a walker absorbed by the source pins its agent's final
opinion to the correct one.  This example makes that visible: the
coalescence profile, the absorption-time distribution against the
``2 n ln n`` horizon, and the exact per-run duality check on shared
randomness.

Run:  python examples/dual_walks.py
"""

from __future__ import annotations

import math

import numpy as np

from repro import make_rng
from repro.analysis.series import Series, ascii_plot
from repro.dual import coalescence_profile, dual_absorption_times, paired_forward_dual_run

N = 512


def main() -> None:
    rng = make_rng(12)
    horizon = int(2 * N * math.log(N))

    profile = coalescence_profile(N, horizon, rng)
    series = Series(
        "distinct unabsorbed walkers", np.arange(len(profile), dtype=float), profile.astype(float)
    )
    print(f"Coalescing dual for n={N} (horizon 2 n ln n = {horizon}):\n")
    print(ascii_plot([series], width=60, height=12))
    print(f"\nall {N - 1} walkers absorbed by the source after "
          f"{len(profile) - 1} backward rounds")

    times = dual_absorption_times(N, horizon, rng)
    print(f"absorption times: median {np.median(times):.0f}, "
          f"max {times.max():.0f} (vs horizon {horizon})")

    print("\nExact duality on shared randomness (30 adversarial starts):")
    held = 0
    consensus_given_absorbed = 0
    absorbed_runs = 0
    for i in range(30):
        run_rng = make_rng(100 + i)
        initial = run_rng.integers(0, 2, size=N).astype(np.int8)
        run = paired_forward_dual_run(initial, z=1, horizon=horizon, rng=run_rng)
        held += run.duality_holds()
        if run.all_absorbed():
            absorbed_runs += 1
            consensus_given_absorbed += run.consensus_reached()
    print(f"  Eq. 17 (absorbed => correct opinion) held in {held}/30 runs")
    print(f"  full absorption => forward consensus in "
          f"{consensus_given_absorbed}/{absorbed_runs} runs")
    print("\nThat is the whole of Theorem 2: each walker is a uniform random")
    print("walk hitting the source at rate 1/n, so 2 n ln n rounds absorb")
    print("all n of them with probability >= 1 - 1/n — from ANY initial")
    print("opinions, which is exactly the self-stabilization requirement.")


if __name__ == "__main__":
    main()
