"""Scenario: a flock choosing a direction with one informed individual.

The paper's motivation (Section 1): birds in a flock attend to only ~7
nearest neighbours regardless of flock size [19, 20], interactions are
passive (you see a neighbour's heading, nothing else), and individuals are
plausibly memory-less.  Can a single informed bird steer the whole flock —
and how does the answer depend on how many neighbours each bird watches?

This example runs that question as an experiment: a flock of ``n`` birds
with binary headings, one informed bird, constant "neighbourhood" sizes
ell = 1 (Voter-like copying), ell = 7 (the empirical bird number) under
both minority and majority rules, and the large-sample regime for
contrast.

Run:  python examples/flock_alignment.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    make_rng,
    minority,
    majority,
    simulate_ensemble,
    voter,
    wrong_consensus_configuration,
)
from repro.analysis.ensemble import summarize_times
from repro.core.theory import minority_sqrt_sample_size

FLOCK_SIZE = 2048
BUDGET = 20_000  # parallel rounds
REPLICAS = 10


def main() -> None:
    rng = make_rng(7)
    config = wrong_consensus_configuration(FLOCK_SIZE, z=1)
    ell_big = minority_sqrt_sample_size(FLOCK_SIZE)

    rules = [
        ("copy one neighbour (Voter, ell=1)", voter(1)),
        ("contrarian, 7 neighbours (Minority, ell=7)", minority(7)),
        ("conformist, 7 neighbours (Majority, ell=7)", majority(7)),
        (f"contrarian, sqrt-size watch (Minority, ell={ell_big})", minority(ell_big)),
    ]

    print(f"Flock of {FLOCK_SIZE}, one informed bird, everyone else initially")
    print(f"heading the wrong way; budget {BUDGET} rounds, {REPLICAS} flocks each.\n")
    for label, protocol in rules:
        times = simulate_ensemble(protocol, config, BUDGET, rng, REPLICAS)
        stats = summarize_times(times, budget=BUDGET)
        if stats.censored == stats.trials:
            verdict = f"never aligned within {BUDGET} rounds"
        else:
            verdict = (
                f"median {stats.median:.0f} rounds "
                f"({stats.censored}/{stats.trials} flocks failed)"
            )
        print(f"  {label:<55s} {verdict}")

    print()
    print("Reading: copying one neighbour always works but slowly (Theorem 2,")
    print("O(n log n)); any constant neighbourhood is fundamentally slow or")
    print("worse (Theorem 1) — the conformist majority rule never recovers")
    print("because the informed bird cannot tip a self-reinforcing crowd,")
    print("and the contrarian rule with 7 neighbours stalls at the mixed")
    print("equilibrium.  Only neighbourhood sizes growing with the flock")
    print("(here ~sqrt(n log n), [15]) give fast alignment — a genuine limit")
    print("on what 7-neighbour birds could do under these assumptions.")


if __name__ == "__main__":
    main()
