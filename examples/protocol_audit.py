"""Scenario: audit a custom protocol with the paper's machinery.

You designed a memory-less opinion-update rule and want to know whether it
can possibly spread a single informed agent's opinion fast.  This example
walks the full analysis pipeline of the paper on a user-defined response
table:

1. sanity (Proposition 3): are the consensus states even absorbing?
2. the bias landscape F(p) (Eq. 3), its roots and sign profile;
3. the Theorem-12 classification and the witness configuration;
4. numerical verification of the escape-theorem assumptions;
5. a simulation from the witness showing the guarantee bind.

Run:  python examples/protocol_audit.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    bias_value,
    lower_bound_certificate,
    make_rng,
    sign_profile,
    simulate,
    table_protocol,
    verify_escape_assumptions,
)
from repro.analysis.series import Series, ascii_plot
from repro.dynamics.run import escape_time


def main() -> None:
    # A hand-designed rule with ell = 4 samples: follow strong majorities,
    # but flip against narrow ones (a majority/minority hybrid).
    #            k =   0     1     2     3     4
    my_rule = [0.0, 0.15, 0.50, 0.85, 1.0]
    protocol = table_protocol(my_rule, name="hybrid(ell=4)")

    print(f"Auditing {protocol.name} with g(k) = {my_rule}\n")

    # 1. Proposition 3.
    if not protocol.satisfies_boundary_conditions():
        print("FAIL: g(0) > 0 or g(ell) < 1 — consensus is not absorbing;")
        print("this protocol cannot solve bit-dissemination at all (Prop 3).")
        return
    print("Proposition 3: boundary conditions hold (consensus is absorbing).")

    # 2. The bias landscape.
    grid = np.linspace(0.0, 1.0, 101)
    landscape = Series("F(p)", grid, bias_value(protocol, grid))
    print("\nBias polynomial F(p) — the expected one-round drift of the")
    print("fraction of 1-opinions (positive = drifts toward 1):\n")
    print(ascii_plot([landscape], width=60, height=12))
    profile = sign_profile(protocol)
    print(f"\nroots in [0,1]: {np.round(profile.roots, 4).tolist()}")
    print(f"signs between roots: {list(profile.signs)}")

    # 3 + 4. Theorem 12.
    certificate = lower_bound_certificate(protocol)
    print(f"\nTheorem-12 classification:\n  {certificate.describe()}")
    n = 4096
    report = verify_escape_assumptions(certificate, n)
    print(f"\nassumptions at n={n}: drift ok = {report.drift_ok} "
          f"(margin {report.worst_drift_margin:.2f}), "
          f"jump tail = {report.jump_tail_bound:.2e}")
    print(f"verdict: from the witness configuration, convergence needs at "
          f"least n^(1-eps) = {report.predicted_rounds:.0f} rounds (eps=0.25 here)")

    # 5. Watch it bind.
    rng = make_rng(3)
    witness = certificate.witness_configuration(n)
    observed = escape_time(protocol, certificate, n, 4 * n, rng)
    label = f"{observed} rounds" if observed is not None else f"> {4 * n} rounds (censored)"
    print(f"\nsimulated escape from witness (n={n}, z={witness.z}, "
          f"x0={witness.x0}): {label}")
    print("\nConclusion: whatever this rule's virtues, Theorem 1 applies —")
    print("with 4 samples and no memory it cannot beat almost-linear time.")


if __name__ == "__main__":
    main()
