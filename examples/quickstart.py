"""Quickstart: simulate bit-dissemination and audit a protocol's lower bound.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    Configuration,
    lower_bound_certificate,
    make_rng,
    minority,
    simulate,
    verify_escape_assumptions,
    voter,
)


def main() -> None:
    rng = make_rng(0)
    n = 1000

    # --- 1. Simulate a protocol on the bit-dissemination problem. ---------
    # One source agent (opinion 1 here) that never changes its mind; every
    # other agent starts wrong.  The Voter dynamics copies one uniformly
    # sampled opinion per round.
    config = Configuration(n=n, z=1, x0=1)  # x0 = 1: only the source is right
    result = simulate(voter(1), config, max_rounds=100_000, rng=rng)
    print(f"Voter on n={n} from the all-wrong configuration:")
    print(f"  converged = {result.converged} after {result.rounds} parallel rounds")
    print(f"  (Theorem 2's w.h.p. bound is 2 n ln n ~ {int(2 * n * 6.9)})")
    print()

    # --- 2. Audit a protocol with the paper's lower-bound pipeline. -------
    # Theorem 12 classifies any memory-less constant-sample protocol by the
    # sign of its bias polynomial F and produces a witness configuration
    # from which convergence needs at least n^(1-eps) rounds.
    protocol = minority(3)
    certificate = lower_bound_certificate(protocol)
    print("Theorem-12 certificate for the Minority dynamics (ell=3):")
    print(f"  {certificate.describe()}")
    report = verify_escape_assumptions(certificate, n=4096)
    print(f"  assumptions verified at n=4096: drift={report.drift_ok}, "
          f"jump tail={report.jump_tail_bound:.1e}")
    print(f"  guaranteed escape time (eps=0.5): >= {report.predicted_rounds:.0f} rounds")
    print()

    # --- 3. Watch the guarantee bind. --------------------------------------
    witness = certificate.witness_configuration(4096)
    print(f"Witness configuration: n=4096, z={witness.z}, x0={witness.x0}")
    stuck = simulate(protocol, witness, max_rounds=2000, rng=rng)
    print(f"  after 2000 rounds: converged = {stuck.converged} "
          f"(count = {stuck.final_count}, target = {witness.target_count})")
    print("  — the almost-linear lower bound in action.")


if __name__ == "__main__":
    main()
