"""Scenario: quorum sensing under the paper's lower bound, with real-world dirt.

The paper motivates memory-less agents with quorum-sensing bacteria [10]
and consensus-seeking fish schools [12]: individuals that apply a (soft)
threshold to how many peers they observe agreeing.  This example models a
colony whose members follow a logistic quorum rule, and asks the paper's
question plus two practical ones:

1. Can a single informed cell steer the colony?  (Theorem 1: with a
   bounded number of observed peers — no, not quickly.)
2. Does the *steepness* of the quorum threshold matter?  (It moves the
   bias landscape's constants, never the case classification.)
3. What happens when observations are noisy?  (The epsilon-consensus
   erodes; holding beats spreading.)

Run:  python examples/quorum_sensing.py
"""

from __future__ import annotations

import numpy as np

from repro import Configuration, lower_bound_certificate, make_rng
from repro.analysis.series import Series, ascii_plot
from repro.core.bias import bias_value
from repro.dynamics.noise import noisy_occupancy
from repro.dynamics.run import escape_time_ensemble
from repro.protocols import quorum

N = 2048
ELL = 7  # each cell reads ~7 neighbours' signals


def main() -> None:
    rng = make_rng(21)
    grid = np.linspace(0, 1, 81)

    print(f"Colony of {N} cells, quorum rules over {ELL} observed peers.\n")

    # 1 + 2: the lower bound across quorum steepnesses.
    print("Bias landscapes F(p) for three quorum steepnesses:")
    landscapes = [
        Series(f"s={s:g}", grid, bias_value(quorum(ELL, ELL / 2, s), grid))
        for s in (0.5, 2.0, 8.0)
    ]
    print(ascii_plot(landscapes, width=60, height=12))
    print()
    for sharpness in (0.5, 2.0, 8.0):
        protocol = quorum(ELL, ELL / 2, sharpness)
        certificate = lower_bound_certificate(protocol)
        times = escape_time_ensemble(protocol, certificate, N, 2 * N, rng, 5)
        censored = int(np.isnan(times).sum())
        observed = np.where(np.isnan(times), 2 * N, times)
        print(f"  steepness {sharpness:>4g}: {certificate.case.split(' (')[0]}, "
              f"interval ({certificate.interval[0]:.2f}, {certificate.interval[1]:.2f}); "
              f"witness escape median {np.median(observed):.0f} rounds "
              f"({censored}/5 censored) — bound sqrt(n) = {int(N ** 0.5)}")
    print()
    print("Deforming the threshold can even flip which Theorem-12 case")
    print("applies (a shallow quorum under-adopts near consensus: Case 1;")
    print("steep ones drift with the majority: Case 2) — but every variant")
    print("gets a certificate and every witness escape censors: the informed")
    print("cell cannot steer a bounded-observation colony quickly, however")
    print("the threshold is tuned.\n")

    # 3: observation noise.
    print("Observation noise (each read peer misread with prob delta):")
    protocol = quorum(ELL, ELL / 2, 8.0)
    for delta in (0.0, 0.05, 0.2):
        result = noisy_occupancy(
            protocol, Configuration(n=N, z=1, x0=N), delta=delta,
            rounds=3000, rng=rng, burn_in=500,
        )
        print(f"  delta={delta:<5g} mean correct fraction "
              f"{result.mean_correct_fraction:.3f}, 95%-consensus occupancy "
              f"{result.occupancy:.2f}")
    print()
    print("A steep quorum HOLDS an existing consensus under moderate noise")
    print("(the restoring drift), even though it cannot *establish* the")
    print("correct one against a wrong majority — spreading and holding are")
    print("different problems, and the paper's lower bound is about the")
    print("former.")


if __name__ == "__main__":
    main()
