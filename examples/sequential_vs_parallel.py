"""Scenario: the exponential parallel/sequential separation.

The paper's opening puzzle: the same protocol family behaves exponentially
differently depending on whether agents update simultaneously or one at a
time.  Sequentially, every protocol is a birth-death chain and Omega(n)
parallel rounds are unavoidable ([14]); in parallel, Minority with a large
sample converges in O(log^2 n) ([15]) — and this paper shows the parallel
advantage *requires* growing sample sizes.

This example puts exact numbers on the square: {sequential, parallel} x
{Voter, Minority(sqrt)} on one workload.

Run:  python examples/sequential_vs_parallel.py
"""

from __future__ import annotations

import math

import numpy as np

from repro import make_rng, minority, simulate_ensemble, simulate_sequential, voter
from repro.core.theory import minority_sqrt_sample_size
from repro.dynamics.config import wrong_consensus_configuration
from repro.markov.birth_death import sequential_birth_death_chain

N = 512
REPLICAS = 8


def main() -> None:
    rng = make_rng(5)
    config = wrong_consensus_configuration(N, z=1)
    ell = minority_sqrt_sample_size(N)

    print(f"Workload: n={N}, source opinion 1, all other agents wrong.\n")

    # Sequential, exact (birth-death closed forms).
    voter_seq = sequential_birth_death_chain(voter(1), N, 1).expected_time_to_top(1) / N
    minority_seq = sequential_birth_death_chain(minority(ell), N, 1).expected_time_to_top(1) / N

    # Parallel, simulated.
    voter_par = np.nanmedian(
        simulate_ensemble(voter(1), config, 100_000, rng, REPLICAS)
    )
    minority_par = np.nanmedian(
        simulate_ensemble(minority(ell), config, 100_000, rng, REPLICAS)
    )

    width = 28
    print(f"{'':{width}s}{'sequential (exact E)':>22s}{'parallel (median)':>20s}")
    print(f"{'Voter (ell=1)':{width}s}{voter_seq:>18.0f} rds{voter_par:>16.0f} rds")
    print(f"{f'Minority (ell={ell})':{width}s}{minority_seq:>18.0f} rds{minority_par:>16.0f} rds")
    print()
    print(f"reference scales: n = {N}, n ln^2 n = {N * math.log(N)**2:.0f}, "
          f"log^2 n = {math.log(N)**2:.0f}")
    print()
    print("Reading: sequential activation flattens everything onto the")
    print("Omega(n) birth-death floor — even the sqrt-sample Minority.  Only")
    print("the synchronous parallel rounds unlock the log^2 n regime, and")
    print("(this paper's result) only with sample sizes growing in n.")


if __name__ == "__main__":
    main()
