"""Docs consistency gate: links resolve, dotted API names exist.

Checks, over ``docs/*.md`` and ``README.md``:

1. every relative markdown link ``[text](path)`` points at a file that
   exists (anchors are checked against the target file's headings);
2. every backticked dotted name ``repro.something[.more]`` resolves to a
   real module or attribute of the installed package — so a renamed
   symbol breaks CI instead of rotting in the docs;
3. every engine named in ``repro.dynamics.batched.ENGINES`` is mentioned
   in docs/ENGINES.md (the backend contract must stay complete).

Usage:  PYTHONPATH=src python scripts/check_docs.py
Exits non-zero listing every violation.
"""

from __future__ import annotations

import importlib
import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SYMBOL_RE = re.compile(r"`(repro\.[A-Za-z_][A-Za-z0-9_.]*[A-Za-z0-9_])`")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)
INLINE_CODE_RE = re.compile(r"`[^`\n]*`")


def doc_files() -> list[pathlib.Path]:
    return sorted((ROOT / "docs").glob("*.md")) + [ROOT / "README.md"]


def slugify(heading: str) -> str:
    """GitHub-style anchor slug for a heading line."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: pathlib.Path) -> set[str]:
    body = CODE_FENCE_RE.sub("", path.read_text())
    return {slugify(m.group(1)) for m in HEADING_RE.finditer(body)}


def check_links(path: pathlib.Path, errors: list[str]) -> None:
    # Inline code can contain math like `g[1](x)` that mimics link syntax.
    body = INLINE_CODE_RE.sub("", CODE_FENCE_RE.sub("", path.read_text()))
    for match in LINK_RE.finditer(body):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, anchor = target.partition("#")
        dest = path if not base else (path.parent / base).resolve()
        if not dest.exists():
            errors.append(f"{path.relative_to(ROOT)}: broken link -> {target}")
            continue
        if anchor and dest.suffix == ".md" and slugify(anchor) not in anchors_of(dest):
            errors.append(f"{path.relative_to(ROOT)}: missing anchor -> {target}")


def resolve_symbol(dotted: str):
    """Import the longest module prefix of ``dotted``, getattr the rest."""
    parts = dotted.split(".")
    for cut in range(len(parts), 0, -1):
        module_name = ".".join(parts[:cut])
        try:
            obj = importlib.import_module(module_name)
        except ImportError:
            continue
        for attr in parts[cut:]:
            obj = getattr(obj, attr)
        return obj
    raise ImportError(f"no importable prefix of {dotted!r}")


def check_symbols(path: pathlib.Path, errors: list[str]) -> None:
    for dotted in sorted(set(SYMBOL_RE.findall(path.read_text()))):
        try:
            resolve_symbol(dotted)
        except (ImportError, AttributeError) as exc:
            errors.append(
                f"{path.relative_to(ROOT)}: `{dotted}` does not resolve ({exc})"
            )


def check_engine_coverage(errors: list[str]) -> None:
    from repro.dynamics.batched import ENGINES

    contract = ROOT / "docs" / "ENGINES.md"
    body = contract.read_text()
    for engine in ENGINES:
        if f"`{engine}`" not in body:
            errors.append(f"docs/ENGINES.md: engine {engine!r} is undocumented")


def main() -> int:
    errors: list[str] = []
    for path in doc_files():
        check_links(path, errors)
        check_symbols(path, errors)
    check_engine_coverage(errors)
    if errors:
        for line in errors:
            print(f"check_docs: {line}", file=sys.stderr)
        print(f"check_docs: {len(errors)} problem(s)", file=sys.stderr)
        return 1
    print(f"check_docs: {len(doc_files())} files ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
