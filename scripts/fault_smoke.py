#!/usr/bin/env python
"""Kill-and-resume determinism smoke test (fault-injection harness).

For a given crashpoint (see :mod:`repro.execution.faults`), this script:

1. computes baseline ``ConvergenceStats`` for a fixed ensemble, uninterrupted;
2. re-runs the same ensemble in a subprocess with ``REPRO_FAULT=<site>`` so
   the process dies mid-run (``os._exit``, exit code 86 — no cleanup, the
   closest stdlib stand-in for SIGKILL);
3. resumes from the surviving checkpoint in a fresh subprocess;
4. asserts the resumed stats are **bit-identical** to the baseline, that
   the torn trace left behind is salvageable
   (``validate_trace(..., salvage=True)`` — format-sniffing, so the same
   check covers both sinks), and that the resumed run's timing-free trace
   is a **bit-identical tail** of the baseline's — every round record the
   resumed run emits matches the uninterrupted run's record for the same
   round.  With ``--trace-format jsonl`` (the default) the tail check is
   byte-for-byte on the raw lines; with ``--trace-format columnar`` the
   run streams through :class:`ColumnarTraceWriter` (small
   ``chunk_rounds`` so ``trace:mid_write`` tears a mid-run chunk) and the
   tail check compares canonical record encodings, since the container
   frames records in chunks rather than lines.

Every serial leg also composes a :class:`HeartbeatRecorder` with the
trace (interval 0.0 — one write per round, so crashpoint visit counts
stay deterministic).  For ``heartbeat:*`` fault sites the protocol
additionally proves torn-heartbeat salvage: the killed run must leave a
heartbeat file that :func:`read_heartbeat` refuses (returns ``None``
instead of raising), and the resumed run must overwrite it with a valid
``status="done"`` document.

With ``--parallel`` the scenario instead runs through the supervised
worker pool (:mod:`repro.execution.supervisor`): the baseline is computed
in-process at ``workers=1``, then a subprocess runs the same ensemble at
``workers=2`` with ``REPRO_FAULT`` armed on shard 1 only — the injected
kill lands inside one worker, the supervisor retries that shard from its
own checkpoint, and the subprocess exits 0 with statistics that must be
**bit-identical** to the unfaulted workers=1 baseline (plus at least one
recorded retry, and a merged trace that validates strictly).

Usage:
    PYTHONPATH=src python scripts/fault_smoke.py ensemble:after_replica:2
    PYTHONPATH=src python scripts/fault_smoke.py checkpoint:after_tmp_write:3
    PYTHONPATH=src python scripts/fault_smoke.py --parallel ensemble:after_round:25
    PYTHONPATH=src python scripts/fault_smoke.py --trace-format columnar trace:mid_write:12

Exit 0 on pass, 1 on any violated invariant.  The CI fault-injection
matrix and ``tests/execution/test_faults.py`` both drive this entry point,
so local pytest and CI exercise one code path.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.execution import EXIT_FAULT_INJECTED, Checkpointer  # noqa: E402
from repro.telemetry.heartbeat import read_heartbeat  # noqa: E402
from repro.telemetry.jsonl import validate_trace  # noqa: E402

# Fixed scenario: small enough to finish in seconds, long enough that every
# supported crashpoint fires well after the first checkpoint write.
SCENARIO = {
    "n": 96,
    "z": 1,
    "max_rounds": 5000,
    "replicas": 8,
    "seed": 7,
    "every": 5,
}

# Columnar fault legs buffer this many rounds per chunk: small enough that
# ``trace:mid_write`` visits a chunk write early and often, large enough
# that a torn chunk really does straddle many records.
FAULT_CHUNK_ROUNDS = 64


def _trace_name(trace_format: str) -> str:
    return "ensemble.jsonl" if trace_format == "jsonl" else "ensemble.ctrace"


def _stats_dict(stats) -> dict:
    return {
        "trials": stats.trials,
        "censored": stats.censored,
        "budget": stats.budget,
        "median": stats.median,
        "q10": stats.q10,
        "q90": stats.q90,
        "mean_converged": stats.mean_converged,
        "min": stats.min,
        "max_converged": stats.max_converged,
        "failed_shards": stats.failed_shards,
        "attempted_trials": stats.attempted_trials,
    }


def _run_ensemble(
    outdir: pathlib.Path,
    resume: bool,
    with_trace: bool,
    trace_format: str = "jsonl",
) -> dict:
    """Worker body: run (or resume) the scenario ensemble to completion."""
    from repro.analysis.ensemble import convergence_ensemble
    from repro.dynamics.config import wrong_consensus_configuration
    from repro.dynamics.rng import make_rng
    from repro.protocols import voter
    from repro.telemetry import (
        HeartbeatRecorder,
        compose_recorders,
        open_trace_writer,
    )

    checkpoint_path = outdir / "ensemble.ckpt"
    if resume:
        checkpoint = Checkpointer.resume(checkpoint_path, every=SCENARIO["every"])
    else:
        checkpoint = Checkpointer(checkpoint_path, every=SCENARIO["every"])
    sink_kwargs = (
        {"chunk_rounds": FAULT_CHUNK_ROUNDS} if trace_format == "columnar" else {}
    )
    trace = (
        open_trace_writer(
            outdir / _trace_name(trace_format),
            trace_format,
            include_timings=False,
            **sink_kwargs,
        )
        if with_trace
        else None
    )
    # interval_s=0.0: one heartbeat write per round, so the heartbeat:*
    # crashpoint visit counts are deterministic across runs.
    beat = HeartbeatRecorder(
        outdir / "ensemble.heartbeat.json", role="run", interval_s=0.0
    )
    try:
        stats = convergence_ensemble(
            voter(1),
            wrong_consensus_configuration(SCENARIO["n"], SCENARIO["z"]),
            SCENARIO["max_rounds"],
            make_rng(SCENARIO["seed"]),
            SCENARIO["replicas"],
            recorder=compose_recorders(trace, beat),
            checkpoint=checkpoint,
        )
    finally:
        if trace is not None:
            trace.close()
    return _stats_dict(stats)


def _run_parallel_ensemble(outdir: pathlib.Path, workers: int) -> dict:
    """Run the scenario through the supervised pool; return stats + accounting."""
    from repro.dynamics.config import wrong_consensus_configuration
    from repro.dynamics.rng import make_rng
    from repro.execution.supervisor import (
        SupervisorConfig,
        run_supervised_ensemble,
        summarize_supervised,
    )
    from repro.protocols import voter

    result = run_supervised_ensemble(
        voter(1),
        wrong_consensus_configuration(SCENARIO["n"], SCENARIO["z"]),
        SCENARIO["max_rounds"],
        make_rng(SCENARIO["seed"]),
        SCENARIO["replicas"],
        supervisor=SupervisorConfig(
            workers=workers, shards=4, backoff_base_s=0.05
        ),
        checkpoint_base=outdir / "ensemble.ckpt",
        checkpoint_every=SCENARIO["every"],
        trace_path=outdir / "ensemble.jsonl",
    )
    stats = summarize_supervised(result, budget=SCENARIO["max_rounds"])
    return {
        "stats": _stats_dict(stats),
        "supervision": {
            "retries": result.retries,
            "timeouts": result.timeouts,
            "failed_shards": result.failed_shards,
        },
    }


def _worker(argv) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("outdir", type=pathlib.Path)
    parser.add_argument("--resume", action="store_true")
    parser.add_argument("--parallel", action="store_true")
    parser.add_argument(
        "--trace-format", choices=("jsonl", "columnar"), default="jsonl"
    )
    args = parser.parse_args(argv)
    if args.parallel:
        document = _run_parallel_ensemble(args.outdir, workers=2)
        (args.outdir / "stats.json").write_text(
            json.dumps(document, sort_keys=True) + "\n"
        )
        return 0
    stats = _run_ensemble(
        args.outdir,
        resume=args.resume,
        with_trace=True,
        trace_format=args.trace_format,
    )
    (args.outdir / "stats.json").write_text(json.dumps(stats, sort_keys=True) + "\n")
    return 0


def _spawn_worker(
    outdir: pathlib.Path,
    fault: str = "",
    resume: bool = False,
    parallel: bool = False,
    fault_shard: str = "",
    trace_format: str = "jsonl",
):
    command = [sys.executable, str(pathlib.Path(__file__).resolve()), "--worker",
               str(outdir), "--trace-format", trace_format]
    if resume:
        command.append("--resume")
    if parallel:
        command.append("--parallel")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    if fault:
        env["REPRO_FAULT"] = fault
    else:
        env.pop("REPRO_FAULT", None)
    if fault_shard:
        env["REPRO_FAULT_SHARD"] = fault_shard
    else:
        env.pop("REPRO_FAULT_SHARD", None)
    env.pop("REPRO_FAULT_STICKY", None)
    return subprocess.run(command, env=env, capture_output=True, text=True)


def _main_parallel(args, workdir: pathlib.Path) -> int:
    """The --parallel flow: kill one worker's shard, supervisor retries."""

    def fail(message: str) -> int:
        print(
            f"fault_smoke[--parallel {args.fault}]: FAIL: {message}",
            file=sys.stderr,
        )
        return 1

    # 1. Baseline: in-process, workers=1, unfaulted.  The faulted run below
    #    uses workers=2, so a matching result also witnesses worker-count
    #    invariance.
    baseline_dir = workdir / "baseline"
    baseline_dir.mkdir()
    for var in ("REPRO_FAULT", "REPRO_FAULT_SHARD", "REPRO_FAULT_STICKY"):
        os.environ.pop(var, None)
    baseline = _run_parallel_ensemble(baseline_dir, workers=1)
    if baseline["supervision"] != {"retries": 0, "timeouts": 0, "failed_shards": 0}:
        return fail(f"baseline run was not clean: {baseline['supervision']}")

    # 2. Faulted: a subprocess runs the pool at workers=2 with the fault
    #    armed on shard 1 only.  The kill lands inside one worker; the
    #    supervisor retries that shard from its own checkpoint, so the
    #    subprocess itself exits 0.
    faulted_dir = workdir / "faulted"
    faulted_dir.mkdir()
    completed = _spawn_worker(
        faulted_dir, fault=args.fault, parallel=True, fault_shard="1"
    )
    if completed.returncode != 0:
        return fail(
            f"supervised worker exited {completed.returncode}; the pool "
            f"should have absorbed the fault\n{completed.stdout}\n"
            f"{completed.stderr}"
        )
    document = json.loads((faulted_dir / "stats.json").read_text())
    supervision = document["supervision"]
    if supervision["retries"] < 1:
        return fail(
            "supervisor recorded no retry — the fault never fired in a worker"
        )
    if supervision["failed_shards"] != 0:
        return fail(
            f"{supervision['failed_shards']} shard(s) quarantined; a "
            "transient fault must recover by retry"
        )

    # 3. The recovered statistics must be bit-identical to the unfaulted
    #    workers=1 baseline.
    if document["stats"] != baseline["stats"]:
        return fail(
            "recovered stats differ from the unfaulted baseline:\n"
            f"  baseline: {json.dumps(baseline['stats'], sort_keys=True)}\n"
            f"  faulted:  {json.dumps(document['stats'], sort_keys=True)}"
        )

    # 4. The merged trace (shard 1's part being the resumed tail) must
    #    still validate strictly.
    records = validate_trace(faulted_dir / "ensemble.jsonl")
    shard_rounds = sum(
        1 for r in records if r.get("kind") == "round" and r.get("shard") == 1
    )

    print(
        f"fault_smoke[--parallel {args.fault}]: PASS — worker killed at the "
        f"crashpoint, shard retried ({supervision['retries']} retries), "
        f"stats bit-identical to the workers=1 baseline, merged trace "
        f"valid ({len(records)} records, {shard_rounds} resumed-shard "
        f"rounds, median={baseline['stats']['median']})"
    )
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "--worker":
        return _worker(argv[1:])

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "fault", help="crashpoint spec, e.g. ensemble:after_replica:2"
    )
    parser.add_argument(
        "--workdir", type=pathlib.Path, default=None,
        help="scratch directory (default: a fresh tempdir)",
    )
    parser.add_argument(
        "--parallel", action="store_true",
        help="run the scenario through the supervised worker pool: kill one "
             "worker's shard, assert the retry recovers bit-identically",
    )
    parser.add_argument(
        "--trace-format", choices=("jsonl", "columnar"), default="jsonl",
        help="trace sink for the serial kill-and-resume legs (the columnar "
             "variant proves chunk-granularity salvage; ignored by --parallel)",
    )
    args = parser.parse_args(argv)

    if args.workdir is None:
        import tempfile

        scratch = tempfile.TemporaryDirectory(prefix="fault_smoke_")
        workdir = pathlib.Path(scratch.name)
    else:
        workdir = args.workdir
        workdir.mkdir(parents=True, exist_ok=True)

    if args.parallel:
        return _main_parallel(args, workdir)

    label = f"{args.fault} trace={args.trace_format}"

    def fail(message: str) -> int:
        print(f"fault_smoke[{label}]: FAIL: {message}", file=sys.stderr)
        return 1

    trace_name = _trace_name(args.trace_format)

    # 1. Baseline, in-process, uninterrupted (checkpointing on: it must not
    #    perturb the random stream).
    baseline_dir = workdir / "baseline"
    baseline_dir.mkdir()
    os.environ.pop("REPRO_FAULT", None)
    baseline = _run_ensemble(
        baseline_dir, resume=False, with_trace=True,
        trace_format=args.trace_format,
    )

    # 2. Faulted run: the subprocess must die at the crashpoint.
    faulted_dir = workdir / "faulted"
    faulted_dir.mkdir()
    faulted = _spawn_worker(
        faulted_dir, fault=args.fault, trace_format=args.trace_format
    )
    if faulted.returncode != EXIT_FAULT_INJECTED:
        return fail(
            f"faulted worker exited {faulted.returncode}, expected "
            f"{EXIT_FAULT_INJECTED}\n{faulted.stdout}\n{faulted.stderr}"
        )
    checkpoint_path = faulted_dir / "ensemble.ckpt"
    if not checkpoint_path.exists():
        return fail("no checkpoint survived the injected crash")

    # 2b. heartbeat:* crashpoints publish half a heartbeat *through the
    #     rename* before dying — the one way a reader can meet a torn
    #     heartbeat.  Prove the reader's salvage tolerance: the file must
    #     exist, and read_heartbeat must refuse it (None, not a raise).
    heartbeat_file = faulted_dir / "ensemble.heartbeat.json"
    if args.fault.startswith("heartbeat:"):
        if not heartbeat_file.exists():
            return fail("heartbeat crashpoint fired but left no heartbeat file")
        if read_heartbeat(heartbeat_file) is not None:
            return fail(
                "heartbeat crashpoint should have left a torn heartbeat "
                "that read_heartbeat refuses"
            )

    # 3. The torn trace (still at its .tmp name — the rename never ran) must
    #    salvage to a non-empty valid prefix.  validate_trace sniffs the
    #    format, so the same call covers a torn JSONL line and a torn
    #    columnar chunk.
    torn = faulted_dir / (trace_name + ".tmp")
    if not torn.exists():
        return fail("no torn trace left behind by the crash")
    salvaged = validate_trace(torn, salvage=True)
    if not salvaged or salvaged[0].get("kind") != "run_start":
        return fail("torn trace did not salvage to a valid prefix")

    # 4. Resume from the surviving checkpoint; stats must be bit-identical.
    resumed = _spawn_worker(
        faulted_dir, resume=True, trace_format=args.trace_format
    )
    if resumed.returncode != 0:
        return fail(
            f"resume worker exited {resumed.returncode}\n"
            f"{resumed.stdout}\n{resumed.stderr}"
        )
    resumed_stats = json.loads((faulted_dir / "stats.json").read_text())
    if resumed_stats != baseline:
        return fail(
            "resumed stats differ from baseline:\n"
            f"  baseline: {json.dumps(baseline, sort_keys=True)}\n"
            f"  resumed:  {json.dumps(resumed_stats, sort_keys=True)}"
        )

    # 4b. The resumed run must have replaced whatever the crash left (a
    #     stale "running" heartbeat, or the torn file from 2b) with a
    #     parsable terminal one.
    final_beat = read_heartbeat(heartbeat_file)
    if final_beat is None or final_beat.status != "done":
        status = None if final_beat is None else final_beat.status
        return fail(
            "resumed run did not publish a terminal heartbeat "
            f"(read back: {status!r}, expected 'done')"
        )

    # 5. The resumed run's timing-free trace must be a bit-identical tail
    #    of the baseline's: same rounds => same records.  JSONL is compared
    #    on the raw line bytes; the columnar container frames records in
    #    chunks (whose boundaries legitimately differ after a resume), so
    #    it is compared on canonical record encodings instead.
    def round_lines(path: pathlib.Path) -> list:
        if args.trace_format == "jsonl":
            return [
                line for line in path.read_text().splitlines()
                if json.loads(line).get("kind") == "round"
            ]
        return [
            json.dumps(record, sort_keys=True)
            for record in validate_trace(path)
            if record.get("kind") == "round"
        ]

    baseline_rounds = round_lines(baseline_dir / trace_name)
    resumed_rounds = round_lines(faulted_dir / trace_name)
    if not resumed_rounds:
        return fail("resumed trace recorded no rounds")
    if resumed_rounds != baseline_rounds[-len(resumed_rounds):]:
        return fail("resumed trace is not a bit-identical tail of the baseline's")

    print(
        f"fault_smoke[{label}]: PASS — killed at the crashpoint, "
        f"salvaged {len(salvaged)} trace records, resumed bit-identical "
        f"({len(resumed_rounds)}-round bit-identical trace tail, "
        f"terminal heartbeat {final_beat.status!r}, "
        f"median={baseline['median']}, censored={baseline['censored']})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
