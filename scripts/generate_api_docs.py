"""Regenerate docs/API.md from the package's public surface.

Usage:  python scripts/generate_api_docs.py
"""

from __future__ import annotations

import importlib
import inspect
import io
import pathlib
import re
import typing

MODULES = [
    "repro.core.protocol", "repro.core.bias", "repro.core.roots",
    "repro.core.lower_bound", "repro.core.jump_bound", "repro.core.mean_field",
    "repro.core.theory",
    "repro.protocols.voter", "repro.protocols.minority", "repro.protocols.majority",
    "repro.protocols.two_choices", "repro.protocols.blends",
    "repro.protocols.parametric", "repro.protocols.table", "repro.protocols.registry",
    "repro.dynamics.config", "repro.dynamics.engine", "repro.dynamics.batched",
    "repro.dynamics.agentwise",
    "repro.dynamics.run", "repro.dynamics.sequential", "repro.dynamics.kactivation",
    "repro.dynamics.multiopinion", "repro.dynamics.noise", "repro.dynamics.zealots",
    "repro.dynamics.adversary", "repro.dynamics.graphs", "repro.dynamics.heterogeneous",
    "repro.dynamics.rng", "repro.dynamics.scenarios",
    "repro.telemetry.recorder", "repro.telemetry.jsonl",
    "repro.telemetry.columnar",
    "repro.telemetry.resources", "repro.telemetry.heartbeat",
    "repro.telemetry.prometheus", "repro.telemetry.profiling",
    "repro.execution.checkpoint", "repro.execution.faults", "repro.execution.shutdown",
    "repro.execution.backoff", "repro.execution.supervisor",
    "repro.service.jobstore", "repro.service.worker", "repro.service.server",
    "repro.markov.chain", "repro.markov.exact", "repro.markov.birth_death",
    "repro.markov.doob", "repro.markov.concentration", "repro.markov.escape",
    "repro.markov.spectral", "repro.markov.quasistationary",
    "repro.markov.large_deviations", "repro.markov.absorption_time",
    "repro.markov.coupling", "repro.markov.sequential_bound",
    "repro.dual.coalescing",
    "repro.extensions.memory", "repro.extensions.population", "repro.extensions.undecided",
    "repro.analysis.ensemble", "repro.analysis.scaling", "repro.analysis.series",
    "repro.analysis.traces", "repro.analysis.watch", "repro.analysis.index",
    "repro.cli",
]


def _exit_code_table() -> str:
    """The exit-code taxonomy as a markdown table.

    Generated from :data:`repro.execution.shutdown.EXIT_CODES` — the single
    source of truth — so the docs can never drift from the constants.
    """
    from repro.execution.shutdown import EXIT_CODES

    lines = [
        "## Exit codes",
        "",
        "Per-failure-class exit codes of the `repro` CLI, generated from",
        "`repro.execution.shutdown.EXIT_CODES`.",
        "",
        "| code | name | meaning |",
        "|------|------|---------|",
    ]
    for name, value, description in EXIT_CODES:
        lines.append(f"| {value} | `{name}` | {description} |")
    return "\n".join(lines) + "\n"


def _signature(item) -> str:
    """A function's signature for the index, or "" where it has none.

    Emitted so the index can't silently drift from the code: regenerating
    after an API change (e.g. a new ``recorder=`` parameter) updates every
    affected entry.
    """
    try:
        text = str(inspect.signature(item))
    except (TypeError, ValueError):
        return ""
    # Function-object defaults repr with a memory address, which would make
    # the generated file differ on every run; keep just the function name.
    return re.sub(r"<function (\w+) at 0x[0-9a-f]+>", r"<function \1>", text)


def main() -> None:
    out = io.StringIO()
    out.write("# API reference\n\n")
    out.write("One-line index of every public item, with call signatures,\n")
    out.write("generated from the code\n")
    out.write("(`python scripts/generate_api_docs.py` regenerates this file).\n")
    out.write("\n")
    out.write(_exit_code_table())
    for name in MODULES:
        module = importlib.import_module(name)
        first_line = (module.__doc__ or "").strip().splitlines()[0]
        out.write(f"\n## `{name}`\n\n{first_line}\n\n")
        for item_name in getattr(module, "__all__", []):
            item = getattr(module, item_name)
            doc = (inspect.getdoc(item) or "").strip().splitlines()
            summary = doc[0] if doc else ""
            if typing.get_origin(item) is not None:
                kind = "type"
                label = item_name
                summary = str(item).replace("typing.", "")
            elif inspect.isclass(item):
                kind = "class"
                label = item_name
            elif callable(item):
                kind = "def"
                label = f"{item_name}{_signature(item)}"
            else:
                kind = "const"
                label = item_name
                # A constant's own value is its documentation; the docstring
                # inspect finds is just the one for its type (useless noise
                # like "int([x]) -> integer").
                value = repr(item)
                summary = value if len(value) <= 72 else value[:69] + "..."
            out.write(f"- **`{label}`** ({kind}) — {summary}\n")
    target = pathlib.Path(__file__).resolve().parent.parent / "docs" / "API.md"
    target.write_text(out.getvalue())
    print(f"wrote {target} ({len(out.getvalue())} bytes)")


if __name__ == "__main__":
    main()
