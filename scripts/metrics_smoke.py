#!/usr/bin/env python
"""Live-scrape smoke test for the ``/metrics`` observability plane.

Launches ``repro run`` as a subprocess with ``--metrics-port 0`` (ephemeral
port, announced on stderr), a sticky fault armed on shard 1
(``REPRO_FAULT_STICKY=1`` keeps the kill armed across retries), and
``--max-retries 1`` — so shard 1 dies, retries, dies again, and is
quarantined while the surviving shards keep running.  Meanwhile this
harness scrapes the endpoint continuously and asserts:

1. every scraped payload passes the strict exposition-format validator
   (:func:`repro.telemetry.prometheus.validate_exposition`) — the grammar
   holds *mid-run*, not just for a final snapshot;
2. the ``repro_shards_quarantined`` gauge ticks to >= 1 while the run is
   still alive — the quarantine transition forces an immediate supervisor
   heartbeat write precisely so it is scrapeable before the run ends;
3. the subprocess exits with ``EXIT_SHARDS_LOST`` (degraded statistics,
   not a crash).

Usage:
    PYTHONPATH=src python scripts/metrics_smoke.py

Exit 0 on pass, 1 on any violated invariant.  CI's parallel fault-smoke
job runs this via ``make metrics-smoke``.
"""

from __future__ import annotations

import os
import pathlib
import re
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.execution import EXIT_SHARDS_LOST  # noqa: E402
from repro.telemetry.prometheus import validate_exposition  # noqa: E402

# Keep in sync with the stderr announcement in repro.cli._start_metrics_server.
SERVING_PREFIX = "metrics: serving "

# Sized so the surviving shards run for a few seconds — long enough for many
# scrapes to land after the quarantine transition on any CI box.  workers ==
# shards so the faulted shard's retry never queues behind a healthy shard:
# it dies, retries in the freed slot, and is quarantined while the others
# are still mid-run (the scrape window this test exists to exercise).
SCENARIO = {
    "n": 2000,
    "rounds": 20000,
    "replicas": 8,
    "shards": 4,
    "workers": 4,
    "seed": 7,
}

SERVING_TIMEOUT_S = 30.0
SCRAPE_INTERVAL_S = 0.1

_QUARANTINED_RE = re.compile(
    r"^repro_shards_quarantined(?:\{[^}]*\})? (\S+)", re.MULTILINE
)


def _fail(message: str) -> int:
    print(f"metrics_smoke: FAIL: {message}", file=sys.stderr)
    return 1


def _spawn(outdir: pathlib.Path) -> subprocess.Popen:
    command = [
        sys.executable, "-m", "repro", "run", "voter",
        "--n", str(SCENARIO["n"]),
        "--rounds", str(SCENARIO["rounds"]),
        "--replicas", str(SCENARIO["replicas"]),
        "--shards", str(SCENARIO["shards"]),
        "--workers", str(SCENARIO["workers"]),
        "--seed", str(SCENARIO["seed"]),
        "--max-retries", "1",
        "--checkpoint", str(outdir / "run.ckpt"),
        "--metrics-port", "0",
    ]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    # Sticky kill on shard 1 only: first attempt dies at round 10, the retry
    # dies again, and --max-retries 1 quarantines the shard.
    env["REPRO_FAULT"] = "ensemble:after_round:10"
    env["REPRO_FAULT_SHARD"] = "1"
    env["REPRO_FAULT_STICKY"] = "1"
    return subprocess.Popen(
        command, env=env,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )


def _scrape(url: str) -> str:
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.read().decode("utf-8")


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="metrics_smoke_") as scratch:
        outdir = pathlib.Path(scratch)
        process = _spawn(outdir)

        # Drain stderr on a thread (the run writes progress there; a full
        # pipe would deadlock the child) while watching for the serving line.
        stderr_lines: list = []
        url_box: list = []

        def drain() -> None:
            for line in process.stderr:
                stderr_lines.append(line)
                if line.startswith(SERVING_PREFIX):
                    url_box.append(line[len(SERVING_PREFIX):].strip())

        reader = threading.Thread(target=drain, daemon=True)
        reader.start()

        deadline = time.monotonic() + SERVING_TIMEOUT_S
        while not url_box and process.poll() is None:
            if time.monotonic() > deadline:
                process.kill()
                return _fail("no 'metrics: serving' announcement on stderr")
            time.sleep(0.05)
        if not url_box:
            process.wait()
            return _fail(
                "run exited before announcing the metrics endpoint\n"
                + "".join(stderr_lines)
            )
        url = url_box[0]

        scrapes = 0
        max_quarantined = 0.0
        scrapes_after_quarantine = 0
        while process.poll() is None:
            try:
                payload = _scrape(url)
            except (urllib.error.URLError, OSError):
                # The run may be tearing down between poll() and the GET.
                time.sleep(SCRAPE_INTERVAL_S)
                continue
            try:
                validate_exposition(payload)
            except ValueError as error:
                process.kill()
                return _fail(f"mid-run scrape failed validation: {error}")
            scrapes += 1
            match = _QUARANTINED_RE.search(payload)
            if match:
                value = float(match.group(1))
                max_quarantined = max(max_quarantined, value)
                if value >= 1:
                    scrapes_after_quarantine += 1
            time.sleep(SCRAPE_INTERVAL_S)

        process.wait()
        reader.join(timeout=5)

        if process.returncode != EXIT_SHARDS_LOST:
            return _fail(
                f"run exited {process.returncode}, expected "
                f"{EXIT_SHARDS_LOST} (quarantined shard => degraded stats)\n"
                + "".join(stderr_lines)
            )
        if scrapes == 0:
            return _fail("run finished before a single scrape landed")
        if max_quarantined < 1:
            return _fail(
                f"repro_shards_quarantined never ticked past 0 in {scrapes} "
                "scrapes — the quarantine transition was not observable"
            )

    print(
        f"metrics_smoke: PASS — {scrapes} mid-run scrapes all validated, "
        f"quarantined gauge peaked at {max_quarantined:g} "
        f"({scrapes_after_quarantine} scrapes saw it), run exited "
        f"{EXIT_SHARDS_LOST} as expected"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
