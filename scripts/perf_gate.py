#!/usr/bin/env python
"""Benchmark-regression gate over the ``results/`` ledger.

Delegates the verdict to ``python -m repro report --strict`` and keys off
its exit code — :data:`repro.execution.EXIT_PERF_REGRESSION` (4) means the
noise-aware gate flagged a regression (or a failed experiment record).
The report's tables pass through to stderr; no output parsing happens
here, so the rendering can evolve without breaking CI.

Usage:
    PYTHONPATH=src python scripts/perf_gate.py                # gate (CI)
    PYTHONPATH=src python scripts/perf_gate.py --report-only  # never fail
    PYTHONPATH=src python scripts/perf_gate.py --update-baseline

``--update-baseline`` folds the current records into the baseline as new
samples (accumulating run-to-run variance for the noise gate) and rewrites
``BASELINE.json``; combine with ``REPRO_SMOKE=1 pytest benchmarks/`` runs
on the machine that owns the baseline.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.report import (  # noqa: E402
    DEFAULT_MIN_REL_SLOWDOWN,
    DEFAULT_NOISE_SIGMAS,
    load_baseline,
    load_bench_records,
    update_baseline,
)
from repro.execution import EXIT_PERF_REGRESSION  # noqa: E402

RESULTS_DIR = REPO_ROOT / "results"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results-dir",
        type=pathlib.Path,
        default=RESULTS_DIR,
        help="directory holding BENCH_*.json and BASELINE.json (default: results/)",
    )
    parser.add_argument(
        "--baseline",
        type=pathlib.Path,
        default=None,
        help="baseline snapshot path (default: <results-dir>/BASELINE.json)",
    )
    parser.add_argument(
        "--report-only",
        action="store_true",
        help="print the comparison but always exit 0",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="fold current records into the baseline as new samples and rewrite it",
    )
    parser.add_argument(
        "--min-rel-slowdown",
        type=float,
        default=DEFAULT_MIN_REL_SLOWDOWN,
        help="floor on the allowed relative slowdown (default: %(default)s)",
    )
    parser.add_argument(
        "--noise-sigmas",
        type=float,
        default=DEFAULT_NOISE_SIGMAS,
        help="allowed slowdown in units of baseline run-to-run cv (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    baseline_path = args.baseline or args.results_dir / "BASELINE.json"

    if args.update_baseline:
        current = load_bench_records(args.results_dir)
        baseline = load_baseline(baseline_path)
        updated = update_baseline(current, baseline)
        baseline_path.write_text(json.dumps(updated, indent=2, sort_keys=True) + "\n")
        print(
            f"perf_gate: baseline updated with {len(current)} records "
            f"-> {baseline_path}",
            file=sys.stderr,
        )
        return 0

    command = [
        sys.executable, "-m", "repro", "report", str(args.results_dir),
        "--strict",
        "--min-rel-slowdown", str(args.min_rel_slowdown),
        "--noise-sigmas", str(args.noise_sigmas),
    ]
    if args.baseline is not None:
        command += ["--baseline", str(args.baseline)]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    completed = subprocess.run(
        command, env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True,
    )
    sys.stderr.write(completed.stdout)

    if completed.returncode == EXIT_PERF_REGRESSION:
        print(
            "perf_gate: regression flagged "
            f"(exit {EXIT_PERF_REGRESSION} from `repro report --strict`)",
            file=sys.stderr,
        )
        return 0 if args.report_only else 1
    if completed.returncode != 0:
        print(
            f"perf_gate: `repro report` failed with exit {completed.returncode}",
            file=sys.stderr,
        )
        return 0 if args.report_only else completed.returncode
    print("perf_gate: no regressions against the baseline", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
