#!/usr/bin/env python
"""Benchmark-regression gate over the ``results/`` ledger.

Compares the current ``results/BENCH_*.json`` wall clocks against the
committed ``results/BASELINE.json`` snapshot using the noise-aware
thresholds from :func:`repro.analysis.report.compare_against_baseline`,
and exits nonzero when any experiment regressed.

Usage:
    PYTHONPATH=src python scripts/perf_gate.py                # gate (CI)
    PYTHONPATH=src python scripts/perf_gate.py --report-only  # never fail
    PYTHONPATH=src python scripts/perf_gate.py --update-baseline

``--update-baseline`` folds the current records into the baseline as new
samples (accumulating run-to-run variance for the noise gate) and rewrites
``BASELINE.json``; combine with ``REPRO_SMOKE=1 pytest benchmarks/`` runs
on the machine that owns the baseline.
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.report import (  # noqa: E402
    DEFAULT_MIN_REL_SLOWDOWN,
    DEFAULT_NOISE_SIGMAS,
    compare_against_baseline,
    load_baseline,
    load_bench_records,
    update_baseline,
)

RESULTS_DIR = REPO_ROOT / "results"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results-dir",
        type=pathlib.Path,
        default=RESULTS_DIR,
        help="directory holding BENCH_*.json and BASELINE.json (default: results/)",
    )
    parser.add_argument(
        "--baseline",
        type=pathlib.Path,
        default=None,
        help="baseline snapshot path (default: <results-dir>/BASELINE.json)",
    )
    parser.add_argument(
        "--report-only",
        action="store_true",
        help="print the comparison but always exit 0",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="fold current records into the baseline as new samples and rewrite it",
    )
    parser.add_argument(
        "--min-rel-slowdown",
        type=float,
        default=DEFAULT_MIN_REL_SLOWDOWN,
        help="floor on the allowed relative slowdown (default: %(default)s)",
    )
    parser.add_argument(
        "--noise-sigmas",
        type=float,
        default=DEFAULT_NOISE_SIGMAS,
        help="allowed slowdown in units of baseline run-to-run cv (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    baseline_path = args.baseline or args.results_dir / "BASELINE.json"
    current = load_bench_records(args.results_dir)
    baseline = load_baseline(baseline_path)

    if args.update_baseline:
        updated = update_baseline(current, baseline)
        baseline_path.write_text(json.dumps(updated, indent=2, sort_keys=True) + "\n")
        print(
            f"perf_gate: baseline updated with {len(current)} records "
            f"-> {baseline_path}",
            file=sys.stderr,
        )
        return 0

    rows = compare_against_baseline(
        current,
        baseline,
        min_rel_slowdown=args.min_rel_slowdown,
        noise_sigmas=args.noise_sigmas,
    )
    if not rows:
        print("perf_gate: nothing to compare (no BENCH_*.json records)", file=sys.stderr)
        return 0

    def fmt(value, suffix="s", spec="8.3f"):
        if value is None or (isinstance(value, float) and math.isnan(value)):
            return "-"
        return f"{value:{spec}}{suffix}"

    width = max(len(row.experiment) for row in rows)
    for row in rows:
        base = fmt(row.baseline_s)
        cur = fmt(row.current_s)
        ratio = fmt(row.ratio, suffix="x", spec="5.2f")
        gate = fmt(row.threshold, suffix="x", spec="4.2f")
        if gate != "-":
            gate = "<= " + gate
        print(
            f"{row.experiment:<{width}}  base={base:>9}  now={cur:>9}  "
            f"{ratio:>7} ({gate})  {row.verdict}",
            file=sys.stderr,
        )

    regressions = [row.experiment for row in rows if row.verdict == "regression"]
    if regressions:
        print(
            f"perf_gate: REGRESSIONS: {', '.join(sorted(regressions))}",
            file=sys.stderr,
        )
        return 0 if args.report_only else 1
    print("perf_gate: no regressions against the baseline", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
