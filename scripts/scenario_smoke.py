#!/usr/bin/env python
"""Hostile-world kill-and-resume smoke test (scenario engine harness).

The fault_smoke matrix proves kill -> salvage -> resume determinism for
*clean* ensembles; this script proves the same contract holds with the
scenario engine in the loop (docs/SCENARIOS.md).  A composed hostile
world — agent churn + message loss + a mid-run source flip — runs
through the full durability protocol:

1. baseline ``ConvergenceStats`` for the hostile ensemble, uninterrupted
   (checkpointing on: it must not perturb the counter streams);
2. the same run in a subprocess with ``REPRO_FAULT=<site>`` so the
   process dies mid-run (exit 86, no cleanup);
3. the torn trace left behind must salvage to a valid prefix whose
   ``run_start`` header carries the canonical scenario spec;
4. resuming from the surviving checkpoint must reproduce the baseline
   statistics **bit-identically**, emit a timing-free trace that is a
   bit-identical tail of the baseline's, and finish with a ``run_end``
   carrying the recovery-time summary;
5. resuming the same checkpoint under a *different* scenario must refuse
   ("checkpoint belongs to a different run") — the hostile world is part
   of the run's identity.

Usage:
    PYTHONPATH=src python scripts/scenario_smoke.py
    PYTHONPATH=src python scripts/scenario_smoke.py ensemble:after_checkpoint:4

Exit 0 on pass, 1 on any violated invariant.  ``make scenario-smoke``
and CI drive this entry point.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.execution import EXIT_FAULT_INJECTED, Checkpointer  # noqa: E402
from repro.telemetry.jsonl import validate_trace  # noqa: E402

# A composite touching every hook class: churn (population), lossy
# (responses), flip-source (source/truth).  Small enough to finish in
# seconds; the flip at round 12 forces every replica past the settle
# gate, so recovery statistics are always exercised.
WORLD = {
    "n": 48,
    "z": 1,
    "x0": 24,
    "max_rounds": 4000,
    "replicas": 8,
    "seed": 11,
    "every": 5,
    "scenario": "churn:period=8,amplitude=4+lossy:rate=0.1+flip-source:at=12",
}

DEFAULT_FAULT = "ensemble:after_round:25"


def _stats_dict(stats) -> dict:
    return {
        "trials": stats.trials,
        "censored": stats.censored,
        "budget": stats.budget,
        "median": stats.median,
        "q10": stats.q10,
        "q90": stats.q90,
        "mean_converged": stats.mean_converged,
        "min": stats.min,
        "max_converged": stats.max_converged,
    }


def _run_hostile(outdir: pathlib.Path, resume: bool, scenario: str = None) -> dict:
    """Worker body: run (or resume) the hostile ensemble to completion."""
    from repro.analysis.ensemble import convergence_ensemble
    from repro.dynamics.config import Configuration
    from repro.dynamics.rng import make_rng
    from repro.protocols import voter
    from repro.telemetry import open_trace_writer

    checkpoint_path = outdir / "hostile.ckpt"
    if resume:
        checkpoint = Checkpointer.resume(checkpoint_path, every=WORLD["every"])
    else:
        checkpoint = Checkpointer(checkpoint_path, every=WORLD["every"])
    trace = open_trace_writer(
        outdir / "hostile.jsonl", "jsonl", include_timings=False
    )
    try:
        stats = convergence_ensemble(
            voter(1),
            Configuration(n=WORLD["n"], z=WORLD["z"], x0=WORLD["x0"]),
            WORLD["max_rounds"],
            make_rng(WORLD["seed"]),
            WORLD["replicas"],
            recorder=trace,
            checkpoint=checkpoint,
            scenario=scenario or WORLD["scenario"],
        )
    finally:
        trace.close()
    return _stats_dict(stats)


def _worker(argv) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("outdir", type=pathlib.Path)
    parser.add_argument("--resume", action="store_true")
    args = parser.parse_args(argv)
    stats = _run_hostile(args.outdir, resume=args.resume)
    (args.outdir / "stats.json").write_text(json.dumps(stats, sort_keys=True) + "\n")
    return 0


def _spawn_worker(outdir: pathlib.Path, fault: str = "", resume: bool = False):
    command = [
        sys.executable, str(pathlib.Path(__file__).resolve()), "--worker",
        str(outdir),
    ]
    if resume:
        command.append("--resume")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    if fault:
        env["REPRO_FAULT"] = fault
    else:
        env.pop("REPRO_FAULT", None)
    env.pop("REPRO_FAULT_STICKY", None)
    return subprocess.run(command, env=env, capture_output=True, text=True)


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "--worker":
        return _worker(argv[1:])

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "fault", nargs="?", default=DEFAULT_FAULT,
        help=f"crashpoint spec (default: {DEFAULT_FAULT})",
    )
    parser.add_argument(
        "--workdir", type=pathlib.Path, default=None,
        help="scratch directory (default: a fresh tempdir)",
    )
    args = parser.parse_args(argv)

    if args.workdir is None:
        import tempfile

        scratch = tempfile.TemporaryDirectory(prefix="scenario_smoke_")
        workdir = pathlib.Path(scratch.name)
    else:
        workdir = args.workdir
        workdir.mkdir(parents=True, exist_ok=True)

    label = f"{WORLD['scenario']} fault={args.fault}"

    def fail(message: str) -> int:
        print(f"scenario_smoke[{label}]: FAIL: {message}", file=sys.stderr)
        return 1

    from repro.dynamics.scenarios import make_scenario

    canonical = make_scenario(WORLD["scenario"], WORLD["n"]).spec()

    # 1. Baseline, in-process, uninterrupted.
    baseline_dir = workdir / "baseline"
    baseline_dir.mkdir()
    os.environ.pop("REPRO_FAULT", None)
    baseline = _run_hostile(baseline_dir, resume=False)

    # 2. Faulted run: the subprocess must die at the crashpoint.
    faulted_dir = workdir / "faulted"
    faulted_dir.mkdir()
    faulted = _spawn_worker(faulted_dir, fault=args.fault)
    if faulted.returncode != EXIT_FAULT_INJECTED:
        return fail(
            f"faulted worker exited {faulted.returncode}, expected "
            f"{EXIT_FAULT_INJECTED}\n{faulted.stdout}\n{faulted.stderr}"
        )
    checkpoint_path = faulted_dir / "hostile.ckpt"
    if not checkpoint_path.exists():
        return fail("no checkpoint survived the injected crash")

    # 3. The torn trace must salvage to a valid prefix that already
    #    carries the hostile world's identity.
    torn = faulted_dir / "hostile.jsonl.tmp"
    if not torn.exists():
        return fail("no torn trace left behind by the crash")
    salvaged = validate_trace(torn, salvage=True)
    if not salvaged or salvaged[0].get("kind") != "run_start":
        return fail("torn trace did not salvage to a valid prefix")
    header_spec = salvaged[0].get("params", {}).get("scenario")
    if header_spec != canonical:
        return fail(
            f"salvaged header names scenario {header_spec!r}, "
            f"expected {canonical!r}"
        )

    # 4. Resume: bit-identical stats, bit-identical trace tail, and a
    #    run_end carrying the recovery summary.
    resumed = _spawn_worker(faulted_dir, resume=True)
    if resumed.returncode != 0:
        return fail(
            f"resume worker exited {resumed.returncode}\n"
            f"{resumed.stdout}\n{resumed.stderr}"
        )
    resumed_stats = json.loads((faulted_dir / "stats.json").read_text())
    if resumed_stats != baseline:
        return fail(
            "resumed stats differ from baseline:\n"
            f"  baseline: {json.dumps(baseline, sort_keys=True)}\n"
            f"  resumed:  {json.dumps(resumed_stats, sort_keys=True)}"
        )

    def round_lines(path: pathlib.Path) -> list:
        return [
            line for line in path.read_text().splitlines()
            if json.loads(line).get("kind") == "round"
        ]

    baseline_rounds = round_lines(baseline_dir / "hostile.jsonl")
    resumed_rounds = round_lines(faulted_dir / "hostile.jsonl")
    if not resumed_rounds:
        return fail("resumed trace recorded no rounds")
    if resumed_rounds != baseline_rounds[-len(resumed_rounds):]:
        return fail("resumed trace is not a bit-identical tail of the baseline's")

    end = next(
        record
        for record in validate_trace(faulted_dir / "hostile.jsonl")
        if record.get("kind") == "run_end"
    )
    if end.get("scenario") != canonical or "recovered" not in end:
        return fail(
            f"resumed run_end lacks the recovery summary: {json.dumps(end)}"
        )

    # 5. The checkpoint must refuse a different hostile world.
    from repro.execution import CheckpointError

    try:
        _run_hostile(faulted_dir, resume=True, scenario="lossy:rate=0.2")
    except CheckpointError as error:
        if "different run" not in str(error):
            return fail(f"mismatch refusal had the wrong message: {error}")
    else:
        return fail(
            "resuming under a different scenario should refuse, but ran"
        )

    print(
        f"scenario_smoke[{label}]: PASS — killed at the crashpoint, "
        f"salvaged {len(salvaged)} records (header spec {canonical!r}), "
        f"resumed bit-identical ({len(resumed_rounds)}-round trace tail, "
        f"recovered={end['recovered']}, recovery_p90={end.get('recovery_p90')}), "
        f"scenario-mismatch resume refused"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
