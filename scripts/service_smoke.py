#!/usr/bin/env python
"""Kill-and-restart chaos smoke for the job service (`repro serve`).

For each supported site this script drives the full crash protocol
against a real server subprocess:

1. computes a baseline result for a fixed job spec with an in-process
   :class:`~repro.service.server.Service` (no HTTP, no faults);
2. starts ``python -m repro serve`` in a subprocess with ``REPRO_FAULT``
   armed (or, for the ``kill:mid_job`` site, unarmed) and submits the
   same spec over HTTP;
3. kills the server mid-job — either the armed crashpoint fires
   (``os._exit(86)``, the stdlib stand-in for SIGKILL) or, for
   ``kill:mid_job``, the smoke SIGKILLs the server *and* its worker the
   moment the job's first checkpoint exists;
4. restarts the server over the same root with no fault armed and waits
   for the journal to converge;
5. asserts **no job was lost or duplicated**, the job reached the state
   the crash shape demands, and the recovered result is **bit-identical**
   to the uninterrupted baseline.

Site-specific invariants:

``jobstore:mid_commit:2``
    The dispatch transition (commit 2: ``queued → running``) tears
    mid-frame.  Restart must salvage the torn tail, see the job still
    ``queued``, and run it to ``done`` on attempt 1.

``service:mid_dispatch:1``
    The ``running`` state is durable but the worker was never forked.
    Restart must detect the orphan, requeue with ``retries == 1``, and
    finish on attempt 2.

``jobstore:mid_compact:1``
    The job finishes first; the crash lands between snapshot publish and
    journal reset (``POST /admin/compact``).  Restart must replay the
    snapshot, skip the stale journal records idempotently, and preserve
    the completed job bit-for-bit.

``kill:mid_job``
    SIGKILL server + worker after the first checkpoint write.  Restart
    must requeue the orphan and resume **from the checkpoint**
    (``result["resumed"] is True``) to a bit-identical result.

Usage:
    PYTHONPATH=src python scripts/service_smoke.py jobstore:mid_commit:2
    PYTHONPATH=src python scripts/service_smoke.py service:mid_dispatch:1
    PYTHONPATH=src python scripts/service_smoke.py jobstore:mid_compact:1
    PYTHONPATH=src python scripts/service_smoke.py kill:mid_job

Exit 0 on pass, 1 on any violated invariant.  Driven by
``make service-smoke`` and the CI ``service-smoke`` matrix.
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.execution.shutdown import EXIT_FAULT_INJECTED  # noqa: E402
from repro.service import Service, ServiceConfig  # noqa: E402

# Fixed job: small enough to finish in seconds, long enough that the
# kill:mid_job site has a wide window after the first checkpoint.
SPEC = {
    "kind": "ensemble",
    "protocol": "voter",
    "n": 96,
    "z": 1,
    "max_rounds": 5000,
    "replicas": 8,
    "seed": 7,
    "checkpoint_every": 1,
    "heartbeat_every_s": 0.1,
}
KILL_SPEC = {**SPEC, "replicas": 40}

SITES = (
    "jobstore:mid_commit:2",
    "service:mid_dispatch:1",
    "jobstore:mid_compact:1",
    "kill:mid_job",
)

TERMINAL = {"done", "failed", "cancelled"}


def fail(message: str) -> "NoReturn":  # noqa: F821
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def http_json(url: str, payload=None, timeout: float = 90.0):
    request = urllib.request.Request(
        url,
        data=None if payload is None else json.dumps(payload).encode(),
        method="GET" if payload is None else "POST",
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read().decode())


def start_server(root: pathlib.Path, fault: str | None):
    """Launch ``repro serve`` and parse the listening handshake."""
    env = {**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")}
    env.pop("REPRO_FAULT", None)
    if fault is not None:
        env["REPRO_FAULT"] = fault
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", str(root),
            "--port", "0", "--max-retries", "3",
            "--backoff-base", "0.05", "--backoff-cap", "0.2",
            "--poll", "0.02",
        ],
        env=env,
        stderr=subprocess.PIPE,
        text=True,
    )
    deadline = time.monotonic() + 30
    url = None
    while time.monotonic() < deadline:
        line = process.stderr.readline()
        if not line:
            break
        if line.startswith("service: listening on "):
            url = line.split("service: listening on ", 1)[1].strip()
            break
    if url is None:
        process.kill()
        fail("server never printed its listening handshake")
    return process, url


def wait_exit(process, expected: int, what: str, timeout: float = 120.0) -> None:
    try:
        code = process.wait(timeout=timeout)
    except subprocess.TimeoutExpired:
        process.kill()
        fail(f"{what}: server did not exit within {timeout}s")
    if code != expected:
        fail(f"{what}: server exited {code}, expected {expected}")


def stop_server(process) -> None:
    process.send_signal(signal.SIGTERM)
    try:
        process.wait(timeout=30)
    except subprocess.TimeoutExpired:
        process.kill()
        process.wait(timeout=10)


def wait_terminal(url: str, job_id: str, timeout: float = 120.0) -> dict:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        doc = http_json(f"{url}/jobs/{job_id}?wait_s=10")
        if doc["state"] in TERMINAL:
            return doc
    fail(f"job {job_id} never reached a terminal state")


def baseline_stats(workdir: pathlib.Path, spec: dict) -> dict:
    service = Service(
        workdir / "baseline", ServiceConfig(workers=1, poll_s=0.01)
    )
    try:
        job = service.submit(spec)
        if not service.drain(timeout_s=300):
            fail("baseline service did not drain")
        result = service.store.get(job.id).result
        if result is None:
            fail("baseline job produced no result")
        return result["stats"]
    finally:
        service.shutdown()


def assert_single_done_job(url: str, job_id: str, expected_stats: dict) -> dict:
    listing = http_json(f"{url}/jobs")
    ids = [job["id"] for job in listing["jobs"]]
    if ids != [job_id]:
        fail(f"expected exactly [{job_id}] after restart, found {ids}")
    doc = wait_terminal(url, job_id)
    if doc["state"] != "done":
        fail(f"job ended {doc['state']} ({doc.get('error')}), expected done")
    result = http_json(f"{url}/jobs/{job_id}/result")["result"]
    if result["stats"] != expected_stats:
        fail(
            "recovered stats diverged from baseline:\n"
            f"  baseline:  {expected_stats}\n"
            f"  recovered: {result['stats']}"
        )
    return {"doc": doc, "result": result}


def run_fault_leg(site: str, workdir: pathlib.Path, expected: dict) -> None:
    """Crashpoint legs: the armed server dies before/at dispatch."""
    root = workdir / "svc"
    process, url = start_server(root, fault=site)
    created = http_json(f"{url}/jobs", SPEC)
    job_id = created["job"]["id"]
    wait_exit(process, EXIT_FAULT_INJECTED, f"{site} (armed run)")

    process, url = start_server(root, fault=None)
    try:
        recovered = assert_single_done_job(url, job_id, expected)
        doc, result = recovered["doc"], recovered["result"]
        if site.startswith("service:mid_dispatch"):
            if doc["retries"] != 1:
                fail(f"mid_dispatch orphan should cost 1 retry, got {doc['retries']}")
            if result["attempt"] != 2:
                fail(f"mid_dispatch recovery should run attempt 2, got {result['attempt']}")
        if site.startswith("jobstore:mid_commit"):
            if doc["retries"] != 0 or result["attempt"] != 1:
                fail(
                    "mid_commit tears before the running state is durable; "
                    f"recovery must not burn a retry (retries={doc['retries']}, "
                    f"attempt={result['attempt']})"
                )
    finally:
        stop_server(process)


def run_compact_leg(site: str, workdir: pathlib.Path, expected: dict) -> None:
    """Finish the job, then crash between snapshot publish and journal reset."""
    root = workdir / "svc"
    process, url = start_server(root, fault=site)
    created = http_json(f"{url}/jobs", SPEC)
    job_id = created["job"]["id"]
    doc = wait_terminal(url, job_id)
    if doc["state"] != "done":
        fail(f"job ended {doc['state']} before the compact crash, expected done")
    pre_crash = http_json(f"{url}/jobs/{job_id}/result")["result"]
    try:
        http_json(f"{url}/admin/compact", payload={})
        fail("compact crashpoint never fired")
    except (urllib.error.URLError, ConnectionError, OSError):
        pass  # the server died mid-handler, as armed
    wait_exit(process, EXIT_FAULT_INJECTED, f"{site} (armed compact)")
    if not (root / "jobs.snapshot.json").exists():
        fail("mid_compact crash should leave the published snapshot behind")

    process, url = start_server(root, fault=None)
    try:
        recovered = assert_single_done_job(url, job_id, expected)
        if recovered["result"] != pre_crash:
            fail("result changed across the compact crash/restart")
    finally:
        stop_server(process)


def run_kill_leg(workdir: pathlib.Path, expected: dict) -> None:
    """SIGKILL server + worker mid-job; restart must resume the checkpoint."""
    root = workdir / "svc"
    process, url = start_server(root, fault=None)
    created = http_json(f"{url}/jobs", KILL_SPEC)
    job_id = created["job"]["id"]

    checkpoint = root / job_id / "job.ckpt"
    worker_pid = None
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        doc = http_json(f"{url}/jobs/{job_id}")
        worker_pid = doc.get("worker_pid")
        if doc["state"] in TERMINAL:
            fail("job finished before the kill window — widen KILL_SPEC")
        if doc["state"] == "running" and worker_pid and checkpoint.exists():
            break
        time.sleep(0.05)
    else:
        fail("job never produced a checkpoint to kill against")

    process.kill()  # SIGKILL: no shutdown handling, no requeue commit
    process.wait(timeout=30)
    try:
        os.kill(worker_pid, signal.SIGKILL)
    except ProcessLookupError:
        pass  # worker died with (or before) the server

    process, url = start_server(root, fault=None)
    try:
        recovered = assert_single_done_job(url, job_id, expected)
        doc, result = recovered["doc"], recovered["result"]
        if doc["retries"] < 1:
            fail("killed worker should have cost at least one retry")
        if result["attempt"] < 2:
            fail(f"recovery should rerun the job, got attempt {result['attempt']}")
        if result.get("resumed") is not True:
            fail("recovered attempt did not resume from the checkpoint")
    finally:
        stop_server(process)


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1 or argv[0] not in SITES:
        print(
            f"usage: service_smoke.py <site>   (one of: {', '.join(SITES)})",
            file=sys.stderr,
        )
        return 2
    site = argv[0]
    with tempfile.TemporaryDirectory(prefix="service_smoke_") as tmp:
        workdir = pathlib.Path(tmp)
        spec = KILL_SPEC if site == "kill:mid_job" else SPEC
        print(f"[service-smoke] baseline ({spec['replicas']} replicas)…")
        expected = baseline_stats(workdir, spec)
        print(f"[service-smoke] chaos leg: {site}")
        if site == "kill:mid_job":
            run_kill_leg(workdir, expected)
        elif site.startswith("jobstore:mid_compact"):
            run_compact_leg(site, workdir, expected)
        else:
            run_fault_leg(site, workdir, expected)
    print(f"PASS: {site} — restart recovered a bit-identical result")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
