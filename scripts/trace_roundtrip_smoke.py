"""Smoke-test trace format conversion (the `make trace-roundtrip` target).

Runs a tiny traced simulation into the JSONL sink, converts the trace
jsonl -> columnar -> jsonl (:func:`repro.telemetry.jsonl_to_columnar` /
:func:`repro.telemetry.columnar_to_jsonl`), and asserts the round trip is
**byte-identical** to the original file — the losslessness contract in
docs/OBSERVABILITY.md ("Trace formats").  It also proves the two sinks
agree at the source: the same simulation streamed directly through
:class:`ColumnarTraceWriter` must decode to exactly the records the JSONL
sink wrote (timings off, so the comparison is deterministic).

Exits non-zero on any mismatch.

Usage:  python scripts/trace_roundtrip_smoke.py [scratch_dir]
"""

from __future__ import annotations

import json
import pathlib
import sys
import tempfile

try:
    import repro  # noqa: F401
except ModuleNotFoundError:  # running from a checkout without `pip install -e .`
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro import Configuration, make_rng, simulate, voter
from repro.telemetry import (
    columnar_to_jsonl,
    jsonl_to_columnar,
    open_trace_writer,
    read_trace,
    validate_trace,
)


def _run_traced(path: pathlib.Path, trace_format: str) -> None:
    config = Configuration(n=64, z=1, x0=1)
    # timings off: seed-identical runs must produce value-identical records,
    # or the sink comparison below would be flaky by construction.
    with open_trace_writer(path, trace_format, include_timings=False) as writer:
        simulate(
            voter(1), config, max_rounds=50_000, rng=make_rng(0),
            record=True, recorder=writer,
        )


def main(scratch: str | None = None) -> int:
    if scratch is None:
        scratch = tempfile.mkdtemp(prefix="trace-roundtrip-")
    scratch_dir = pathlib.Path(scratch)
    scratch_dir.mkdir(parents=True, exist_ok=True)
    original = scratch_dir / "smoke.jsonl"
    container = scratch_dir / "smoke.ctrace"
    recovered = scratch_dir / "recovered.jsonl"

    _run_traced(original, "jsonl")
    records = validate_trace(original)

    problems = []

    # 1. jsonl -> columnar -> jsonl must reproduce the original bytes.
    forward = jsonl_to_columnar(original, container)
    backward = columnar_to_jsonl(container, recovered)
    if forward != len(records) or backward != len(records):
        problems.append(
            f"record counts drifted through conversion: "
            f"{len(records)} -> {forward} -> {backward}"
        )
    original_bytes = original.read_bytes()
    recovered_bytes = recovered.read_bytes()
    if original_bytes != recovered_bytes:
        problems.append(
            "round-tripped JSONL is not byte-identical to the original "
            f"({len(original_bytes)} vs {len(recovered_bytes)} bytes)"
        )

    # 2. The columnar container must validate in its own right.
    validate_trace(container)

    # 3. Streaming the same run through the columnar sink directly must
    #    produce exactly the records the JSONL sink wrote.
    direct = scratch_dir / "direct.ctrace"
    _run_traced(direct, "columnar")
    direct_records = read_trace(direct)
    if direct_records != records:
        for got, want in zip(direct_records, records):
            if got != want:
                problems.append(
                    "columnar sink diverged from the JSONL sink:\n"
                    f"  columnar: {json.dumps(got, sort_keys=True)}\n"
                    f"  jsonl:    {json.dumps(want, sort_keys=True)}"
                )
                break
        else:
            problems.append(
                "columnar sink record count diverged from the JSONL sink: "
                f"{len(direct_records)} vs {len(records)}"
            )

    if problems:
        for problem in problems:
            print(f"trace-roundtrip FAILED: {problem}", file=sys.stderr)
        return 1
    print(
        f"trace-roundtrip ok: {len(records)} records byte-identical through "
        f"jsonl -> columnar -> jsonl, direct columnar sink agrees "
        f"({container.stat().st_size} vs {original.stat().st_size} bytes on disk)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1] if len(sys.argv) > 1 else None))
