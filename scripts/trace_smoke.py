"""Smoke-test the telemetry pipeline end to end (the `make trace-smoke` target).

Runs a tiny traced simulation, validates the emitted JSONL against the
documented schema (docs/OBSERVABILITY.md) via
:func:`repro.telemetry.validate_trace`, and cross-checks the trace against
the runner's own :class:`RunResult`.  Exits non-zero on any mismatch.

Usage:  python scripts/trace_smoke.py [output.jsonl]
"""

from __future__ import annotations

import pathlib
import sys
import tempfile

try:
    import repro  # noqa: F401
except ModuleNotFoundError:  # running from a checkout without `pip install -e .`
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro import Configuration, JsonlTraceWriter, make_rng, simulate, validate_trace, voter
from repro.telemetry import trace_counts


def main(path: str | None = None) -> int:
    if path is None:
        path = str(pathlib.Path(tempfile.mkdtemp(prefix="trace-smoke-")) / "smoke.jsonl")
    config = Configuration(n=64, z=1, x0=1)
    with JsonlTraceWriter(path) as writer:
        result = simulate(
            voter(1), config, max_rounds=50_000, rng=make_rng(0),
            record=True, recorder=writer,
        )
    records = validate_trace(path)
    end = records[-1]
    problems = []
    if end.get("converged") != result.converged:
        problems.append(f"run_end converged={end.get('converged')} != {result.converged}")
    if end.get("rounds") != result.rounds:
        problems.append(f"run_end rounds={end.get('rounds')} != {result.rounds}")
    counts = trace_counts(records)
    if result.trajectory is None or counts.tolist() != result.trajectory.tolist():
        problems.append("trace counts do not reproduce the in-memory trajectory")
    if problems:
        for problem in problems:
            print(f"trace-smoke FAILED: {problem}", file=sys.stderr)
        return 1
    print(
        f"trace-smoke ok: {len(records)} records at {path} "
        f"(converged={result.converged} in {result.rounds} rounds)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1] if len(sys.argv) > 1 else None))
