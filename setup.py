"""Legacy setup shim.

This environment is offline and has no ``wheel`` package, so PEP-517
editable installs (which build a wheel) fail.  With this shim and no
``[build-system]`` table in pyproject.toml, ``pip install -e .`` takes the
legacy ``setup.py develop`` path, which works with plain setuptools.
"""

from setuptools import setup

setup()
