"""repro — reproduction of "On the Limits of Information Spread by Memory-less
Agents" (D'Archivio & Vacus, PODC 2024).

The package models the self-stabilizing bit-dissemination problem: ``n``
anonymous, memory-less agents with binary opinions, one fixed "source"
holding the correct one, parallel or sequential uniform-sampling updates.

Quick tour (see README.md for a narrated version):

>>> from repro import minority, lower_bound_certificate
>>> cert = lower_bound_certificate(minority(3))
>>> cert.case
'case 1 (F < 0, Theorem 6)'

Subpackages:
    core        the paper's contribution — bias polynomial, roots, Theorem 12
    protocols   the dynamics zoo (Voter, Minority, Majority, blends, tables)
    dynamics    parallel / sequential / multi-opinion simulation engines
    markov      exact chains, birth-death analysis, Doob/Azuma machinery
    dual        the coalescing-random-walk dual of the Voter (Appendix B)
    extensions  memory and population-protocol escape hatches (Section 1.3)
    analysis    ensembles, scaling fits, text/CSV figure rendering
    telemetry   run recorders: per-round metrics, JSONL traces, provenance
"""

from repro.core import (
    AssumptionReport,
    JumpBoundCheck,
    LowerBoundCertificate,
    Protocol,
    ProtocolFamily,
    SignProfile,
    bias_coefficients,
    bias_value,
    check_jump_bound,
    constant_family,
    drift_identity_gap,
    expected_next_count,
    is_zero_bias,
    jump_bound_y,
    lower_bound_certificate,
    sign_profile,
    unit_interval_roots,
    verify_escape_assumptions,
)
from repro.dynamics import (
    Configuration,
    adversarial_configurations,
    balanced_configuration,
    consensus_configuration,
    escape_time,
    escape_time_ensemble,
    make_rng,
    simulate,
    simulate_ensemble,
    simulate_sequential,
    spawn_rngs,
    time_to_leave_consensus,
    wrong_consensus_configuration,
)
from repro.telemetry import (
    NULL_RECORDER,
    JsonlTraceWriter,
    MetricsRecorder,
    NullRecorder,
    Recorder,
    compose_recorders,
    read_trace,
    validate_trace,
)
from repro.protocols import (
    biased_voter,
    double_lobe,
    majority,
    minority,
    minority_sqrt_family,
    random_protocol,
    table_protocol,
    voter,
    voter_minority_blend,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "Protocol",
    "ProtocolFamily",
    "constant_family",
    "bias_value",
    "bias_coefficients",
    "expected_next_count",
    "drift_identity_gap",
    "unit_interval_roots",
    "sign_profile",
    "SignProfile",
    "is_zero_bias",
    "jump_bound_y",
    "check_jump_bound",
    "JumpBoundCheck",
    "LowerBoundCertificate",
    "AssumptionReport",
    "lower_bound_certificate",
    "verify_escape_assumptions",
    # protocols
    "voter",
    "minority",
    "minority_sqrt_family",
    "majority",
    "voter_minority_blend",
    "biased_voter",
    "double_lobe",
    "table_protocol",
    "random_protocol",
    # dynamics
    "Configuration",
    "consensus_configuration",
    "wrong_consensus_configuration",
    "balanced_configuration",
    "adversarial_configurations",
    "make_rng",
    "spawn_rngs",
    "simulate",
    "simulate_ensemble",
    "simulate_sequential",
    "escape_time",
    "escape_time_ensemble",
    "time_to_leave_consensus",
    # telemetry
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "MetricsRecorder",
    "JsonlTraceWriter",
    "compose_recorders",
    "read_trace",
    "validate_trace",
]
