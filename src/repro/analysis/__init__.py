"""Ensemble statistics, scaling fits, trace analytics, and text rendering."""

from repro.analysis.ensemble import (
    ConvergenceStats,
    convergence_ensemble,
    summarize_recovery,
    summarize_times,
)
from repro.analysis.report import (
    ComparisonRow,
    ProtocolReport,
    TraceSummary,
    build_report,
    compare_against_baseline,
    group_by_protocol,
    load_baseline,
    load_bench_records,
    render_report,
    summarize_trace,
    summarize_trace_dir,
    update_baseline,
)
from repro.analysis.scaling import (
    PowerLawFit,
    fit_power_law,
    is_bounded_shape,
    normalized_ratios,
    ratio_drift,
)
from repro.analysis.series import Series, Table, ascii_plot
from repro.analysis.traces import TrajectoryFan, trajectory_fan

__all__ = [
    "ComparisonRow",
    "ProtocolReport",
    "TraceSummary",
    "build_report",
    "compare_against_baseline",
    "group_by_protocol",
    "load_baseline",
    "load_bench_records",
    "render_report",
    "summarize_trace",
    "summarize_trace_dir",
    "update_baseline",
    "ConvergenceStats",
    "convergence_ensemble",
    "summarize_times",
    "summarize_recovery",
    "PowerLawFit",
    "fit_power_law",
    "normalized_ratios",
    "ratio_drift",
    "is_bounded_shape",
    "Series",
    "Table",
    "ascii_plot",
    "TrajectoryFan",
    "trajectory_fan",
]
