"""Ensemble statistics, scaling fits, and plain-text figure rendering."""

from repro.analysis.ensemble import ConvergenceStats, convergence_ensemble, summarize_times
from repro.analysis.scaling import (
    PowerLawFit,
    fit_power_law,
    is_bounded_shape,
    normalized_ratios,
    ratio_drift,
)
from repro.analysis.series import Series, Table, ascii_plot
from repro.analysis.traces import TrajectoryFan, trajectory_fan

__all__ = [
    "ConvergenceStats",
    "convergence_ensemble",
    "summarize_times",
    "PowerLawFit",
    "fit_power_law",
    "normalized_ratios",
    "ratio_drift",
    "is_bounded_shape",
    "Series",
    "Table",
    "ascii_plot",
    "TrajectoryFan",
    "trajectory_fan",
]
