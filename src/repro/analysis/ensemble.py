"""Ensembles of independent runs and their convergence-time statistics.

Every quantitative experiment reduces to "run the chain many times from a
configuration and summarize tau": this module owns the summary.  Censoring
is first-class — lower-bound experiments *expect* runs to exhaust their
budget, and a censored run is then evidence, not noise — so statistics are
reported with explicit censored counts, and quantiles of censored samples
are lower bounds (computed by treating censored values as ``+inf``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.protocol import Protocol
from repro.dynamics.config import Configuration
from repro.dynamics.run import simulate_ensemble
from repro.telemetry import NULL_RECORDER, Recorder, span

__all__ = ["ConvergenceStats", "summarize_times", "convergence_ensemble"]


@dataclass(frozen=True)
class ConvergenceStats:
    """Summary of an ensemble of convergence times.

    Attributes:
        trials: ensemble size.
        censored: runs that did not converge within the budget.
        budget: the round budget (``None`` if not applicable).
        median: median time; ``inf`` when over half the runs were censored
            (then the median itself is only known to exceed the budget).
        q10, q90: decile and 90th percentile with the same convention.
        mean_converged: mean over the *converged* runs only (``nan`` if none).
        min, max_converged: extremes over converged runs (``nan`` if none).
    """

    trials: int
    censored: int
    budget: Optional[int]
    median: float
    q10: float
    q90: float
    mean_converged: float
    min: float
    max_converged: float

    @property
    def success_rate(self) -> float:
        return 1.0 - self.censored / self.trials

    def quantile_is_lower_bound(self, q: float) -> bool:
        """True when the ``q``-quantile is censored (only a lower bound)."""
        return self.censored > (1.0 - q) * self.trials


def summarize_times(times: np.ndarray, budget: Optional[int] = None) -> ConvergenceStats:
    """Summarize an array of times with ``nan`` marking censored runs."""
    times = np.asarray(times, dtype=float)
    if times.size == 0:
        raise ValueError("times must be non-empty")
    censored = int(np.isnan(times).sum())
    padded = np.where(np.isnan(times), np.inf, times)
    converged = times[~np.isnan(times)]
    return ConvergenceStats(
        trials=len(times),
        censored=censored,
        budget=budget,
        # Order-statistic quantiles: linear interpolation against the inf of
        # a censored run would produce nan, and "lower" matches the
        # lower-bound reading of censored quantiles anyway.
        median=float(np.quantile(padded, 0.5, method="lower")),
        q10=float(np.quantile(padded, 0.1, method="lower")),
        q90=float(np.quantile(padded, 0.9, method="lower")),
        mean_converged=float(converged.mean()) if len(converged) else float("nan"),
        min=float(converged.min()) if len(converged) else float("nan"),
        max_converged=float(converged.max()) if len(converged) else float("nan"),
    )


def convergence_ensemble(
    protocol: Protocol,
    config: Configuration,
    max_rounds: int,
    rng: np.random.Generator,
    replicas: int,
    recorder: Recorder = NULL_RECORDER,
    checkpoint=None,
) -> ConvergenceStats:
    """Run ``replicas`` independent chains and summarize their ``tau``.

    ``recorder`` is forwarded to :func:`repro.dynamics.run.simulate_ensemble`
    (one record per lock-step round; see docs/OBSERVABILITY.md).  The whole
    call is timed as a ``convergence_ensemble`` telemetry span, with the
    runner's own ``ensemble`` span and the summary step nested inside it.

    ``checkpoint`` (a :class:`repro.execution.Checkpointer`) is forwarded
    too: because the statistics are a pure function of the replica times,
    an ensemble killed at any point and resumed from its checkpoint yields
    **bit-identical** ``ConvergenceStats`` to an uninterrupted run.
    """
    with span(recorder, "convergence_ensemble") as timing:
        times = simulate_ensemble(
            protocol, config, max_rounds, rng, replicas, recorder,
            checkpoint=checkpoint,
        )
        with span(recorder, "summarize"):
            stats = summarize_times(times, budget=max_rounds)
        if recorder.enabled:
            timing.incr("replicas", replicas)
    return stats
