"""Ensembles of independent runs and their convergence-time statistics.

Every quantitative experiment reduces to "run the chain many times from a
configuration and summarize tau": this module owns the summary.  Censoring
is first-class — lower-bound experiments *expect* runs to exhaust their
budget, and a censored run is then evidence, not noise — so statistics are
reported with explicit censored counts, and quantiles of censored samples
are lower bounds (computed by treating censored values as ``+inf``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.protocol import Protocol
from repro.dynamics.config import Configuration
from repro.dynamics.run import simulate_ensemble
from repro.execution.checkpoint import DEFAULT_CHECKPOINT_EVERY
from repro.telemetry import NULL_RECORDER, Recorder, span

__all__ = [
    "ConvergenceStats",
    "summarize_times",
    "summarize_recovery",
    "convergence_ensemble",
]


@dataclass(frozen=True)
class ConvergenceStats:
    """Summary of an ensemble of convergence times.

    Attributes:
        trials: ensemble size (trials actually summarized).
        censored: runs that did not converge within the budget.
        budget: the round budget (``None`` if not applicable).
        median: median time; ``inf`` when over half the runs were censored
            (then the median itself is only known to exceed the budget).
        q10, q90: decile and 90th percentile with the same convention.
        mean_converged: mean over the *converged* runs only (``nan`` if none).
        min, max_converged: extremes over converged runs (``nan`` if none).
        failed_shards: shards a supervised ensemble lost past its retry
            budget (0 for serial ensembles).  Mirrors the censoring
            philosophy: a lost shard is reported, never silently dropped.
        attempted_trials: replicas the caller asked for, including those
            on lost shards (``== trials`` when nothing was lost).  The
            dataclass repr surfaces both fields, so degraded statistics
            are visible anywhere the stats are printed or logged.
    """

    trials: int
    censored: int
    budget: Optional[int]
    median: float
    q10: float
    q90: float
    mean_converged: float
    min: float
    max_converged: float
    failed_shards: int = 0
    attempted_trials: Optional[int] = None

    def __post_init__(self) -> None:
        if self.attempted_trials is None:
            object.__setattr__(self, "attempted_trials", self.trials)

    @property
    def success_rate(self) -> float:
        return 1.0 - self.censored / self.trials

    @property
    def degraded(self) -> bool:
        """True when the underlying ensemble lost shards (partial results)."""
        return self.failed_shards > 0

    @property
    def lost_trials(self) -> int:
        """Replicas that were attempted but lost with their shard."""
        return int(self.attempted_trials) - self.trials

    def quantile_is_lower_bound(self, q: float) -> bool:
        """True when the ``q``-quantile is censored (only a lower bound)."""
        return self.censored > (1.0 - q) * self.trials


def summarize_times(
    times: np.ndarray,
    budget: Optional[int] = None,
    *,
    failed_shards: int = 0,
    attempted_trials: Optional[int] = None,
) -> ConvergenceStats:
    """Summarize an array of times with ``nan`` marking censored runs.

    ``times`` holds only trials that actually ran to a verdict: a ``nan``
    entry is a *censored* trial (it ran out of budget — evidence), which is
    different from a *lost* trial (its shard died past the supervisor's
    retry budget — absence of evidence).  Lost trials therefore never
    appear in ``times``; supervised callers report them via the
    ``failed_shards`` / ``attempted_trials`` keywords, which are carried
    through to the :class:`ConvergenceStats` (and from there into
    ``repro report --json``, where the perf gate refuses baselines built
    from degraded ensembles).
    """
    times = np.asarray(times, dtype=float)
    if times.size == 0:
        raise ValueError("times must be non-empty")
    censored = int(np.isnan(times).sum())
    padded = np.where(np.isnan(times), np.inf, times)
    converged = times[~np.isnan(times)]
    return ConvergenceStats(
        trials=len(times),
        censored=censored,
        budget=budget,
        # Order-statistic quantiles: linear interpolation against the inf of
        # a censored run would produce nan, and "lower" matches the
        # lower-bound reading of censored quantiles anyway.
        median=float(np.quantile(padded, 0.5, method="lower")),
        q10=float(np.quantile(padded, 0.1, method="lower")),
        q90=float(np.quantile(padded, 0.9, method="lower")),
        mean_converged=float(converged.mean()) if len(converged) else float("nan"),
        min=float(converged.min()) if len(converged) else float("nan"),
        max_converged=float(converged.max()) if len(converged) else float("nan"),
        failed_shards=int(failed_shards),
        attempted_trials=attempted_trials,
    )


def summarize_recovery(
    times: np.ndarray,
    settle: int,
    budget: Optional[int] = None,
    *,
    failed_shards: int = 0,
    attempted_trials: Optional[int] = None,
) -> ConvergenceStats:
    """Summarize recovery times: rounds past the scenario's settle round.

    Under a hostile scenario the engine refuses to declare convergence
    before the perturbation schedule settles (the source told its last lie,
    the opinion flipped for the last time — ``Scenario.settle_round``), so
    every finite entry of ``times`` is ``>= settle``.  The *recovery time*
    is ``tau - settle``: how long the population needs to re-converge once
    the world stops moving.  This shifts the samples and the budget by
    ``settle`` and reuses :func:`summarize_times`, so censoring semantics
    (``nan`` = ran out of budget, lower-bound quantiles) carry over
    unchanged.  With ``settle == 0`` (e.g. the null scenario) this is
    exactly :func:`summarize_times`.
    """
    times = np.asarray(times, dtype=float)
    finite = times[np.isfinite(times)]
    if finite.size and float(finite.min()) < settle:
        raise ValueError(
            f"convergence time {finite.min()} precedes settle round {settle}; "
            "these times were not produced under the scenario's settle gate"
        )
    return summarize_times(
        times - float(settle),
        budget=None if budget is None else budget - settle,
        failed_shards=failed_shards,
        attempted_trials=attempted_trials,
    )


def convergence_ensemble(
    protocol: Protocol,
    config: Configuration,
    max_rounds: int,
    rng: np.random.Generator,
    replicas: int,
    recorder: Recorder = NULL_RECORDER,
    checkpoint=None,
    workers=None,
    shards=None,
    supervisor=None,
    engine=None,
    scenario=None,
) -> ConvergenceStats:
    """Run ``replicas`` independent chains and summarize their ``tau``.

    ``scenario`` (a spec string, :class:`~repro.dynamics.config.
    ScenarioConfig`, or built :class:`~repro.dynamics.scenarios.Scenario`)
    runs the ensemble in a hostile world; it is forwarded verbatim to the
    runner, so the summarized times obey the scenario's settle gate.  Use
    :func:`summarize_recovery` on the raw times when recovery statistics
    (time past the settle round) are wanted instead of absolute ``tau``.

    ``engine`` selects the stepping backend and is forwarded verbatim
    (``"loop"`` | ``"batched"`` | ``"batched+numba"`` | ``"lockstep"``;
    ``None`` means the default ``"batched"`` — see docs/ENGINES.md).
    Because the statistics are a pure function of the replica times, the
    loop-vs-batched bit-identity of :func:`~repro.dynamics.run.
    simulate_ensemble` lifts to the returned :class:`ConvergenceStats`:
    ``engine="loop"`` and ``engine="batched"`` yield field-wise identical
    dataclasses for the same seed.

    ``recorder`` is forwarded to :func:`repro.dynamics.run.simulate_ensemble`
    (one record per lock-step round; see docs/OBSERVABILITY.md).  The whole
    call is timed as a ``convergence_ensemble`` telemetry span, with the
    runner's own ``ensemble`` span and the summary step nested inside it.

    ``checkpoint`` (a :class:`repro.execution.Checkpointer`) is forwarded
    too: because the statistics are a pure function of the replica times,
    an ensemble killed at any point and resumed from its checkpoint yields
    **bit-identical** ``ConvergenceStats`` to an uninterrupted run.

    Passing any of ``workers`` / ``shards`` / ``supervisor`` routes the
    ensemble through :func:`repro.execution.supervisor.
    run_supervised_ensemble` instead of the serial lock-step runner.  The
    returned statistics then carry ``failed_shards`` / ``attempted_trials``
    so shard loss degrades the report rather than silently shrinking the
    sample (see the module docstring of the supervisor for the fault
    model).  The supervised stream differs from the serial one — compare
    supervised runs only against supervised runs with the same ``shards``.
    """
    with span(recorder, "convergence_ensemble") as timing:
        if workers is not None or shards is not None or supervisor is not None:
            from repro.execution.supervisor import (
                run_supervised_ensemble,
                summarize_supervised,
                supervisor_from,
            )

            result = run_supervised_ensemble(
                protocol,
                config,
                max_rounds,
                rng,
                replicas,
                supervisor=supervisor_from(supervisor, workers, shards),
                recorder=recorder,
                checkpoint_base=checkpoint.path if checkpoint is not None else None,
                checkpoint_every=(
                    checkpoint.every if checkpoint is not None else DEFAULT_CHECKPOINT_EVERY
                ),
                guard=checkpoint.guard if checkpoint is not None else None,
                engine=engine,
                scenario=scenario,
            )
            with span(recorder, "summarize"):
                stats = summarize_supervised(result, budget=max_rounds)
        else:
            times = simulate_ensemble(
                protocol, config, max_rounds, rng, replicas, recorder,
                checkpoint=checkpoint, engine=engine, scenario=scenario,
            )
            with span(recorder, "summarize"):
                stats = summarize_times(times, budget=max_rounds)
        if recorder.enabled:
            timing.incr("replicas", replicas)
    return stats
