"""Persistent index over a trace directory: summarize once, query many.

``repro report`` used to re-parse every trace file on every invocation —
at millions of replica-rounds the text parse *is* the query cost.  This
module maintains ``TRACE_INDEX.json`` next to the traces: one entry per
trace file carrying its identity (size + mtime), format, schema version,
run signature, record counts, round range, and the full cached
:class:`~repro.analysis.report.TraceSummary`.  A refresh re-summarizes
only files whose identity changed (new, rewritten, or touched) and drops
entries whose files vanished, so a repeated report query is a single JSON
read — zero trace re-parsing — and a cold query over columnar traces
decodes memory-mapped column chunks instead of text.

The index is a pure cache: deleting it is always safe (the next refresh
rebuilds it), and every consumer falls back to direct summarization when
the directory is not writable.  ``repro trace index`` exposes refresh and
rebuild from the CLI.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

__all__ = [
    "INDEX_FILENAME",
    "INDEX_SCHEMA_VERSION",
    "TRACE_GLOBS",
    "index_path",
    "load_trace_index",
    "refresh_trace_index",
    "summaries_from_index",
    "write_trace_index",
]

INDEX_FILENAME = "TRACE_INDEX.json"
"""Name of the index file, stored inside the trace directory it describes."""

INDEX_SCHEMA_VERSION = 1

TRACE_GLOBS = ("*.jsonl", "*.ctrace")
"""Directory patterns that count as top-level trace files.

Deliberately excludes shard fragments (``*.jsonl.shard0``) and in-flight
``*.tmp`` staging files — the same population :func:`repro.analysis.
report.summarize_trace_dir` sees.
"""


def index_path(directory: Union[str, Path]) -> Path:
    """Where the index for ``directory`` lives."""
    return Path(directory) / INDEX_FILENAME


def _file_identity(path: Path) -> Tuple[int, int]:
    stat = path.stat()
    return int(stat.st_size), int(stat.st_mtime_ns)


def _trace_files(directory: Path) -> List[Path]:
    files = [
        path
        for pattern in TRACE_GLOBS
        for path in directory.glob(pattern)
        if not path.name.endswith(".tmp")
    ]
    return sorted(files, key=lambda path: path.name)


def load_trace_index(directory: Union[str, Path]) -> Dict[str, Any]:
    """Read a directory's index; an empty shell when absent or unusable.

    A corrupt or version-skewed index is treated as missing rather than
    fatal — it is a cache, and the refresh path rebuilds it.
    """
    path = index_path(directory)
    try:
        snapshot = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return {"schema": INDEX_SCHEMA_VERSION, "entries": {}}
    if (
        snapshot.get("schema") != INDEX_SCHEMA_VERSION
        or not isinstance(snapshot.get("entries"), dict)
    ):
        return {"schema": INDEX_SCHEMA_VERSION, "entries": {}}
    return snapshot


def write_trace_index(directory: Union[str, Path], index: Dict[str, Any]) -> Path:
    """Atomically publish an index document (tmp + fsync + rename)."""
    target = index_path(directory)
    tmp = target.with_name(target.name + ".tmp")
    with tmp.open("w") as handle:
        json.dump(index, handle, sort_keys=True, indent=1)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, target)
    return target


def _entry_for(path: Path, identity: Tuple[int, int]) -> Dict[str, Any]:
    """Summarize one trace file into its index entry (the only slow step)."""
    from repro.analysis.report import summarize_trace
    from repro.telemetry.columnar import detect_trace_format
    from repro.telemetry.recorder import TRACE_SCHEMA_VERSION

    summary = summarize_trace(path)
    tail = _round_range(path)
    return {
        "size": identity[0],
        "mtime_ns": identity[1],
        "format": detect_trace_format(path),
        "schema": TRACE_SCHEMA_VERSION,
        "signature": {
            "runner": summary.runner,
            "protocol": summary.protocol,
            "fingerprint": summary.fingerprint,
        },
        "counts": {
            "rounds": summary.rounds,
            "spans": sum(entry["calls"] for entry in summary.spans.values()),
        },
        "round_range": tail,
        "summary": asdict(summary),
    }


def _round_range(path: Path) -> Optional[List[int]]:
    """First/last round ``t`` of a trace, via the cheap tail reader."""
    from repro.analysis.watch import tail_trace_round

    last = tail_trace_round(path)
    if last is None or not isinstance(last.get("t"), int):
        return None
    # The first round's t is almost always the record-interval; reading it
    # would mean a head parse per refresh, so the range is [0, last] unless
    # a caller needs better — the summary's `rounds` count disambiguates.
    return [0, int(last["t"])]


def refresh_trace_index(
    directory: Union[str, Path],
    rebuild: bool = False,
    write: bool = True,
) -> Dict[str, Any]:
    """Bring a directory's index in sync with its trace files.

    Entries whose ``(size, mtime_ns)`` identity is unchanged are reused
    verbatim (their cached summaries are *not* recomputed); changed or new
    files are re-summarized; entries for deleted files are dropped.
    ``rebuild=True`` ignores the existing index entirely.  The refreshed
    document is written back atomically unless ``write=False`` or the
    directory refuses the write (read-only results mirror, e.g.) — the
    refreshed index is returned either way, so callers can always answer
    from it.

    Raises ``ValueError`` naming the offending file when a trace fails
    validation, exactly like :func:`~repro.analysis.report.
    summarize_trace_dir` — a corrupt artifact must fail loudly, not
    silently vanish from analytics.
    """
    directory = Path(directory)
    previous = {} if rebuild else load_trace_index(directory).get("entries", {})
    entries: Dict[str, Any] = {}
    refreshed = 0
    for path in _trace_files(directory):
        identity = _file_identity(path)
        cached = previous.get(path.name)
        if (
            cached is not None
            and (cached.get("size"), cached.get("mtime_ns")) == identity
        ):
            entries[path.name] = cached
            continue
        try:
            entries[path.name] = _entry_for(path, identity)
        except ValueError as error:
            raise ValueError(f"{path}: {error}") from error
        refreshed += 1
    index = {
        "schema": INDEX_SCHEMA_VERSION,
        "directory": str(directory),
        "entries": entries,
        "refreshed": refreshed,
    }
    if write:
        try:
            write_trace_index(directory, index)
        except OSError:
            pass  # read-only directory: serve the in-memory index
    return index


def summaries_from_index(
    directory: Union[str, Path], index: Dict[str, Any]
) -> List["TraceSummary"]:
    """Materialize the cached :class:`TraceSummary` objects, sorted by file.

    The ``path`` field is re-anchored to ``directory`` so a results tree
    that moved (CI artifact download, e.g.) still reports correct paths.
    """
    from repro.analysis.report import TraceSummary

    directory = Path(directory)
    summaries = []
    for name in sorted(index.get("entries", {})):
        payload = dict(index["entries"][name].get("summary", {}))
        payload["path"] = str(directory / name)
        payload["spans"] = payload.get("spans") or {}
        summaries.append(TraceSummary(**payload))
    return summaries
