"""Trace analytics and the benchmark-regression ledger.

The write side of observability lives in :mod:`repro.telemetry` (recorders,
JSONL and columnar traces) and :mod:`benchmarks/_harness` (``BENCH_*.json``
timing sidecars).  This module is the read side: it ingests directories of
those artifacts and turns them into

* per-trace summaries — rounds to consensus, rounds/sec, span time
  breakdowns, and the realized mean drift compared against the Proposition-5
  prediction ``n · F_n(x/n)`` (recomputed from the response tables embedded
  in the trace provenance, so a trace is self-contained evidence);
* per-protocol aggregates — convergence-time percentiles across runs,
  keyed by the protocol *fingerprint* so renamed-but-identical tables pool;
* the regression ledger — current ``BENCH_*.json`` wall clocks compared
  against the committed ``results/BASELINE.json`` snapshot with noise-aware
  thresholds (the relative slowdown gate widens with the baseline's
  recorded run-to-run variance).  Records carrying an ``ensemble`` block
  with ``failed_shards > 0`` — a supervised ensemble that lost shards —
  are verdicted ``"degraded"`` and refused by :func:`update_baseline`, so
  partial results can neither pass the gate nor poison the baseline.

``repro report`` renders all three; ``scripts/perf_gate.py`` turns the
ledger verdicts into an exit code.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.analysis.series import Table
from repro.core.bias import bias_value
from repro.protocols.table import table_protocol
from repro.telemetry import validate_trace
from repro.telemetry.columnar import detect_trace_format, load_columnar_data

__all__ = [
    "TraceSummary",
    "ProtocolReport",
    "ScenarioReport",
    "ComparisonRow",
    "summarize_trace",
    "summarize_trace_dir",
    "group_by_protocol",
    "group_by_scenario",
    "load_bench_records",
    "load_baseline",
    "compare_against_baseline",
    "update_baseline",
    "build_report",
    "render_report",
    "BASELINE_SCHEMA_VERSION",
    "DEFAULT_MIN_REL_SLOWDOWN",
    "DEFAULT_NOISE_SIGMAS",
]

BASELINE_SCHEMA_VERSION = 1

# A benchmark must slow down by at least this fraction before it can be
# called a regression, however quiet its baseline looks — single-shot wall
# clocks on shared machines jitter this much on their own.
DEFAULT_MIN_REL_SLOWDOWN = 0.30

# With >= 2 recorded baseline samples the gate widens to this many
# coefficient-of-variation units, so noisy benchmarks get a wider berth.
DEFAULT_NOISE_SIGMAS = 3.0

# Runners whose `count` field is a single chain's count; for these the
# Prop-5 drift comparison is exact.  Ensemble runners average counts over
# replicas (converged replicas stop moving), and the sequential runner
# ticks per move, so the per-round prediction does not apply there.
_SCALAR_COUNT_RUNNERS = frozenset(
    {"simulate", "escape_time", "time_to_leave_consensus"}
)


@dataclass(frozen=True)
class TraceSummary:
    """Everything ``repro report`` shows about one trace (either format).

    Attributes:
        path: the trace file.
        runner: provenance ``runner`` (``"simulate"``, ...).
        protocol: protocol name from provenance.
        fingerprint: protocol content hash (the pooling key).
        n: population size (``None`` if the runner had no ``n`` param).
        rounds: number of ``round`` records.
        converged: the run_end outcome, normalized to a bool when the
            runner reports one (``None`` otherwise).
        rounds_to_consensus: the runner-reported convergence time
            (``None`` when censored or not applicable).
        wall_clock_s: run_end wall clock (``None`` for timing-free traces).
        rounds_per_second: run_end throughput (``None`` likewise).
        mean_realized_drift: mean of the per-round ``drift`` fields.
        mean_predicted_drift: mean of ``n · F_n(x/n)`` along the same
            trajectory (``None`` when the trace lacks response tables or
            the runner's counts are not single-chain counts).
        drift_gap: ``mean_realized_drift - mean_predicted_drift``
            (``None`` when either side is); Prop. 5 bounds the *exact*
            per-round gap by 1, so large values flag a broken engine.
        spans: per-path ``{"calls", "wall_s", "counters"}`` totals from the
            trace's ``span`` records.
        scenario: canonical hostile-world spec from the run provenance
            (``None`` for clean runs; see docs/SCENARIOS.md).
        settle_round: round the scenario's perturbation schedule settles
            (``None`` for clean runs).
        recovered: replicas that re-converged after the settle round
            (``None`` for clean runs).
        recovery_p50, recovery_p90: recovery-time percentiles from the
            run_end summary (``None`` for clean runs or when nothing
            recovered).
    """

    path: str
    runner: str
    protocol: str
    fingerprint: str
    n: Optional[int]
    rounds: int
    converged: Optional[bool]
    rounds_to_consensus: Optional[float]
    wall_clock_s: Optional[float]
    rounds_per_second: Optional[float]
    mean_realized_drift: Optional[float]
    mean_predicted_drift: Optional[float]
    drift_gap: Optional[float]
    spans: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    scenario: Optional[str] = None
    settle_round: Optional[int] = None
    recovered: Optional[int] = None
    recovery_p50: Optional[float] = None
    recovery_p90: Optional[float] = None


@dataclass(frozen=True)
class ProtocolReport:
    """Aggregate over every trace sharing one protocol fingerprint.

    Attributes:
        protocol: representative protocol name.
        fingerprint: the pooling key.
        runs: number of traces.
        converged_runs: traces whose run reported convergence.
        rounds_p50, rounds_p90: percentiles of ``rounds_to_consensus``
            over converged runs (``nan`` if none converged).
        mean_rounds_per_second: mean throughput over traces that carry
            timings (``nan`` otherwise).
        mean_drift_gap: mean of the per-trace Prop-5 drift gaps
            (``nan`` when no trace could compute one).
        span_wall_s: per-span-path wall-clock totals summed across traces.
    """

    protocol: str
    fingerprint: str
    runs: int
    converged_runs: int
    rounds_p50: float
    rounds_p90: float
    mean_rounds_per_second: float
    mean_drift_gap: float
    span_wall_s: Dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class ScenarioReport:
    """Aggregate over every trace run under one hostile-world scenario.

    Attributes:
        scenario: the canonical scenario spec (the pooling key).
        runs: number of traces.
        converged_runs: traces whose run reported convergence.
        settle_round: the scenario's settle round (max over traces, in
            case the same spec ran under different round budgets).
        recovered: total replicas that re-converged after settling.
        recovery_p50, recovery_p90: recovery-time percentiles pooled over
            the per-trace percentiles (median of p50s, max of p90s —
            conservative without the raw per-replica times).
    """

    scenario: str
    runs: int
    converged_runs: int
    settle_round: int
    recovered: int
    recovery_p50: float
    recovery_p90: float


# ----------------------------------------------------------------------
# Trace ingestion
# ----------------------------------------------------------------------


def summarize_trace(path: Union[str, Path]) -> TraceSummary:
    """Validate one trace (either format) and reduce it to a summary.

    Columnar traces take the zero-reparse path: validation and the drift
    statistics run on the memory-mapped column arrays from
    :func:`~repro.telemetry.columnar.load_columnar_data`, never
    materialising per-round dicts.  JSONL traces parse line by line as
    before.  Both paths produce value-identical summaries.
    """
    if detect_trace_format(path) == "columnar":
        return _summarize_columnar(path)
    records = validate_trace(path)
    start = records[0]
    end = next(r for r in records if r.get("kind") == "run_end")
    rounds = [r for r in records if r.get("kind") == "round"]
    params = start.get("params", {})
    protocol_info = start.get("protocol", {})

    converged = end.get("converged")
    if isinstance(converged, (int, float)) and not isinstance(converged, bool):
        # Ensemble runners report a converged *count*; the run "converged"
        # if no replica was censored.
        converged = end.get("censored") == 0
    tau = end.get("rounds")
    if tau is None and end.get("activations") is not None and params.get("n"):
        tau = end["activations"] / params["n"]  # sequential: parallel rounds

    drifts = [r["drift"] for r in rounds if "drift" in r]
    realized = float(np.mean(drifts)) if drifts else None
    predicted = _mean_predicted_drift(start, rounds)
    gap = (
        realized - predicted
        if realized is not None and predicted is not None
        else None
    )

    spans = _aggregate_spans(
        record for record in records if record.get("kind") == "span"
    )

    return TraceSummary(
        **_scenario_fields(params, end),
        path=str(path),
        runner=start.get("runner", "?"),
        protocol=protocol_info.get("name", "?"),
        fingerprint=protocol_info.get("fingerprint", "?"),
        n=params.get("n"),
        rounds=len(rounds),
        converged=converged if isinstance(converged, bool) else None,
        rounds_to_consensus=float(tau) if tau is not None else None,
        wall_clock_s=end.get("wall_clock_s"),
        rounds_per_second=end.get("rounds_per_second"),
        mean_realized_drift=realized,
        mean_predicted_drift=predicted,
        drift_gap=gap,
        spans=spans,
    )


def _summarize_columnar(path: Union[str, Path]) -> TraceSummary:
    """The columnar fast path behind :func:`summarize_trace`.

    Everything scalar comes from the (already decoded) ``run_start`` /
    ``run_end`` dicts; the drift statistics are single vectorised reductions
    over the column arrays.
    """
    data = load_columnar_data(path)
    start, end = data.start, data.end
    params = start.get("params", {})
    protocol_info = start.get("protocol", {})

    converged = end.get("converged")
    if isinstance(converged, (int, float)) and not isinstance(converged, bool):
        converged = end.get("censored") == 0
    tau = end.get("rounds")
    if tau is None and end.get("activations") is not None and params.get("n"):
        tau = end["activations"] / params["n"]

    drifts = data.column("drift")
    realized = (
        float(drifts.mean()) if drifts is not None and drifts.size else None
    )
    counts = data.column("count")
    predicted = (
        _predicted_drift_from_counts(start, counts)
        if counts is not None
        else None
    )
    gap = (
        realized - predicted
        if realized is not None and predicted is not None
        else None
    )

    return TraceSummary(
        **_scenario_fields(params, end),
        path=str(path),
        runner=start.get("runner", "?"),
        protocol=protocol_info.get("name", "?"),
        fingerprint=protocol_info.get("fingerprint", "?"),
        n=params.get("n"),
        rounds=data.rounds,
        converged=converged if isinstance(converged, bool) else None,
        rounds_to_consensus=float(tau) if tau is not None else None,
        wall_clock_s=end.get("wall_clock_s"),
        rounds_per_second=end.get("rounds_per_second"),
        mean_realized_drift=realized,
        mean_predicted_drift=predicted,
        drift_gap=gap,
        spans=_aggregate_spans(data.spans),
    )


def _scenario_fields(
    params: Mapping[str, Any], end: Mapping[str, Any]
) -> Dict[str, Any]:
    """Scenario provenance and recovery statistics for a :class:`TraceSummary`.

    The spec travels in the run_start params and the recovery summary in
    the run_end (serial and supervised runners both emit them; see
    docs/OBSERVABILITY.md).  Clean traces carry neither, so every field
    stays ``None`` and old traces summarize exactly as before.
    """
    scenario = params.get("scenario") or end.get("scenario")
    if scenario is None:
        return {}
    settle = params.get("settle_round", end.get("settle_round"))
    recovered = end.get("recovered")
    return {
        "scenario": str(scenario),
        "settle_round": int(settle) if settle is not None else None,
        "recovered": int(recovered) if recovered is not None else None,
        "recovery_p50": end.get("recovery_p50"),
        "recovery_p90": end.get("recovery_p90"),
    }


def _aggregate_spans(
    records: Iterable[Mapping[str, Any]],
) -> Dict[str, Dict[str, Any]]:
    """Fold ``span`` records into per-path call/wall-clock/counter totals."""
    spans: Dict[str, Dict[str, Any]] = {}
    for record in records:
        entry = spans.setdefault(
            record["path"], {"calls": 0, "wall_s": 0.0, "counters": {}}
        )
        entry["calls"] += 1
        entry["wall_s"] += record.get("wall_s") or 0.0
        for key, value in record.get("counters", {}).items():
            entry["counters"][key] = entry["counters"].get(key, 0) + value
    return spans


def _mean_predicted_drift(
    start: Mapping[str, Any], rounds: Sequence[Mapping[str, Any]]
) -> Optional[float]:
    """Mean Prop-5 prediction ``n · F_n(x/n)`` along the recorded trajectory.

    Evaluated at each round's *previous* count (the state the drift was
    realized from), exactly like the realized ``drift`` field telescopes.
    Requires the response tables (``protocol.g0/g1``) in the provenance and
    a scalar-count runner.
    """
    if not rounds:
        return None
    return _predicted_drift_from_counts(
        start, np.asarray([r["count"] for r in rounds], dtype=float)
    )


def _predicted_drift_from_counts(
    start: Mapping[str, Any], counts: np.ndarray
) -> Optional[float]:
    """:func:`_mean_predicted_drift` on a ready-made per-round count array."""
    if start.get("runner") not in _SCALAR_COUNT_RUNNERS:
        return None
    protocol_info = start.get("protocol", {})
    g0, g1 = protocol_info.get("g0"), protocol_info.get("g1")
    n = start.get("params", {}).get("n")
    x0 = start.get("params", {}).get("x0")
    if g0 is None or g1 is None or not n or x0 is None or not len(counts):
        return None
    protocol = table_protocol(g0, g1, name=protocol_info.get("name", "trace"))
    previous = np.concatenate(
        ([float(x0)], np.asarray(counts, dtype=float)[:-1])
    )
    predictions = n * np.asarray(bias_value(protocol, previous / n))
    return float(predictions.mean())


def summarize_trace_dir(
    directory: Union[str, Path], use_index: bool = False
) -> List[TraceSummary]:
    """Summarize every trace (``*.jsonl`` + ``*.ctrace``) under ``directory``.

    Results are sorted by file name.  With ``use_index=True`` the
    directory's persistent ``TRACE_INDEX.json`` is refreshed first — only
    files whose size/mtime identity changed get re-summarized — and the
    summaries are answered from the index, which is what makes a repeated
    ``repro report`` a constant-time query instead of a full re-parse.

    Unreadable or schema-violating traces raise ``ValueError`` naming the
    offending file, so a corrupt artifact fails loudly rather than silently
    shrinking the report.
    """
    directory = Path(directory)
    if use_index:
        from repro.analysis.index import refresh_trace_index, summaries_from_index

        return summaries_from_index(directory, refresh_trace_index(directory))
    summaries = []
    traces = list(directory.glob("*.jsonl")) + list(directory.glob("*.ctrace"))
    for path in sorted(traces, key=lambda path: path.name):
        try:
            summaries.append(summarize_trace(path))
        except ValueError as error:
            raise ValueError(f"{path}: {error}") from error
    return summaries


def group_by_protocol(summaries: Sequence[TraceSummary]) -> List[ProtocolReport]:
    """Pool trace summaries by protocol fingerprint."""
    groups: Dict[str, List[TraceSummary]] = {}
    for summary in summaries:
        groups.setdefault(summary.fingerprint, []).append(summary)
    reports = []
    for fingerprint, members in sorted(groups.items()):
        taus = [
            m.rounds_to_consensus
            for m in members
            if m.converged and m.rounds_to_consensus is not None
        ]
        rates = [m.rounds_per_second for m in members if m.rounds_per_second]
        gaps = [m.drift_gap for m in members if m.drift_gap is not None]
        span_wall: Dict[str, float] = {}
        for member in members:
            for path, entry in member.spans.items():
                span_wall[path] = span_wall.get(path, 0.0) + entry["wall_s"]
        reports.append(
            ProtocolReport(
                protocol=members[0].protocol,
                fingerprint=fingerprint,
                runs=len(members),
                converged_runs=sum(1 for m in members if m.converged),
                rounds_p50=float(np.percentile(taus, 50)) if taus else float("nan"),
                rounds_p90=float(np.percentile(taus, 90)) if taus else float("nan"),
                mean_rounds_per_second=(
                    float(np.mean(rates)) if rates else float("nan")
                ),
                mean_drift_gap=float(np.mean(gaps)) if gaps else float("nan"),
                span_wall_s=span_wall,
            )
        )
    return reports


def group_by_scenario(summaries: Sequence[TraceSummary]) -> List[ScenarioReport]:
    """Pool trace summaries by canonical scenario spec (clean runs skipped)."""
    groups: Dict[str, List[TraceSummary]] = {}
    for summary in summaries:
        if summary.scenario is not None:
            groups.setdefault(summary.scenario, []).append(summary)
    reports = []
    for scenario, members in sorted(groups.items()):
        p50s = [m.recovery_p50 for m in members if m.recovery_p50 is not None]
        p90s = [m.recovery_p90 for m in members if m.recovery_p90 is not None]
        reports.append(
            ScenarioReport(
                scenario=scenario,
                runs=len(members),
                converged_runs=sum(1 for m in members if m.converged),
                settle_round=max(
                    (m.settle_round or 0) for m in members
                ),
                recovered=sum(m.recovered or 0 for m in members),
                recovery_p50=float(np.median(p50s)) if p50s else float("nan"),
                recovery_p90=float(np.max(p90s)) if p90s else float("nan"),
            )
        )
    return reports


# ----------------------------------------------------------------------
# Benchmark ledger
# ----------------------------------------------------------------------


def load_bench_records(directory: Union[str, Path]) -> Dict[str, Dict[str, Any]]:
    """Read every ``BENCH_*.json`` under ``directory``, keyed by experiment id."""
    directory = Path(directory)
    records = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            record = json.loads(path.read_text())
        except json.JSONDecodeError as error:
            raise ValueError(f"{path} is not valid JSON: {error}") from error
        experiment = record.get("experiment") or path.stem[len("BENCH_"):]
        records[experiment] = record
    return records


def load_baseline(path: Union[str, Path]) -> Dict[str, Any]:
    """Load a ``BASELINE.json`` ledger snapshot; `{}` sentinel if absent.

    The snapshot maps experiment ids to their reference timing::

        {"schema": 1, "experiments": {"E2_...": {
            "wall_clock_s": 3.17,          # mean of the samples
            "samples": [3.05, 3.29],       # individual run wall clocks
            "rounds": 38702, "rounds_per_second": 12198.1}}}
    """
    path = Path(path)
    if not path.exists():
        return {"schema": BASELINE_SCHEMA_VERSION, "experiments": {}}
    snapshot = json.loads(path.read_text())
    if snapshot.get("schema") != BASELINE_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported baseline schema {snapshot.get('schema')!r} in {path} "
            f"(expected {BASELINE_SCHEMA_VERSION})"
        )
    if not isinstance(snapshot.get("experiments"), dict):
        raise ValueError(f"baseline {path} is missing its experiments map")
    return snapshot


@dataclass(frozen=True)
class ComparisonRow:
    """One experiment's verdict in the regression ledger.

    Attributes:
        experiment: the experiment id.
        baseline_s: baseline mean wall clock (``nan`` when new).
        current_s: current wall clock (``nan`` when missing).
        ratio: ``current_s / baseline_s`` (``nan`` when undefined).
        threshold: the ratio above which this experiment regresses —
            ``1 + max(min_rel_slowdown, sigma · cv)`` with ``cv`` the
            baseline samples' coefficient of variation.
        verdict: ``"ok"``, ``"regression"``, ``"improved"``, ``"new"``
            (no baseline entry), ``"missing"`` (baseline entry but no
            current record), ``"untimed"`` (record without a wall clock —
            ``emit()`` was called outside ``run_once()``),
            ``"incomparable"`` (one side was timed in smoke sizing and the
            other at full sizing), ``"failed"`` (the experiment raised
            or timed out mid-run and the harness archived the failure), or
            ``"degraded"`` (the record's supervised ensemble lost shards —
            its timing covers less work than the baseline's, so the ratio
            is meaningless and the record must not enter the baseline).
    """

    experiment: str
    baseline_s: float
    current_s: float
    ratio: float
    threshold: float
    verdict: str


def compare_against_baseline(
    current: Mapping[str, Mapping[str, Any]],
    baseline: Mapping[str, Any],
    min_rel_slowdown: float = DEFAULT_MIN_REL_SLOWDOWN,
    noise_sigmas: float = DEFAULT_NOISE_SIGMAS,
) -> List[ComparisonRow]:
    """Compare current ``BENCH_*`` records against a baseline snapshot.

    The gate is noise-aware: an experiment whose baseline carries several
    samples with coefficient of variation ``cv`` must slow down by more
    than ``max(min_rel_slowdown, noise_sigmas · cv)`` (relative) before it
    is flagged — within-variance jitter stays ``"ok"``.  Symmetrically,
    speedups beyond the same gate are reported as ``"improved"`` so the
    perf trajectory is visible in both directions.
    """
    experiments = baseline.get("experiments", {})
    rows = []
    for experiment in sorted(set(experiments) | set(current)):
        entry = experiments.get(experiment)
        record = current.get(experiment)
        current_s = record.get("wall_clock_s") if record else None
        if record is not None and record.get("status") == "failed":
            baseline_s = (entry or {}).get("wall_clock_s")
            rows.append(
                ComparisonRow(
                    experiment=experiment,
                    baseline_s=float(baseline_s) if baseline_s else float("nan"),
                    current_s=float("nan"),
                    ratio=float("nan"),
                    threshold=float("nan"),
                    verdict="failed",
                )
            )
            continue
        if record is not None and (record.get("ensemble") or {}).get("failed_shards"):
            # Partial results time less work than the baseline did; the
            # ratio is meaningless and must not look like an improvement.
            baseline_s = (entry or {}).get("wall_clock_s")
            rows.append(
                ComparisonRow(
                    experiment=experiment,
                    baseline_s=float(baseline_s) if baseline_s else float("nan"),
                    current_s=float(current_s) if current_s else float("nan"),
                    ratio=float("nan"),
                    threshold=float("nan"),
                    verdict="degraded",
                )
            )
            continue
        if entry is None:
            rows.append(
                ComparisonRow(
                    experiment=experiment,
                    baseline_s=float("nan"),
                    current_s=float(current_s) if current_s else float("nan"),
                    ratio=float("nan"),
                    threshold=float("nan"),
                    # emit() without run_once() archives no wall clock; such
                    # records can never enter the baseline, so distinguish
                    # them from genuinely new timed experiments
                    verdict="new" if current_s else "untimed",
                )
            )
            continue
        samples = [s for s in entry.get("samples", []) if s]
        baseline_s = entry.get("wall_clock_s")
        if baseline_s is None and samples:
            baseline_s = float(np.mean(samples))
        cv = 0.0
        if len(samples) >= 2:
            mean = float(np.mean(samples))
            if mean > 0:
                cv = float(np.std(samples, ddof=1)) / mean
        allowed = max(min_rel_slowdown, noise_sigmas * cv)
        threshold = 1.0 + allowed
        if current_s is None or not baseline_s:
            rows.append(
                ComparisonRow(
                    experiment=experiment,
                    baseline_s=float(baseline_s) if baseline_s else float("nan"),
                    current_s=float("nan"),
                    ratio=float("nan"),
                    threshold=threshold,
                    verdict="missing",
                )
            )
            continue
        ratio = float(current_s) / float(baseline_s)
        if bool(record.get("smoke")) != bool(entry.get("smoke")):
            # Smoke and full sizing time different workloads; a ratio
            # between them is meaningless, not a regression.
            rows.append(
                ComparisonRow(
                    experiment=experiment,
                    baseline_s=float(baseline_s),
                    current_s=float(current_s),
                    ratio=ratio,
                    threshold=threshold,
                    verdict="incomparable",
                )
            )
            continue
        if ratio > threshold:
            verdict = "regression"
        elif ratio < 1.0 / threshold:
            verdict = "improved"
        else:
            verdict = "ok"
        rows.append(
            ComparisonRow(
                experiment=experiment,
                baseline_s=float(baseline_s),
                current_s=float(current_s),
                ratio=ratio,
                threshold=threshold,
                verdict=verdict,
            )
        )
    return rows


def update_baseline(
    current: Mapping[str, Mapping[str, Any]],
    baseline: Mapping[str, Any],
    max_samples: int = 10,
) -> Dict[str, Any]:
    """Fold current ``BENCH_*`` records into a (new) baseline snapshot.

    Each experiment's wall clock is *appended* to its sample list (capped
    at the trailing ``max_samples``) and the reference ``wall_clock_s``
    becomes the sample mean — repeated `perf_gate.py --update-baseline`
    runs therefore accumulate exactly the run-to-run variance that
    :func:`compare_against_baseline` gates on.

    Records from degraded supervised ensembles (``ensemble.failed_shards
    > 0``) are skipped: their wall clock timed only the surviving shards,
    and folding it in would teach the gate a reference that honest full
    runs can never beat.
    """
    experiments: Dict[str, Any] = {
        k: dict(v) for k, v in baseline.get("experiments", {}).items()
    }
    for experiment, record in current.items():
        wall = record.get("wall_clock_s")
        if wall is None:
            continue
        if (record.get("ensemble") or {}).get("failed_shards"):
            continue
        entry = experiments.setdefault(experiment, {})
        samples = [s for s in entry.get("samples", []) if s]
        samples.append(float(wall))
        samples = samples[-max_samples:]
        entry["samples"] = samples
        entry["wall_clock_s"] = float(np.mean(samples))
        entry["smoke"] = bool(record.get("smoke"))
        for key in ("rounds", "rounds_per_second"):
            if record.get(key) is not None:
                entry[key] = record[key]
    return {"schema": BASELINE_SCHEMA_VERSION, "experiments": experiments}


# ----------------------------------------------------------------------
# Assembly and rendering
# ----------------------------------------------------------------------


def build_report(
    results_dir: Union[str, Path],
    baseline_path: Optional[Union[str, Path]] = None,
    min_rel_slowdown: float = DEFAULT_MIN_REL_SLOWDOWN,
    noise_sigmas: float = DEFAULT_NOISE_SIGMAS,
    use_index: bool = True,
) -> Dict[str, Any]:
    """Assemble the full analytics report for a results directory.

    Returns a JSON-able dict with ``traces`` (per-trace summaries),
    ``protocols`` (per-fingerprint aggregates), ``benchmarks`` (ledger
    comparison rows), ``regressions`` (the flagged subset), ``failed``
    (experiments whose harness archived a mid-run failure or timeout), and
    ``degraded`` (records from supervised ensembles that lost shards), and
    ``resources`` (per-experiment peak RSS / CPU time, for the records new
    enough to carry them).  The baseline defaults to
    ``<results_dir>/BASELINE.json``; the gate thresholds are forwarded to
    :func:`compare_against_baseline`.

    Trace summaries answer from the directory's persistent index by
    default (``use_index=True``); see :func:`summarize_trace_dir`.  The
    index write is best-effort, so read-only results mirrors still report.
    """
    results_dir = Path(results_dir)
    if baseline_path is None:
        baseline_path = results_dir / "BASELINE.json"
    summaries = summarize_trace_dir(results_dir, use_index=use_index)
    protocols = group_by_protocol(summaries)
    scenarios = group_by_scenario(summaries)
    current = load_bench_records(results_dir)
    baseline = load_baseline(baseline_path)
    comparison = compare_against_baseline(
        current, baseline,
        min_rel_slowdown=min_rel_slowdown, noise_sigmas=noise_sigmas,
    )
    resources = [
        {
            "experiment": experiment,
            "cpu_s": record.get("cpu_s"),
            "max_rss_bytes": record.get("max_rss_bytes"),
            "wall_clock_s": record.get("wall_clock_s"),
        }
        for experiment, record in sorted(current.items())
        if record.get("cpu_s") is not None
        or record.get("max_rss_bytes") is not None
    ]
    return {
        "results_dir": str(results_dir),
        "baseline": str(baseline_path),
        "traces": [asdict(s) for s in summaries],
        "protocols": [asdict(p) for p in protocols],
        "scenarios": [asdict(s) for s in scenarios],
        "benchmarks": [asdict(row) for row in comparison],
        "resources": resources,
        "regressions": [
            asdict(row) for row in comparison if row.verdict == "regression"
        ],
        "failed": [asdict(row) for row in comparison if row.verdict == "failed"],
        "degraded": [
            asdict(row) for row in comparison if row.verdict == "degraded"
        ],
    }


def render_report(report: Mapping[str, Any]) -> str:
    """Render :func:`build_report` output as the human-readable tables."""
    sections = []

    protocols = report.get("protocols", [])
    if protocols:
        table = Table(
            f"Per-protocol trace analytics ({len(report.get('traces', []))} traces "
            f"under {report.get('results_dir')})",
            ["protocol", "runs", "conv", "tau p50", "tau p90",
             "rounds/sec", "drift gap"],
        )
        for row in protocols:
            table.add_row(
                row["protocol"],
                row["runs"],
                row["converged_runs"],
                _fmt(row["rounds_p50"]),
                _fmt(row["rounds_p90"]),
                _fmt(row["mean_rounds_per_second"]),
                _fmt(row["mean_drift_gap"], digits=4),
            )
        sections.append(table.render())
        span_lines = _render_span_breakdown(protocols)
        if span_lines:
            sections.append(span_lines)
        scenarios = report.get("scenarios", [])
        if scenarios:
            table = Table(
                "Per-scenario recovery (hostile-world traces)",
                ["scenario", "runs", "conv", "settle", "recovered",
                 "recovery p50", "recovery p90"],
            )
            for row in scenarios:
                table.add_row(
                    row["scenario"],
                    row["runs"],
                    row["converged_runs"],
                    row["settle_round"],
                    row["recovered"],
                    _fmt(row["recovery_p50"]),
                    _fmt(row["recovery_p90"]),
                )
            sections.append(table.render())
    else:
        sections.append(
            f"no traces under {report.get('results_dir')} "
            "(run e.g. `python -m repro run voter --trace results/run.jsonl`)"
        )

    benchmarks = report.get("benchmarks", [])
    if benchmarks:
        table = Table(
            f"Benchmark ledger vs {report.get('baseline')}",
            ["experiment", "baseline s", "current s", "ratio", "gate", "verdict"],
        )
        for row in benchmarks:
            table.add_row(
                row["experiment"],
                _fmt(row["baseline_s"]),
                _fmt(row["current_s"]),
                _fmt(row["ratio"], digits=3),
                _fmt(row["threshold"], digits=3),
                row["verdict"],
            )
        sections.append(table.render())
        regressions = report.get("regressions", [])
        if regressions:
            names = ", ".join(r["experiment"] for r in regressions)
            sections.append(f"REGRESSIONS: {names}")
        else:
            sections.append("no regressions against the baseline")
        failed = report.get("failed", [])
        if failed:
            names = ", ".join(r["experiment"] for r in failed)
            sections.append(f"FAILED EXPERIMENTS: {names}")
        degraded = report.get("degraded", [])
        if degraded:
            names = ", ".join(r["experiment"] for r in degraded)
            sections.append(f"DEGRADED (shards lost, partial timings): {names}")
        resources = report.get("resources", [])
        if resources:
            table = Table(
                "Resource usage (per BENCH record; children included)",
                ["experiment", "wall s", "cpu s", "peak rss"],
            )
            for row in resources:
                table.add_row(
                    row["experiment"],
                    _fmt(row.get("wall_clock_s")),
                    _fmt(row.get("cpu_s")),
                    _fmt_bytes(row.get("max_rss_bytes")),
                )
            sections.append(table.render())
    else:
        sections.append(
            f"no BENCH_*.json records under {report.get('results_dir')} "
            "(run `python -m repro bench`)"
        )
    return "\n\n".join(sections)


def _render_span_breakdown(protocols: Sequence[Mapping[str, Any]]) -> str:
    totals: Dict[str, float] = {}
    for row in protocols:
        for path, wall in row.get("span_wall_s", {}).items():
            totals[path] = totals.get(path, 0.0) + wall
    if not totals:
        return ""
    table = Table(
        "Span wall-clock breakdown (all traces)", ["span path", "total s"]
    )
    for path in sorted(totals, key=totals.get, reverse=True):
        table.add_row(path, _fmt(totals[path], digits=4))
    return table.render()


def _fmt_bytes(count: Any) -> str:
    if count is None:
        return "-"
    value = float(count)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if value < 1024 or unit == "TB":
            return f"{value:.0f}{unit}" if unit == "B" else f"{value:.1f}{unit}"
        value /= 1024
    return f"{value:.1f}TB"  # pragma: no cover - loop always returns


def _fmt(value: Any, digits: int = 2) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if math.isnan(value):
            return "-"
        return f"{value:.{digits}f}"
    return str(value)
