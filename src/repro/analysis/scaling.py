"""Asymptotic-shape fits: turning tau-vs-n tables into paper-vs-measured rows.

The paper's claims are asymptotic shapes — ``Theta(n log n)``,
``Omega(n^(1-eps))``, ``O(log^2 n)``.  Absolute constants are not expected
to transfer from the authors' analysis to a simulator, but the *shape*
(log-log slope, boundedness of normalized ratios, who beats whom) must.
This module provides the fits the benchmarks print.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

__all__ = [
    "PowerLawFit",
    "fit_power_law",
    "normalized_ratios",
    "ratio_drift",
    "is_bounded_shape",
]


@dataclass(frozen=True)
class PowerLawFit:
    """Least-squares fit of ``y = c * x^alpha`` on log-log axes.

    Attributes:
        exponent: the fitted ``alpha`` (the log-log slope).
        prefactor: the fitted ``c``.
        r_squared: coefficient of determination of the log-log regression.
    """

    exponent: float
    prefactor: float
    r_squared: float

    def predict(self, x) -> np.ndarray:
        return self.prefactor * np.asarray(x, dtype=float) ** self.exponent


def fit_power_law(x: Sequence[float], y: Sequence[float]) -> PowerLawFit:
    """Fit ``y ~ c x^alpha`` by linear regression in log-log space."""
    x_array = np.asarray(x, dtype=float)
    y_array = np.asarray(y, dtype=float)
    if x_array.shape != y_array.shape or x_array.ndim != 1:
        raise ValueError("x and y must be 1-D arrays of equal length")
    if len(x_array) < 2:
        raise ValueError("need at least two points to fit a power law")
    if np.any(x_array <= 0) or np.any(y_array <= 0):
        raise ValueError("power-law fit requires strictly positive data")
    if np.any(~np.isfinite(y_array)):
        raise ValueError(
            "y contains non-finite values (censored runs?); filter them "
            "before fitting"
        )
    log_x = np.log(x_array)
    log_y = np.log(y_array)
    slope, intercept = np.polyfit(log_x, log_y, 1)
    predicted = slope * log_x + intercept
    residual = np.sum((log_y - predicted) ** 2)
    total = np.sum((log_y - log_y.mean()) ** 2)
    r_squared = 1.0 if total == 0 else 1.0 - residual / total
    return PowerLawFit(
        exponent=float(slope),
        prefactor=float(math.exp(intercept)),
        r_squared=float(r_squared),
    )


def normalized_ratios(
    n_values: Sequence[float],
    times: Sequence[float],
    shape: Callable[[float], float],
) -> np.ndarray:
    """The ratios ``times[i] / shape(n[i])`` — flat iff ``times = Theta(shape)``."""
    n_array = np.asarray(n_values, dtype=float)
    t_array = np.asarray(times, dtype=float)
    if n_array.shape != t_array.shape:
        raise ValueError("n_values and times must have the same shape")
    denominators = np.array([shape(v) for v in n_array], dtype=float)
    if np.any(denominators <= 0):
        raise ValueError("shape function must be strictly positive on the data")
    return t_array / denominators


def ratio_drift(ratios: Sequence[float]) -> float:
    """Log-log slope of the normalized ratios against their index.

    Near 0 for a correct shape; systematically positive (negative) when the
    proposed shape under- (over-) estimates the growth.
    """
    ratios = np.asarray(ratios, dtype=float)
    if len(ratios) < 2:
        raise ValueError("need at least two ratios")
    index = np.arange(1, len(ratios) + 1, dtype=float)
    fit = fit_power_law(index, ratios)
    return fit.exponent


def is_bounded_shape(
    ratios: Sequence[float], spread_tolerance: float = 10.0
) -> bool:
    """Heuristic Theta-check: the normalized ratios stay within a decade.

    Simulation noise and small-``n`` transients make exact flatness
    unrealistic; a max/min spread below ``spread_tolerance`` across a
    several-octave sweep of ``n`` is the operational "bounded" used when
    EXPERIMENTS.md declares a shape confirmed.
    """
    ratios = np.asarray(ratios, dtype=float)
    if np.any(ratios <= 0):
        raise ValueError("ratios must be strictly positive")
    return bool(ratios.max() / ratios.min() <= spread_tolerance)
