"""Plain-text data series: how figures are "drawn" in this repository.

The environment is plotting-library-free by design, so every figure of the
paper is regenerated as a :class:`Series` (or a table of them) rendered as
aligned text and CSV.  EXPERIMENTS.md embeds these renderings; anyone with a
plotting tool can re-plot from the CSV.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

__all__ = ["Series", "Table", "ascii_plot"]


@dataclass(frozen=True)
class Series:
    """A named 1-D data series ``y`` over support ``x``."""

    name: str
    x: np.ndarray
    y: np.ndarray

    def __post_init__(self) -> None:
        x = np.asarray(self.x, dtype=float)
        y = np.asarray(self.y, dtype=float)
        if x.shape != y.shape or x.ndim != 1:
            raise ValueError(
                f"x and y must be equal-length vectors, got {x.shape}, {y.shape}"
            )
        object.__setattr__(self, "x", x)
        object.__setattr__(self, "y", y)

    def to_csv(self, x_label: str = "x") -> str:
        buffer = io.StringIO()
        buffer.write(f"{x_label},{self.name}\n")
        for xi, yi in zip(self.x, self.y):
            buffer.write(f"{xi:.10g},{yi:.10g}\n")
        return buffer.getvalue()


@dataclass
class Table:
    """An aligned experiment table with a caption, printable and CSV-able."""

    caption: str
    columns: List[str]
    rows: List[List[object]] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values but the table has "
                f"{len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def render(self) -> str:
        cells = [[_format(v) for v in row] for row in self.rows]
        widths = [
            max(len(self.columns[j]), *(len(r[j]) for r in cells)) if cells else len(self.columns[j])
            for j in range(len(self.columns))
        ]
        lines = [self.caption]
        header = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
        return "\n".join(lines)

    def to_csv(self) -> str:
        buffer = io.StringIO()
        buffer.write(",".join(self.columns) + "\n")
        for row in self.rows:
            buffer.write(",".join(_format(v) for v in row) + "\n")
        return buffer.getvalue()


def ascii_plot(
    series: Sequence[Series],
    width: int = 72,
    height: int = 18,
    markers: str = "*+ox#@",
    y_min: Optional[float] = None,
    y_max: Optional[float] = None,
) -> str:
    """A minimal ASCII scatter of one or more series on shared axes.

    Good enough to eyeball the shape of a reproduced figure directly in a
    terminal or in EXPERIMENTS.md; the CSV renderings carry the real data.
    """
    if not series:
        raise ValueError("need at least one series")
    all_x = np.concatenate([s.x for s in series])
    all_y = np.concatenate([s.y for s in series])
    finite = np.isfinite(all_y)
    if not finite.any():
        raise ValueError("no finite data to plot")
    x_lo, x_hi = float(all_x.min()), float(all_x.max())
    y_lo = float(all_y[finite].min()) if y_min is None else y_min
    y_hi = float(all_y[finite].max()) if y_max is None else y_max
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    for index, s in enumerate(series):
        marker = markers[index % len(markers)]
        for xi, yi in zip(s.x, s.y):
            if not np.isfinite(yi):
                continue
            col = int((xi - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((yi - y_lo) / (y_hi - y_lo) * (height - 1))
            row = height - 1 - min(max(row, 0), height - 1)
            col = min(max(col, 0), width - 1)
            grid[row][col] = marker
    lines = [f"{y_hi:>12.4g} +" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append(" " * 13 + "|" + "".join(row))
    lines.append(f"{y_lo:>12.4g} +" + "".join(grid[-1]))
    lines.append(" " * 14 + f"{x_lo:<.4g}" + " " * max(1, width - 16) + f"{x_hi:>.4g}")
    legend = "   ".join(
        f"{markers[i % len(markers)]} {s.name}" for i, s in enumerate(series)
    )
    lines.append(" " * 14 + legend)
    return "\n".join(lines)


def _format(value: object) -> str:
    if isinstance(value, float):
        if np.isnan(value):
            return "nan"
        if np.isinf(value):
            return "inf" if value > 0 else "-inf"
        return f"{value:.6g}"
    return str(value)
