"""Trajectory ensembles and quantile fans.

Figure-style output for stochastic processes: run many replicas of the
count chain in lock-step, record the full count matrix, and summarize it as
per-round quantile bands (a "fan chart") plus the mean-field shadow, ready
for :func:`repro.analysis.series.ascii_plot` or CSV export.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.analysis.series import Series
from repro.core.mean_field import iterate_mean_field
from repro.core.protocol import Protocol
from repro.core.roots import is_zero_bias
from repro.dynamics.config import Configuration
from repro.dynamics.engine import step_counts_batch

__all__ = ["TrajectoryFan", "trajectory_fan"]


@dataclass(frozen=True)
class TrajectoryFan:
    """Quantile bands of an ensemble of count trajectories.

    Attributes:
        rounds: time axis (0..T).
        q10, median, q90: per-round quantiles of the count.
        mean_field: the deterministic shadow (``None`` for zero-bias
            protocols, whose mean field is the identity).
        replicas: ensemble size.
    """

    rounds: np.ndarray
    q10: np.ndarray
    median: np.ndarray
    q90: np.ndarray
    mean_field: Optional[np.ndarray]
    replicas: int

    def as_series(self, normalize: Optional[int] = None) -> List[Series]:
        """The fan as plottable series (optionally as fractions of ``n``)."""
        scale = 1.0 if normalize is None else 1.0 / normalize
        series = [
            Series("q10", self.rounds, self.q10 * scale),
            Series("median", self.rounds, self.median * scale),
            Series("q90", self.rounds, self.q90 * scale),
        ]
        if self.mean_field is not None:
            series.append(Series("mean-field", self.rounds, self.mean_field * scale))
        return series


def trajectory_fan(
    protocol: Protocol,
    config: Configuration,
    rounds: int,
    rng: np.random.Generator,
    replicas: int = 100,
) -> TrajectoryFan:
    """Run ``replicas`` lock-step chains for ``rounds`` and band them.

    Converged replicas stay parked at the consensus (it is absorbing for
    Proposition-3-compliant protocols, which the engine requires anyway),
    so the bands remain meaningful past individual convergence times.
    """
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    if replicas < 2:
        raise ValueError(f"replicas must be >= 2, got {replicas}")
    n, z = config.n, config.z
    counts = np.full(replicas, config.x0, dtype=np.int64)
    history = np.empty((rounds + 1, replicas), dtype=np.int64)
    history[0] = counts
    for t in range(1, rounds + 1):
        counts = step_counts_batch(protocol, n, z, counts, rng)
        history[t] = counts
    shadow = None
    if not is_zero_bias(protocol):
        shadow = iterate_mean_field(protocol, config.x0 / n, rounds) * n
    return TrajectoryFan(
        rounds=np.arange(rounds + 1, dtype=float),
        q10=np.quantile(history, 0.1, axis=1),
        median=np.quantile(history, 0.5, axis=1),
        q90=np.quantile(history, 0.9, axis=1),
        mean_field=shadow,
        replicas=replicas,
    )
