"""`repro watch`: a live terminal dashboard over heartbeat + trace files.

The watcher is a pure *reader*: it tails the atomic heartbeat files a run
(serial or supervised) publishes next to its checkpoints, plus the last
round record of any traces (JSONL or columnar) beside them, and renders
per-shard
progress bars, throughput, ETA, attempt counts, memory, and quarantine
state.  No IPC with the run means the same command is a post-mortem
viewer: pointed at a dead run's directory it renders the final (or torn)
heartbeats exactly as the crash left them — "is it stuck or just slow?"
answered from the filesystem alone.

Staleness is the liveness signal: a non-terminal heartbeat older than
``stale_after`` seconds is flagged ``stale?``, because a healthy writer
rewrites its file at least once per interval.  Torn heartbeats (the
``heartbeat:mid_write`` fault, or a crash mid-rename on a non-atomic
filesystem) render as ``UNREADABLE`` rather than being hidden.

Pointed at a *service* root (a directory holding ``jobs.journal`` /
``jobs.snapshot.json``, see docs/SERVICE.md) the watcher switches to the
job view: one line per job with its journaled state, attempt/retry
counts, and the per-job heartbeat — an active job whose heartbeat is
stale (or missing) is flagged ``ORPHANED?``, exactly the condition the
service's own restart recovery acts on.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.telemetry.heartbeat import (
    HEARTBEAT_SUFFIX,
    Heartbeat,
    discover_heartbeats,
)
from repro.telemetry.jsonl import COLUMNAR_MAGIC

__all__ = [
    "discover_traces",
    "is_service_root",
    "render_frame",
    "render_service_frame",
    "tail_trace_round",
    "watch",
]

_BAR_WIDTH = 20
_TAIL_BYTES = 65536


def _format_bytes(count: Optional[int]) -> str:
    if count is None:
        return "-"
    value = float(count)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if value < 1024 or unit == "TB":
            return f"{value:.0f}{unit}" if unit == "B" else f"{value:.1f}{unit}"
        value /= 1024
    return f"{value:.1f}TB"  # pragma: no cover - loop always returns


def _format_duration(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    seconds = max(0.0, float(seconds))
    if seconds < 60:
        return f"{seconds:.0f}s"
    minutes, secs = divmod(int(seconds), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


def _bar(fraction: Optional[float]) -> str:
    if fraction is None:
        return "[" + "?" * _BAR_WIDTH + "]"
    fraction = min(1.0, max(0.0, fraction))
    filled = int(round(fraction * _BAR_WIDTH))
    return "[" + "#" * filled + "-" * (_BAR_WIDTH - filled) + "]"


def _progress_fraction(beat: Heartbeat) -> Optional[float]:
    """Replica completion when known, else round progress, else unknown."""
    if beat.replicas and beat.replicas_done is not None:
        return beat.replicas_done / beat.replicas
    if beat.max_rounds:
        return beat.round / beat.max_rounds
    return None


def _eta_s(beat: Heartbeat) -> Optional[float]:
    if beat.terminal or not beat.max_rounds or not beat.rounds_per_second:
        return None
    remaining = max(0, beat.max_rounds - beat.round)
    return remaining / beat.rounds_per_second


def _writer_label(path: Path, beat: Optional[Heartbeat]) -> str:
    if beat is None:
        return path.name[: -len(HEARTBEAT_SUFFIX)] or path.name
    if beat.role == "shard" and beat.shard is not None:
        return f"shard {beat.shard}"
    return beat.role


def _beat_line(
    path: Path, beat: Optional[Heartbeat], now: float, stale_after: float
) -> str:
    label = _writer_label(path, beat)
    if beat is None:
        return f"{label:<12} UNREADABLE (torn heartbeat?)"
    parts = [f"{label:<12}"]
    if beat.status == "failed":
        parts.append("QUARANTINED")
    else:
        parts.append(_bar(_progress_fraction(beat)))
    if beat.replicas is not None:
        done = beat.replicas_done if beat.replicas_done is not None else "?"
        parts.append(f"{done}/{beat.replicas} replicas")
    if beat.max_rounds:
        parts.append(f"round {beat.round}/{beat.max_rounds}")
    elif beat.round:
        parts.append(f"round {beat.round}")
    if beat.rounds_per_second:
        parts.append(f"{beat.rounds_per_second:.0f} r/s")
    eta = _eta_s(beat)
    if eta is not None:
        parts.append(f"eta {_format_duration(eta)}")
    if beat.attempt is not None and beat.attempt > 1:
        parts.append(f"attempt {beat.attempt}")
    if beat.rss_bytes is not None:
        parts.append(f"rss {_format_bytes(beat.rss_bytes)}")
    if beat.terminal:
        parts.append(beat.status if beat.status != "failed" else "")
    else:
        age = beat.age_s(now)
        parts.append(f"age {_format_duration(age)}")
        if age > stale_after:
            parts.append("stale?")
    return "  ".join(part for part in parts if part)


def _supervisor_line(beat: Heartbeat) -> str:
    parts = [f"{'supervisor':<12}", beat.status]
    if beat.replicas is not None:
        done = beat.replicas_done if beat.replicas_done is not None else "?"
        parts.append(f"{done}/{beat.replicas} replicas")
    if beat.shards is not None:
        parts.append(f"shards {beat.shards}")
    parts.append(f"retries {beat.retries}")
    parts.append(f"timeouts {beat.timeouts}")
    parts.append(f"quarantined {beat.failed_shards}")
    if beat.peak_rss_bytes is not None:
        parts.append(f"peak rss {_format_bytes(beat.peak_rss_bytes)}")
    if beat.cpu_s is not None:
        parts.append(f"cpu {_format_duration(beat.cpu_s)}")
    return "  ".join(parts)


def discover_traces(path: Union[str, Path]) -> List[Path]:
    """Trace files (JSONL or columnar) for a run base or directory (sorted).

    Matches ``*.jsonl*`` and ``*.ctrace*`` so shard-suffixed fragments
    (``ensemble.jsonl.shard0``) show up alongside merged traces; in-flight
    ``.tmp`` staging files are excluded.
    """
    path = Path(path)
    if path.is_dir():
        candidates = [
            *path.glob("*.jsonl*"),
            *path.glob("*.ctrace*"),
        ]
    else:
        candidates = [
            *path.parent.glob(f"{path.name}*.jsonl*"),
            *path.parent.glob(f"{path.name}*.ctrace*"),
        ]
    return sorted(
        candidate
        for candidate in candidates
        if not candidate.name.endswith(".tmp")
    )


def tail_trace_round(path: Union[str, Path]) -> Optional[dict]:
    """The last ``round`` record of a trace, reading only the tail.

    Format is sniffed from the file's leading bytes.  JSONL traces seek to
    the final :data:`_TAIL_BYTES` and parse backwards; columnar traces walk
    chunk headers and decode only the last round-bearing chunk — both stay
    O(1)-ish on a multi-gigabyte trace of a live run.  Returns ``None``
    when no complete round record exists (empty or torn file included).
    """
    path = Path(path)
    try:
        with path.open("rb") as handle:
            if handle.read(len(COLUMNAR_MAGIC)) == COLUMNAR_MAGIC:
                from repro.telemetry.columnar import columnar_tail_round

                return columnar_tail_round(path)
            handle.seek(0, 2)
            size = handle.tell()
            handle.seek(max(0, size - _TAIL_BYTES))
            tail = handle.read().decode("utf-8", errors="replace")
    except OSError:
        return None
    for line in reversed(tail.splitlines()):
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if isinstance(record, dict) and record.get("kind") == "round":
            return record
    return None


def render_frame(
    entries: List[Tuple[Path, Optional[Heartbeat]]],
    *,
    traces: List[Path] = (),
    now: Optional[float] = None,
    stale_after: float = 5.0,
) -> str:
    """Render one dashboard frame (plain text, one writer per line)."""
    now = time.time() if now is None else now
    supervisors = [b for _, b in entries if b is not None and b.role == "supervisor"]
    lines: List[str] = []
    for beat in supervisors:
        lines.append(_supervisor_line(beat))
    for path, beat in entries:
        if beat is not None and beat.role == "supervisor":
            continue
        lines.append(_beat_line(path, beat, now, stale_after))
    for trace in traces:
        record = tail_trace_round(trace)
        if record is not None:
            lines.append(
                f"{'trace':<12} {trace.name}: last round t={record.get('t')} "
                f"count={record.get('count')}"
            )
    return "\n".join(lines)


def is_service_root(path: Union[str, Path]) -> bool:
    """True when ``path`` is a service directory (holds the job journal)."""
    path = Path(path)
    return path.is_dir() and (
        (path / "jobs.journal").exists() or (path / "jobs.snapshot.json").exists()
    )


def _job_line(job, beat, now: float, stale_after: float) -> str:
    parts = [f"{job.id:<12}", f"{job.state:<9}"]
    active = job.state in ("running", "degraded")
    if beat is not None and not job.terminal:
        parts.append(_bar(_progress_fraction(beat)))
        if beat.replicas is not None:
            done = beat.replicas_done if beat.replicas_done is not None else "?"
            parts.append(f"{done}/{beat.replicas} replicas")
        if beat.max_rounds:
            parts.append(f"round {beat.round}/{beat.max_rounds}")
    if job.attempt > 1 or job.retries:
        parts.append(f"attempt {job.attempt}")
    if job.retries:
        parts.append(f"retries {job.retries}/{job.max_retries}")
    if job.state == "failed" and job.exit_name:
        parts.append(job.exit_name)
    if active:
        if beat is None:
            parts.append("no heartbeat  ORPHANED?")
        else:
            age = beat.age_s(now)
            parts.append(f"age {_format_duration(age)}")
            if age > stale_after:
                parts.append("ORPHANED?")
    if job.error and job.state in ("failed", "queued"):
        parts.append(f"({job.error})")
    return "  ".join(part for part in parts if part)


def render_service_frame(
    root: Union[str, Path],
    *,
    now: Optional[float] = None,
    stale_after: float = 5.0,
) -> str:
    """Render one frame of the service job view (one line per job).

    Job states come from replaying the journal read-only (torn tails
    tolerated, never truncated); liveness of active jobs comes from their
    heartbeat files, so a ``running`` job whose worker died renders as
    ``ORPHANED?`` even though the journal still says it runs.
    """
    from repro.service.jobstore import load_jobs
    from repro.telemetry.heartbeat import heartbeat_path, read_heartbeat

    now = time.time() if now is None else now
    root = Path(root)
    store = load_jobs(root)
    counts = store.counts()
    summary = "  ".join(
        f"{state} {counts[state]}" for state in counts if counts[state]
    ) or "no jobs"
    lines = [f"{'service':<12} {summary}  (journal seq {store.seq})"]
    for job in store.jobs():
        beat = read_heartbeat(heartbeat_path(root / job.id / "job"))
        lines.append(_job_line(job, beat, now, stale_after))
    return "\n".join(lines)


def _all_jobs_terminal(root: Union[str, Path]) -> bool:
    from repro.service.jobstore import TERMINAL_STATES, load_jobs

    counts = load_jobs(root).counts()
    total = sum(counts.values())
    done = sum(counts[state] for state in TERMINAL_STATES)
    return total > 0 and done == total


def _all_terminal(entries: List[Tuple[Path, Optional[Heartbeat]]]) -> bool:
    beats = [beat for _, beat in entries if beat is not None]
    return bool(beats) and all(beat.terminal for beat in beats)


def watch(
    path: Union[str, Path],
    *,
    interval: float = 1.0,
    once: bool = False,
    stale_after: float = 5.0,
    stream=None,
) -> int:
    """Tail the heartbeats (and traces) under ``path`` until they finish.

    ``path`` is a run/checkpoint base, a directory, or a *service root*
    (then the job view renders instead — see :func:`render_service_frame`).
    Redraws every ``interval`` seconds (ANSI clear on a TTY, plain frames
    otherwise); exits 0 once every readable heartbeat is terminal / every
    job is in a terminal state (or immediately with ``once=True``), and 1
    when no heartbeat files exist at all.
    """
    stream = sys.stdout if stream is None else stream
    clear = "\x1b[2J\x1b[H" if getattr(stream, "isatty", lambda: False)() else ""
    if is_service_root(path):
        while True:
            frame = render_service_frame(path, stale_after=stale_after)
            print(f"{clear}{frame}", file=stream, flush=True)
            if once or _all_jobs_terminal(path):
                return 0
            time.sleep(interval)
            if not clear:
                print("", file=stream)
    while True:
        entries = discover_heartbeats(path)
        if not entries:
            print(f"repro watch: no heartbeat files under {path}", file=stream)
            return 1
        frame = render_frame(
            entries, traces=discover_traces(path), stale_after=stale_after
        )
        print(f"{clear}{frame}", file=stream, flush=True)
        if once:
            return 0
        if _all_terminal(entries):
            return 0
        time.sleep(interval)
        if not clear:
            print("", file=stream)
