"""Command-line interface: audit, simulate, and sweep protocols.

Usage (installed as ``python -m repro``):

    python -m repro list
    python -m repro audit minority-3 --n 4096
    python -m repro audit table:0,0.2,0.8,1 --n 1024
    python -m repro run voter --n 1000 --z 1 --x0 1 --rounds 100000
    python -m repro run voter --n 100000 --checkpoint run.ckpt --checkpoint-every 500
    python -m repro resume run.ckpt
    python -m repro trace validate results/run.jsonl --salvage
    python -m repro run voter --trace run.ctrace --trace-format columnar
    python -m repro trace convert results/run.jsonl results/run.ctrace
    python -m repro trace index results/
    python -m repro sweep voter --sizes 128,256,512,1024 --replicas 10
    python -m repro landscape minority-3
    python -m repro bench --smoke --timeout 60
    python -m repro report results/ --strict
    python -m repro run voter --replicas 64 --workers 4 --checkpoint run.ckpt \\
        --metrics-port 0
    python -m repro run voter --replicas 64 --scenario churn:period=16 \\
        --scenario lossy:rate=0.1
    python -m repro scenarios list
    python -m repro watch run.ckpt

Protocols are resolved from the registry (:mod:`repro.protocols.registry`)
or given inline as ``table:<g0 entries>[;<g1 entries>]`` — comma-separated
response probabilities, length ``ell + 1``.

Output hygiene: stdout carries the command's machine-parseable result
(key=value lines, CSV tables, or ``--json`` documents); progress notes,
telemetry summaries, and ASCII plots go to stderr.

Exit codes are per failure class (:mod:`repro.execution.shutdown`): 0 ok,
1 usage/operational error, 2 run did not converge, 3 invalid trace,
4 benchmark regression (``report --strict``), 5 interrupted with a
checkpoint saved, 6 benchmark timeout (``bench --timeout``), 7 partial
ensemble results (``run --workers``: shards lost past their retry budget),
86 fault injected (``REPRO_FAULT`` crashpoint reached — the fault-smoke
harness's deterministic kill).  The authoritative table is generated into
docs/API.md ("Exit codes") from :data:`repro.execution.shutdown.EXIT_CODES`.

Live observability (``--metrics-port`` / ``--metrics-textfile`` /
``--profile`` and the ``watch`` subcommand) is wired here and only here:
the runners stay observability-free, the supervisor takes opt-in
heartbeat/profile paths, and :mod:`repro.telemetry.prometheus` /
:mod:`repro.telemetry.profiling` are demand-imported so plain runs never
pay for them.
"""

from __future__ import annotations

import argparse
import contextlib
import pathlib
import sys
import tempfile
from typing import Any, Dict, List, Optional

import numpy as np

from repro.analysis.scaling import fit_power_law
from repro.analysis.series import Series, Table, ascii_plot
from repro.core.bias import bias_value
from repro.core.lower_bound import lower_bound_certificate, verify_escape_assumptions
from repro.core.protocol import Protocol
from repro.core.roots import is_zero_bias, sign_profile
from repro.dynamics.config import Configuration, wrong_consensus_configuration
from repro.dynamics.rng import make_rng
from repro.dynamics.run import simulate, simulate_ensemble
from repro.execution import (
    DEFAULT_CHECKPOINT_EVERY,
    EXIT_BENCH_TIMEOUT,
    EXIT_ERROR,
    EXIT_INTERRUPTED,
    EXIT_INVALID_TRACE,
    EXIT_NOT_CONVERGED,
    EXIT_OK,
    EXIT_PERF_REGRESSION,
    EXIT_SHARDS_LOST,
    CheckpointError,
    Checkpointer,
    GracefulExit,
    ShutdownGuard,
    load_checkpoint,
)
from repro.protocols import available_protocols, get_family, table_protocol
from repro.telemetry import (
    TRACE_FORMATS,
    MetricsRecorder,
    compose_recorders,
    open_trace_writer,
)

__all__ = ["main", "resolve_protocol"]


def resolve_protocol(spec: str, n: int) -> Protocol:
    """Resolve a protocol spec: a registry name or ``table:...`` literal."""
    if spec.startswith("table:"):
        body = spec[len("table:"):]
        parts = body.split(";")
        g0 = [float(v) for v in parts[0].split(",") if v.strip()]
        g1 = (
            [float(v) for v in parts[1].split(",") if v.strip()]
            if len(parts) > 1
            else None
        )
        return table_protocol(g0, g1, name=spec)
    return get_family(spec).at(n)


def _cmd_list(_: argparse.Namespace) -> int:
    for name in available_protocols():
        print(name)
    return 0


def _cmd_scenarios_list(_: argparse.Namespace) -> int:
    """Print the scenario registry with parameter schemas (machine-greppable).

    One ``name: summary`` line per scenario, then one indented
    ``  key (kind, default=...): doc`` line per parameter — the same
    spec grammar ``--scenario NAME[:k=v,...]`` accepts.
    """
    from repro.dynamics.scenarios import available_scenarios, get_scenario_family

    for name in available_scenarios():
        family = get_scenario_family(name)
        print(f"{name}: {family.summary}")
        for param in family.params:
            print(
                f"  {param.name} ({param.kind}, default={param.default}): "
                f"{param.doc}"
            )
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    protocol = resolve_protocol(args.protocol, args.n)
    print(f"protocol: {protocol!r}")
    if not protocol.satisfies_boundary_conditions():
        print("Proposition 3 VIOLATED: g[0](0) > 0 or g[1](ell) < 1.")
        print("This protocol cannot solve bit-dissemination (tau = +inf).")
        return 1
    print("Proposition 3: ok (consensus absorbing)")
    if is_zero_bias(protocol):
        print("bias: F = 0 identically (Lemma-11 / Voter-like)")
    else:
        profile = sign_profile(protocol)
        print(f"roots of F: {np.round(profile.roots, 6).tolist()}")
        print(f"signs between roots: {list(profile.signs)}")
    certificate = lower_bound_certificate(protocol)
    print(certificate.describe())
    report = verify_escape_assumptions(certificate, args.n, epsilon=args.epsilon)
    print(
        f"assumptions at n={args.n}: drift_ok={report.drift_ok} "
        f"(margin {report.worst_drift_margin:.3f}), "
        f"jump tail {report.jump_tail_bound:.3e}, "
        f"concentration tail {report.concentration_tail_bound:.3e}"
    )
    witness = certificate.witness_configuration(args.n)
    print(
        f"witness: z={witness.z}, x0={witness.x0}; lower bound: "
        f">= {report.predicted_rounds:.0f} rounds (eps={args.epsilon})"
    )
    return 0


def _metrics_collector(metrics, heartbeat_base):
    """Build the ``/metrics`` payload closure for a (possibly live) run.

    Re-reads heartbeat files on every call, so a scrape mid-run reflects
    the workers' latest atomic writes; the recorder snapshot is whatever
    aggregates the parent process holds at that instant.
    """
    from repro.telemetry.heartbeat import discover_heartbeats
    from repro.telemetry.prometheus import render_metrics

    def collect() -> str:
        beats = []
        if heartbeat_base is not None:
            beats = [
                beat
                for _, beat in discover_heartbeats(heartbeat_base)
                if beat is not None
            ]
        return render_metrics(
            metrics.metrics() if metrics is not None else None, beats
        )

    return collect


def _start_metrics_server(port: int, collect):
    """Start the exporter thread and announce its URL on stderr."""
    from repro.telemetry.prometheus import MetricsServer

    server = MetricsServer(collect, port=port).start()
    # Parsed by scripts/metrics_smoke.py — keep the "metrics: serving "
    # prefix stable, and flush so a mid-run scraper sees it immediately.
    print(f"metrics: serving {server.url}", file=sys.stderr, flush=True)
    return server


def _export_span_profile(metrics, profile_dir, name: str) -> None:
    """Write the run's span aggregates as a speedscope flamegraph."""
    from repro.telemetry.profiling import spans_to_speedscope, write_speedscope

    target = pathlib.Path(profile_dir) / "spans.speedscope.json"
    write_speedscope(target, spans_to_speedscope(metrics.metrics().spans, name))
    print(f"profile: wrote {target}", file=sys.stderr)


def _cmd_run(args: argparse.Namespace) -> int:
    protocol = resolve_protocol(args.protocol, args.n)
    low, high = Configuration.count_bounds(args.n, args.z)
    x0 = args.x0 if args.x0 is not None else wrong_consensus_configuration(args.n, args.z).x0
    config = Configuration(n=args.n, z=args.z, x0=min(max(x0, low), high))
    if (
        args.replicas > 1
        or args.workers is not None
        or args.shards is not None
        or args.scenario
    ):
        # Scenarios hook the ensemble engines (docs/SCENARIOS.md), so a
        # --scenario run is an ensemble run even at --replicas 1.
        return _run_ensemble(args, protocol, config)
    # The argv-level inputs travel in the checkpoint's meta block so that
    # `repro resume <path>` can rebuild this exact run with no other flags.
    meta = {
        "command": "run",
        "protocol": args.protocol,
        "n": args.n,
        "z": args.z,
        "x0": config.x0,
        "rounds": args.rounds,
        "seed": args.seed,
        "record": bool(args.record),
        "checkpoint_every": args.checkpoint_every,
    }
    return _run_simulation(
        protocol, config,
        rounds=args.rounds, seed=args.seed, record=args.record,
        want_metrics=args.metrics, trace_path=args.trace,
        trace_format=args.trace_format,
        checkpoint_path=args.checkpoint, checkpoint_every=args.checkpoint_every,
        meta=meta, resume=False, show_plot=args.record,
        metrics_port=args.metrics_port,
        metrics_textfile=args.metrics_textfile,
        profile_dir=args.profile,
    )


def _run_simulation(
    protocol: Protocol,
    config: Configuration,
    *,
    rounds: int,
    seed: int,
    record: bool,
    want_metrics: bool,
    trace_path: Optional[str],
    trace_format: str = "jsonl",
    checkpoint_path: Optional[str],
    checkpoint_every: int,
    meta: Dict[str, Any],
    resume: bool,
    show_plot: bool,
    metrics_port: Optional[int] = None,
    metrics_textfile: Optional[str] = None,
    profile_dir: Optional[str] = None,
) -> int:
    """Shared body of ``repro run`` and ``repro resume``."""
    observing = (
        metrics_port is not None
        or metrics_textfile is not None
        or profile_dir is not None
    )
    # Observability rides on MetricsRecorder aggregates, so any of the
    # flags forces it on (telemetry *printing* still follows --metrics).
    metrics = MetricsRecorder() if (want_metrics or observing) else None
    trace = (
        open_trace_writer(trace_path, trace_format) if trace_path else None
    )
    interrupted: Optional[GracefulExit] = None
    checkpoint: Optional[Checkpointer] = None
    with contextlib.ExitStack() as stack:
        beat = None
        if observing:
            from repro.telemetry.heartbeat import HeartbeatRecorder, heartbeat_path

            hb_base = checkpoint_path
            if hb_base is None:
                scratch = stack.enter_context(
                    tempfile.TemporaryDirectory(prefix="repro_observe_")
                )
                hb_base = str(pathlib.Path(scratch) / "run")
            beat = HeartbeatRecorder(heartbeat_path(hb_base))
            if metrics_port is not None:
                server = _start_metrics_server(
                    metrics_port, _metrics_collector(metrics, hb_base)
                )
                stack.callback(server.stop)
        recorder = compose_recorders(metrics, trace, beat)
        if checkpoint_path is not None:
            guard = stack.enter_context(ShutdownGuard())
            if trace is not None:
                guard.register(trace)
            if resume:
                checkpoint = Checkpointer.resume(
                    checkpoint_path, every=checkpoint_every, guard=guard
                )
            else:
                checkpoint = Checkpointer(
                    checkpoint_path, every=checkpoint_every, guard=guard, meta=meta
                )
        if profile_dir is not None:
            from repro.telemetry.profiling import maybe_cprofile

            profiled = maybe_cprofile(pathlib.Path(profile_dir) / "run.prof")
        else:
            profiled = contextlib.nullcontext()
        try:
            with profiled:
                result = simulate(
                    protocol, config, rounds, make_rng(seed),
                    record=record, recorder=recorder, checkpoint=checkpoint,
                )
        except GracefulExit as stop:
            interrupted = stop
        finally:
            if trace is not None:
                trace.close()
        # Published inside the stack: the final payload must still see the
        # heartbeat files when they live in the scratch directory.
        if metrics_textfile is not None and interrupted is None:
            from repro.telemetry.prometheus import write_textfile

            write_textfile(
                metrics_textfile, _metrics_collector(metrics, hb_base)()
            )
            print(f"metrics: wrote {metrics_textfile}", file=sys.stderr)
    if profile_dir is not None and interrupted is None:
        _export_span_profile(metrics, profile_dir, f"repro run {protocol.name}")
    if interrupted is not None:
        print(
            f"interrupted by {interrupted.signal_name}; checkpoint saved to "
            f"{interrupted.checkpoint_path}",
            file=sys.stderr,
        )
        print(
            f"resume with: python -m repro resume {interrupted.checkpoint_path}",
            file=sys.stderr,
        )
        return EXIT_INTERRUPTED
    print(
        f"{protocol.name} on n={config.n}, z={config.z}, x0={config.x0}: "
        f"converged={result.converged}, rounds={result.rounds}, "
        f"final count={result.final_count}"
    )
    if metrics is not None and want_metrics:
        m = metrics.metrics()
        print(
            f"telemetry: rounds={m.rounds} wall={m.wall_clock_s:.4f}s "
            f"rounds/sec={m.rounds_per_second:,.0f} "
            f"mean |drift|={m.mean_abs_drift:.3f}",
            file=sys.stderr,
        )
        for path, agg in sorted(m.spans.items()):
            print(
                f"telemetry: span {path}: calls={agg.calls} "
                f"wall={agg.wall_s:.4f}s",
                file=sys.stderr,
            )
    if trace is not None:
        print(
            f"trace: wrote {trace.records_written} records to {trace_path}",
            file=sys.stderr,
        )
    if checkpoint is not None:
        print(
            f"checkpoint: {checkpoint.writes} writes to {checkpoint.path}",
            file=sys.stderr,
        )
    if show_plot and result.trajectory is not None:
        series = Series(
            "count", np.arange(len(result.trajectory), dtype=float),
            result.trajectory.astype(float),
        )
        print(ascii_plot([series], width=64, height=12), file=sys.stderr)
    return EXIT_OK if result.converged else EXIT_NOT_CONVERGED


def _run_ensemble(
    args: argparse.Namespace, protocol: Protocol, config: Configuration
) -> int:
    """Body of ``repro run`` for ensembles (``--replicas``/``--workers``).

    Runs the supervised executor (even at ``--workers 1``, so the stream —
    a function of seed and shard count only — is identical whatever worker
    count a later rerun picks).  With ``--checkpoint`` each shard
    checkpoints to ``PATH.shard<k>``; re-invoking the *same* command after
    a crash or Ctrl-C resumes every shard from its own file (``repro
    resume`` stays single-run-only).  Exit codes: 0 all shards survived
    and every trial converged, 2 some trials were censored, 7 shards were
    lost past their retry budget (partial results), 5 interrupted.
    """
    from repro.execution.supervisor import (
        SupervisorConfig,
        run_supervised_ensemble,
        summarize_supervised,
    )

    scenario = None
    if args.scenario:
        from repro.dynamics.scenarios import make_scenario

        try:
            scenario = make_scenario("+".join(args.scenario), config.n)
        except (KeyError, ValueError) as error:
            # KeyError's str() wraps the message in quotes; unwrap it.
            message = error.args[0] if error.args else str(error)
            print(f"repro: {message}", file=sys.stderr)
            return EXIT_ERROR

    observing = (
        args.metrics_port is not None
        or args.metrics_textfile is not None
        or args.profile is not None
    )
    metrics = MetricsRecorder() if (args.metrics or observing) else None
    recorder = compose_recorders(metrics)
    supervisor = SupervisorConfig(
        workers=args.workers if args.workers is not None else 1,
        shards=args.shards,
        timeout_s=args.shard_timeout,
        max_retries=args.max_retries,
        trace_format=args.trace_format,
    )
    with contextlib.ExitStack() as stack:
        guard = None
        if args.checkpoint is not None:
            guard = stack.enter_context(ShutdownGuard())
        hb_base = args.checkpoint
        if hb_base is None and observing:
            scratch = stack.enter_context(
                tempfile.TemporaryDirectory(prefix="repro_observe_")
            )
            hb_base = str(pathlib.Path(scratch) / "run")
        if args.metrics_port is not None:
            server = _start_metrics_server(
                args.metrics_port, _metrics_collector(metrics, hb_base)
            )
            stack.callback(server.stop)
        try:
            result = run_supervised_ensemble(
                protocol, config, args.rounds, make_rng(args.seed),
                args.replicas,
                supervisor=supervisor,
                recorder=recorder,
                checkpoint_base=args.checkpoint,
                checkpoint_every=args.checkpoint_every,
                trace_path=args.trace,
                guard=guard,
                engine=args.engine,
                heartbeat_base=hb_base,
                heartbeat_every_s=0.5 if observing else 1.0,
                profile_dir=args.profile,
                scenario=scenario,
            )
        except GracefulExit as stop:
            print(
                f"interrupted by {stop.signal_name}; shard checkpoints at "
                f"{args.checkpoint}.shard<k> — re-run the same command to "
                "resume them",
                file=sys.stderr,
            )
            return EXIT_INTERRUPTED
        if args.metrics_textfile is not None:
            from repro.telemetry.prometheus import write_textfile

            write_textfile(
                args.metrics_textfile, _metrics_collector(metrics, hb_base)()
            )
            print(f"metrics: wrote {args.metrics_textfile}", file=sys.stderr)
    if args.profile is not None:
        _export_span_profile(
            metrics, args.profile, f"repro run {protocol.name} (supervised)"
        )
    if result.times.size == 0:
        print(
            f"repro: all {len(result.shard_sizes)} shards failed "
            f"({result.retries} retries, {result.timeouts} timeouts); "
            "no surviving trials",
            file=sys.stderr,
        )
        return EXIT_SHARDS_LOST
    stats = summarize_supervised(result, budget=args.rounds)
    print(
        f"{protocol.name} on n={config.n}, z={config.z}, x0={config.x0}: "
        f"ensemble of {stats.attempted_trials} "
        f"(shards={len(result.shard_sizes)}, workers={supervisor.workers})"
    )
    print(f"trials={stats.trials}")
    print(f"censored={stats.censored}")
    print(f"failed_shards={stats.failed_shards}")
    print(f"attempted_trials={stats.attempted_trials}")
    print(f"median={stats.median}")
    print(f"q10={stats.q10}")
    print(f"q90={stats.q90}")
    print(f"mean_converged={stats.mean_converged}")
    if scenario is not None:
        from repro.analysis.ensemble import summarize_recovery

        settle = scenario.settle_round(args.rounds)
        recovery = summarize_recovery(
            result.times, settle, budget=args.rounds,
            failed_shards=result.failed_shards,
            attempted_trials=result.attempted_trials,
        )
        print(f"scenario={scenario.spec()}")
        print(f"settle_round={settle}")
        print(f"recovery_median={recovery.median}")
        print(f"recovery_q90={recovery.q90}")
        print(f"recovery_mean_converged={recovery.mean_converged}")
    if result.retries or result.timeouts:
        print(
            f"supervision: retries={result.retries} timeouts={result.timeouts}",
            file=sys.stderr,
        )
    if metrics is not None and args.metrics:
        m = metrics.metrics()
        for path, agg in sorted(m.spans.items()):
            print(
                f"telemetry: span {path}: calls={agg.calls} "
                f"wall={agg.wall_s:.4f}s",
                file=sys.stderr,
            )
    if args.trace:
        print(f"trace: merged shard traces into {args.trace}", file=sys.stderr)
    if stats.failed_shards:
        print(
            f"repro: {stats.failed_shards} shard(s) lost past the retry "
            f"budget; statistics cover {stats.trials} of "
            f"{stats.attempted_trials} trials",
            file=sys.stderr,
        )
        return EXIT_SHARDS_LOST
    return EXIT_OK if stats.censored == 0 else EXIT_NOT_CONVERGED


def _cmd_watch(args: argparse.Namespace) -> int:
    """Live (or post-mortem) dashboard over a run's heartbeat files."""
    from repro.analysis.watch import watch

    return watch(
        args.path,
        interval=args.interval,
        once=args.once,
        stale_after=args.stale_after,
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the long-lived simulation service (docs/SERVICE.md)."""
    from repro.service import ServiceConfig, serve

    config = ServiceConfig(
        workers=args.workers,
        poll_s=args.poll,
        stale_after_s=args.stale_after,
        backoff_base_s=args.backoff_base,
        backoff_cap_s=args.backoff_cap,
        default_max_retries=args.max_retries,
    )
    with ShutdownGuard() as guard:
        return serve(
            args.root,
            host=args.host,
            port=args.port,
            metrics_port=args.metrics_port,
            config=config,
            guard=guard,
        )


def _cmd_resume(args: argparse.Namespace) -> int:
    """Rebuild and continue a run from its checkpoint's meta block."""
    try:
        state = load_checkpoint(args.checkpoint)
    except CheckpointError as error:
        print(f"repro: {error}", file=sys.stderr)
        return EXIT_ERROR
    meta = state.meta
    if meta.get("command") != "run":
        print(
            f"repro: checkpoint {args.checkpoint} carries no CLI metadata "
            "(written through the library API?); resume it by calling the "
            "runner with Checkpointer.resume(...) and the original inputs",
            file=sys.stderr,
        )
        return EXIT_ERROR
    protocol = resolve_protocol(meta["protocol"], int(meta["n"]))
    config = Configuration(n=int(meta["n"]), z=int(meta["z"]), x0=int(meta["x0"]))
    if state.complete:
        print("checkpoint is complete; replaying the stored result", file=sys.stderr)
    else:
        print(f"resuming from round {state.round}", file=sys.stderr)
    return _run_simulation(
        protocol, config,
        rounds=int(meta["rounds"]), seed=int(meta["seed"]),
        record=bool(meta.get("record", False)),
        want_metrics=args.metrics, trace_path=args.trace,
        trace_format=args.trace_format,
        checkpoint_path=args.checkpoint,
        checkpoint_every=int(meta.get("checkpoint_every", DEFAULT_CHECKPOINT_EVERY)),
        meta=meta, resume=True, show_plot=False,
    )


def _cmd_trace_validate(args: argparse.Namespace) -> int:
    """Schema-check a trace; with --salvage, recover its valid prefix."""
    import collections
    import json
    import pathlib

    from repro.telemetry.jsonl import validate_trace

    try:
        records = validate_trace(args.path, salvage=args.salvage)
    except ValueError as error:
        print(f"invalid trace: {error}", file=sys.stderr)
        return EXIT_INVALID_TRACE
    kinds = collections.Counter(record.get("kind") for record in records)
    print(f"mode={'salvage' if args.salvage else 'strict'}")
    print(f"records={len(records)}")
    for kind in sorted(kinds):
        print(f"{kind}={kinds[kind]}")
    print(f"complete={str(kinds.get('run_end', 0) == 1).lower()}")
    if args.output:
        output = pathlib.Path(args.output)
        with output.open("w") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        print(f"wrote {len(records)} records to {output}", file=sys.stderr)
    return EXIT_OK


def _cmd_trace_convert(args: argparse.Namespace) -> int:
    """Losslessly convert a trace between JSONL and columnar containers.

    The direction comes from the *source's* sniffed format: JSONL sources
    become columnar targets and vice versa.  Conversion validates first, so
    an invalid trace exits 3 without writing anything; ``--salvage``
    converts the recoverable prefix of a torn trace instead.
    """
    from repro.telemetry.columnar import (
        columnar_to_jsonl,
        detect_trace_format,
        jsonl_to_columnar,
    )

    try:
        source_format = detect_trace_format(args.source)
        if source_format == "jsonl":
            chunking = (
                {"chunk_rounds": args.chunk_rounds} if args.chunk_rounds else {}
            )
            count = jsonl_to_columnar(
                args.source, args.target, salvage=args.salvage, **chunking
            )
            target_format = "columnar"
        else:
            count = columnar_to_jsonl(
                args.source, args.target, salvage=args.salvage
            )
            target_format = "jsonl"
    except OSError as error:
        print(f"repro: {error}", file=sys.stderr)
        return EXIT_ERROR
    except ValueError as error:
        print(f"invalid trace: {error}", file=sys.stderr)
        return EXIT_INVALID_TRACE
    print(f"source_format={source_format}")
    print(f"target_format={target_format}")
    print(f"records={count}")
    print(f"wrote {args.target}", file=sys.stderr)
    return EXIT_OK


def _cmd_trace_index(args: argparse.Namespace) -> int:
    """Refresh (or rebuild) a trace directory's persistent query index."""
    from repro.analysis.index import index_path, refresh_trace_index

    directory = pathlib.Path(args.directory)
    if not directory.is_dir():
        print(f"repro: no directory at {directory}", file=sys.stderr)
        return EXIT_ERROR
    try:
        index = refresh_trace_index(directory, rebuild=args.rebuild)
    except ValueError as error:
        print(f"invalid trace: {error}", file=sys.stderr)
        return EXIT_INVALID_TRACE
    print(f"index={index_path(directory)}")
    print(f"traces={len(index['entries'])}")
    print(f"refreshed={index['refreshed']}")
    for name in sorted(index["entries"]):
        entry = index["entries"][name]
        rounds = entry.get("counts", {}).get("rounds")
        print(f"{name}: format={entry.get('format')} rounds={rounds}")
    return EXIT_OK


def _cmd_sweep(args: argparse.Namespace) -> int:
    sizes = [int(v) for v in args.sizes.split(",")]
    table = Table(
        f"tau vs n for {args.protocol} (z={args.z}, all-wrong start, "
        f"{args.replicas} replicas, budget {args.budget_factor}x bound)",
        ["n", "budget", "median tau", "censored"],
    )
    medians = []
    fitted_sizes = []
    for n in sizes:
        protocol = resolve_protocol(args.protocol, n)
        config = wrong_consensus_configuration(n, args.z)
        budget = int(args.budget_factor * 2 * n * max(1.0, np.log(n)))
        times = simulate_ensemble(
            protocol, config, budget, make_rng(args.seed + n), args.replicas
        )
        censored = int(np.isnan(times).sum())
        finite = times[~np.isnan(times)]
        median = float(np.median(finite)) if len(finite) else float("inf")
        table.add_row(n, budget, median, censored)
        if np.isfinite(median):
            medians.append(median)
            fitted_sizes.append(n)
    print(table.render())
    if len(medians) >= 2:
        fit = fit_power_law(fitted_sizes, medians)
        print(f"\nfit: tau ~ {fit.prefactor:.3g} * n^{fit.exponent:.3f} "
              f"(r^2 = {fit.r_squared:.3f})")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Trace analytics + benchmark-regression table for a results directory."""
    import json
    import pathlib

    from repro.analysis.report import build_report, render_report

    results_dir = pathlib.Path(args.results_dir)
    if not results_dir.is_dir():
        print(
            f"no results directory at {results_dir}; run "
            "`python -m repro bench` or archive traces there first",
            file=sys.stderr,
        )
        return 1
    report = build_report(
        results_dir,
        baseline_path=args.baseline,
        min_rel_slowdown=args.min_rel_slowdown,
        noise_sigmas=args.noise_sigmas,
    )
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_report(report))
    if args.strict and (
        report["regressions"] or report.get("failed") or report.get("degraded")
    ):
        return EXIT_PERF_REGRESSION
    return EXIT_OK


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run the benchmark suite (optionally smoke-sized) to refresh the ledger."""
    import os
    import pathlib
    import subprocess
    import time

    if args.workers is not None and args.workers < 1:
        print("bench: --workers must be >= 1", file=sys.stderr)
        return EXIT_ERROR
    repo_root = pathlib.Path(__file__).resolve().parents[2]
    bench_dir = (
        pathlib.Path(args.bench_dir) if args.bench_dir else repo_root / "benchmarks"
    )
    modules = sorted(path.stem for path in bench_dir.glob("bench_*.py"))
    if args.list:
        for name in modules:
            print(name)
        return EXIT_OK
    command = [
        sys.executable, "-m", "pytest", str(bench_dir),
        "--benchmark-only", "-q",
    ]
    if args.only:
        command += ["-k", args.only]
    env = dict(os.environ)
    if args.smoke:
        env["REPRO_SMOKE"] = "1"
    if args.timeout is not None:
        if args.timeout <= 0:
            print("bench: --timeout must be positive", file=sys.stderr)
            return EXIT_ERROR
        # The SIGALRM this arms only fires in the benchmark's main process;
        # the ensemble supervisor folds the same budget into its per-shard
        # timeout (the tighter of the two wins), so hung workers cannot
        # outlive it.  See docs/OBSERVABILITY.md.
        env["REPRO_BENCH_TIMEOUT"] = str(args.timeout)
    if args.workers is not None:
        env["REPRO_BENCH_WORKERS"] = str(args.workers)
    if args.scenario is not None:
        env["REPRO_BENCH_SCENARIO"] = args.scenario
    env["PYTHONPATH"] = os.pathsep.join(
        [str(repo_root / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    results_dir = pathlib.Path(env.get("REPRO_RESULTS_DIR") or repo_root / "results")
    sizing = "smoke" if args.smoke else "full"
    print(f"bench: {sizing} sizing: {' '.join(command)}", file=sys.stderr)
    started = time.time()
    completed = subprocess.run(
        command, cwd=repo_root, env=env,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    # pytest chatter is progress, not a result: keep stdout machine-clean.
    sys.stderr.write(completed.stdout)
    if args.timeout is not None:
        timed_out = _timed_out_bench_records(results_dir, since=started)
        if timed_out:
            for experiment in timed_out:
                print(
                    f"bench: {experiment} exceeded the {args.timeout:g}s budget",
                    file=sys.stderr,
                )
            return EXIT_BENCH_TIMEOUT
    if completed.returncode == 0:
        print(
            f"bench: records archived under {results_dir} "
            "(BENCH_*.json); see `python -m repro report results/`",
            file=sys.stderr,
        )
    return completed.returncode


def _timed_out_bench_records(results_dir, since: float) -> List[str]:
    """Experiments whose ledger record from this run reports a timeout."""
    import json

    names = []
    if not results_dir.is_dir():
        return names
    for path in sorted(results_dir.glob("BENCH_*.json")):
        if path.stat().st_mtime < since - 1.0:
            continue  # stale record from an earlier run
        try:
            record = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
        error = record.get("error") or {}
        if record.get("status") == "failed" and error.get("kind") == "timeout":
            names.append(record.get("experiment", path.stem))
    return names


def _cmd_assemble(args: argparse.Namespace) -> int:
    """Assemble results/E*.txt into a single REPORT.md."""
    import pathlib

    results_dir = pathlib.Path(args.results_dir)
    if not results_dir.is_dir():
        print(
            f"no results directory at {results_dir}; run "
            "`pytest benchmarks/ --benchmark-only` first",
            file=sys.stderr,
        )
        return 1
    files = sorted(
        results_dir.glob("E*.txt"),
        key=lambda path: (len(path.stem.split("_")[0]), path.stem),
    )
    if not files:
        print(f"no experiment outputs under {results_dir}", file=sys.stderr)
        return 1
    sections = ["# Experiment report\n"]
    sections.append(
        "Assembled from the most recent `pytest benchmarks/ --benchmark-only` "
        f"run ({len(files)} experiments).\n"
    )
    for path in files:
        sections.append(f"\n## {path.stem}\n")
        sections.append("```")
        sections.append(path.read_text().strip())
        sections.append("```")
    output = pathlib.Path(args.output)
    output.write_text("\n".join(sections) + "\n")
    print(f"wrote {output} ({len(files)} experiments)", file=sys.stderr)
    return 0


def _cmd_worst(args: argparse.Namespace) -> int:
    from repro.dynamics.adversary import exact_worst_start

    protocol = resolve_protocol(args.protocol, args.n)
    worst = exact_worst_start(protocol, args.n, args.z)
    print(
        f"{protocol.name}, n={args.n}, z={args.z}: worst start x0="
        f"{worst.config.x0} with exact E[tau] = {worst.expected_rounds:.6g}"
    )
    if args.profile:
        series = Series(
            "exact E[tau] by start (log10)",
            worst.probed_counts.astype(float),
            np.log10(np.maximum(worst.profile, 1.0)),
        )
        print(ascii_plot([series], width=64, height=12))
    return 0


def _cmd_meanfield(args: argparse.Namespace) -> int:
    from repro.core.mean_field import fixed_points, iterate_mean_field
    from repro.core.roots import is_zero_bias

    protocol = resolve_protocol(args.protocol, args.n)
    if is_zero_bias(protocol):
        print(f"{protocol.name}: zero bias — the mean-field map is the identity")
        return 0
    print(f"fixed points of phi(p) = p + F(p) for {protocol.name}:")
    for point in fixed_points(protocol):
        oscillatory = " (oscillatory)" if point.is_oscillatory else ""
        print(
            f"  p* = {point.location:.6f}  phi' = {point.multiplier:+.4f}  "
            f"{point.stability}{oscillatory}"
        )
    trajectory = iterate_mean_field(protocol, args.p0, args.rounds)
    series = Series(
        f"mean-field from p0={args.p0:g}",
        np.arange(len(trajectory), dtype=float),
        trajectory,
    )
    print(ascii_plot([series], width=64, height=12, y_min=0.0, y_max=1.0))
    return 0


def _cmd_landscape(args: argparse.Namespace) -> int:
    protocol = resolve_protocol(args.protocol, args.n)
    grid = np.linspace(0.0, 1.0, args.points)
    series = Series(f"F(p) for {protocol.name}", grid, bias_value(protocol, grid))
    print(ascii_plot([series], width=66, height=14))
    if args.csv:
        print()
        print(series.to_csv(x_label="p"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Memory-less bit-dissemination: simulate and audit protocols.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered protocols").set_defaults(
        handler=_cmd_list
    )

    audit = sub.add_parser("audit", help="run the Theorem-12 pipeline on a protocol")
    audit.add_argument("protocol", help="registry name or table:<g0>[;<g1>]")
    audit.add_argument("--n", type=int, default=4096)
    audit.add_argument("--epsilon", type=float, default=0.25)
    audit.set_defaults(handler=_cmd_audit)

    run = sub.add_parser("run", help="simulate one run of the count chain")
    run.add_argument("protocol")
    run.add_argument("--n", type=int, default=1000)
    run.add_argument("--z", type=int, default=1, choices=(0, 1))
    run.add_argument("--x0", type=int, default=None, help="default: all wrong")
    run.add_argument("--rounds", type=int, default=100_000)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--record", action="store_true", help="plot the trajectory")
    run.add_argument(
        "--trace", metavar="PATH", default=None,
        help="stream a telemetry trace to PATH (see docs/OBSERVABILITY.md)",
    )
    run.add_argument(
        "--trace-format", choices=TRACE_FORMATS, default="jsonl",
        help="trace container: jsonl (text, per-record durability) or "
             "columnar (chunked binary, cheaper hot path + fast analytics)",
    )
    run.add_argument(
        "--metrics", action="store_true",
        help="print run telemetry (rounds, wall-clock, rounds/sec)",
    )
    run.add_argument(
        "--checkpoint", metavar="PATH", default=None,
        help="write atomic checkpoints to PATH; SIGINT/SIGTERM then exit 5 "
             "with a final checkpoint instead of losing the run",
    )
    run.add_argument(
        "--checkpoint-every", metavar="N", type=int,
        default=DEFAULT_CHECKPOINT_EVERY,
        help=f"rounds between checkpoint writes (default {DEFAULT_CHECKPOINT_EVERY})",
    )
    run.add_argument(
        "--replicas", type=int, default=1,
        help="independent chains; >1 runs a supervised ensemble and prints "
             "convergence statistics instead of one trajectory",
    )
    run.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes for the ensemble (results depend only on "
             "seed and --shards, never on N)",
    )
    run.add_argument(
        "--shards", type=int, default=None, metavar="K",
        help="fixed shard count (part of the random-stream identity; "
             "default min(replicas, 8))",
    )
    run.add_argument(
        "--shard-timeout", type=float, default=None, metavar="SECONDS",
        help="per-shard-attempt wall-clock budget; overrunning workers are "
             "killed and retried",
    )
    run.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="retries per shard before it is quarantined (exit 7 reports "
             "the partial results)",
    )
    run.add_argument(
        "--engine", default=None, metavar="NAME",
        choices=("loop", "batched", "batched+numba", "lockstep"),
        help="ensemble stepping backend (default: batched; see "
             "docs/ENGINES.md for the backend contract)",
    )
    run.add_argument(
        "--scenario", action="append", default=None, metavar="NAME[:k=v,...]",
        help="run the ensemble in a hostile world (repeatable; repeats "
             "compose left-to-right, e.g. --scenario churn:period=16 "
             "--scenario lossy:rate=0.1); see `repro scenarios list` and "
             "docs/SCENARIOS.md",
    )
    run.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="serve GET /metrics (Prometheus text exposition) from a "
             "background thread; 0 binds an ephemeral port, announced on "
             "stderr as 'metrics: serving <url>'",
    )
    run.add_argument(
        "--metrics-textfile", metavar="PATH", default=None,
        help="atomically write the final exposition payload to PATH "
             "(node-exporter textfile collector convention)",
    )
    run.add_argument(
        "--profile", metavar="DIR", default=None,
        help="cProfile the run into DIR (per shard for ensembles: "
             "shard<k>.prof) and export span aggregates as "
             "DIR/spans.speedscope.json",
    )
    run.set_defaults(handler=_cmd_run)

    watch = sub.add_parser(
        "watch",
        help="live dashboard over a run's heartbeat files (works post-mortem)",
    )
    watch.add_argument(
        "path",
        help="run/checkpoint base path (as given to --checkpoint) or a "
             "directory of heartbeat files",
    )
    watch.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help="redraw interval (default 1.0)",
    )
    watch.add_argument(
        "--once", action="store_true",
        help="render a single frame and exit (post-mortem inspection)",
    )
    watch.add_argument(
        "--stale-after", type=float, default=5.0, metavar="SECONDS",
        help="flag a non-terminal heartbeat older than this as stale "
             "(default 5.0)",
    )
    watch.set_defaults(handler=_cmd_watch)

    serve = sub.add_parser(
        "serve",
        help="run the crash-safe simulation service (HTTP job API; "
             "docs/SERVICE.md)",
    )
    serve.add_argument(
        "root",
        help="service directory: holds the job journal, snapshot, and "
             "per-job checkpoints/heartbeats/traces",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve.add_argument(
        "--port", type=int, default=0, metavar="PORT",
        help="API port (default 0: ephemeral; the chosen URL is printed "
             "to stderr)",
    )
    serve.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="also expose /metrics on a dedicated Prometheus port "
             "(0 = ephemeral)",
    )
    serve.add_argument(
        "--workers", type=int, default=1, metavar="K",
        help="concurrent job worker processes (default 1)",
    )
    serve.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="default per-job failure budget before `failed` (default 2)",
    )
    serve.add_argument(
        "--stale-after", type=float, default=30.0, metavar="SECONDS",
        help="heartbeat age past which a worker is presumed stuck and "
             "killed (default 30)",
    )
    serve.add_argument(
        "--backoff-base", type=float, default=0.5, metavar="SECONDS",
        help="base requeue delay; doubles per failure with seeded jitter "
             "(default 0.5)",
    )
    serve.add_argument(
        "--backoff-cap", type=float, default=30.0, metavar="SECONDS",
        help="upper bound on the requeue delay (default 30)",
    )
    serve.add_argument(
        "--poll", type=float, default=0.05, metavar="SECONDS",
        help="dispatch loop wakeup interval (default 0.05)",
    )
    serve.set_defaults(handler=_cmd_serve)

    resume = sub.add_parser(
        "resume", help="continue an interrupted run from its checkpoint"
    )
    resume.add_argument(
        "checkpoint", help="checkpoint written by `repro run --checkpoint`"
    )
    resume.add_argument(
        "--trace", metavar="PATH", default=None,
        help="stream a telemetry trace of the resumed leg to PATH",
    )
    resume.add_argument(
        "--trace-format", choices=TRACE_FORMATS, default="jsonl",
        help="trace container for the resumed leg (default jsonl)",
    )
    resume.add_argument(
        "--metrics", action="store_true",
        help="print run telemetry (rounds, wall-clock, rounds/sec)",
    )
    resume.set_defaults(handler=_cmd_resume)

    trace = sub.add_parser(
        "trace",
        help="inspect, validate, convert, and index telemetry traces",
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    validate = trace_sub.add_parser(
        "validate",
        help="schema-check a trace, either format (exit 3 when invalid)",
    )
    validate.add_argument("path", help="trace file (JSONL or columnar)")
    validate.add_argument(
        "--salvage", action="store_true",
        help="recover the valid prefix of a truncated trace instead of failing",
    )
    validate.add_argument(
        "--output", metavar="PATH", default=None,
        help="write the validated (or salvaged) records to PATH as JSONL",
    )
    validate.set_defaults(handler=_cmd_trace_validate)
    convert = trace_sub.add_parser(
        "convert",
        help="convert a trace to the other container (jsonl <-> columnar), "
             "losslessly",
    )
    convert.add_argument("source", help="trace file; its format is sniffed")
    convert.add_argument("target", help="output path (the opposite format)")
    convert.add_argument(
        "--salvage", action="store_true",
        help="convert the recoverable prefix of a torn trace instead of failing",
    )
    convert.add_argument(
        "--chunk-rounds", metavar="N", type=int, default=None,
        help="rounds per column chunk when writing columnar "
             "(default 4096)",
    )
    convert.set_defaults(handler=_cmd_trace_convert)
    index = trace_sub.add_parser(
        "index",
        help="refresh the persistent TRACE_INDEX.json of a trace directory",
    )
    index.add_argument("directory", help="directory of trace files")
    index.add_argument(
        "--rebuild", action="store_true",
        help="ignore the existing index and re-summarize every trace",
    )
    index.set_defaults(handler=_cmd_trace_index)

    sweep = sub.add_parser("sweep", help="tau vs n with a power-law fit")
    sweep.add_argument("protocol")
    sweep.add_argument("--sizes", default="128,256,512,1024")
    sweep.add_argument("--z", type=int, default=1, choices=(0, 1))
    sweep.add_argument("--replicas", type=int, default=10)
    sweep.add_argument("--budget-factor", type=float, default=1.0)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.set_defaults(handler=_cmd_sweep)

    report = sub.add_parser(
        "report",
        help="trace analytics + benchmark ledger for a results directory",
    )
    report.add_argument(
        "results_dir", nargs="?", default="results",
        help="directory of *.jsonl traces and BENCH_*.json records",
    )
    report.add_argument(
        "--baseline", default=None,
        help="baseline snapshot (default: <results_dir>/BASELINE.json)",
    )
    report.add_argument(
        "--json", action="store_true", help="emit the report as JSON on stdout"
    )
    report.add_argument(
        "--strict", action="store_true",
        help="exit 4 when the ledger flags a regression, failed experiment, "
             "or a record built from a degraded (shards-lost) ensemble",
    )
    report.add_argument(
        "--min-rel-slowdown", type=float, default=0.30,
        help="relative slowdown below which a timing delta is noise (default 0.30)",
    )
    report.add_argument(
        "--noise-sigmas", type=float, default=3.0,
        help="standard deviations a delta must clear to flag (default 3.0)",
    )
    report.set_defaults(handler=_cmd_report)

    bench = sub.add_parser(
        "bench", help="run the benchmark suite and archive BENCH_*.json records"
    )
    bench.add_argument(
        "--smoke", action="store_true",
        help="shrink benchmark sizing (REPRO_SMOKE=1); shape asserts become xfails",
    )
    bench.add_argument(
        "--only", metavar="EXPR", default=None,
        help="pytest -k expression selecting a subset of benchmarks",
    )
    bench.add_argument(
        "--list", action="store_true", help="list benchmark modules and exit"
    )
    bench.add_argument(
        "--timeout", metavar="SECONDS", type=float, default=None,
        help="per-experiment wall-clock budget; a breach records a failed "
             "ledger entry and the command exits 6",
    )
    bench.add_argument(
        "--bench-dir", metavar="DIR", default=None,
        help="benchmark directory to run (default: the repo's benchmarks/)",
    )
    bench.add_argument(
        "--workers", metavar="N", type=int, default=None,
        help="worker processes for ensemble benchmarks (REPRO_BENCH_WORKERS)",
    )
    bench.add_argument(
        "--scenario", metavar="SPEC", default=None,
        help="scenario spec for the scenario-overhead benchmarks "
             "(REPRO_BENCH_SCENARIO; default: their built-in composite)",
    )
    bench.set_defaults(handler=_cmd_bench)

    scenarios = sub.add_parser(
        "scenarios",
        help="inspect the hostile-world scenario registry",
    )
    scenarios_sub = scenarios.add_subparsers(dest="scenarios_command", required=True)
    scenarios_list = scenarios_sub.add_parser(
        "list",
        help="list registered scenarios with their parameter schemas",
    )
    scenarios_list.set_defaults(handler=_cmd_scenarios_list)

    assemble = sub.add_parser(
        "assemble", help="assemble results/E*.txt into REPORT.md"
    )
    assemble.add_argument("--results-dir", default="results")
    assemble.add_argument("--output", default="REPORT.md")
    assemble.set_defaults(handler=_cmd_assemble)

    worst = sub.add_parser(
        "worst", help="exact adversarial starting configuration (small n)"
    )
    worst.add_argument("protocol")
    worst.add_argument("--n", type=int, default=48)
    worst.add_argument("--z", type=int, default=1, choices=(0, 1))
    worst.add_argument("--profile", action="store_true", help="plot E[tau] by start")
    worst.set_defaults(handler=_cmd_worst)

    meanfield = sub.add_parser(
        "meanfield", help="fixed points and deterministic trajectory"
    )
    meanfield.add_argument("protocol")
    meanfield.add_argument("--n", type=int, default=1024)
    meanfield.add_argument("--p0", type=float, default=0.1)
    meanfield.add_argument("--rounds", type=int, default=30)
    meanfield.set_defaults(handler=_cmd_meanfield)

    landscape = sub.add_parser("landscape", help="ASCII plot of the bias polynomial")
    landscape.add_argument("protocol")
    landscape.add_argument("--n", type=int, default=1024)
    landscape.add_argument("--points", type=int, default=101)
    landscape.add_argument("--csv", action="store_true")
    landscape.set_defaults(handler=_cmd_landscape)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except GracefulExit as stop:
        # Backstop for runners that raise outside _run_simulation's handler.
        message = f"repro: interrupted by {stop.signal_name}"
        if stop.checkpoint_path is not None:
            message += f"; checkpoint saved to {stop.checkpoint_path}"
        print(message, file=sys.stderr)
        return EXIT_INTERRUPTED


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
