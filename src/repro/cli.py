"""Command-line interface: audit, simulate, and sweep protocols.

Usage (installed as ``python -m repro``):

    python -m repro list
    python -m repro audit minority-3 --n 4096
    python -m repro audit table:0,0.2,0.8,1 --n 1024
    python -m repro run voter --n 1000 --z 1 --x0 1 --rounds 100000
    python -m repro sweep voter --sizes 128,256,512,1024 --replicas 10
    python -m repro landscape minority-3
    python -m repro bench --smoke
    python -m repro report results/

Protocols are resolved from the registry (:mod:`repro.protocols.registry`)
or given inline as ``table:<g0 entries>[;<g1 entries>]`` — comma-separated
response probabilities, length ``ell + 1``.

Output hygiene: stdout carries the command's machine-parseable result
(key=value lines, CSV tables, or ``--json`` documents); progress notes,
telemetry summaries, and ASCII plots go to stderr.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.analysis.scaling import fit_power_law
from repro.analysis.series import Series, Table, ascii_plot
from repro.core.bias import bias_value
from repro.core.lower_bound import lower_bound_certificate, verify_escape_assumptions
from repro.core.protocol import Protocol
from repro.core.roots import is_zero_bias, sign_profile
from repro.dynamics.config import Configuration, wrong_consensus_configuration
from repro.dynamics.rng import make_rng
from repro.dynamics.run import simulate, simulate_ensemble
from repro.protocols import available_protocols, get_family, table_protocol
from repro.telemetry import JsonlTraceWriter, MetricsRecorder, compose_recorders

__all__ = ["main", "resolve_protocol"]


def resolve_protocol(spec: str, n: int) -> Protocol:
    """Resolve a protocol spec: a registry name or ``table:...`` literal."""
    if spec.startswith("table:"):
        body = spec[len("table:"):]
        parts = body.split(";")
        g0 = [float(v) for v in parts[0].split(",") if v.strip()]
        g1 = (
            [float(v) for v in parts[1].split(",") if v.strip()]
            if len(parts) > 1
            else None
        )
        return table_protocol(g0, g1, name=spec)
    return get_family(spec).at(n)


def _cmd_list(_: argparse.Namespace) -> int:
    for name in available_protocols():
        print(name)
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    protocol = resolve_protocol(args.protocol, args.n)
    print(f"protocol: {protocol!r}")
    if not protocol.satisfies_boundary_conditions():
        print("Proposition 3 VIOLATED: g[0](0) > 0 or g[1](ell) < 1.")
        print("This protocol cannot solve bit-dissemination (tau = +inf).")
        return 1
    print("Proposition 3: ok (consensus absorbing)")
    if is_zero_bias(protocol):
        print("bias: F = 0 identically (Lemma-11 / Voter-like)")
    else:
        profile = sign_profile(protocol)
        print(f"roots of F: {np.round(profile.roots, 6).tolist()}")
        print(f"signs between roots: {list(profile.signs)}")
    certificate = lower_bound_certificate(protocol)
    print(certificate.describe())
    report = verify_escape_assumptions(certificate, args.n, epsilon=args.epsilon)
    print(
        f"assumptions at n={args.n}: drift_ok={report.drift_ok} "
        f"(margin {report.worst_drift_margin:.3f}), "
        f"jump tail {report.jump_tail_bound:.3e}, "
        f"concentration tail {report.concentration_tail_bound:.3e}"
    )
    witness = certificate.witness_configuration(args.n)
    print(
        f"witness: z={witness.z}, x0={witness.x0}; lower bound: "
        f">= {report.predicted_rounds:.0f} rounds (eps={args.epsilon})"
    )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    protocol = resolve_protocol(args.protocol, args.n)
    low, high = Configuration.count_bounds(args.n, args.z)
    x0 = args.x0 if args.x0 is not None else wrong_consensus_configuration(args.n, args.z).x0
    config = Configuration(n=args.n, z=args.z, x0=min(max(x0, low), high))
    metrics = MetricsRecorder() if args.metrics else None
    trace = JsonlTraceWriter(args.trace) if args.trace else None
    recorder = compose_recorders(metrics, trace)
    try:
        result = simulate(
            protocol, config, args.rounds, make_rng(args.seed),
            record=args.record, recorder=recorder,
        )
    finally:
        if trace is not None:
            trace.close()
    print(
        f"{protocol.name} on n={args.n}, z={args.z}, x0={config.x0}: "
        f"converged={result.converged}, rounds={result.rounds}, "
        f"final count={result.final_count}"
    )
    if metrics is not None:
        m = metrics.metrics()
        print(
            f"telemetry: rounds={m.rounds} wall={m.wall_clock_s:.4f}s "
            f"rounds/sec={m.rounds_per_second:,.0f} "
            f"mean |drift|={m.mean_abs_drift:.3f}",
            file=sys.stderr,
        )
        for path, agg in sorted(m.spans.items()):
            print(
                f"telemetry: span {path}: calls={agg.calls} "
                f"wall={agg.wall_s:.4f}s",
                file=sys.stderr,
            )
    if trace is not None:
        print(
            f"trace: wrote {trace.records_written} records to {args.trace}",
            file=sys.stderr,
        )
    if args.record and result.trajectory is not None:
        series = Series(
            "count", np.arange(len(result.trajectory), dtype=float),
            result.trajectory.astype(float),
        )
        print(ascii_plot([series], width=64, height=12), file=sys.stderr)
    return 0 if result.converged else 2


def _cmd_sweep(args: argparse.Namespace) -> int:
    sizes = [int(v) for v in args.sizes.split(",")]
    table = Table(
        f"tau vs n for {args.protocol} (z={args.z}, all-wrong start, "
        f"{args.replicas} replicas, budget {args.budget_factor}x bound)",
        ["n", "budget", "median tau", "censored"],
    )
    medians = []
    fitted_sizes = []
    for n in sizes:
        protocol = resolve_protocol(args.protocol, n)
        config = wrong_consensus_configuration(n, args.z)
        budget = int(args.budget_factor * 2 * n * max(1.0, np.log(n)))
        times = simulate_ensemble(
            protocol, config, budget, make_rng(args.seed + n), args.replicas
        )
        censored = int(np.isnan(times).sum())
        finite = times[~np.isnan(times)]
        median = float(np.median(finite)) if len(finite) else float("inf")
        table.add_row(n, budget, median, censored)
        if np.isfinite(median):
            medians.append(median)
            fitted_sizes.append(n)
    print(table.render())
    if len(medians) >= 2:
        fit = fit_power_law(fitted_sizes, medians)
        print(f"\nfit: tau ~ {fit.prefactor:.3g} * n^{fit.exponent:.3f} "
              f"(r^2 = {fit.r_squared:.3f})")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Trace analytics + benchmark-regression table for a results directory."""
    import json
    import pathlib

    from repro.analysis.report import build_report, render_report

    results_dir = pathlib.Path(args.results_dir)
    if not results_dir.is_dir():
        print(
            f"no results directory at {results_dir}; run "
            "`python -m repro bench` or archive traces there first",
            file=sys.stderr,
        )
        return 1
    report = build_report(results_dir, baseline_path=args.baseline)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_report(report))
    return 1 if args.strict and report["regressions"] else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run the benchmark suite (optionally smoke-sized) to refresh the ledger."""
    import os
    import pathlib
    import subprocess

    repo_root = pathlib.Path(__file__).resolve().parents[2]
    bench_dir = repo_root / "benchmarks"
    modules = sorted(path.stem for path in bench_dir.glob("bench_*.py"))
    if args.list:
        for name in modules:
            print(name)
        return 0
    command = [
        sys.executable, "-m", "pytest", str(bench_dir),
        "--benchmark-only", "-q",
    ]
    if args.only:
        command += ["-k", args.only]
    env = dict(os.environ)
    if args.smoke:
        env["REPRO_SMOKE"] = "1"
    env["PYTHONPATH"] = os.pathsep.join(
        [str(repo_root / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    sizing = "smoke" if args.smoke else "full"
    print(f"bench: {sizing} sizing: {' '.join(command)}", file=sys.stderr)
    completed = subprocess.run(
        command, cwd=repo_root, env=env,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    # pytest chatter is progress, not a result: keep stdout machine-clean.
    sys.stderr.write(completed.stdout)
    if completed.returncode == 0:
        print(
            f"bench: records archived under {repo_root / 'results'} "
            "(BENCH_*.json); see `python -m repro report results/`",
            file=sys.stderr,
        )
    return completed.returncode


def _cmd_assemble(args: argparse.Namespace) -> int:
    """Assemble results/E*.txt into a single REPORT.md."""
    import pathlib

    results_dir = pathlib.Path(args.results_dir)
    if not results_dir.is_dir():
        print(
            f"no results directory at {results_dir}; run "
            "`pytest benchmarks/ --benchmark-only` first",
            file=sys.stderr,
        )
        return 1
    files = sorted(
        results_dir.glob("E*.txt"),
        key=lambda path: (len(path.stem.split("_")[0]), path.stem),
    )
    if not files:
        print(f"no experiment outputs under {results_dir}", file=sys.stderr)
        return 1
    sections = ["# Experiment report\n"]
    sections.append(
        "Assembled from the most recent `pytest benchmarks/ --benchmark-only` "
        f"run ({len(files)} experiments).\n"
    )
    for path in files:
        sections.append(f"\n## {path.stem}\n")
        sections.append("```")
        sections.append(path.read_text().strip())
        sections.append("```")
    output = pathlib.Path(args.output)
    output.write_text("\n".join(sections) + "\n")
    print(f"wrote {output} ({len(files)} experiments)", file=sys.stderr)
    return 0


def _cmd_worst(args: argparse.Namespace) -> int:
    from repro.dynamics.adversary import exact_worst_start

    protocol = resolve_protocol(args.protocol, args.n)
    worst = exact_worst_start(protocol, args.n, args.z)
    print(
        f"{protocol.name}, n={args.n}, z={args.z}: worst start x0="
        f"{worst.config.x0} with exact E[tau] = {worst.expected_rounds:.6g}"
    )
    if args.profile:
        series = Series(
            "exact E[tau] by start (log10)",
            worst.probed_counts.astype(float),
            np.log10(np.maximum(worst.profile, 1.0)),
        )
        print(ascii_plot([series], width=64, height=12))
    return 0


def _cmd_meanfield(args: argparse.Namespace) -> int:
    from repro.core.mean_field import fixed_points, iterate_mean_field
    from repro.core.roots import is_zero_bias

    protocol = resolve_protocol(args.protocol, args.n)
    if is_zero_bias(protocol):
        print(f"{protocol.name}: zero bias — the mean-field map is the identity")
        return 0
    print(f"fixed points of phi(p) = p + F(p) for {protocol.name}:")
    for point in fixed_points(protocol):
        oscillatory = " (oscillatory)" if point.is_oscillatory else ""
        print(
            f"  p* = {point.location:.6f}  phi' = {point.multiplier:+.4f}  "
            f"{point.stability}{oscillatory}"
        )
    trajectory = iterate_mean_field(protocol, args.p0, args.rounds)
    series = Series(
        f"mean-field from p0={args.p0:g}",
        np.arange(len(trajectory), dtype=float),
        trajectory,
    )
    print(ascii_plot([series], width=64, height=12, y_min=0.0, y_max=1.0))
    return 0


def _cmd_landscape(args: argparse.Namespace) -> int:
    protocol = resolve_protocol(args.protocol, args.n)
    grid = np.linspace(0.0, 1.0, args.points)
    series = Series(f"F(p) for {protocol.name}", grid, bias_value(protocol, grid))
    print(ascii_plot([series], width=66, height=14))
    if args.csv:
        print()
        print(series.to_csv(x_label="p"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Memory-less bit-dissemination: simulate and audit protocols.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered protocols").set_defaults(
        handler=_cmd_list
    )

    audit = sub.add_parser("audit", help="run the Theorem-12 pipeline on a protocol")
    audit.add_argument("protocol", help="registry name or table:<g0>[;<g1>]")
    audit.add_argument("--n", type=int, default=4096)
    audit.add_argument("--epsilon", type=float, default=0.25)
    audit.set_defaults(handler=_cmd_audit)

    run = sub.add_parser("run", help="simulate one run of the count chain")
    run.add_argument("protocol")
    run.add_argument("--n", type=int, default=1000)
    run.add_argument("--z", type=int, default=1, choices=(0, 1))
    run.add_argument("--x0", type=int, default=None, help="default: all wrong")
    run.add_argument("--rounds", type=int, default=100_000)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--record", action="store_true", help="plot the trajectory")
    run.add_argument(
        "--trace", metavar="PATH", default=None,
        help="stream a JSONL telemetry trace to PATH (see docs/OBSERVABILITY.md)",
    )
    run.add_argument(
        "--metrics", action="store_true",
        help="print run telemetry (rounds, wall-clock, rounds/sec)",
    )
    run.set_defaults(handler=_cmd_run)

    sweep = sub.add_parser("sweep", help="tau vs n with a power-law fit")
    sweep.add_argument("protocol")
    sweep.add_argument("--sizes", default="128,256,512,1024")
    sweep.add_argument("--z", type=int, default=1, choices=(0, 1))
    sweep.add_argument("--replicas", type=int, default=10)
    sweep.add_argument("--budget-factor", type=float, default=1.0)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.set_defaults(handler=_cmd_sweep)

    report = sub.add_parser(
        "report",
        help="trace analytics + benchmark ledger for a results directory",
    )
    report.add_argument(
        "results_dir", nargs="?", default="results",
        help="directory of *.jsonl traces and BENCH_*.json records",
    )
    report.add_argument(
        "--baseline", default=None,
        help="baseline snapshot (default: <results_dir>/BASELINE.json)",
    )
    report.add_argument(
        "--json", action="store_true", help="emit the report as JSON on stdout"
    )
    report.add_argument(
        "--strict", action="store_true",
        help="exit 1 when the ledger flags a regression",
    )
    report.set_defaults(handler=_cmd_report)

    bench = sub.add_parser(
        "bench", help="run the benchmark suite and archive BENCH_*.json records"
    )
    bench.add_argument(
        "--smoke", action="store_true",
        help="shrink benchmark sizing (REPRO_SMOKE=1); shape asserts become xfails",
    )
    bench.add_argument(
        "--only", metavar="EXPR", default=None,
        help="pytest -k expression selecting a subset of benchmarks",
    )
    bench.add_argument(
        "--list", action="store_true", help="list benchmark modules and exit"
    )
    bench.set_defaults(handler=_cmd_bench)

    assemble = sub.add_parser(
        "assemble", help="assemble results/E*.txt into REPORT.md"
    )
    assemble.add_argument("--results-dir", default="results")
    assemble.add_argument("--output", default="REPORT.md")
    assemble.set_defaults(handler=_cmd_assemble)

    worst = sub.add_parser(
        "worst", help="exact adversarial starting configuration (small n)"
    )
    worst.add_argument("protocol")
    worst.add_argument("--n", type=int, default=48)
    worst.add_argument("--z", type=int, default=1, choices=(0, 1))
    worst.add_argument("--profile", action="store_true", help="plot E[tau] by start")
    worst.set_defaults(handler=_cmd_worst)

    meanfield = sub.add_parser(
        "meanfield", help="fixed points and deterministic trajectory"
    )
    meanfield.add_argument("protocol")
    meanfield.add_argument("--n", type=int, default=1024)
    meanfield.add_argument("--p0", type=float, default=0.1)
    meanfield.add_argument("--rounds", type=int, default=30)
    meanfield.set_defaults(handler=_cmd_meanfield)

    landscape = sub.add_parser("landscape", help="ASCII plot of the bias polynomial")
    landscape.add_argument("protocol")
    landscape.add_argument("--n", type=int, default=1024)
    landscape.add_argument("--points", type=int, default=101)
    landscape.add_argument("--csv", action="store_true")
    landscape.set_defaults(handler=_cmd_landscape)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
