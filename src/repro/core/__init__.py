"""The paper's primary contribution: bias analysis and the lower-bound pipeline."""

from repro.core.bias import (
    bias_coefficients,
    bias_from_coefficients,
    bias_value,
    drift_identity_gap,
    expected_next_count,
)
from repro.core.jump_bound import (
    JumpBoundCheck,
    check_jump_bound,
    jump_bound_y,
    jump_failure_probability,
)
from repro.core.mean_field import (
    FixedPoint,
    fixed_points,
    iterate_mean_field,
    mean_field_derivative,
    mean_field_map,
    tracking_error,
)
from repro.core.lower_bound import (
    AssumptionReport,
    LowerBoundCertificate,
    lower_bound_certificate,
    verify_escape_assumptions,
)
from repro.core.protocol import Protocol, ProtocolFamily, constant_family
from repro.core.roots import SignProfile, is_zero_bias, sign_profile, unit_interval_roots

__all__ = [
    "Protocol",
    "ProtocolFamily",
    "constant_family",
    "bias_value",
    "bias_coefficients",
    "bias_from_coefficients",
    "expected_next_count",
    "drift_identity_gap",
    "unit_interval_roots",
    "sign_profile",
    "SignProfile",
    "is_zero_bias",
    "jump_bound_y",
    "jump_failure_probability",
    "JumpBoundCheck",
    "check_jump_bound",
    "LowerBoundCertificate",
    "AssumptionReport",
    "lower_bound_certificate",
    "verify_escape_assumptions",
    "FixedPoint",
    "fixed_points",
    "iterate_mean_field",
    "mean_field_map",
    "mean_field_derivative",
    "tracking_error",
]
