"""The bias polynomial ``F_n`` (Eq. 3) and the drift identity (Proposition 5).

For a protocol ``P`` with sample size ``ell``, the paper defines

    F(p) = -p + sum_k C(ell, k) p^k (1-p)^(ell-k) (p g[1](k) + (1-p) g[0](k)),

the expected one-round change of the *fraction* of opinion-1 agents, ignoring
the source.  ``F`` is a polynomial of degree at most ``ell + 1``; the entire
lower-bound argument of the paper rests on ``F`` having a constant number of
roots when ``ell`` is constant.

This module computes ``F`` both pointwise (numerically stable, via the
binomial mixture) and as an explicit coefficient vector in the power basis
(used by the root-finding machinery in :mod:`repro.core.roots`), and exposes
the exact conditional drift ``E[X_{t+1} | X_t = x]`` of the count chain,
against which Proposition 5 is verified.
"""

from __future__ import annotations

import numpy as np

from repro.core.protocol import Protocol

__all__ = [
    "bias_value",
    "bias_coefficients",
    "bias_from_coefficients",
    "expected_next_count",
    "drift_identity_gap",
]


def bias_value(protocol: Protocol, p):
    """Evaluate ``F(p)`` pointwise.  Vectorized over ``p``.

    Uses the binomial-mixture form directly (rather than expanded power-basis
    coefficients), which is numerically stable even for the large ``ell`` of
    the [15] regime where expanded coefficients overflow.
    """
    p_array = np.asarray(p, dtype=float)
    p0, p1 = protocol.response_probabilities(p_array)
    value = -p_array + p_array * p1 + (1.0 - p_array) * p0
    if np.isscalar(p) or p_array.ndim == 0:
        return float(value)
    return value


def bias_coefficients(protocol: Protocol) -> np.ndarray:
    """Power-basis coefficients of ``F``, lowest degree first.

    Returns an array ``c`` of length ``ell + 2`` with
    ``F(p) = sum_j c[j] p^j``.  Exact up to float rounding; intended for the
    constant-``ell`` regime of the lower bound (coefficients grow like
    ``4^ell`` and become unreliable for ``ell`` beyond a few dozen, which the
    root machinery guards against).
    """
    ell = protocol.ell
    degree = ell + 1
    coefficients = np.zeros(degree + 1, dtype=float)
    binomials = _binomial_row(ell)
    for k in range(ell + 1):
        # basis_k(p) = C(ell, k) p^k (1-p)^(ell-k), expanded in powers of p.
        basis = binomials[k] * _shifted_power_coefficients(k, ell - k)
        # (1-p) g0[k] basis_k(p)  -> contributes to degrees k..ell+1
        g0_term = np.convolve(basis, [1.0, -1.0]) * protocol.g0[k]
        # p g1[k] basis_k(p)
        g1_term = np.convolve(basis, [0.0, 1.0]) * protocol.g1[k]
        coefficients += g0_term + g1_term
    coefficients[1] -= 1.0  # the leading "-p" of Eq. 3
    return coefficients


def bias_from_coefficients(coefficients: np.ndarray, p):
    """Evaluate the power-basis expansion at ``p`` (Horner scheme)."""
    p_array = np.asarray(p, dtype=float)
    value = np.zeros_like(p_array)
    for c in coefficients[::-1]:
        value = value * p_array + c
    if np.isscalar(p) or p_array.ndim == 0:
        return float(value)
    return value


def expected_next_count(protocol: Protocol, n: int, z: int, x) -> np.ndarray:
    """Exact conditional expectation ``E[X_{t+1} | X_t = x]`` of the count chain.

    ``X_t`` counts *all* agents (including the source) holding opinion 1 and
    ``z`` is the source's (correct) opinion.  With ``p = x / n``:

        E[X_{t+1}] = z + (x - z) P1(p) + (n - x - (1 - z)) P0(p)

    (the source contributes ``z`` deterministically; each non-source agent
    flips independently given ``X_t``).  Vectorized over ``x``.
    """
    _validate_count_arguments(n, z, x)
    x_array = np.asarray(x, dtype=float)
    p = x_array / n
    p0, p1 = protocol.response_probabilities(p)
    value = z + (x_array - z) * np.asarray(p1) + (n - x_array - (1 - z)) * np.asarray(p0)
    if np.isscalar(x):
        return float(value)
    return value


def drift_identity_gap(protocol: Protocol, n: int, z: int, x) -> np.ndarray:
    """The gap ``E[X_{t+1} | X_t = x] - x - n F(x/n)`` of Proposition 5.

    Proposition 5 asserts this gap always lies in ``[-1, +1]``; the exact
    value is ``z (1 - P1(p)) - (1 - z) P0(p)`` (source correction).
    """
    x_array = np.asarray(x, dtype=float)
    expectation = expected_next_count(protocol, n, z, x)
    return np.asarray(expectation) - x_array - n * np.asarray(
        bias_value(protocol, x_array / n)
    )


def _validate_count_arguments(n: int, z: int, x) -> None:
    if n < 2:
        raise ValueError(f"population size n must be >= 2, got {n}")
    if z not in (0, 1):
        raise ValueError(f"source opinion z must be 0 or 1, got {z}")
    x_array = np.asarray(x)
    low = z  # the source always holds z, so X >= z ...
    high = n - (1 - z)  # ... and X <= n - 1 when z = 0.
    if np.any(x_array < low) or np.any(x_array > high):
        raise ValueError(
            f"count x must lie in [{low}, {high}] for n={n}, z={z}; got {x}"
        )


def _binomial_row(ell: int) -> np.ndarray:
    row = np.empty(ell + 1, dtype=float)
    value = 1
    for k in range(ell + 1):
        row[k] = float(value)
        value = value * (ell - k) // (k + 1)
    return row


def _shifted_power_coefficients(k: int, m: int) -> np.ndarray:
    """Coefficients of ``p^k (1-p)^m`` in the power basis, lowest first."""
    one_minus_p = np.array([1.0])
    for _ in range(m):
        one_minus_p = np.convolve(one_minus_p, [1.0, -1.0])
    return np.concatenate([np.zeros(k), one_minus_p])
