"""Proposition 4: the one-round jump bound for solving protocols.

If a protocol satisfies ``g[0](0) = 0`` (Proposition 3), then an agent with
opinion 0 that samples *only* zeros keeps its opinion.  From any configuration
with ``x_t <= c n`` ones, each of the at least ``(1 - c) n`` zero-agents keeps
opinion 0 with probability at least ``(1 - c)^ell``, so the next count is,
w.h.p., at most ``y(c, ell) n`` with

    y(c, ell) = 1 - (1 - c)^(ell + 1) / 2

and failure probability ``exp(-2 sqrt(n))``.  This is the "cannot jump over
the interval" ingredient (assumption (ii)) of the escape theorem: with a
*constant* sample size the process cannot leap from far below the interval to
past it in one round — precisely what breaks for ``ell = Omega(log n)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.protocol import Protocol

__all__ = [
    "jump_bound_y",
    "jump_failure_probability",
    "JumpBoundCheck",
    "check_jump_bound",
]


def jump_bound_y(c: float, ell: int) -> float:
    """The constant ``y(c, ell) = 1 - (1-c)^(ell+1) / 2`` of Proposition 4.

    Satisfies ``c < y < 1`` for ``c in (0, 1)``: starting at or below a ``c``
    fraction of ones, one parallel round cannot (w.h.p.) push the fraction
    above ``y``.
    """
    if not 0 < c < 1:
        raise ValueError(f"c must lie in (0, 1), got {c}")
    if ell < 1:
        raise ValueError(f"ell must be >= 1, got {ell}")
    y = 1.0 - (1.0 - c) ** (ell + 1) / 2.0
    # c < y always holds: 1 - y = (1-c)^(ell+1)/2 < (1-c)/2 < 1 - c.
    return y


def jump_failure_probability(n: int) -> float:
    """The Proposition-4 tail ``exp(-2 sqrt(n))`` (probability of exceeding y n)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return math.exp(-2.0 * math.sqrt(n))


@dataclass(frozen=True)
class JumpBoundCheck:
    """Outcome of an empirical verification of Proposition 4.

    Attributes:
        c: the starting-fraction threshold.
        y: the bound ``y(c, ell)``.
        n: population size used.
        trials: number of simulated one-round transitions.
        max_fraction_reached: largest ``X_{t+1} / n`` observed.
        violations: how many transitions exceeded ``y n``.
    """

    c: float
    y: float
    n: int
    trials: int
    max_fraction_reached: float
    violations: int

    @property
    def holds(self) -> bool:
        return self.violations == 0


def check_jump_bound(
    protocol: Protocol,
    n: int,
    c: float,
    trials: int,
    rng: np.random.Generator,
    z: int = 1,
) -> JumpBoundCheck:
    """Empirically verify Proposition 4 at the worst starting count.

    Runs ``trials`` independent one-round transitions from the extreme
    admissible count ``x = floor(c n)`` (the drift toward 1 is monotone in the
    starting count for the bound in question, so this is the stress case) and
    reports the largest fraction reached.
    """
    if not protocol.satisfies_boundary_conditions(tolerance=1e-12):
        raise ValueError(
            "Proposition 4 presupposes Proposition 3; protocol "
            f"{protocol.name!r} violates the boundary conditions"
        )
    # Imported here to avoid a circular import (dynamics imports core).
    from repro.dynamics.engine import step_count

    x = int(math.floor(c * n))
    x = max(x, z)  # the source holds z, so the count cannot be below z
    y = jump_bound_y(c, protocol.ell)
    threshold = y * n
    next_counts = np.array(
        [step_count(protocol, n, z, x, rng) for _ in range(trials)], dtype=float
    )
    violations = int(np.sum(next_counts > threshold))
    return JumpBoundCheck(
        c=c,
        y=y,
        n=n,
        trials=trials,
        max_fraction_reached=float(next_counts.max() / n),
        violations=violations,
    )
