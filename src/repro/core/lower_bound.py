"""The Theorem-12 lower-bound pipeline (the paper's main contribution).

Given any memory-less protocol with constant sample size, the paper proves
that there is a witness initial configuration from which convergence takes at
least ``n^(1-eps)`` parallel rounds w.h.p.  The construction:

1. Compute the bias polynomial ``F`` (Eq. 3).
2. If ``F`` is identically zero (e.g. the Voter dynamics), apply **Lemma 11**
   with the fixed interval ``(a1, a2, a3) = (1/4, 1/2, 3/4)`` and source
   opinion ``z = 1``.
3. Otherwise find the last interval between consecutive roots of ``F`` on
   which ``F`` has a definite sign:

   * **Case 1** (``F < 0`` there): the protocol is biased *against* opinion 1
     on the interval.  Set ``z = 1``; the process, started mid-interval, is a
     supermartingale that must cross the interval upward to reach the correct
     consensus — Theorem 6 shows this takes ``>= n^(1-eps)`` rounds.
   * **Case 2** (``F > 0`` there): set ``z = 0``; by Corollary 10 the process
     cannot descend through the interval quickly.

This module computes the resulting :class:`LowerBoundCertificate` — the case,
the interval constants, the witness configuration and the escape threshold —
and verifies the three assumptions of Theorem 6 / Corollary 10 numerically
for a concrete ``n`` (exact drift check, analytic Hoeffding tails).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
import numpy as np

from repro.core.bias import expected_next_count
from repro.core.jump_bound import jump_bound_y
from repro.core.protocol import Protocol
from repro.core.roots import is_zero_bias, sign_profile
from repro.dynamics.config import Configuration

__all__ = [
    "LowerBoundCertificate",
    "AssumptionReport",
    "lower_bound_certificate",
    "verify_escape_assumptions",
]

_CASE_ZERO_BIAS = "zero-bias (Lemma 11)"
_CASE_NEGATIVE = "case 1 (F < 0, Theorem 6)"
_CASE_POSITIVE = "case 2 (F > 0, Corollary 10)"


@dataclass(frozen=True)
class LowerBoundCertificate:
    """Everything Theorem 12 extracts from a protocol.

    Attributes:
        protocol: the analysed protocol.
        case: which branch of the proof applies (Lemma 11 / Case 1 / Case 2).
        interval: the open interval ``(left, right)`` of definite sign of
            ``F`` used by the construction (``(0, 1)`` for the zero-bias case).
        a1, a2, a3: the three constants fed to the escape theorem,
            ``interval[0] <= a1 < a2 < a3 <= interval[1]``.
        z: the source opinion of the witness configuration.
        escape_is_upward: True when the slow crossing is upward (z = 1;
            Lemma 11 and Case 1), False when downward (z = 0; Case 2).
    """

    protocol: Protocol
    case: str
    interval: tuple
    a1: float
    a2: float
    a3: float
    z: int
    escape_is_upward: bool

    def witness_configuration(self, n: int) -> Configuration:
        """The witness ``C_n`` of Theorem 12 for a concrete population size.

        The paper's constants are independent of ``n`` and the statement
        holds "for n large enough"; at finite ``n`` an interval narrower
        than a few ``1/n`` can collapse under integer rounding, so the
        start is nudged one count inside whenever rounding would place it
        at or past the escape threshold (when even that is impossible the
        interval genuinely has no room at this ``n`` and the bound is
        vacuous there — the asymptotic regime has not been reached).
        """
        if self.escape_is_upward:
            start_fraction = (self.a2 + self.a3) / 2.0  # Theorem 6 start
        else:
            start_fraction = (self.a1 + self.a2) / 2.0  # Corollary 10 start
        low, high = Configuration.count_bounds(n, self.z)
        x0 = min(max(int(round(start_fraction * n)), low), high)
        threshold = self.escape_threshold(n)
        if self.escape_is_upward and x0 >= threshold:
            x0 = max(low, threshold - 1)
        elif not self.escape_is_upward and x0 <= threshold:
            x0 = min(high, threshold + 1)
        return Configuration(n=n, z=self.z, x0=x0)

    def escape_threshold(self, n: int) -> int:
        """The count whose first crossing the lower bound controls.

        Convergence to the correct consensus requires ``X_t`` to cross this
        threshold (upward past ``a3 n`` when ``z = 1``, downward past
        ``a1 n`` when ``z = 0``), so the escape time lower-bounds ``tau_n``.
        """
        if self.escape_is_upward:
            return int(math.floor(self.a3 * n))
        return int(math.ceil(self.a1 * n))

    def has_escaped(self, n: int, x: int) -> bool:
        threshold = self.escape_threshold(n)
        return x >= threshold if self.escape_is_upward else x <= threshold

    def predicted_escape_rounds(self, n: int, epsilon: float) -> float:
        """Theorem 12's bound: the escape takes at least ``n^(1-eps)`` rounds."""
        if not 0 < epsilon < 1:
            raise ValueError(f"epsilon must lie in (0, 1), got {epsilon}")
        return float(n) ** (1.0 - epsilon)

    def describe(self) -> str:
        """One-paragraph human-readable summary for experiment logs."""
        direction = "upward past a3*n" if self.escape_is_upward else "downward past a1*n"
        return (
            f"protocol={self.protocol.name!r} (ell={self.protocol.ell}): {self.case}; "
            f"interval=({self.interval[0]:.4f}, {self.interval[1]:.4f}), "
            f"a1={self.a1:.4f}, a2={self.a2:.4f}, a3={self.a3:.4f}, z={self.z}; "
            f"slow crossing is {direction}"
        )


def lower_bound_certificate(protocol: Protocol) -> LowerBoundCertificate:
    """Run the Theorem-12 classification on a protocol.

    Raises ``ValueError`` if the protocol violates Proposition 3 (such a
    protocol does not solve the problem at all, so the lower bound is moot —
    its convergence time is infinite by Proposition 3's proof).
    """
    if not protocol.satisfies_boundary_conditions(tolerance=1e-12):
        raise ValueError(
            f"protocol {protocol.name!r} violates Proposition 3 "
            "(g[0](0) must be 0 and g[1](ell) must be 1); it cannot solve "
            "bit-dissemination, so no lower-bound certificate is needed"
        )
    if is_zero_bias(protocol):
        return LowerBoundCertificate(
            protocol=protocol,
            case=_CASE_ZERO_BIAS,
            interval=(0.0, 1.0),
            a1=0.25,
            a2=0.5,
            a3=0.75,
            z=1,
            escape_is_upward=True,
        )
    profile = sign_profile(protocol)
    left, right = profile.last_interval
    sign = profile.last_interval_sign
    if sign < 0:
        return _case_one_certificate(protocol, left, right)
    return _case_two_certificate(protocol, left, right)


def _case_one_certificate(
    protocol: Protocol, left: float, right: float
) -> LowerBoundCertificate:
    """Case 1: ``F < 0`` on ``(left, right)``; source opinion 1, slow upward.

    Following the paper (Figure 2): pick ``a1`` inside the interval, pick
    ``a2`` so a single round cannot jump from below ``a1 n`` past ``a2 n``,
    then ``a3 in (a2, right)``.  Proposition 4 guarantees that
    ``a2 = y(a1, ell)`` works, but that constant approaches 1 so fast that
    integer rounding collapses the ``(a2, a3)`` gap at laptop-scale ``n``;
    whenever the interval midpoint is *smaller* we use it instead — the
    no-skip property for the smaller ``a2`` is certified by the exact drift
    plus Hoeffding (see ``_jump_tail_bound``), which only strengthens the
    certificate.
    """
    width = right - left
    a1 = left + 0.25 * width
    a2 = min(jump_bound_y(a1, protocol.ell), left + 0.5 * width)
    a3 = (a2 + right) / 2.0
    return LowerBoundCertificate(
        protocol=protocol,
        case=_CASE_NEGATIVE,
        interval=(left, right),
        a1=a1,
        a2=a2,
        a3=a3,
        z=1,
        escape_is_upward=True,
    )


def _case_two_certificate(
    protocol: Protocol, left: float, right: float
) -> LowerBoundCertificate:
    """Case 2: ``F > 0`` on ``(left, right)``; source opinion 0, slow downward.

    Following the paper (Figure 3): three equally-spaced constants inside the
    interval.  The paper additionally needs ``F`` to be nearly non-negative
    above ``a3`` (Claim 13/14); for the ``n``-independent tables analysed
    here this holds because the chosen interval is the *last* one of definite
    sign, so ``|F|`` is below tolerance between ``right`` and 1.  The
    verification step re-checks this numerically.
    """
    a1 = left + 0.25 * (right - left)
    a2 = left + 0.50 * (right - left)
    a3 = left + 0.75 * (right - left)
    return LowerBoundCertificate(
        protocol=protocol,
        case=_CASE_POSITIVE,
        interval=(left, right),
        a1=a1,
        a2=a2,
        a3=a3,
        z=0,
        escape_is_upward=False,
    )


@dataclass(frozen=True)
class AssumptionReport:
    """Numerical verification of the escape theorem's assumptions at size ``n``.

    Attributes:
        n: the population size checked.
        epsilon: the target exponent gap.
        drift_ok: assumption (i) — exact one-step drift respects the
            supermartingale (Case 1/Lemma 11) or submartingale (Case 2)
            condition at every integer count inside ``[a1 n, a3 n]``.
        worst_drift_margin: smallest slack in assumption (i) (non-negative
            iff ``drift_ok``).
        jump_ok: assumption (ii) — the analytic tail bound on skipping the
            buffer zone in one round is ``exp(-n^Omega(1))``-small.
        jump_tail_bound: that analytic tail probability.
        concentration_tail_bound: assumption (iii) — the Hoeffding tail
            ``2 exp(-2 n^(eps/2))`` for one-step concentration at scale
            ``n^(1/2 + eps/4)`` (always valid: ``X_{t+1}`` is a sum of ``n``
            independent indicators given ``X_t``).
        predicted_rounds: the resulting bound ``n^(1-eps)``.
    """

    n: int
    epsilon: float
    drift_ok: bool
    worst_drift_margin: float
    jump_ok: bool
    jump_tail_bound: float
    concentration_tail_bound: float
    predicted_rounds: float

    @property
    def all_ok(self) -> bool:
        return self.drift_ok and self.jump_ok


def verify_escape_assumptions(
    certificate: LowerBoundCertificate,
    n: int,
    epsilon: float = 0.25,
) -> AssumptionReport:
    """Check assumptions (i)-(iii) of Theorem 6 / Corollary 10 at size ``n``.

    Assumption (i) is checked *exactly* (the conditional drift of the count
    chain is available in closed form).  Assumptions (ii) and (iii) are
    certified by the same Hoeffding arguments as in the paper, instantiated
    with concrete numbers.
    """
    if not 0 < epsilon < 1:
        raise ValueError(f"epsilon must lie in (0, 1), got {epsilon}")
    protocol = certificate.protocol
    z = certificate.z
    low, high = Configuration.count_bounds(n, z)
    lo = max(int(math.ceil(certificate.a1 * n)), low)
    hi = min(int(math.floor(certificate.a3 * n)), high)
    counts = np.arange(lo, hi + 1)
    drifts = np.asarray(expected_next_count(protocol, n, z, counts))
    if certificate.escape_is_upward:
        margins = (counts + 1.0) - drifts  # need E[X'] <= x + 1
    else:
        margins = drifts - (counts - 1.0)  # need E[X'] >= x - 1
    worst_margin = float(margins.min()) if len(margins) else float("inf")
    drift_ok = worst_margin >= 0.0

    jump_tail = _jump_tail_bound(certificate, n)
    jump_ok = jump_tail <= math.exp(-(n ** 0.25))

    concentration_tail = 2.0 * math.exp(-2.0 * n ** (epsilon / 2.0))
    return AssumptionReport(
        n=n,
        epsilon=epsilon,
        drift_ok=drift_ok,
        worst_drift_margin=worst_margin,
        jump_ok=jump_ok,
        jump_tail_bound=jump_tail,
        concentration_tail_bound=concentration_tail,
        predicted_rounds=certificate.predicted_escape_rounds(n, epsilon),
    )


def _jump_tail_bound(certificate: LowerBoundCertificate, n: int) -> float:
    """Analytic tail for assumption (ii): skipping the buffer in one round.

    Case 1 / Lemma 11 (upward): from any ``x <= a1 n``, the number of agents
    that keep opinion 0 stochastically dominates
    ``Binomial((1 - a1) n, (1 - a1)^ell)`` (Proposition 4's argument), and
    exceeding ``a2 n`` requires that binomial to fall ``Omega(n)`` below its
    mean whenever ``a2 >= y(a1, ell)``; otherwise we bound via the exact
    drift at the worst sub-``a1 n`` count plus Hoeffding.

    Case 2 (downward): from any ``x >= a3 n``, Claim 14 gives
    ``E[X_{t+1}] >= a3 n - 1``; Hoeffding at deviation ``(a3 - a2) n / 2``
    yields ``exp(-(a3 - a2)^2 n / 2)``.
    """
    protocol = certificate.protocol
    z = certificate.z
    low, high = Configuration.count_bounds(n, z)
    if certificate.escape_is_upward:
        # Worst starting count below a1 n: the drift toward 1 is largest at
        # the top of the range, so check every count (cheap, <= n values) and
        # take the loosest Hoeffding bound.
        hi = min(int(math.floor(certificate.a1 * n)), high)
        counts = np.arange(low, hi + 1)
        if len(counts) == 0:
            return 0.0
        means = np.asarray(expected_next_count(protocol, n, z, counts))
        deviations = certificate.a2 * n - means
        worst = float(deviations.min())
        if worst <= 0:
            return 1.0  # bound is vacuous; report failure honestly
        return math.exp(-2.0 * worst**2 / n)
    lo = max(int(math.ceil(certificate.a3 * n)), low)
    counts = np.arange(lo, high + 1)
    if len(counts) == 0:
        return 0.0
    means = np.asarray(expected_next_count(protocol, n, z, counts))
    deviations = means - certificate.a2 * n
    worst = float(deviations.min())
    if worst <= 0:
        return 1.0
    return math.exp(-2.0 * worst**2 / n)
