"""Mean-field analysis of a protocol: the deterministic skeleton of the chain.

As ``n -> infinity`` with ``p = X_t / n`` fixed, one parallel round
concentrates (Hoeffding) around the deterministic map

    phi(p) = p + F(p)  =  p P1(p) + (1 - p) P0(p),

so the count chain is a stochastic perturbation of the discrete dynamical
system ``p_{t+1} = phi(p_t)``.  The lower-bound proof is, in this language,
the statement that between consecutive fixed points of ``phi`` the flow is
monotone and the chain cannot beat it by more than diffusive fluctuations.

This module computes the fixed points of ``phi`` (the roots of ``F``),
classifies their stability (attracting / repelling / neutral / oscillatory
via ``|phi'|``), iterates the mean-field trajectory, and measures how well
a finite-``n`` simulation tracks it — the quantitative content of
Proposition 5 at the trajectory level.  It also explains the Minority
overshoot mechanism: for large ``ell``, ``phi`` maps a near-unanimous wrong
configuration across the fixed point in one step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.bias import bias_value
from repro.core.protocol import Protocol
from repro.core.roots import is_zero_bias, unit_interval_roots

__all__ = [
    "mean_field_map",
    "mean_field_derivative",
    "FixedPoint",
    "fixed_points",
    "iterate_mean_field",
    "tracking_error",
]

_DERIVATIVE_STEP = 1e-6
_NEUTRAL_BAND = 1e-6


def mean_field_map(protocol: Protocol, p):
    """The one-round mean-field map ``phi(p) = p + F(p)``.  Vectorized."""
    p_array = np.asarray(p, dtype=float)
    value = p_array + np.asarray(bias_value(protocol, p_array))
    if np.isscalar(p) or p_array.ndim == 0:
        return float(value)
    return value


def mean_field_derivative(protocol: Protocol, p):
    """``phi'(p)`` by central differences (clamped to [0, 1]).  Vectorized."""
    p_array = np.asarray(p, dtype=float)
    low = np.clip(p_array - _DERIVATIVE_STEP, 0.0, 1.0)
    high = np.clip(p_array + _DERIVATIVE_STEP, 0.0, 1.0)
    value = (
        np.asarray(mean_field_map(protocol, high))
        - np.asarray(mean_field_map(protocol, low))
    ) / (high - low)
    if np.isscalar(p) or p_array.ndim == 0:
        return float(value)
    return value


@dataclass(frozen=True)
class FixedPoint:
    """A fixed point of the mean-field map with its local classification.

    Attributes:
        location: the fixed point ``p* in [0, 1]`` (a root of ``F``).
        multiplier: ``phi'(p*)``; the fixed point is attracting when
            ``|phi'| < 1``, repelling when ``|phi'| > 1``, and the approach
            is oscillatory when ``phi' < 0``.
        stability: ``"attracting"``, ``"repelling"`` or ``"neutral"``.
    """

    location: float
    multiplier: float
    stability: str

    @property
    def is_oscillatory(self) -> bool:
        return self.multiplier < 0


def fixed_points(protocol: Protocol) -> List[FixedPoint]:
    """Fixed points of ``phi`` on ``[0, 1]``, classified by ``|phi'|``.

    Raises for zero-bias protocols (every point is fixed; the Voter's
    mean-field dynamics is the identity and Lemma 11 handles it directly).
    """
    if is_zero_bias(protocol):
        raise ValueError(
            "zero-bias protocol: every p is a mean-field fixed point "
            "(the Lemma-11 case)"
        )
    points = []
    for root in unit_interval_roots(protocol):
        multiplier = mean_field_derivative(protocol, root)
        if abs(multiplier) < 1.0 - _NEUTRAL_BAND:
            stability = "attracting"
        elif abs(multiplier) > 1.0 + _NEUTRAL_BAND:
            stability = "repelling"
        else:
            stability = "neutral"
        points.append(
            FixedPoint(location=root, multiplier=multiplier, stability=stability)
        )
    return points


def iterate_mean_field(
    protocol: Protocol, p0: float, rounds: int
) -> np.ndarray:
    """The deterministic trajectory ``p0, phi(p0), phi(phi(p0)), ...``."""
    if not 0.0 <= p0 <= 1.0:
        raise ValueError(f"p0 must lie in [0, 1], got {p0}")
    if rounds < 0:
        raise ValueError(f"rounds must be >= 0, got {rounds}")
    trajectory = np.empty(rounds + 1)
    trajectory[0] = p0
    for t in range(rounds):
        trajectory[t + 1] = np.clip(mean_field_map(protocol, trajectory[t]), 0.0, 1.0)
    return trajectory


def tracking_error(
    protocol: Protocol,
    n: int,
    z: int,
    counts: np.ndarray,
) -> np.ndarray:
    """Per-round gap between a simulated run and its mean-field shadow.

    Starts the deterministic iteration from the run's initial fraction and
    returns ``|X_t / n - p_t|``.  By Proposition 5 + Hoeffding the gap stays
    ``O(sqrt(t / n))`` over bounded horizons away from repelling fixed
    points — the property test for the engines' faithfulness to the theory.
    """
    counts = np.asarray(counts, dtype=float)
    if counts.ndim != 1 or len(counts) < 1:
        raise ValueError("counts must be a non-empty 1-D trajectory")
    shadow = iterate_mean_field(protocol, counts[0] / n, len(counts) - 1)
    return np.abs(counts / n - shadow)
