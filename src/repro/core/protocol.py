"""The memory-less protocol abstraction (Section 1.1 of the paper).

A protocol is a pair of response functions ``g[b] : {0, ..., ell} -> [0, 1]``
for ``b in {0, 1}``: the probability that an agent currently holding opinion
``b``, having observed ``k`` ones among its ``ell`` uniform samples, adopts
opinion ``1`` in the next round.  Since agents are anonymous and memory-less,
this table is the *entire* protocol.

The paper allows the table to depend on ``n`` (agents know the population
size); all concrete protocols in this library are ``n``-independent tables,
and ``n``-dependence (e.g. a sample size growing with ``n``) is modelled by
:class:`ProtocolFamily`, a factory from ``n`` to a :class:`Protocol`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

import numpy as np

__all__ = [
    "Protocol",
    "ProtocolFamily",
    "constant_family",
]

_PROBABILITY_TOLERANCE = 1e-12


def _as_probability_vector(values, ell: int, name: str) -> np.ndarray:
    vector = np.asarray(values, dtype=float)
    if vector.shape != (ell + 1,):
        raise ValueError(
            f"{name} must have shape ({ell + 1},) for sample size {ell}, "
            f"got shape {vector.shape}"
        )
    if np.any(vector < -_PROBABILITY_TOLERANCE) or np.any(
        vector > 1 + _PROBABILITY_TOLERANCE
    ):
        raise ValueError(f"{name} entries must lie in [0, 1], got {vector}")
    return np.clip(vector, 0.0, 1.0)


@dataclass(frozen=True)
class Protocol:
    """A memory-less opinion-update rule with sample size ``ell``.

    Attributes:
        ell: the sample size (number of uniform-with-replacement samples an
            agent observes each activation).
        g0: response vector for agents currently holding opinion 0;
            ``g0[k]`` is the probability of adopting opinion 1 after seeing
            ``k`` ones.
        g1: response vector for agents currently holding opinion 1.
        name: a human-readable label used in experiment output.
    """

    ell: int
    g0: np.ndarray
    g1: np.ndarray
    name: str = "protocol"

    def __post_init__(self) -> None:
        if self.ell < 1:
            raise ValueError(f"sample size ell must be >= 1, got {self.ell}")
        object.__setattr__(self, "g0", _as_probability_vector(self.g0, self.ell, "g0"))
        object.__setattr__(self, "g1", _as_probability_vector(self.g1, self.ell, "g1"))
        self.g0.setflags(write=False)
        self.g1.setflags(write=False)

    # ------------------------------------------------------------------
    # Structural properties
    # ------------------------------------------------------------------

    def satisfies_boundary_conditions(self, tolerance: float = 0.0) -> bool:
        """Check the Proposition-3 conditions ``g[0](0) = 0`` and ``g[1](ell) = 1``.

        Any protocol solving the bit-dissemination problem must satisfy them:
        otherwise the all-0 (resp. all-1) consensus is not absorbing and the
        group almost surely leaves it, so convergence cannot be maintained.
        """
        return self.g0[0] <= tolerance and self.g1[self.ell] >= 1 - tolerance

    def is_oblivious(self, tolerance: float = 0.0) -> bool:
        """True if the update ignores the agent's own opinion (``g0 == g1``).

        Both the Voter and the Minority dynamics are oblivious.
        """
        return bool(np.all(np.abs(self.g0 - self.g1) <= tolerance))

    def is_opinion_symmetric(self, tolerance: float = 1e-12) -> bool:
        """True if relabelling the opinions 0 <-> 1 leaves the protocol unchanged.

        Formally: ``g[1-b](ell - k) = 1 - g[b](k)`` for all ``b, k``.  Symmetric
        protocols treat the two opinions identically, which is natural in the
        self-stabilizing setting where the correct opinion is adversarial.
        """
        flipped_g0 = 1.0 - self.g1[::-1]
        flipped_g1 = 1.0 - self.g0[::-1]
        return bool(
            np.all(np.abs(flipped_g0 - self.g0) <= tolerance)
            and np.all(np.abs(flipped_g1 - self.g1) <= tolerance)
        )

    # ------------------------------------------------------------------
    # Response probabilities (Eq. 4 of the paper)
    # ------------------------------------------------------------------

    def response_probabilities(self, p) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(P0(p), P1(p))`` for a fraction ``p`` of opinion-1 agents.

        ``P_b(p)`` is the probability that an agent holding opinion ``b``
        adopts opinion 1 in the next round when the current fraction of ones
        in the population is ``p`` (Eq. 4): the binomial mixture of the
        response vector.  Vectorized over ``p``.
        """
        p_array = np.asarray(p, dtype=float)
        if np.any(p_array < 0) or np.any(p_array > 1):
            raise ValueError("fractions p must lie in [0, 1]")
        weights = _binomial_weights(self.ell, p_array)
        p0 = weights @ self.g0
        p1 = weights @ self.g1
        if np.isscalar(p) or p_array.ndim == 0:
            # _binomial_weights promotes scalars to shape (1, ell + 1).
            return float(p0[0]), float(p1[0])
        return p0, p1

    def flip(self) -> "Protocol":
        """Return the protocol with the two opinion labels exchanged."""
        return Protocol(
            ell=self.ell,
            g0=1.0 - self.g1[::-1],
            g1=1.0 - self.g0[::-1],
            name=f"{self.name}-flipped",
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Protocol(name={self.name!r}, ell={self.ell}, "
            f"g0={np.round(self.g0, 6).tolist()}, g1={np.round(self.g1, 6).tolist()})"
        )


_DIRECT_BINOMIAL_MAX_ELL = 256


def _binomial_weights(ell: int, p: np.ndarray) -> np.ndarray:
    """Binomial(ell, p) pmf over k = 0..ell, vectorized over p.

    Returns an array of shape ``p.shape + (ell + 1,)``.  Computed from the
    closed form for the small/constant ``ell`` of the lower bound, and in
    log space for the large ``ell = Theta(sqrt(n log n))`` of the [15]
    regime (where ``C(ell, k)`` overflows float64 past ``ell ~ 1000``).
    """
    p = np.atleast_1d(np.asarray(p, dtype=float))
    k = np.arange(ell + 1)
    if ell <= _DIRECT_BINOMIAL_MAX_ELL:
        coefficients = _binomial_coefficients(ell)
        return (
            coefficients
            * np.power(p[..., None], k)
            * np.power(1.0 - p[..., None], ell - k)
        )
    from scipy.stats import binom

    return binom.pmf(k, ell, p[..., None])


def _binomial_coefficients(ell: int) -> np.ndarray:
    """Exact binomial coefficients C(ell, k) for k = 0..ell as floats."""
    coefficients = np.empty(ell + 1, dtype=float)
    value = 1
    for k in range(ell + 1):
        coefficients[k] = float(value)
        value = value * (ell - k) // (k + 1)
    return coefficients


@dataclass(frozen=True)
class ProtocolFamily:
    """A family ``n -> Protocol``, for sample sizes that depend on ``n``.

    The paper's lower bound applies to *constant* sample sizes; the [15]
    upper bound needs ``ell = Theta(sqrt(n log n))``.  A family captures both
    uniformly: ``constant_family`` wraps an ``n``-independent table, and e.g.
    ``minority_sqrt_family`` (in :mod:`repro.protocols.minority`) produces a
    minority table whose ``ell`` grows with ``n``.
    """

    factory: Callable[[int], Protocol]
    name: str = "family"

    def at(self, n: int) -> Protocol:
        if n < 2:
            raise ValueError(f"population size n must be >= 2, got {n}")
        protocol = self.factory(n)
        if not isinstance(protocol, Protocol):
            raise TypeError(
                f"factory for family {self.name!r} returned {type(protocol)!r}"
            )
        return protocol


def constant_family(protocol: Protocol) -> ProtocolFamily:
    """Wrap an ``n``-independent protocol as a :class:`ProtocolFamily`."""
    return ProtocolFamily(factory=lambda n: protocol, name=protocol.name)
