"""Root and sign analysis of the bias polynomial on ``[0, 1]``.

The proof of Theorem 12 hinges on two facts about ``F = F_n``:

* ``F(0) = F(1) = 0`` for any protocol satisfying Proposition 3, and
* ``F`` has degree at most ``ell + 1``, hence at most ``ell + 1`` roots in
  ``[0, 1]``, so between consecutive roots it keeps a constant sign.

This module turns that argument into code: it locates the roots of ``F`` in
``[0, 1]``, computes the sign profile of ``F`` between them, and identifies
the interval the paper works with — the one just below ``p = 1`` (below the
root ``r^(k0)`` that converges to 1 along the subsequence in the paper; for
the ``n``-independent tables in this library the interval is simply
``(r_last, 1)`` where ``r_last`` is the largest root strictly inside
``(0, 1)``, or ``(0, 1)`` itself when there is none).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np
from scipy.optimize import brentq

from repro.core.bias import bias_coefficients, bias_value
from repro.core.protocol import Protocol

__all__ = [
    "SignProfile",
    "unit_interval_roots",
    "sign_profile",
    "is_zero_bias",
]

_ZERO_COEFFICIENT_TOLERANCE = 1e-12
# Even-multiplicity roots (e.g. the double root at p = 1 of a (1-p)^2
# factor) are split by the companion-matrix solver into conjugate-adjacent
# estimates ~1e-8 apart; merge well above that split but far below any
# constant-length interval the lower bound works with.
_ROOT_MERGE_TOLERANCE = 1e-6
_SIGN_TOLERANCE = 1e-12
_MAX_EXPANDABLE_ELL = 40


def is_zero_bias(protocol: Protocol, tolerance: float = 1e-12) -> bool:
    """True when ``F`` is identically zero (the Lemma-11 case, e.g. Voter)."""
    coefficients = bias_coefficients(protocol)
    scale = max(1.0, float(np.max(np.abs(coefficients))))
    if np.all(np.abs(coefficients) <= tolerance * scale):
        return True
    # Coefficients can be individually large yet cancel; confirm pointwise.
    grid = np.linspace(0.0, 1.0, 257)
    return bool(np.all(np.abs(bias_value(protocol, grid)) <= tolerance))


def unit_interval_roots(protocol: Protocol) -> List[float]:
    """Roots of ``F`` in ``[0, 1]``, deduplicated and sorted ascending.

    Uses the companion-matrix eigenvalues of the power-basis expansion,
    refined with bisection (``brentq``) wherever a bracketing sign change
    exists.  Multiplicities are not reported: the lower-bound machinery only
    needs the *locations* where ``F`` can change sign.  Raises if ``F`` is
    identically zero (roots are then meaningless) or ``ell`` is too large for
    a reliable coefficient expansion.
    """
    if protocol.ell > _MAX_EXPANDABLE_ELL:
        raise ValueError(
            f"root analysis supports ell <= {_MAX_EXPANDABLE_ELL} (the "
            f"constant-sample-size regime of the lower bound); got ell="
            f"{protocol.ell}"
        )
    if is_zero_bias(protocol):
        raise ValueError(
            "bias polynomial is identically zero (Lemma-11 case); it has no "
            "isolated roots"
        )
    coefficients = bias_coefficients(protocol)
    candidates = _polynomial_roots_in_unit_interval(coefficients)
    refined = _refine_roots(protocol, candidates)
    # F(0) = F(1) = 0 whenever Proposition 3 holds; include the endpoints the
    # paper counts as roots r^(1) = 0 and r^(d) = 1.
    if abs(bias_value(protocol, 0.0)) <= _SIGN_TOLERANCE:
        refined.append(0.0)
    if abs(bias_value(protocol, 1.0)) <= _SIGN_TOLERANCE:
        refined.append(1.0)
    return _merge_close(sorted(refined))


@dataclass(frozen=True)
class SignProfile:
    """The sign of ``F`` on each open interval between consecutive roots.

    Attributes:
        roots: sorted root locations in ``[0, 1]`` (including 0 and 1 when
            they are roots).
        signs: ``signs[i] in {-1, 0, +1}`` is the sign of ``F`` on the open
            interval ``(roots[i], roots[i+1])``; 0 marks an interval where
            ``F`` stays below the numeric tolerance (a multiple-root plateau).
    """

    roots: tuple
    signs: tuple

    @property
    def last_interval(self) -> tuple:
        """The interval ``(r_last, 1)`` adjacent to the consensus ``p = 1``.

        This is the paper's ``(r^(k0 - 1), r^(k0))`` interval: the lower-bound
        argument always works in the last interval on which ``F`` has a
        definite sign before ``p = 1``.  Intervals with sign 0 next to 1 are
        skipped (they behave like the zero-bias case locally).
        """
        for i in range(len(self.signs) - 1, -1, -1):
            if self.signs[i] != 0:
                return (self.roots[i], self.roots[i + 1])
        raise ValueError("F has no interval of definite sign (zero-bias case?)")

    @property
    def last_interval_sign(self) -> int:
        for i in range(len(self.signs) - 1, -1, -1):
            if self.signs[i] != 0:
                return self.signs[i]
        raise ValueError("F has no interval of definite sign (zero-bias case?)")


def sign_profile(protocol: Protocol, samples_per_interval: int = 64) -> SignProfile:
    """Compute the sign of ``F`` between consecutive roots.

    Each open interval is probed on a grid; a consistent strictly-positive
    (negative) grid yields sign +1 (-1), anything straddling the tolerance
    yields 0.  A straddle would indicate a missed root, which the refinement
    in :func:`unit_interval_roots` makes improbable; 0 is the safe report.
    """
    roots = unit_interval_roots(protocol)
    if len(roots) < 2:
        raise ValueError(
            f"expected at least the endpoint roots 0 and 1, got {roots}; "
            "does the protocol satisfy Proposition 3?"
        )
    signs = []
    for left, right in zip(roots[:-1], roots[1:]):
        offsets = (np.arange(1, samples_per_interval + 1)) / (samples_per_interval + 1)
        grid = left + offsets * (right - left)
        values = bias_value(protocol, grid)
        scale = _interval_scale(left, right)
        if np.all(values > scale):
            signs.append(1)
        elif np.all(values < -scale):
            signs.append(-1)
        else:
            signs.append(0)
    return SignProfile(roots=tuple(roots), signs=tuple(signs))


def _interval_scale(left: float, right: float) -> float:
    # Near a root, |F| shrinks linearly; use a tolerance proportional to the
    # interval length so short intervals are not misclassified as sign 0.
    return _SIGN_TOLERANCE * max(1.0, 1.0 / max(right - left, 1e-6))


def _polynomial_roots_in_unit_interval(coefficients: np.ndarray) -> List[float]:
    trimmed = np.array(coefficients, dtype=float)
    scale = float(np.max(np.abs(trimmed)))
    trimmed[np.abs(trimmed) <= _ZERO_COEFFICIENT_TOLERANCE * scale] = 0.0
    # Strip trailing zero coefficients (highest degrees).
    while len(trimmed) > 1 and trimmed[-1] == 0.0:
        trimmed = trimmed[:-1]
    if len(trimmed) <= 1:
        return []
    roots = np.polynomial.polynomial.polyroots(trimmed)
    real = roots[np.abs(roots.imag) <= 1e-9].real
    inside = real[(real >= -1e-9) & (real <= 1 + 1e-9)]
    return [float(np.clip(r, 0.0, 1.0)) for r in inside]


def _refine_roots(protocol: Protocol, candidates: Sequence[float]) -> List[float]:
    """Polish candidate roots with bisection on the stable pointwise ``F``."""
    refined = []
    for candidate in candidates:
        if candidate in (0.0, 1.0):
            continue  # endpoint roots are handled by the caller
        refined.append(_polish_root(protocol, candidate))
    return refined


def _polish_root(protocol: Protocol, candidate: float, radius: float = 1e-4) -> float:
    left = max(candidate - radius, 1e-12)
    right = min(candidate + radius, 1 - 1e-12)
    f_left = bias_value(protocol, left)
    f_right = bias_value(protocol, right)
    if f_left == 0.0:
        return left
    if f_right == 0.0:
        return right
    if np.sign(f_left) != np.sign(f_right):
        return float(brentq(lambda p: bias_value(protocol, p), left, right))
    # No bracketing sign change (even-multiplicity root); keep the
    # companion-matrix estimate.
    return float(candidate)


def _merge_close(values: Sequence[float]) -> List[float]:
    """Collapse clusters of near-identical roots, snapping to the endpoints.

    Clusters within the merge tolerance are represented by their mean, then
    pulled exactly onto 0 or 1 when they touch an endpoint — the endpoint
    roots are structural (Proposition 3) and downstream code relies on them
    being exact.
    """
    merged: List[float] = []
    cluster: List[float] = []
    for value in sorted(values):
        if cluster and value - cluster[-1] > _ROOT_MERGE_TOLERANCE:
            merged.append(float(np.mean(cluster)))
            cluster = []
        cluster.append(value)
    if cluster:
        merged.append(float(np.mean(cluster)))
    snapped = []
    for value in merged:
        if value <= _ROOT_MERGE_TOLERANCE:
            value = 0.0
        elif value >= 1.0 - _ROOT_MERGE_TOLERANCE:
            value = 1.0
        snapped.append(min(max(value, 0.0), 1.0))
    return snapped
