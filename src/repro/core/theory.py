"""Closed-form predictions from the paper and its context, as code.

Every benchmark prints a ``paper expectation`` column next to its measured
value; the expectations live here so benchmarks, examples and EXPERIMENTS.md
quote the same formulas.

Conventions: all times are in *parallel rounds* (one parallel round = ``n``
activations of the sequential setting), matching Section 1 of the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "lower_bound_rounds",
    "voter_upper_bound_rounds",
    "minority_sqrt_sample_size",
    "minority_sqrt_upper_bound_rounds",
    "sequential_lower_bound_rounds",
    "sequential_voter_upper_bound_rounds",
    "whp_failure_rate",
    "Prediction",
    "PREDICTIONS",
]


def lower_bound_rounds(n: int, epsilon: float) -> float:
    """Theorem 1: any constant-``ell`` protocol needs ``>= n^(1-eps)`` rounds w.h.p.

    (from the witness configuration constructed by Theorem 12).
    """
    if not 0 < epsilon < 1:
        raise ValueError(f"epsilon must lie in (0, 1), got {epsilon}")
    return float(n) ** (1.0 - epsilon)


def voter_upper_bound_rounds(n: int) -> float:
    """Theorem 2: the Voter dynamics converges within ``2 n ln n`` rounds w.h.p.

    The constant 2 is the one used in the paper's proof (Appendix B), where
    the failure probability is shown to be at most ``1/n``.
    """
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    return 2.0 * n * math.log(n)


def minority_sqrt_sample_size(n: int) -> int:
    """The [15] sample size ``ell = ceil(sqrt(n log n))`` (made odd to avoid ties)."""
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    ell = math.ceil(math.sqrt(n * math.log(n)))
    return ell if ell % 2 == 1 else ell + 1


def minority_sqrt_upper_bound_rounds(n: int, constant: float = 1.0) -> float:
    """[15]: Minority with ``ell = Omega(sqrt(n log n))`` converges in ``O(log^2 n)``.

    The paper does not state the constant; ``constant`` defaults to 1 and the
    benchmark reports the measured ratio ``tau / log^2 n`` instead of a
    pass/fail against an arbitrary constant.
    """
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    return constant * math.log(n) ** 2


def sequential_lower_bound_rounds(n: int) -> float:
    """[14]: in the sequential setting no protocol beats ``Omega(n)`` parallel rounds.

    (in expectation, regardless of the sample size).
    """
    return float(n)


def sequential_voter_upper_bound_rounds(n: int, constant: float = 1.0) -> float:
    """[14]: sequential Voter converges in ``O(n log^2 n)`` parallel rounds w.h.p."""
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    return constant * n * math.log(n) ** 2


def whp_failure_rate(n: int, exponent: float = 1.0) -> float:
    """A concrete reading of "with high probability": failure ``<= n^-exponent``."""
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    return float(n) ** (-exponent)


@dataclass(frozen=True)
class Prediction:
    """A paper claim in machine-checkable form, for EXPERIMENTS.md bookkeeping."""

    identifier: str
    statement: str
    shape: str  # the asymptotic shape the measurement must exhibit


PREDICTIONS = (
    Prediction(
        identifier="thm1",
        statement=(
            "Any memory-less protocol with constant sample size needs "
            "Omega(n^(1-eps)) parallel rounds from the witness configuration."
        ),
        shape="tau(n) >= n^(1-eps); log-log slope of tau vs n approaches 1",
    ),
    Prediction(
        identifier="thm2",
        statement="Voter solves bit-dissemination within 2 n ln n rounds w.h.p.",
        shape="tau(n) = Theta(n log n); tau / (n ln n) bounded, slope ~ 1",
    ),
    Prediction(
        identifier="minority-sqrt",
        statement=(
            "Minority with ell = ceil(sqrt(n log n)) converges in O(log^2 n) "
            "rounds w.h.p. [15]"
        ),
        shape="tau(n) / log^2 n bounded as n grows; slope vs n ~ 0",
    ),
    Prediction(
        identifier="sequential",
        statement=(
            "Sequential setting: Omega(n) parallel rounds for any protocol; "
            "Voter achieves O(n log^2 n). [14]"
        ),
        shape="tau_seq(n) >= c n; voter tau_seq(n) = O(n log^2 n)",
    ),
    Prediction(
        identifier="prop3",
        statement=(
            "Protocols with g[0](0) > 0 or g[1](ell) < 1 never stabilize: "
            "consensus decays almost surely."
        ),
        shape="P(leave consensus within t rounds) -> 1 geometrically in t",
    ),
    Prediction(
        identifier="prop4",
        statement=(
            "From x <= c n, one round stays below y(c, ell) n = "
            "(1 - (1-c)^(ell+1)/2) n with prob >= 1 - exp(-2 sqrt(n))."
        ),
        shape="no observed violation across trials; margin grows with n",
    ),
)
