"""The coalescing-random-walk dual of the Voter dynamics (Appendix B)."""

from repro.dual.coalescing import (
    PairedRun,
    coalescence_profile,
    dual_absorption_times,
    paired_forward_dual_run,
)

__all__ = [
    "dual_absorption_times",
    "coalescence_profile",
    "PairedRun",
    "paired_forward_dual_run",
]
