"""The coalescing-random-walk dual of the Voter dynamics (Appendix B, Fig 4).

The proof of Theorem 2 runs time backwards: place one walker on every agent
at the horizon ``T`` and let the walker at position ``j`` in round ``t + 1``
move to ``S_t(j)``, the agent that ``j`` sampled in round ``t``.  Walkers at
the same position coalesce (they share all future moves), and the source is
a sink (``S_t(source) = source`` by convention).  The key implications,
which this module makes checkable:

* Eq. 15 — a walker that reaches the source stays there;
* Eq. 16/17 — if walker ``i`` is absorbed at the source by round ``t = 0``,
  then agent ``i`` holds the correct opinion at the horizon;
* consequently, once *all* walkers are absorbed, the forward dynamics has
  reached the correct consensus — whatever the initial opinions were.

Each walker's trajectory is a uniform random walk on agent indices absorbed
at the source, so ``P(walker i unabsorbed after T rounds) = (1 - 1/n)^T``
and ``T = 2 n ln n`` gives failure probability ``<= 1/n`` (Theorem 2).

``paired_forward_dual_run`` realizes both processes on the *same* sampling
randomness, turning the duality into an executkable integration test.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "dual_absorption_times",
    "coalescence_profile",
    "PairedRun",
    "paired_forward_dual_run",
]

SOURCE_INDEX = 0


def dual_absorption_times(
    n: int, horizon: int, rng: np.random.Generator
) -> np.ndarray:
    """Absorption time at the source for each of the ``n`` backward walkers.

    Walker ``i`` starts at agent ``i``; each backward round every non-source
    position moves to an independent uniform agent (the agent it "sampled"),
    and positions coalesce implicitly because the move is a function of the
    position.  Returns, per walker, the number of backward rounds until it
    reached the source, or ``-1`` if unabsorbed within ``horizon``.

    The maximum entry (when all are absorbed) is the dual's bound on the
    Voter convergence time from *any* initial configuration.
    """
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    positions = np.arange(n)
    absorption = np.full(n, -1, dtype=np.int64)
    absorption[SOURCE_INDEX] = 0
    for t in range(1, horizon + 1):
        unabsorbed = absorption < 0
        if not unabsorbed.any():
            break
        # One uniform sample per *agent*; all walkers at the same position
        # share it (that is the coalescence).
        samples = rng.integers(0, n, size=n)
        samples[SOURCE_INDEX] = SOURCE_INDEX
        positions[unabsorbed] = samples[positions[unabsorbed]]
        newly_absorbed = unabsorbed & (positions == SOURCE_INDEX)
        absorption[newly_absorbed] = t
    return absorption


def coalescence_profile(
    n: int, horizon: int, rng: np.random.Generator
) -> np.ndarray:
    """Number of distinct unabsorbed walker positions after each backward round.

    The Figure-4 data series: starts at ``n - 1`` and collapses to 0; its
    hitting time of 0 is the dual bound on the Voter convergence time.
    """
    positions = np.arange(n)
    profile = [n - 1]
    for _ in range(horizon):
        samples = rng.integers(0, n, size=n)
        samples[SOURCE_INDEX] = SOURCE_INDEX
        moving = positions != SOURCE_INDEX
        positions[moving] = samples[positions[moving]]
        distinct = np.unique(positions[positions != SOURCE_INDEX])
        profile.append(len(distinct))
        if len(distinct) == 0:
            break
    return np.asarray(profile, dtype=np.int64)


@dataclass(frozen=True)
class PairedRun:
    """A forward Voter run and its dual, built on the same sampling randomness.

    Attributes:
        final_opinions: forward opinions at the horizon.
        absorption: per-agent dual absorption round (backward count), or -1.
        z: the source's (correct) opinion.
    """

    final_opinions: np.ndarray
    absorption: np.ndarray
    z: int

    def duality_holds(self) -> bool:
        """Eq. 17: every dual-absorbed agent holds the correct opinion."""
        absorbed = self.absorption >= 0
        return bool(np.all(self.final_opinions[absorbed] == self.z))

    def consensus_reached(self) -> bool:
        return bool(np.all(self.final_opinions == self.z))

    def all_absorbed(self) -> bool:
        return bool(np.all(self.absorption >= 0))


def paired_forward_dual_run(
    initial_opinions: np.ndarray,
    z: int,
    horizon: int,
    rng: np.random.Generator,
) -> PairedRun:
    """Run forward Voter (``ell = 1``) and its dual on shared randomness.

    Draws the full ``horizon x n`` table of samples ``S_t(i)`` once; the
    forward dynamics reads it forward (``X_{t+1}(i) = X_t(S_t(i))``, source
    pinned to ``z``), the dual reads it backward.  The resulting
    :class:`PairedRun` lets tests assert the exact duality of Appendix B
    rather than a statistical shadow of it.
    """
    opinions = np.asarray(initial_opinions, dtype=np.int8).copy()
    n = len(opinions)
    if n < 2:
        raise ValueError(f"need at least 2 agents, got {n}")
    if z not in (0, 1):
        raise ValueError(f"z must be 0 or 1, got {z}")
    opinions[SOURCE_INDEX] = z
    samples = rng.integers(0, n, size=(horizon, n))
    samples[:, SOURCE_INDEX] = SOURCE_INDEX  # the source "samples itself"

    for t in range(horizon):
        opinions = opinions[samples[t]]
        opinions[SOURCE_INDEX] = z  # redundant given the pinned sample; explicit

    positions = np.arange(n)
    absorption = np.full(n, -1, dtype=np.int64)
    absorption[SOURCE_INDEX] = 0
    for back, t in enumerate(range(horizon - 1, -1, -1), start=1):
        unabsorbed = absorption < 0
        if not unabsorbed.any():
            break
        positions[unabsorbed] = samples[t][positions[unabsorbed]]
        newly_absorbed = unabsorbed & (positions == SOURCE_INDEX)
        absorption[newly_absorbed] = back
    return PairedRun(final_opinions=opinions, absorption=absorption, z=z)
