"""Simulation substrates: parallel/sequential engines, configurations, runners."""

from repro.dynamics.agentwise import initial_opinions, simulate_opinions, step_opinions
from repro.dynamics.config import (
    Configuration,
    adversarial_configurations,
    balanced_configuration,
    consensus_configuration,
    wrong_consensus_configuration,
)
from repro.dynamics.batched import (
    DEFAULT_ENGINE,
    ENGINES,
    binomial_icdf,
    counter_uniforms,
    engine_family,
    replica_keys,
    resolve_engine,
    step_count_keyed,
    step_counts_keyed,
)
from repro.dynamics.engine import step_count, step_counts_batch
from repro.dynamics.multiopinion import (
    initial_multiopinion,
    multi_minority_rule,
    multi_voter_rule,
    simulate_multiopinion,
    step_multiopinion,
)
from repro.dynamics.graphs import (
    complete_graph,
    cycle_graph,
    neighbor_table,
    random_regular_graph,
    simulate_on_graph,
    star_graph,
    step_opinions_on_graph,
)
from repro.dynamics.heterogeneous import (
    MixedState,
    initial_mixed_state,
    simulate_mixed,
    step_mixed,
)
from repro.dynamics.kactivation import (
    KActivationResult,
    simulate_k_activation,
    step_count_k,
)
from repro.dynamics.noise import (
    NoisyOccupancy,
    distorted_fraction,
    noisy_occupancy,
    noisy_response_probabilities,
    step_count_noisy,
)
from repro.dynamics.adversary import WorstStart, exact_worst_start, simulated_worst_start
from repro.dynamics.zealots import (
    ZealotPopulation,
    stationary_profile,
    step_count_zealots,
)
from repro.dynamics.rng import make_rng, rng_stream, spawn_rngs, spawn_seed_sequences
from repro.dynamics.run import (
    RunResult,
    escape_time,
    escape_time_ensemble,
    simulate,
    simulate_ensemble,
    time_to_leave_consensus,
)
from repro.dynamics.sequential import (
    SequentialRunResult,
    sequential_transition_probabilities,
    simulate_sequential,
)

__all__ = [
    "Configuration",
    "consensus_configuration",
    "wrong_consensus_configuration",
    "balanced_configuration",
    "adversarial_configurations",
    "step_count",
    "step_counts_batch",
    "ENGINES",
    "DEFAULT_ENGINE",
    "resolve_engine",
    "engine_family",
    "replica_keys",
    "counter_uniforms",
    "binomial_icdf",
    "step_count_keyed",
    "step_counts_keyed",
    "initial_opinions",
    "step_opinions",
    "simulate_opinions",
    "make_rng",
    "spawn_rngs",
    "spawn_seed_sequences",
    "rng_stream",
    "RunResult",
    "simulate",
    "simulate_ensemble",
    "escape_time",
    "escape_time_ensemble",
    "time_to_leave_consensus",
    "SequentialRunResult",
    "sequential_transition_probabilities",
    "simulate_sequential",
    "initial_multiopinion",
    "multi_voter_rule",
    "multi_minority_rule",
    "step_multiopinion",
    "simulate_multiopinion",
    "distorted_fraction",
    "noisy_response_probabilities",
    "step_count_noisy",
    "NoisyOccupancy",
    "noisy_occupancy",
    "WorstStart",
    "exact_worst_start",
    "simulated_worst_start",
    "KActivationResult",
    "step_count_k",
    "simulate_k_activation",
    "neighbor_table",
    "complete_graph",
    "cycle_graph",
    "random_regular_graph",
    "star_graph",
    "step_opinions_on_graph",
    "simulate_on_graph",
    "ZealotPopulation",
    "step_count_zealots",
    "stationary_profile",
    "MixedState",
    "initial_mixed_state",
    "step_mixed",
    "simulate_mixed",
]
