"""Adversarial initial-configuration search.

The bit-dissemination problem quantifies over initial configurations, so
"the convergence time of a protocol at size n" means the *worst* starting
count.  Two searches are provided:

* an exact one (small ``n``): expected hitting times from every admissible
  start via one linear solve on the exact chain;
* a simulated one (any ``n``): median convergence time over a grid of
  starts, with censoring.

A companion check compares the exact worst start against the Theorem-12
witness: the witness is a *construction* (any configuration inside the
certified interval works for the proof), and the search shows how close it
lands to the true adversarial optimum.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.core.protocol import Protocol
from repro.dynamics.config import Configuration
from repro.dynamics.run import simulate_ensemble
from repro.markov.exact import count_chain

__all__ = [
    "WorstStart",
    "exact_worst_start",
    "simulated_worst_start",
]


@dataclass(frozen=True)
class WorstStart:
    """Outcome of an adversarial-start search.

    Attributes:
        config: the worst configuration found.
        expected_rounds: its exact expected convergence time (exact search)
            or the median over replicas (simulated search; ``inf`` when all
            replicas censored).
        profile: expected/median time at every probed start (aligned with
            ``probed_counts``).
        probed_counts: the starting counts examined.
    """

    config: Configuration
    expected_rounds: float
    profile: np.ndarray
    probed_counts: np.ndarray


def exact_worst_start(protocol: Protocol, n: int, z: int) -> WorstStart:
    """The exact adversarial start via the full transition matrix.

    Solves the hitting-time system once and maximizes over all admissible
    starting counts.  ``O(n^3)`` — intended for ``n`` up to a few hundred.
    """
    chain = count_chain(protocol, n, z)
    target = n * z
    times = chain.expected_hitting_times([target])
    low, high = Configuration.count_bounds(n, z)
    counts = np.arange(low, high + 1)
    profile = times[counts]
    worst_index = int(np.argmax(profile))
    worst_count = int(counts[worst_index])
    return WorstStart(
        config=Configuration(n=n, z=z, x0=worst_count),
        expected_rounds=float(profile[worst_index]),
        profile=profile,
        probed_counts=counts,
    )


def simulated_worst_start(
    protocol: Protocol,
    n: int,
    z: int,
    max_rounds: int,
    rng: np.random.Generator,
    replicas: int = 10,
    grid_points: int = 17,
    scenario=None,
    engine=None,
) -> WorstStart:
    """Adversarial start by simulation over a grid of starting counts.

    Censored medians are recorded as ``inf`` (worse than anything finite),
    matching the adversary's preference.

    ``scenario`` runs every probed start in the same hostile world (a spec
    string, :class:`~repro.dynamics.config.ScenarioConfig`, or built
    :class:`~repro.dynamics.scenarios.Scenario`), so the search answers
    "which start is worst *under this perturbation schedule*"; ``engine``
    is forwarded alongside it.  With both ``None`` the ensemble call —
    and hence the consumed random stream — is exactly the clean search's.
    """
    low, high = Configuration.count_bounds(n, z)
    counts = np.unique(np.linspace(low, high, grid_points).astype(np.int64))
    scenario = _resolved_scenario(scenario, n)
    medians = []
    for x0 in counts:
        config = Configuration(n=n, z=z, x0=int(x0))
        times = simulate_ensemble(
            protocol, config, max_rounds, rng, replicas,
            engine=engine, scenario=scenario,
        )
        padded = np.where(np.isnan(times), np.inf, times)
        medians.append(float(np.median(padded)))
    profile = np.asarray(medians)
    worst_index = int(np.argmax(profile))
    return WorstStart(
        config=Configuration(n=n, z=z, x0=int(counts[worst_index])),
        expected_rounds=float(profile[worst_index]),
        profile=profile,
        probed_counts=counts,
    )


def _resolved_scenario(scenario, n: int):
    """Build the scenario once so the grid shares one hostile world.

    Per-start resolution would rebuild identical objects; resolving here
    also surfaces a bad spec before any simulation time is spent.
    """
    if scenario is None:
        return None
    from repro.dynamics.scenarios import as_scenario

    return as_scenario(scenario, n)
