"""The agent-level parallel engine (ground truth).

Simulates every agent explicitly: per round, an ``n x ell`` matrix of uniform
sample indices is drawn, each agent counts the ones among its samples and
flips according to its response table.  This is a literal transcription of
the model in Section 1.1 — O(n ell) per round — and exists to *validate* the
O(1)-per-round count-level engine (:mod:`repro.dynamics.engine`): the two
must agree in distribution, which the test suite checks with two-sample
statistics.
"""

from __future__ import annotations

import numpy as np

from repro.core.protocol import Protocol
from repro.dynamics.config import Configuration

__all__ = ["initial_opinions", "step_opinions", "simulate_opinions"]

SOURCE_INDEX = 0


def initial_opinions(config: Configuration, rng: np.random.Generator) -> np.ndarray:
    """An opinion vector realizing ``config``: the source plus a random placement.

    Agent 0 is the source and holds ``config.z``; the remaining
    ``x0 - z`` ones are placed on uniformly chosen non-source agents.  (The
    placement is irrelevant to the dynamics — agents are exchangeable — but
    randomizing it keeps the agent-level engine honest.)
    """
    n, z, x0 = config.n, config.z, config.x0
    opinions = np.zeros(n, dtype=np.int8)
    opinions[SOURCE_INDEX] = z
    ones_to_place = x0 - z
    if ones_to_place > 0:
        chosen = rng.choice(np.arange(1, n), size=ones_to_place, replace=False)
        opinions[chosen] = 1
    return opinions


def step_opinions(
    protocol: Protocol,
    z: int,
    opinions: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """One parallel round at the agent level.

    Every agent (source included, for uniform code) draws ``ell`` uniform
    samples with replacement from the whole population; the source's update
    is then overwritten with ``z``, matching the model where the source never
    changes opinion.
    """
    n = len(opinions)
    samples = rng.integers(0, n, size=(n, protocol.ell))
    ones_seen = opinions[samples].sum(axis=1)
    adopt_probability = np.where(
        opinions == 1, protocol.g1[ones_seen], protocol.g0[ones_seen]
    )
    new_opinions = (rng.random(n) < adopt_probability).astype(np.int8)
    new_opinions[SOURCE_INDEX] = z
    return new_opinions


def simulate_opinions(
    protocol: Protocol,
    config: Configuration,
    max_rounds: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Run the agent-level engine and return the count trajectory.

    Returns the array ``[X_0, X_1, ...]`` of opinion-1 counts, stopping early
    at absorption (correct consensus reached *and* the protocol satisfies
    Proposition 3, so the consensus is provably held forever).
    """
    opinions = initial_opinions(config, rng)
    absorbing = protocol.satisfies_boundary_conditions(tolerance=1e-12)
    target = config.target_count
    trajectory = [int(opinions.sum())]
    for _ in range(max_rounds):
        if absorbing and trajectory[-1] == target:
            break
        opinions = step_opinions(protocol, config.z, opinions, rng)
        trajectory.append(int(opinions.sum()))
    return np.asarray(trajectory)
