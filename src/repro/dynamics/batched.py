"""Batched-replica vectorized engine with per-replica counter-based streams.

On the complete graph the paper's dynamics collapse to the count chain
(:mod:`repro.dynamics.engine`), so an ensemble of ``R`` replicas is just a
length-``R`` integer vector and one lock-step round is two vectorized
binomial draws.  The subtlety is reproducibility: a single shared
``Generator`` (the legacy ``lockstep`` engine) makes every replica's stream
depend on *which other replicas are in the batch and when they converge*.
This engine instead gives each replica its own **counter-based stream**:

* :func:`replica_keys` derives one 64-bit key per replica from the
  :func:`~repro.dynamics.rng.spawn_seed_sequences` tree, so key ``j`` is a
  pure function of the seed and ``j`` — never of the batch size;
* :func:`counter_uniforms` hashes ``(key, round, draw)`` with a
  splitmix64-style mixer into one double in ``[0, 1)`` per replica — no
  state to carry, so any round of any replica is addressable in O(1);
* :func:`binomial_icdf` turns those uniforms into **exact** binomial
  variates via the inverse CDF (``min {k : CDF(k) >= u}``), using a
  Cornish-Fisher initial guess plus a vectorized verify/correct pass —
  ~20-50x faster than ``scipy.stats.binom.ppf`` and bit-for-bit the same
  answer away from the degenerate corners (see docs/ENGINES.md).

Because every function here is elementwise-deterministic, stepping one
replica through :func:`step_count_keyed` and stepping it inside any batch
through :func:`step_counts_keyed` produce identical bits — that is the
loop-vs-batched bit-identity contract the engine selector is built on.

Engine selection (consumed by :func:`repro.dynamics.run.simulate_ensemble`
via its ``engine=`` keyword) lives here too: :data:`ENGINES` names the
backends, :func:`resolve_engine` normalizes a request (``None`` means
:data:`DEFAULT_ENGINE`; ``batched+numba`` falls back to ``batched`` when
numba is not importable), and :func:`engine_family` maps a resolved name
to its random-stream identity.

>>> import numpy as np
>>> keys = replica_keys(2024, 4)
>>> np.array_equal(replica_keys(2024, 2), keys[:2])  # batch-size independent
True
>>> u = counter_uniforms(keys, t=1, draw=0)
>>> bool((0.0 <= u).all() and (u < 1.0).all())
True
>>> binomial_icdf(np.array([0.5]), np.array([10]), np.array([0.5]))
array([5])
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import special

from repro.core.protocol import Protocol
from repro.dynamics.config import validate_count, validate_counts
from repro.dynamics.rng import SeedLike, spawn_seed_sequences
from repro.telemetry import NULL_RECORDER, Recorder, current_span

__all__ = [
    "ENGINES",
    "DEFAULT_ENGINE",
    "HAVE_NUMBA",
    "resolve_engine",
    "engine_family",
    "replica_keys",
    "counter_uniforms",
    "binomial_icdf",
    "step_count_keyed",
    "step_counts_keyed",
]

try:  # pragma: no cover - exercised only where numba is installed
    import numba  # type: ignore

    HAVE_NUMBA = True
except ImportError:
    numba = None
    HAVE_NUMBA = False

ENGINES = ("loop", "batched", "batched+numba", "lockstep")
"""Every ensemble backend ``engine=`` accepts (contract in docs/ENGINES.md)."""

DEFAULT_ENGINE = "batched"
"""What ``engine=None`` resolves to wherever semantics allow."""

_U64 = np.uint64
_GOLDEN = _U64(0x9E3779B97F4A7C15)
_MIX_1 = _U64(0xBF58476D1CE4E5B9)
_MIX_2 = _U64(0x94D049BB133111EB)


def resolve_engine(engine: Optional[str]) -> str:
    """Normalize an ``engine=`` request into a concrete backend name.

    ``None`` resolves to :data:`DEFAULT_ENGINE`; ``"batched+numba"``
    resolves to ``"batched"`` when numba is not importable (the documented
    pure-python fallback — the two are bit-identical by construction, so
    the fallback never changes results).  Unknown names raise
    ``ValueError`` listing the valid backends.

    >>> resolve_engine(None)
    'batched'
    >>> resolve_engine("loop")
    'loop'
    >>> resolve_engine("turbo")
    Traceback (most recent call last):
        ...
    ValueError: unknown engine 'turbo'; expected one of: loop, batched, batched+numba, lockstep
    """
    if engine is None:
        return DEFAULT_ENGINE
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of: " + ", ".join(ENGINES)
        )
    if engine == "batched+numba" and not HAVE_NUMBA:
        return "batched"
    return engine


def engine_family(engine: str) -> str:
    """The random-stream identity of a resolved engine name.

    ``batched+numba`` only jits the counter-stream hash — integer ops that
    numba reproduces bit-exactly — so it shares the ``batched`` stream;
    checkpoints and run signatures key on the family, which is why a run
    checkpointed with numba resumes identically without it.

    >>> engine_family("batched+numba")
    'batched'
    >>> engine_family("loop")
    'loop'
    """
    return "batched" if engine == "batched+numba" else engine


def replica_keys(seed: SeedLike, replicas: int) -> np.ndarray:
    """One 64-bit counter-stream key per replica, derived from ``seed``.

    Key ``j`` is the first word of state of the ``j``-th child in the
    ``SeedSequence`` spawn tree (:func:`~repro.dynamics.rng.
    spawn_seed_sequences`), so it depends on the seed and on ``j`` only —
    *not* on ``replicas``.  Asking for a larger batch extends the key
    vector without disturbing earlier entries, which is what makes a
    replica's statistics independent of batch membership:

    >>> import numpy as np
    >>> np.array_equal(replica_keys(7, 3), replica_keys(7, 8)[:3])
    True

    When ``seed`` is a ``Generator`` it contributes entropy from its own
    stream (advancing it), exactly as :func:`~repro.dynamics.rng.spawn_rngs`
    would — the two derivations consume the generator identically.
    """
    children = spawn_seed_sequences(seed, replicas)
    return np.array(
        [child.generate_state(1, np.uint64)[0] for child in children],
        dtype=np.uint64,
    )


def _mix(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer (wrapping uint64 arithmetic)."""
    x = x + _GOLDEN
    x = (x ^ (x >> _U64(30))) * _MIX_1
    x = (x ^ (x >> _U64(27))) * _MIX_2
    return x ^ (x >> _U64(31))


if HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed

    @numba.njit(cache=False)
    def _uniforms_jit(keys, t, draw):  # pragma: no cover
        out = np.empty(keys.size, dtype=np.float64)
        golden = np.uint64(0x9E3779B97F4A7C15)
        mix1 = np.uint64(0xBF58476D1CE4E5B9)
        mix2 = np.uint64(0x94D049BB133111EB)
        c = t * golden + draw
        c = c + golden
        c = (c ^ (c >> np.uint64(30))) * mix1
        c = (c ^ (c >> np.uint64(27))) * mix2
        c = c ^ (c >> np.uint64(31))
        for i in range(keys.size):
            h = keys[i] ^ c
            h = h + golden
            h = (h ^ (h >> np.uint64(30))) * mix1
            h = (h ^ (h >> np.uint64(27))) * mix2
            h = h ^ (h >> np.uint64(31))
            out[i] = (h >> np.uint64(11)) * (2.0 ** -53)
        return out


def counter_uniforms(
    keys: np.ndarray, t: int, draw: int, use_numba: bool = False
) -> np.ndarray:
    """One double in ``[0, 1)`` per key for counter ``(round t, draw)``.

    Stateless: the value for a given ``(key, t, draw)`` triple is fixed
    forever, so a replica's whole stream is addressable without replaying
    earlier rounds — the property checkpoint resume and the loop engine
    lean on.  ``draw`` separates the independent variates a single round
    needs (0: ones kept, 1: zeros flipped).

    With ``use_numba=True`` (and numba importable) the hash runs jitted;
    the integer pipeline is identical, so the bits are too.

    >>> import numpy as np
    >>> keys = replica_keys(0, 2)
    >>> np.array_equal(counter_uniforms(keys, 3, 0), counter_uniforms(keys, 3, 0))
    True
    >>> np.array_equal(counter_uniforms(keys, 3, 0), counter_uniforms(keys, 3, 1))
    False
    """
    keys = np.asarray(keys, dtype=np.uint64)
    if use_numba and HAVE_NUMBA:  # pragma: no cover - needs numba installed
        return _uniforms_jit(keys, np.uint64(t), np.uint64(draw))
    with np.errstate(over="ignore"):
        counter = _mix(_U64(t) * _GOLDEN + _U64(draw))
        h = _mix(keys ^ counter)
    return (h >> _U64(11)).astype(np.float64) * (2.0 ** -53)


def binomial_icdf(u: np.ndarray, m: np.ndarray, p: np.ndarray) -> np.ndarray:
    """Exact vectorized binomial inverse CDF: ``min {k : CDF(k; m, p) >= u}``.

    The sampling workhorse of the batched engine: feeding it the
    counter-based uniforms yields exact ``Binomial(m, p)`` variates, one
    per replica, independent of batch membership.  Strategy: a
    Cornish-Fisher (normal + skew-corrected) initial guess, one vectorized
    ``scipy.special.bdtr`` verification, a doubling "gallop" on the few
    elements whose CDF still sits below ``u``, and a pmf-based filter that
    routes only borderline elements to exact ``CDF(k-1)`` minimality
    checks.  All decisions are elementwise, so results never depend on the
    array the element rides in.

    Edge conventions (degenerate corners where the CDF is flat): ``u <= 0``
    returns 0, ``p >= 1`` returns ``m``, and ``p <= 0`` or ``m == 0``
    return 0 — each is the literal ``min {k : CDF(k) >= u}``.

    >>> import numpy as np
    >>> binomial_icdf(np.array([0.0, 0.5, 1 - 2**-53]), np.array([8, 8, 8]),
    ...               np.array([0.3, 0.3, 0.3]))
    array([0, 2, 8])
    """
    u = np.asarray(u, dtype=np.float64)
    m = np.asarray(m, dtype=np.int64)
    p = np.asarray(p, dtype=np.float64)
    u, m, p = np.broadcast_arrays(u, m, p)
    # Degenerate corners are answered directly (and masked out of the
    # general path, whose special functions would warn or loop on them).
    degenerate = (m <= 0) | (p <= 0.0) | (p >= 1.0) | (u <= 0.0)
    m_eff = np.where(degenerate, 1, m)
    p_eff = np.where(degenerate, 0.5, p)
    u_eff = np.where(degenerate, 0.5, u)
    mf = m_eff.astype(np.float64)
    mu = mf * p_eff
    sig = np.sqrt(mu * (1.0 - p_eff))
    z = special.ndtri(np.clip(u_eff, 1e-300, 1.0 - 2**-53))
    skew = (1.0 - 2.0 * p_eff) / np.maximum(sig, 1e-300)
    k = np.floor(mu + sig * (z + skew * (z * z - 1.0) / 6.0) + 0.5)
    k = np.clip(k, 0.0, mf).astype(np.int64)
    cdf = special.bdtr(k, m_eff, p_eff)
    # Gallop up on the (rare) elements whose guess undershot: doubling
    # steps bound the loop by O(log m) subset-sized bdtr calls.
    low = cdf < u_eff
    step = 1
    while low.any():
        k[low] = np.minimum(k[low] + step, m_eff[low])
        cdf[low] = special.bdtr(k[low], m_eff[low], p_eff[low])
        low = cdf < u_eff
        step *= 2
    # Minimality: k must be the *first* index at or above u.  pmf(k)
    # filters the candidates — only where CDF(k) - pmf(k) could still
    # clear u (1e-9 safety margin for the exp/log round-off) is the exact
    # CDF(k-1) consulted, on that subset alone.
    pmf = np.exp(
        special.gammaln(mf + 1.0)
        - special.gammaln(k + 1.0)
        - special.gammaln(mf - k + 1.0)
        + special.xlogy(k, p_eff)
        + special.xlog1py(mf - k, -p_eff)
    )
    maybe_high = (k > 0) & (cdf - pmf >= u_eff - 1e-9)
    while maybe_high.any():
        idx = np.nonzero(maybe_high)[0]
        below = special.bdtr(k[idx] - 1, m_eff[idx], p_eff[idx])
        drop = below >= u_eff[idx]
        k[idx[drop]] -= 1
        again = idx[drop]
        again = again[k[again] > 0]
        maybe_high = np.zeros_like(maybe_high)
        if again.size:
            maybe_high[again] = (
                special.bdtr(k[again] - 1, m_eff[again], p_eff[again])
                >= u_eff[again]
            )
    return np.where(degenerate, np.where((p >= 1.0) & (u > 0.0), m, 0), k)


def _step_keyed(
    protocol: Protocol,
    n: int,
    z: int,
    counts: np.ndarray,
    keys: np.ndarray,
    t: int,
    use_numba: bool = False,
) -> np.ndarray:
    """One keyed lock-step round; shared by the scalar and batched fronts."""
    p = counts / n
    p0, p1 = protocol.response_probabilities(p)
    m1 = counts - z
    m0 = n - counts - (1 - z)
    ones_kept = binomial_icdf(
        counter_uniforms(keys, t, 0, use_numba), m1, np.asarray(p1)
    )
    zeros_flipped = binomial_icdf(
        counter_uniforms(keys, t, 1, use_numba), m0, np.asarray(p0)
    )
    return z + ones_kept + zeros_flipped


def step_counts_keyed(
    protocol: Protocol,
    n: int,
    z: int,
    counts: np.ndarray,
    keys: np.ndarray,
    t: int,
    recorder: Recorder = NULL_RECORDER,
    use_numba: bool = False,
) -> np.ndarray:
    """Advance many replicas one round, each on its own counter stream.

    The batched engine's kernel: ``counts[j]`` steps using only
    ``(keys[j], t)``, so the update is a pure elementwise function —
    slicing replicas out (or running them through :func:`step_count_keyed`
    one at a time) reproduces identical bits.  With an enabled
    ``recorder``, one ``batch_steps`` tick and ``replica_steps +=
    len(counts)`` land on the innermost open telemetry span (mirroring
    :func:`repro.dynamics.engine.step_counts_batch`).

    >>> import numpy as np
    >>> from repro.protocols import voter
    >>> keys = replica_keys(11, 3)
    >>> counts = np.array([50, 50, 50], dtype=np.int64)
    >>> batch = step_counts_keyed(voter(1), 100, 1, counts, keys, t=1)
    >>> solo = [step_count_keyed(voter(1), 100, 1, 50, keys[j], t=1)
    ...         for j in range(3)]
    >>> batch.tolist() == solo
    True
    """
    counts = np.asarray(counts)
    validate_counts(n, z, counts)
    out = _step_keyed(protocol, n, z, counts, keys, t, use_numba)
    if recorder.enabled:
        span = current_span(recorder)
        span.incr("batch_steps")
        span.incr("replica_steps", int(counts.size))
    return out


def step_count_keyed(
    protocol: Protocol,
    n: int,
    z: int,
    x: int,
    key: np.uint64,
    t: int,
    recorder: Recorder = NULL_RECORDER,
) -> int:
    """Advance one replica one round on its counter stream (loop engine).

    The scalar reference the ``loop`` engine is built from: it routes a
    one-element array through the same kernel as
    :func:`step_counts_keyed`, which is what makes loop-vs-batched
    bit-identity hold *by construction* rather than by careful matching.
    With an enabled ``recorder`` the call attributes one ``steps`` tick to
    the innermost open span (the scalar-engine convention of
    :func:`repro.dynamics.engine.step_count`).
    """
    validate_count(n, z, x)
    counts = np.array([x], dtype=np.int64)
    keys = np.asarray([key], dtype=np.uint64)
    out = _step_keyed(protocol, n, z, counts, keys, t)
    if recorder.enabled:
        current_span(recorder).incr("steps")
    return int(out[0])
