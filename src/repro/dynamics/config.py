"""Configurations and adversarial initializers.

Because agents are anonymous and memory-less, the entire system state is the
pair ``(z, x)``: the source's correct opinion ``z`` and the number ``x`` of
agents (source included) currently holding opinion 1 (Section 1.1).  The
bit-dissemination problem is *self-stabilizing*: a protocol must converge
from every configuration, which we model by letting an adversary pick the
initial one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

__all__ = [
    "Configuration",
    "ScenarioConfig",
    "validate_count",
    "validate_counts",
    "consensus_configuration",
    "wrong_consensus_configuration",
    "balanced_configuration",
    "adversarial_configurations",
]


@dataclass(frozen=True)
class Configuration:
    """An initial configuration ``C = (z, x0)`` for a population of size ``n``.

    Attributes:
        n: population size (including the source).
        z: the correct opinion, held by the source at all times.
        x0: initial number of agents with opinion 1, source included.
    """

    n: int
    z: int
    x0: int

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ValueError(f"population size n must be >= 2, got {self.n}")
        if self.z not in (0, 1):
            raise ValueError(f"correct opinion z must be 0 or 1, got {self.z}")
        low, high = self.count_bounds(self.n, self.z)
        if not low <= self.x0 <= high:
            raise ValueError(
                f"x0 must lie in [{low}, {high}] for n={self.n}, z={self.z}; "
                f"got {self.x0}"
            )

    @staticmethod
    def count_bounds(n: int, z: int) -> tuple:
        """Admissible range of the count: the source always contributes ``z``."""
        return (z, n - (1 - z))

    @property
    def target_count(self) -> int:
        """The count at the correct consensus: ``n z``."""
        return self.n * self.z

    @property
    def is_converged(self) -> bool:
        return self.x0 == self.target_count

    @property
    def fraction(self) -> float:
        return self.x0 / self.n


@dataclass(frozen=True)
class ScenarioConfig:
    """A declarative hostile-world selection: a scenario spec string.

    The engine-independent companion of :class:`Configuration`: it names
    *which* perturbation schedule a run lives in (``"null"``,
    ``"churn:period=8+lossy:rate=0.2"``, ...) without binding to a
    population size.  ``build(n)`` resolves it against the scenario
    registry.  Runners accept a ``ScenarioConfig``, a spec string, or a
    built :class:`~repro.dynamics.scenarios.Scenario` interchangeably.

    Scenario randomness needs no configuration here: every scenario draws
    from the same per-replica counter streams as the clean engines (the
    ``SeedSequence`` spawn tree hashed by
    :func:`repro.dynamics.batched.replica_keys`), claiming draw indices
    the clean step never touches — see docs/SCENARIOS.md.
    """

    spec: str

    def __post_init__(self) -> None:
        if not isinstance(self.spec, str) or not self.spec.strip():
            raise ValueError(f"scenario spec must be a non-empty string, got {self.spec!r}")

    def build(self, n: int):
        """Resolve the spec into a :class:`~repro.dynamics.scenarios.Scenario`."""
        from repro.dynamics.scenarios import make_scenario

        return make_scenario(self.spec, n)


def validate_count(n: int, z: int, x: int) -> tuple:
    """Check a scalar count against :meth:`Configuration.count_bounds`.

    The single source of truth for the admissibility check shared by the
    parallel and sequential engines.  Returns ``(low, high)`` so callers can
    reuse the bounds; raises ``ValueError`` when ``x`` falls outside them.
    """
    low, high = Configuration.count_bounds(n, z)
    if not low <= x <= high:
        raise ValueError(f"count x must lie in [{low}, {high}] for n={n}, z={z}; got {x}")
    return low, high


def validate_counts(n: int, z: int, counts) -> tuple:
    """Vectorized :func:`validate_count` for an array of replica counts."""
    import numpy as np

    counts = np.asarray(counts)
    low, high = Configuration.count_bounds(n, z)
    if counts.size and (np.any(counts < low) or np.any(counts > high)):
        raise ValueError(
            f"counts must lie in [{low}, {high}] for n={n}, z={z}; got "
            f"range [{counts.min()}, {counts.max()}]"
        )
    return low, high


def consensus_configuration(n: int, z: int) -> Configuration:
    """Everyone already agrees with the source (used for absorption tests)."""
    return Configuration(n=n, z=z, x0=n * z)


def wrong_consensus_configuration(n: int, z: int) -> Configuration:
    """Every non-source agent holds the wrong opinion — the classic worst case."""
    x0 = z if z == 1 else n - 1  # only the source is right
    return Configuration(n=n, z=z, x0=x0)


def balanced_configuration(n: int, z: int) -> Configuration:
    """A 50/50 split (ties broken toward the wrong opinion)."""
    return Configuration(n=n, z=z, x0=n // 2)


def adversarial_configurations(n: int) -> List[Configuration]:
    """A deliberately nasty panel of initial configurations.

    Covers, for both values of ``z``: the wrong consensus, the near-wrong
    consensus, the balanced split, and a thin correct majority.  A protocol
    claiming to solve the problem must converge from all of them.
    """
    panel: List[Configuration] = []
    for z in (0, 1):
        low, high = Configuration.count_bounds(n, z)
        wrong = wrong_consensus_configuration(n, z)
        candidates = {
            wrong.x0,
            min(max(low, wrong.x0 + (1 if z == 1 else -1)), high),
            n // 2,
            (n * (2 if z == 0 else 1)) // 3,
        }
        for x0 in sorted(candidates):
            clipped = min(max(x0, low), high)
            panel.append(Configuration(n=n, z=z, x0=clipped))
    return panel
