"""The exact count-level parallel engine.

Because agents are anonymous and memory-less and samples are uniform with
replacement, the number ``X_t`` of opinion-1 agents is a Markov chain on
``{z, ..., n - (1 - z)}``; conditioned on ``X_t = x``, every non-source agent
flips independently with a probability depending only on its own opinion and
on ``p = x / n`` (Eq. 4).  One parallel round is therefore *exactly*

    X_{t+1} = z + Binomial(m1, P1(p)) + Binomial(m0, P0(p))

with ``m1 = x - z`` non-source ones and ``m0 = n - x - (1 - z)`` non-source
zeros.  This engine samples that expression directly: O(1) work per round,
exact in distribution, and scales to populations of tens of millions — the
agent-level engine in :mod:`repro.dynamics.agentwise` is the ground truth it
is validated against.
"""

from __future__ import annotations

import numpy as np

from repro.core.protocol import Protocol
from repro.dynamics.config import validate_count, validate_counts
from repro.telemetry import NULL_RECORDER, Recorder, current_span

__all__ = ["step_count", "step_counts_batch"]


def step_count(
    protocol: Protocol,
    n: int,
    z: int,
    x: int,
    rng: np.random.Generator,
    recorder: Recorder = NULL_RECORDER,
) -> int:
    """Sample one parallel round of the count chain: ``X_{t+1} | X_t = x``.

    With an enabled ``recorder``, the call attributes one ``steps`` tick to
    the innermost open telemetry span (no span of its own: the kernel is too
    hot to time per call).
    """
    validate_count(n, z, x)
    p = x / n
    p0, p1 = protocol.response_probabilities(p)
    m1 = x - z
    m0 = n - x - (1 - z)
    ones_kept = int(rng.binomial(m1, p1)) if m1 > 0 else 0
    zeros_flipped = int(rng.binomial(m0, p0)) if m0 > 0 else 0
    if recorder.enabled:
        current_span(recorder).incr("steps")
    return z + ones_kept + zeros_flipped


def step_counts_batch(
    protocol: Protocol,
    n: int,
    z: int,
    counts: np.ndarray,
    rng: np.random.Generator,
    recorder: Recorder = NULL_RECORDER,
) -> np.ndarray:
    """Advance many independent replicas of the count chain by one round.

    Vectorized over replicas: used by the ensemble runner to carry hundreds
    of independent trajectories in lock-step.  ``counts`` is an integer array
    of current counts, one per replica.  With an enabled ``recorder``, one
    ``batch_steps`` tick and ``replica_steps += len(counts)`` land on the
    innermost open telemetry span.
    """
    counts = np.asarray(counts)
    validate_counts(n, z, counts)
    p = counts / n
    p0, p1 = protocol.response_probabilities(p)
    m1 = counts - z
    m0 = n - counts - (1 - z)
    ones_kept = rng.binomial(m1, np.asarray(p1))
    zeros_flipped = rng.binomial(m0, np.asarray(p0))
    if recorder.enabled:
        span = current_span(recorder)
        span.incr("batch_steps")
        span.incr("replica_steps", int(counts.size))
    return z + ones_kept + zeros_flipped
