"""Bit-dissemination on graphs: sampling neighbours instead of everyone.

The paper's model samples uniformly from the *whole population* (the
complete graph / well-mixed case) — the assumption that makes the count a
Markov chain and the analysis tractable.  A natural "future work" axis is
topology: each agent samples ``ell`` uniform neighbours (with replacement)
on a fixed graph.  This module provides the agent-level graph engine plus
standard topologies (complete, cycle, torus-free random regular via
networkx, star), so the experiments can show

* that the complete graph reproduces the mean-field engine exactly, and
* how topology reshapes the Voter bound: on the cycle, information from the
  source spreads ballistically at best, and consensus needs ``Omega(n^2)``
  rather than ``O(n log n)`` rounds — sampling locality is yet another
  resource the paper's setting quietly grants.
"""

from __future__ import annotations

from typing import List, Optional

import networkx as nx
import numpy as np

from repro.core.protocol import Protocol

__all__ = [
    "neighbor_table",
    "complete_graph",
    "cycle_graph",
    "random_regular_graph",
    "star_graph",
    "step_opinions_on_graph",
    "simulate_on_graph",
]

SOURCE_INDEX = 0


def neighbor_table(graph: nx.Graph) -> List[np.ndarray]:
    """Per-node neighbour arrays (the engine's sampling tables).

    Nodes must be ``0..n-1``.  Isolated nodes are rejected: an agent with no
    neighbours cannot sample.
    """
    n = graph.number_of_nodes()
    if sorted(graph.nodes) != list(range(n)):
        raise ValueError("graph nodes must be exactly 0..n-1")
    table = []
    for node in range(n):
        neighbors = np.fromiter((v for v in graph.neighbors(node)), dtype=np.int64)
        if len(neighbors) == 0:
            raise ValueError(f"node {node} is isolated; every agent needs neighbours")
        table.append(neighbors)
    return table


def complete_graph(n: int) -> nx.Graph:
    """The paper's own setting (minus self-samples, a 1/n correction)."""
    return nx.complete_graph(n)


def cycle_graph(n: int) -> nx.Graph:
    return nx.cycle_graph(n)


def random_regular_graph(n: int, degree: int, seed: int = 0) -> nx.Graph:
    """A random ``degree``-regular graph (an expander w.h.p.)."""
    return nx.random_regular_graph(degree, n, seed=seed)


def star_graph(n: int) -> nx.Graph:
    """Hub-and-spokes with the hub at node 1 (the source stays at node 0)."""
    graph = nx.star_graph(n - 1)  # star_graph(k) has k+1 nodes, hub at 0
    # Relabel so the hub is node 1 and the source (node 0) is a leaf: this
    # keeps the convention "agent 0 is the source" while making the hub an
    # ordinary agent — the interesting case for dissemination.
    mapping = {0: 1, 1: 0}
    return nx.relabel_nodes(graph, mapping, copy=True)


def step_opinions_on_graph(
    protocol: Protocol,
    z: int,
    opinions: np.ndarray,
    neighbors: List[np.ndarray],
    rng: np.random.Generator,
) -> np.ndarray:
    """One parallel round with neighbour sampling."""
    n = len(opinions)
    ones_seen = np.empty(n, dtype=np.int64)
    for node in range(n):
        local = neighbors[node]
        samples = local[rng.integers(0, len(local), size=protocol.ell)]
        ones_seen[node] = int(opinions[samples].sum())
    adopt_probability = np.where(
        opinions == 1, protocol.g1[ones_seen], protocol.g0[ones_seen]
    )
    new_opinions = (rng.random(n) < adopt_probability).astype(np.int8)
    new_opinions[SOURCE_INDEX] = z
    return new_opinions


def simulate_on_graph(
    protocol: Protocol,
    graph: nx.Graph,
    z: int,
    initial_opinions: np.ndarray,
    max_rounds: int,
    rng: np.random.Generator,
) -> Optional[int]:
    """Rounds until the correct consensus on ``graph``, or None if censored.

    Requires a Proposition-3-compliant protocol (same absorption argument
    as the well-mixed case: an agent whose sample is unanimous-correct
    keeps the correct opinion, so the consensus is absorbing on any graph).
    """
    if not protocol.satisfies_boundary_conditions(tolerance=1e-12):
        raise ValueError(
            f"protocol {protocol.name!r} violates Proposition 3; its "
            "convergence time is infinite"
        )
    opinions = np.asarray(initial_opinions, dtype=np.int8).copy()
    if len(opinions) != graph.number_of_nodes():
        raise ValueError(
            f"opinion vector length {len(opinions)} does not match the "
            f"graph's {graph.number_of_nodes()} nodes"
        )
    opinions[SOURCE_INDEX] = z
    table = neighbor_table(graph)
    target = z * len(opinions)
    for t in range(max_rounds + 1):
        if int(opinions.sum()) == target:
            return t
        if t == max_rounds:
            break
        opinions = step_opinions_on_graph(protocol, z, opinions, table, rng)
    return None
