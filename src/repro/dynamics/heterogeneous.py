"""Heterogeneous populations: two protocols sharing one arena.

All agents in the paper run the same rule — anonymity forces it.  But
mixed populations are a natural question the machinery can answer: let a
fraction of the non-source agents run protocol A and the rest protocol B
(think: a flock with both conformists and contrarians).  Opinions are
still the only visible signal, so each agent samples the *global* opinion
fraction; the sufficient statistic is now the pair of per-group counts,
and one parallel round is four binomial draws — still exact and O(1).

The E24 experiment uses this to probe an ecology question the paper's
setting raises: can a mixture of a zero-bias spreader (Voter) and a
fast-but-stuck contrarian (Minority) beat both pure populations?  The
mixture's effective bias is the population-weighted blend
``F_mix = alpha F_A + (1-alpha) F_B`` — exactly the `blends` protocols at
the *table* level, but realized by distinct agents rather than one
averaged rule, with the group counts visible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.protocol import Protocol

__all__ = ["MixedState", "initial_mixed_state", "step_mixed", "simulate_mixed"]


@dataclass(frozen=True)
class MixedState:
    """State of a two-protocol population.

    Attributes:
        n: total population (source included).
        z: the source's opinion (the source belongs to no group).
        size_a: number of non-source agents running protocol A
            (the rest of the non-source agents run protocol B).
        ones_a: opinion-1 holders within group A.
        ones_b: opinion-1 holders within group B.
    """

    n: int
    z: int
    size_a: int
    ones_a: int
    ones_b: int

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ValueError(f"population size n must be >= 2, got {self.n}")
        if self.z not in (0, 1):
            raise ValueError(f"z must be 0 or 1, got {self.z}")
        if not 0 <= self.size_a <= self.n - 1:
            raise ValueError(
                f"size_a must lie in [0, n-1] = [0, {self.n - 1}], got {self.size_a}"
            )
        if not 0 <= self.ones_a <= self.size_a:
            raise ValueError(f"ones_a must lie in [0, {self.size_a}], got {self.ones_a}")
        size_b = self.n - 1 - self.size_a
        if not 0 <= self.ones_b <= size_b:
            raise ValueError(f"ones_b must lie in [0, {size_b}], got {self.ones_b}")

    @property
    def size_b(self) -> int:
        return self.n - 1 - self.size_a

    @property
    def total_ones(self) -> int:
        """Opinion-1 count over the whole population (source included)."""
        return self.z + self.ones_a + self.ones_b

    @property
    def is_correct_consensus(self) -> bool:
        return self.total_ones == self.n * self.z


def initial_mixed_state(
    n: int, z: int, size_a: int, ones_a: int, ones_b: int
) -> MixedState:
    return MixedState(n=n, z=z, size_a=size_a, ones_a=ones_a, ones_b=ones_b)


def step_mixed(
    protocol_a: Protocol,
    protocol_b: Protocol,
    state: MixedState,
    rng: np.random.Generator,
) -> MixedState:
    """One parallel round: both groups sample the same global fraction."""
    p = state.total_ones / state.n
    a0, a1 = protocol_a.response_probabilities(p)
    b0, b1 = protocol_b.response_probabilities(p)
    ones_a = int(rng.binomial(state.ones_a, a1)) + int(
        rng.binomial(state.size_a - state.ones_a, a0)
    )
    ones_b = int(rng.binomial(state.ones_b, b1)) + int(
        rng.binomial(state.size_b - state.ones_b, b0)
    )
    return MixedState(
        n=state.n, z=state.z, size_a=state.size_a, ones_a=ones_a, ones_b=ones_b
    )


def simulate_mixed(
    protocol_a: Protocol,
    protocol_b: Protocol,
    state: MixedState,
    max_rounds: int,
    rng: np.random.Generator,
) -> tuple:
    """Run until the correct consensus or the budget.

    Returns ``(converged, rounds, final_state)``.  Requires both protocols
    to satisfy Proposition 3, which makes the correct consensus absorbing
    for the mixture too (every agent's unanimous-correct sample pins it).
    """
    for protocol in (protocol_a, protocol_b):
        if not protocol.satisfies_boundary_conditions(tolerance=1e-12):
            raise ValueError(
                f"protocol {protocol.name!r} violates Proposition 3; the "
                "mixture cannot hold a consensus"
            )
    for t in range(max_rounds + 1):
        if state.is_correct_consensus:
            return True, t, state
        if t == max_rounds:
            break
        state = step_mixed(protocol_a, protocol_b, state, rng)
    return False, max_rounds, state
