"""Partial synchrony: k agents activated per step.

The paper's two settings are the endpoints of a dial: sequential (one
non-source agent per step) and parallel (all of them).  The intermediate
model — a uniform random set of ``k`` non-source agents activated
simultaneously, all sampling the *current* configuration — interpolates
between them, and makes the title of [15] ("the power of synchronicity")
quantitative: how much simultaneity does the Minority overshoot need?

Count-level exact step: the activated set contains ``H ~ Hypergeometric``
one-holders among the ``k`` activated; those flip to 1 with probability
``P1(p)``, the other activated agents with ``P0(p)``, everyone else keeps
their opinion.  Time is normalized so that ``n / k`` steps = one parallel
round (``n`` activations).
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.core.protocol import Protocol
from repro.dynamics.config import Configuration

__all__ = ["step_count_k", "simulate_k_activation", "KActivationResult"]


def step_count_k(
    protocol: Protocol,
    n: int,
    z: int,
    x: int,
    k: int,
    rng: np.random.Generator,
) -> int:
    """One step with ``k`` uniformly chosen non-source agents activated."""
    low, high = Configuration.count_bounds(n, z)
    if not low <= x <= high:
        raise ValueError(f"count x must lie in [{low}, {high}] for n={n}, z={z}; got {x}")
    if not 1 <= k <= n - 1:
        raise ValueError(f"k must lie in [1, n-1] = [1, {n - 1}], got {k}")
    p0, p1 = protocol.response_probabilities(x / n)
    m1 = x - z  # non-source ones
    m0 = n - x - (1 - z)
    # Ones among the k activated agents: hypergeometric draw.
    activated_ones = int(rng.hypergeometric(m1, m0, k)) if k < m1 + m0 else m1
    activated_zeros = k - activated_ones
    new_ones_from_ones = int(rng.binomial(activated_ones, p1)) if activated_ones else 0
    new_ones_from_zeros = int(rng.binomial(activated_zeros, p0)) if activated_zeros else 0
    inactive_ones = m1 - activated_ones
    return z + inactive_ones + new_ones_from_ones + new_ones_from_zeros


@dataclass(frozen=True)
class KActivationResult:
    """Outcome of a k-activation run.

    Attributes:
        config: the initial configuration.
        k: agents activated per step.
        converged: whether the correct consensus was reached.
        steps: activation steps executed.
    """

    config: Configuration
    k: int
    converged: bool
    steps: int

    @property
    def parallel_rounds(self) -> float:
        """Steps scaled so that n activations = 1 round."""
        return self.steps * self.k / self.config.n


def simulate_k_activation(
    protocol: Protocol,
    config: Configuration,
    k: int,
    max_parallel_rounds: float,
    rng: np.random.Generator,
) -> KActivationResult:
    """Run the k-activation chain up to a budget in *parallel rounds*."""
    if not protocol.satisfies_boundary_conditions(tolerance=1e-12):
        raise ValueError(
            f"protocol {protocol.name!r} violates Proposition 3; its "
            "convergence time is infinite"
        )
    n, z = config.n, config.z
    target = config.target_count
    max_steps = int(np.ceil(max_parallel_rounds * n / k))
    x = config.x0
    for step in range(max_steps + 1):
        if x == target:
            return KActivationResult(config=config, k=k, converged=True, steps=step)
        if step == max_steps:
            break
        x = step_count_k(protocol, n, z, x, k, rng)
    return KActivationResult(config=config, k=k, converged=False, steps=max_steps)
