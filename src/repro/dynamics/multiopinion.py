"""More than two opinions, under the paper's footnote-2 restriction.

Theorem 1 extends to ``q > 2`` opinions provided agents "may not adopt an
opinion that they have never seen or adopted" — otherwise extra opinions
smuggle extra communication.  With a *binary* initial configuration such a
protocol never creates a third opinion, so the process reduces to the binary
chain and the lower bound applies verbatim.  This module implements the
multi-opinion engine and the two natural rules (voter and minority), and the
test suite verifies the reduction.

The engine is agent-level (there is no low-dimensional sufficient statistic
once ``q > 2`` rules depend on full histograms in a nonlinear way... there is
one — the opinion histogram — but keeping agents explicit keeps the
restriction checkable per agent).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = [
    "multi_voter_rule",
    "multi_minority_rule",
    "step_multiopinion",
    "simulate_multiopinion",
    "initial_multiopinion",
]

SOURCE_INDEX = 0

# A rule maps (own_opinions, sample_histograms, rng) -> new opinions, where
# sample_histograms has shape (n, q) and counts each agent's ell samples.
MultiOpinionRule = Callable[[np.ndarray, np.ndarray, np.random.Generator], np.ndarray]


def multi_voter_rule(
    own: np.ndarray, histograms: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Adopt a uniformly random sampled opinion (the multi-opinion Voter).

    Equivalent to weighting opinions by their sample counts.  Only sampled
    opinions can be adopted, so the footnote-2 restriction holds by
    construction.
    """
    ell = histograms.sum(axis=1)
    cumulative = np.cumsum(histograms, axis=1)
    draws = rng.random(len(own)) * ell
    return (draws[:, None] < cumulative).argmax(axis=1)


def multi_minority_rule(
    own: np.ndarray, histograms: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Adopt the rarest opinion *present in the sample* (ties broken u.a.r.).

    With ``q = 2`` this coincides with Protocol 2: a unanimous sample has a
    single present opinion (adopted), otherwise the strict minority (or a
    fair coin on an exact tie).
    """
    counts = histograms.astype(float)
    counts[counts == 0] = np.inf  # absent opinions may not be adopted
    # Uniform tie-break: integer counts perturbed by noise < 1 keep order
    # between distinct counts and randomize order between equal ones.
    noisy = counts + rng.random(counts.shape)
    return noisy.argmin(axis=1)


def initial_multiopinion(
    n: int,
    q: int,
    z: int,
    histogram: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """An opinion vector over ``{0..q-1}`` with the given non-source histogram.

    ``histogram[j]`` is the number of *non-source* agents initially holding
    opinion ``j``; the source (agent 0) holds ``z``.
    """
    histogram = np.asarray(histogram, dtype=np.int64)
    if histogram.shape != (q,):
        raise ValueError(f"histogram must have shape ({q},), got {histogram.shape}")
    if histogram.sum() != n - 1:
        raise ValueError(
            f"histogram must sum to n - 1 = {n - 1} non-source agents, "
            f"got {histogram.sum()}"
        )
    if not 0 <= z < q:
        raise ValueError(f"source opinion z must lie in [0, {q}), got {z}")
    body = np.repeat(np.arange(q), histogram)
    rng.shuffle(body)
    return np.concatenate([[z], body]).astype(np.int64)


def step_multiopinion(
    rule: MultiOpinionRule,
    q: int,
    ell: int,
    z: int,
    opinions: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """One parallel round of the multi-opinion dynamics."""
    n = len(opinions)
    samples = rng.integers(0, n, size=(n, ell))
    sampled_opinions = opinions[samples]
    histograms = np.zeros((n, q), dtype=np.int64)
    rows = np.arange(n)
    for j in range(ell):
        np.add.at(histograms, (rows, sampled_opinions[:, j]), 1)
    new_opinions = np.asarray(rule(opinions, histograms, rng), dtype=np.int64)
    _check_restriction(opinions, histograms, new_opinions)
    new_opinions[SOURCE_INDEX] = z
    return new_opinions


def simulate_multiopinion(
    rule: MultiOpinionRule,
    q: int,
    ell: int,
    z: int,
    opinions: np.ndarray,
    max_rounds: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Run the multi-opinion dynamics; returns the (rounds+1, q) histogram history.

    Stops early once everyone holds the source opinion ``z``.
    """
    n = len(opinions)
    history = [np.bincount(opinions, minlength=q)]
    for _ in range(max_rounds):
        if history[-1][z] == n:
            break
        opinions = step_multiopinion(rule, q, ell, z, opinions, rng)
        history.append(np.bincount(opinions, minlength=q))
    return np.asarray(history)


def _check_restriction(
    opinions: np.ndarray, histograms: np.ndarray, new_opinions: np.ndarray
) -> None:
    """Enforce footnote 2: agents only adopt opinions they saw or held."""
    rows = np.arange(len(opinions))
    seen = histograms[rows, new_opinions] > 0
    kept = new_opinions == opinions
    if not np.all(seen | kept):
        offenders = np.nonzero(~(seen | kept))[0][:5]
        raise AssertionError(
            f"rule adopted unseen opinions at agents {offenders.tolist()}; "
            "this violates the footnote-2 restriction under which the "
            "multi-opinion lower bound holds"
        )
