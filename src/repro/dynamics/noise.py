"""Observation noise: a robustness extension of the paper's model.

The paper assumes agents read sampled opinions perfectly.  A natural
perturbation — each observed opinion independently flipped with probability
``delta`` (a binary symmetric channel per sample) — composes cleanly with
the model: a sample is an i.i.d. Bernoulli(``p``) draw, so flipping it
yields an i.i.d. Bernoulli(``p~``) draw with

    p~ = p (1 - delta) + (1 - p) delta.

The noisy dynamics is therefore the *same* protocol driven by the distorted
fraction ``p~``; at the count level only the response probabilities change.

Consequences this module makes measurable (experiment E14):

* exact consensus is no longer absorbing for any protocol — at ``p = 1``
  agents perceive ones with probability ``1 - delta < 1``, so Proposition
  3's mechanism breaks the consensus; the right success notion becomes an
  *epsilon-consensus* that the process holds most of the time;
* the ergodic (long-run) behaviour: the chain fluctuates around a
  quasi-stationary profile whose mass near the correct consensus degrades
  as ``delta`` grows, until the source's signal drowns entirely.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.protocol import Protocol
from repro.dynamics.config import Configuration

__all__ = [
    "distorted_fraction",
    "noisy_response_probabilities",
    "step_count_noisy",
    "NoisyOccupancy",
    "noisy_occupancy",
]


def distorted_fraction(p, delta: float):
    """The perceived fraction ``p~`` through a BSC(delta) per sample."""
    if not 0.0 <= delta <= 0.5:
        raise ValueError(f"noise level delta must lie in [0, 0.5], got {delta}")
    p_array = np.asarray(p, dtype=float)
    value = p_array * (1.0 - delta) + (1.0 - p_array) * delta
    if np.isscalar(p) or p_array.ndim == 0:
        return float(value)
    return value


def noisy_response_probabilities(protocol: Protocol, p, delta: float):
    """``(P0, P1)`` under observation noise: the clean response at ``p~``."""
    return protocol.response_probabilities(distorted_fraction(p, delta))


def step_count_noisy(
    protocol: Protocol,
    n: int,
    z: int,
    x: int,
    delta: float,
    rng: np.random.Generator,
) -> int:
    """One parallel round of the count chain under observation noise.

    A thin wrapper over the registered ``corrupt`` scenario
    (:mod:`repro.dynamics.scenarios`), whose response transform evaluates
    the protocol at the same ``p~`` expression as
    :func:`distorted_fraction`; the shared-``Generator`` stream it
    consumes is bit-identical to the pre-scenario implementation.
    """
    if not 0.0 <= delta <= 0.5:
        raise ValueError(f"noise level delta must lie in [0, 0.5], got {delta}")
    low, high = Configuration.count_bounds(n, z)
    if not low <= x <= high:
        raise ValueError(f"count x must lie in [{low}, {high}] for n={n}, z={z}; got {x}")
    from repro.dynamics.scenarios import CorruptScenario, scenario_step_generator

    return scenario_step_generator(
        protocol, CorruptScenario(n, delta=delta), x, 1, z, rng
    )


@dataclass(frozen=True)
class NoisyOccupancy:
    """Long-run behaviour of a noisy run.

    Attributes:
        delta: the observation-noise level.
        epsilon: the consensus tolerance (fraction allowed wrong).
        occupancy: fraction of measured rounds spent within the
            epsilon-consensus band around the correct opinion.
        mean_correct_fraction: time-average of the correct-opinion fraction.
    """

    delta: float
    epsilon: float
    occupancy: float
    mean_correct_fraction: float


def noisy_occupancy(
    protocol: Protocol,
    config: Configuration,
    delta: float,
    rounds: int,
    rng: np.random.Generator,
    epsilon: float = 0.05,
    burn_in: int = 0,
) -> NoisyOccupancy:
    """Run the noisy chain and measure epsilon-consensus occupancy.

    The run starts at ``config`` (typically adversarial), discards
    ``burn_in`` rounds, then records the fraction of rounds during which at
    least ``1 - epsilon`` of the population holds the correct opinion, and
    the average correct fraction.
    """
    if rounds <= burn_in:
        raise ValueError(f"rounds ({rounds}) must exceed burn_in ({burn_in})")
    n, z = config.n, config.z
    x = config.x0
    in_band = 0
    correct_total = 0.0
    measured = 0
    for t in range(rounds):
        x = step_count_noisy(protocol, n, z, x, delta, rng)
        if t < burn_in:
            continue
        correct_fraction = x / n if z == 1 else 1.0 - x / n
        correct_total += correct_fraction
        if correct_fraction >= 1.0 - epsilon:
            in_band += 1
        measured += 1
    return NoisyOccupancy(
        delta=delta,
        epsilon=epsilon,
        occupancy=in_band / measured,
        mean_correct_fraction=correct_total / measured,
    )
