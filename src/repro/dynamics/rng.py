"""Seeded random-number-generator management.

All stochastic code in this library takes an explicit
:class:`numpy.random.Generator`.  This module centralizes how generators are
created so that every experiment is reproducible from a single integer seed,
and so that ensembles of independent runs use provably independent streams
(via :class:`numpy.random.SeedSequence` spawning).
"""

from __future__ import annotations

from typing import Iterator, Sequence, Union

import numpy as np

SeedLike = Union[None, int, Sequence[int], np.random.SeedSequence, np.random.Generator]


def _as_seed_sequence(seed: SeedLike) -> np.random.SeedSequence:
    """Normalize any ``SeedLike`` into the ``SeedSequence`` root to spawn from.

    A generator contributes fresh entropy drawn from its own stream (so the
    derived root — and everything spawned from it — is a deterministic
    function of the generator's state, yet independent of its future
    output); a ``SeedSequence`` is the root already; anything else is
    handed to the ``SeedSequence`` constructor unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return np.random.SeedSequence(seed.integers(0, 2**63, size=4).tolist())
    if isinstance(seed, np.random.SeedSequence):
        return seed
    return np.random.SeedSequence(seed)


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts ``None`` (fresh OS entropy), an integer, a sequence of integers,
    a :class:`~numpy.random.SeedSequence`, or an existing generator (returned
    unchanged so call sites can be agnostic about what they were given).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    # default_rng normalizes every remaining SeedLike itself (a
    # SeedSequence passes through; ints/sequences/None become one), so a
    # separate SeedSequence branch would be dead weight.
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Return ``count`` independent generators derived from ``seed``.

    Independence is guaranteed by ``SeedSequence.spawn`` rather than by
    arithmetic on seeds, which can create correlated streams.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = _as_seed_sequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(count)]


def rng_stream(seed: SeedLike) -> Iterator[np.random.Generator]:
    """Yield an endless stream of independent generators derived from ``seed``."""
    root = _as_seed_sequence(seed)
    while True:
        (child,) = root.spawn(1)
        yield np.random.default_rng(child)
