"""Seeded random-number-generator management.

All stochastic code in this library takes an explicit
:class:`numpy.random.Generator`.  This module centralizes how generators are
created so that every experiment is reproducible from a single integer seed,
and so that ensembles of independent runs use provably independent streams
(via :class:`numpy.random.SeedSequence` spawning).
"""

from __future__ import annotations

from typing import Iterator, Sequence, Union

import numpy as np

SeedLike = Union[None, int, Sequence[int], np.random.SeedSequence, np.random.Generator]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts ``None`` (fresh OS entropy), an integer, a sequence of integers,
    a :class:`~numpy.random.SeedSequence`, or an existing generator (returned
    unchanged so call sites can be agnostic about what they were given).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Return ``count`` independent generators derived from ``seed``.

    Independence is guaranteed by ``SeedSequence.spawn`` rather than by
    arithmetic on seeds, which can create correlated streams.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive a fresh entropy root from the generator itself.
        root = np.random.SeedSequence(seed.integers(0, 2**63, size=4).tolist())
    elif isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(count)]


def rng_stream(seed: SeedLike) -> Iterator[np.random.Generator]:
    """Yield an endless stream of independent generators derived from ``seed``."""
    if isinstance(seed, np.random.Generator):
        root = np.random.SeedSequence(seed.integers(0, 2**63, size=4).tolist())
    elif isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(seed)
    while True:
        (child,) = root.spawn(1)
        yield np.random.default_rng(child)
