"""Seeded random-number-generator management.

All stochastic code in this library takes an explicit
:class:`numpy.random.Generator`.  This module centralizes how generators are
created so that every experiment is reproducible from a single integer seed,
and so that ensembles of independent runs use provably independent streams
(via :class:`numpy.random.SeedSequence` spawning).

Two stream shapes come out of the same ``SeedSequence`` tree:

* :func:`spawn_rngs` — one full ``Generator`` per consumer (shards, worker
  processes, anything that draws an open-ended amount of randomness);
* :func:`spawn_seed_sequences` — the raw spawned children, which the
  batched engine (:mod:`repro.dynamics.batched`) hashes down to one 64-bit
  *key* per replica for its counter-based streams.

Both walk the tree identically, so child ``j`` is a pure function of the
root and ``j`` — never of how many siblings were requested.  That is the
batch-membership-independence guarantee documented in docs/ENGINES.md.
"""

from __future__ import annotations

from typing import Iterator, Sequence, Union

import numpy as np

__all__ = [
    "SeedLike",
    "make_rng",
    "spawn_seed_sequences",
    "spawn_rngs",
    "rng_stream",
]

SeedLike = Union[None, int, Sequence[int], np.random.SeedSequence, np.random.Generator]


def _as_seed_sequence(seed: SeedLike) -> np.random.SeedSequence:
    """Normalize any ``SeedLike`` into the ``SeedSequence`` root to spawn from.

    A generator contributes fresh entropy drawn from its own stream (so the
    derived root — and everything spawned from it — is a deterministic
    function of the generator's state, yet independent of its future
    output); a ``SeedSequence`` is the root already; anything else is
    handed to the ``SeedSequence`` constructor unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return np.random.SeedSequence(seed.integers(0, 2**63, size=4).tolist())
    if isinstance(seed, np.random.SeedSequence):
        return seed
    return np.random.SeedSequence(seed)


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts ``None`` (fresh OS entropy), an integer, a sequence of integers,
    a :class:`~numpy.random.SeedSequence`, or an existing generator (returned
    unchanged so call sites can be agnostic about what they were given).

    The same seed always yields the same stream:

    >>> make_rng(7).integers(0, 100, size=3).tolist()
    [94, 62, 68]
    >>> make_rng(7).integers(0, 100, size=3).tolist()
    [94, 62, 68]
    """
    if isinstance(seed, np.random.Generator):
        return seed
    # default_rng normalizes every remaining SeedLike itself (a
    # SeedSequence passes through; ints/sequences/None become one), so a
    # separate SeedSequence branch would be dead weight.
    return np.random.default_rng(seed)


def spawn_seed_sequences(seed: SeedLike, count: int) -> list[np.random.SeedSequence]:
    """Return ``count`` child ``SeedSequence`` objects spawned from ``seed``.

    The children are the first ``count`` nodes of the root's spawn tree, so
    child ``j`` depends only on the root and on ``j`` — requesting more (or
    fewer) siblings later never changes an earlier child:

    >>> a = spawn_seed_sequences(42, 5)
    >>> b = spawn_seed_sequences(42, 3)
    >>> [c.spawn_key for c in b] == [c.spawn_key for c in a[:3]]
    True

    This is the substrate both :func:`spawn_rngs` (full generators) and
    :func:`repro.dynamics.batched.replica_keys` (64-bit counter-stream
    keys) are built on.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return _as_seed_sequence(seed).spawn(count)


def spawn_rngs(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Return ``count`` independent generators derived from ``seed``.

    Independence is guaranteed by ``SeedSequence.spawn`` rather than by
    arithmetic on seeds, which can create correlated streams.

    >>> streams = spawn_rngs(20240707, 2)
    >>> len(streams)
    2
    >>> streams[0].integers(0, 1000) != streams[1].integers(0, 1000)
    np.True_
    """
    return [np.random.default_rng(child) for child in spawn_seed_sequences(seed, count)]


def rng_stream(seed: SeedLike) -> Iterator[np.random.Generator]:
    """Yield an endless stream of independent generators derived from ``seed``.

    Useful when the number of consumers is not known up front; the ``k``-th
    generator yielded equals ``spawn_rngs(seed, k + 1)[k]`` for any ``k``.
    """
    root = _as_seed_sequence(seed)
    while True:
        (child,) = root.spawn(1)
        yield np.random.default_rng(child)
