"""Trajectory runners and convergence detection.

The convergence time ``tau_n`` (Section 1.1) is the first round from which
the population holds the correct consensus *forever*.  For protocols
satisfying Proposition 3 the correct consensus is absorbing, so ``tau_n`` is
simply the hitting time of ``X = n z`` and the runner stops there.  For
protocols violating Proposition 3 the consensus is left almost surely
(``tau_n`` is infinite); :func:`time_to_leave_consensus` measures how fast,
which is the E10 experiment.

Every runner accepts an optional ``recorder=`` (default: the disabled
:data:`repro.telemetry.NULL_RECORDER`) that observes the run's provenance,
one record per round, and a closing summary — see docs/OBSERVABILITY.md for
the schema and the zero-overhead-when-disabled contract.

Durability: :func:`simulate` and :func:`simulate_ensemble` additionally
accept ``checkpoint=`` (a :class:`repro.execution.Checkpointer`).  At every
cadence boundary the runner writes an atomic checkpoint (progress + NumPy
bit-generator state), after SIGINT/SIGTERM it writes a final one and raises
:class:`~repro.execution.GracefulExit`, and a resumed call replays the
identical random stream — the resumed result is bit-identical to an
uninterrupted run.  Round boundaries also carry ``REPRO_FAULT`` crashpoints
(``run:after_round``, ``ensemble:after_round``, ``ensemble:after_replica``,
...) so kill-and-resume is exercised by tests; see docs/OBSERVABILITY.md,
"Durability & fault model".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.core.protocol import Protocol

if TYPE_CHECKING:  # avoid a circular import: core.lower_bound needs dynamics.config
    from repro.core.lower_bound import LowerBoundCertificate
from repro.dynamics.batched import (
    engine_family,
    replica_keys,
    resolve_engine,
    step_count_keyed,
    step_counts_keyed,
)
from repro.dynamics.config import Configuration
from repro.dynamics.engine import step_count, step_counts_batch
from repro.execution import faults
from repro.execution.checkpoint import (
    DEFAULT_CHECKPOINT_EVERY,
    Checkpointer,
    decode_times,
    encode_times,
    run_signature,
)
from repro.dynamics.scenarios import (
    as_scenario,
    scenario_step_count,
    scenario_step_counts,
    scenario_target,
)
from repro.execution.shutdown import GracefulExit
from repro.telemetry import NULL_RECORDER, Recorder, run_provenance, span

__all__ = [
    "RunResult",
    "simulate",
    "simulate_ensemble",
    "recovery_summary",
    "escape_time",
    "escape_time_ensemble",
    "time_to_leave_consensus",
]


@dataclass(frozen=True)
class RunResult:
    """Outcome of a single run of the count chain.

    Attributes:
        config: the initial configuration.
        converged: whether the correct consensus was reached (and, the
            protocol being Proposition-3 compliant, held forever).
        rounds: the convergence time ``tau`` in parallel rounds, or ``None``
            if the run was censored at the round budget.
        final_count: the count when the run stopped.
        trajectory: the full count trajectory if recording was requested.
    """

    config: Configuration
    converged: bool
    rounds: Optional[int]
    final_count: int
    trajectory: Optional[np.ndarray] = None


def simulate(
    protocol: Protocol,
    config: Configuration,
    max_rounds: int,
    rng: np.random.Generator,
    record: bool = False,
    recorder: Recorder = NULL_RECORDER,
    checkpoint: Optional[Checkpointer] = None,
) -> RunResult:
    """Run the count chain until the correct consensus or the round budget.

    Raises ``ValueError`` for protocols violating Proposition 3: their
    "consensus" is not absorbing, so a hitting time would misrepresent
    ``tau_n`` (use :func:`time_to_leave_consensus` for those).

    ``recorder`` observes one record per executed round (``t`` starting at
    1, ``count`` the post-round count); ``record=True`` additionally keeps
    the trajectory in memory on the returned :class:`RunResult`.

    ``checkpoint`` enables durable execution: atomic checkpoints at the
    cadence, a final one (plus :class:`GracefulExit`) after SIGINT/SIGTERM,
    and bit-identical resume when the checkpointer carries a loaded state.
    """
    if not protocol.satisfies_boundary_conditions(tolerance=1e-12):
        raise ValueError(
            f"protocol {protocol.name!r} violates Proposition 3; its "
            "convergence time is infinite (see time_to_leave_consensus)"
        )
    start_round = 0
    resumed = None
    if checkpoint is not None:
        signature = run_signature(
            "simulate", protocol, rng,
            n=config.n, z=config.z, x0=config.x0, max_rounds=max_rounds,
            record=bool(record),
        )
        resumed = checkpoint.begin("simulate", signature)
    target = config.target_count
    x = config.x0
    trajectory = [x] if record else None
    if resumed is not None:
        if resumed.complete:
            payload = resumed.payload
            return RunResult(
                config=config,
                converged=bool(payload["converged"]),
                rounds=None if payload["rounds"] is None else int(payload["rounds"]),
                final_count=int(payload["x"]),
                trajectory=_as_array(payload.get("trajectory")),
            )
        x = int(resumed.payload["x"])
        start_round = int(resumed.round)
        if record:
            trajectory = [int(v) for v in resumed.payload["trajectory"]]
        # Restore the exact random stream the checkpointed process would
        # have drawn next: this is what makes resume bit-identical.
        rng.bit_generator.state = resumed.rng_state
    recording = recorder.enabled
    if recording:
        params = dict(n=config.n, z=config.z, x0=config.x0, max_rounds=max_rounds)
        if resumed is not None:
            params["resumed_from"] = start_round
            params["resumed_count"] = x
        recorder.run_started(run_provenance("simulate", protocol, rng, **params))
    converged = False
    rounds: Optional[int] = None
    with span(recorder, "simulate") as timing:
        for t in range(start_round, max_rounds + 1):
            if x == target:
                converged = True
                rounds = t
                break
            if t == max_rounds:
                break
            x = step_count(protocol, config.n, config.z, x, rng, recorder)
            if record:
                trajectory.append(x)
            if recording:
                recorder.round_recorded(t + 1, x)
            if checkpoint is not None:
                stop = checkpoint.should_stop()
                if stop or checkpoint.due(t + 1):
                    checkpoint.save(
                        "simulate", t + 1, rng, _simulate_payload(x, trajectory)
                    )
                    faults.crashpoint("run:after_checkpoint")
                if stop:
                    _graceful_exit(
                        checkpoint, recording, recorder,
                        {"interrupted": True, "rounds": None, "final_count": x,
                         "resumable_at": t + 1},
                    )
            faults.crashpoint("run:after_round")
        if recording:
            timing.incr("rounds", rounds if rounds is not None else max_rounds)
    if checkpoint is not None:
        final_payload = _simulate_payload(x, trajectory)
        final_payload.update({"converged": converged, "rounds": rounds})
        checkpoint.finish(
            "simulate", rounds if rounds is not None else max_rounds, rng,
            final_payload,
        )
    if recording:
        recorder.run_finished(
            {"converged": converged, "rounds": rounds, "final_count": x}
        )
    return RunResult(
        config=config,
        converged=converged,
        rounds=rounds,
        final_count=x,
        trajectory=_as_array(trajectory),
    )


def _simulate_payload(x: int, trajectory) -> dict:
    payload = {"x": int(x)}
    if trajectory is not None:
        payload["trajectory"] = [int(v) for v in trajectory]
    return payload


def _graceful_exit(checkpoint, recording, recorder, summary) -> None:
    """Honour a shutdown request at a safe point: flush, close out, raise."""
    if recording:
        recorder.run_finished(summary)
    if checkpoint.guard is not None:
        checkpoint.guard.flush_registered()
    raise GracefulExit(
        checkpoint.guard.signum if checkpoint.guard is not None else 15,
        checkpoint.path,
    )


def simulate_ensemble(
    protocol: Protocol,
    config: Configuration,
    max_rounds: int,
    rng: np.random.Generator,
    replicas: int,
    recorder: Recorder = NULL_RECORDER,
    checkpoint: Optional[Checkpointer] = None,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    supervisor=None,
    engine: Optional[str] = None,
    scenario=None,
) -> np.ndarray:
    """Convergence times of ``replicas`` independent runs, advanced in lock-step.

    Returns a float array of length ``replicas``: the convergence time of
    each replica, or ``nan`` where the run was censored at ``max_rounds``.
    Vectorized across replicas, so the cost is ``O(max_rounds)`` batched
    binomial draws rather than ``replicas`` full runs.

    ``engine`` selects the stepping backend (contract in docs/ENGINES.md):
    ``"batched"`` (the default) advances every replica on its own
    counter-based stream via :func:`~repro.dynamics.batched.
    step_counts_keyed`, so replica ``j``'s statistics depend only on the
    seed and ``j`` — never on the batch size; ``"loop"`` is its
    bit-identical scalar reference (one Python-level
    :func:`~repro.dynamics.batched.step_count_keyed` call per active
    replica per round); ``"batched+numba"`` jits the counter hash when
    numba is importable and falls back to ``"batched"`` otherwise (same
    bits either way); ``"lockstep"`` is the legacy shared-``Generator``
    path via :func:`step_counts_batch`, whose stream differs from the
    keyed engines' (statistical equivalence only).

    ``recorder`` observes one record per lock-step round: ``count`` is the
    mean count over *all* replicas, with ``active`` (replicas still running
    after the round) and ``newly_converged`` in the extra fields.

    ``checkpoint`` (a :class:`repro.execution.Checkpointer`) captures the
    lock-step state — completed replica times, per-replica counts, the
    active mask, and the bit-generator state — at the cadence and on
    shutdown; a resumed ensemble replays the identical random stream, so
    its times (and any :func:`~repro.analysis.ensemble.summarize_times`
    statistics over them) are bit-identical to an uninterrupted run.

    Any of ``workers=`` / ``shards=`` / ``supervisor=`` switches to the
    sharded worker-pool executor (:func:`repro.execution.supervisor.
    run_supervised_ensemble`): the ensemble splits into a fixed shard
    count seeded via ``spawn_rngs``, so the times for a given ``(rng,
    shards)`` pair are bit-identical at any worker count — but follow a
    *different* (equally valid) stream than this function's serial
    lock-step path.  ``checkpoint`` then contributes its path, cadence,
    and guard to per-shard checkpoint files (``<path>.shard<k>``), and
    ``recorder`` observes the supervisor's provenance, ``supervise`` span,
    and summary rather than per-round records.  Shards that fail past
    their retry budget are *dropped* from the returned array (with a
    ``RuntimeWarning``) — use ``run_supervised_ensemble`` directly when
    the loss accounting matters.

    ``scenario`` applies a hostile-world perturbation schedule (a
    :class:`repro.dynamics.scenarios.Scenario`, a spec string like
    ``"churn+lossy:rate=0.2"``, or a
    :class:`~repro.dynamics.config.ScenarioConfig`).  Scenarios run only
    on the keyed engine families (``loop``/``batched``); they draw from
    the same counter streams (churn claims draw indices 2/3), so the
    ``null`` scenario is bit-identical to ``scenario=None``.  Convergence
    then means "every free agent displays the current true opinion",
    replicas never retire before the scenario's settle round, and the
    scenario's canonical spec is folded into the checkpoint signature —
    resume refuses a mismatched hostile world.  See docs/SCENARIOS.md.
    """
    if workers is not None or shards is not None or supervisor is not None:
        import warnings

        from repro.execution.supervisor import (
            run_supervised_ensemble,
            supervisor_from,
        )

        result = run_supervised_ensemble(
            protocol, config, max_rounds, rng, replicas,
            supervisor=supervisor_from(supervisor, workers, shards),
            recorder=recorder,
            checkpoint_base=checkpoint.path if checkpoint is not None else None,
            checkpoint_every=(
                checkpoint.every if checkpoint is not None
                else DEFAULT_CHECKPOINT_EVERY
            ),
            guard=checkpoint.guard if checkpoint is not None else None,
            engine=engine,
            scenario=scenario,
        )
        if result.failed_shards:
            warnings.warn(
                f"supervised ensemble lost {result.failed_shards} shard(s): "
                f"returning {result.times.size} of {result.attempted_trials} "
                "trials",
                RuntimeWarning,
                stacklevel=2,
            )
        return result.times
    if replicas < 1:
        raise ValueError(f"replicas must be >= 1, got {replicas}")
    if not protocol.satisfies_boundary_conditions(tolerance=1e-12):
        raise ValueError(
            f"protocol {protocol.name!r} violates Proposition 3; its "
            "convergence time is infinite (see time_to_leave_consensus)"
        )
    resolved_engine = resolve_engine(engine)
    family = engine_family(resolved_engine)
    use_numba = resolved_engine == "batched+numba"
    scenario = as_scenario(scenario, config.n)
    if scenario is not None and family not in ("batched", "loop"):
        raise ValueError(
            f"scenarios require a keyed engine family (loop/batched), "
            f"not {resolved_engine!r}"
        )
    settle = scenario.settle_round(max_rounds) if scenario is not None else 0
    start_round = 0
    resumed = None
    if checkpoint is not None:
        # The signature keys on the engine *family*: the random stream (and
        # with it the result) is a function of the family, so a run
        # checkpointed under ``batched+numba`` resumes under ``batched``.
        # The scenario spec joins the signature only when one is active, so
        # pre-scenario checkpoints stay valid and a resume under a different
        # hostile world is refused.
        signature_params = dict(
            n=config.n, z=config.z, x0=config.x0,
            max_rounds=max_rounds, replicas=replicas, engine=family,
        )
        if scenario is not None:
            signature_params["scenario"] = scenario.spec()
        signature = run_signature(
            "simulate_ensemble", protocol, rng, **signature_params
        )
        resumed = checkpoint.begin("simulate_ensemble", signature)
        if resumed is not None and resumed.complete:
            return decode_times(resumed.payload["times"])
    # Per-replica keys are derived from the generator's *entry* state —
    # before any resumed-state restore — so a resumed run re-derives the
    # identical keys from the same seed.  The keyed engines never touch the
    # generator afterwards; the stored bit-generator state is then simply
    # the post-derivation state, constant across the whole run.
    keys = None
    if family in ("batched", "loop"):
        keys = replica_keys(rng, replicas)
    target = config.target_count
    if resumed is not None:
        counts = np.asarray(resumed.payload["counts"], dtype=np.int64)
        times = decode_times(resumed.payload["times"])
        active = np.asarray(resumed.payload["active"], dtype=bool)
        start_round = int(resumed.round)
        rng.bit_generator.state = resumed.rng_state
    else:
        counts = np.full(replicas, config.x0, dtype=np.int64)
        times = np.full(replicas, np.nan)
        active = np.ones(replicas, dtype=bool)
        if scenario is None:
            newly_done = counts == target
        elif settle <= 0:
            newly_done = counts == scenario_target(scenario, 0, config.z)
        else:
            # The world has scheduled hostility ahead: nothing may retire
            # before the settle round.
            newly_done = np.zeros(replicas, dtype=bool)
        times[newly_done] = 0.0
        active &= ~newly_done
    scenario_events: dict = {}
    if scenario is not None:
        for event_round, kind in scenario.events(max_rounds):
            if event_round in scenario_events:
                scenario_events[event_round] += "+" + kind
            else:
                scenario_events[event_round] = kind
    recording = recorder.enabled
    if recording:
        params = dict(
            n=config.n, z=config.z, x0=config.x0,
            max_rounds=max_rounds, replicas=replicas, engine=family,
        )
        if scenario is not None:
            params["scenario"] = scenario.spec()
            params["settle_round"] = settle
        if resumed is not None:
            params["resumed_from"] = start_round
            params["resumed_count"] = float(counts.mean())
        recorder.run_started(
            run_provenance("simulate_ensemble", protocol, rng, **params)
        )
    final_round = start_round
    with span(recorder, "ensemble") as timing:
        for t in range(start_round + 1, max_rounds + 1):
            if not active.any():
                break
            if scenario is not None:
                if family == "batched":
                    counts[active] = scenario_step_counts(
                        protocol, scenario, config.z, counts[active],
                        keys[active], t, recorder, use_numba=use_numba,
                    )
                else:  # loop
                    for j in np.nonzero(active)[0]:
                        counts[j] = scenario_step_count(
                            protocol, scenario, config.z, int(counts[j]),
                            keys[j], t, recorder,
                        )
                if t >= settle:
                    round_target = scenario_target(scenario, t, config.z)
                    newly_done = active & (counts == round_target)
                else:
                    newly_done = np.zeros(replicas, dtype=bool)
            else:
                if family == "batched":
                    counts[active] = step_counts_keyed(
                        protocol, config.n, config.z, counts[active],
                        keys[active], t, recorder, use_numba=use_numba,
                    )
                elif family == "loop":
                    for j in np.nonzero(active)[0]:
                        counts[j] = step_count_keyed(
                            protocol, config.n, config.z, int(counts[j]),
                            keys[j], t, recorder,
                        )
                else:  # lockstep: the legacy shared-Generator stream
                    counts[active] = step_counts_batch(
                        protocol, config.n, config.z, counts[active], rng, recorder
                    )
                newly_done = active & (counts == target)
            times[newly_done] = float(t)
            active &= ~newly_done
            final_round = t
            if recording:
                extra = {
                    "active": int(active.sum()),
                    "newly_converged": int(newly_done.sum()),
                }
                if scenario is not None:
                    if t in scenario_events:
                        extra["scenario_event"] = scenario_events[t]
                    population = scenario.population(t)
                    if population != config.n:
                        extra["population"] = population
                recorder.round_recorded(t, float(counts.mean()), extra)
            if faults.armed():
                # One visit per replica that converged this round, so
                # REPRO_FAULT=ensemble:after_replica:k kills the process
                # the moment the k-th replica completes.
                for _ in range(int(newly_done.sum())):
                    faults.crashpoint("ensemble:after_replica")
            if checkpoint is not None:
                stop = checkpoint.should_stop()
                if stop or checkpoint.due(t):
                    checkpoint.save(
                        "simulate_ensemble", t, rng,
                        _ensemble_payload(counts, times, active),
                    )
                    faults.crashpoint("ensemble:after_checkpoint")
                if stop:
                    censored = int(np.isnan(times).sum())
                    _graceful_exit(
                        checkpoint, recording, recorder,
                        {"interrupted": True, "converged": replicas - censored,
                         "censored": censored, "final_round": t,
                         "resumable_at": t},
                    )
            faults.crashpoint("ensemble:after_round")
        if recording:
            timing.incr("rounds", final_round)
    if checkpoint is not None:
        checkpoint.finish(
            "simulate_ensemble", final_round, rng,
            {"times": encode_times(times)},
        )
    if recording:
        censored = int(np.isnan(times).sum())
        summary = {
            "converged": replicas - censored,
            "censored": censored,
            "final_round": final_round,
        }
        if scenario is not None:
            summary["scenario"] = scenario.spec()
            summary["settle_round"] = settle
            summary.update(recovery_summary(times, settle))
        recorder.run_finished(summary)
    return times


def recovery_summary(times: np.ndarray, settle: int) -> dict:
    """Recovery-time percentiles over the converged replicas.

    ``recovery = tau - settle_round`` per converged replica (censored ones
    are excluded — the censor-aware statistics live in
    :func:`repro.analysis.ensemble.summarize_recovery`).  Returned as
    JSON-safe scalars for ``run_end`` trace records.
    """
    recovery = np.asarray(times, dtype=float) - float(settle)
    finite = recovery[np.isfinite(recovery)]
    out = {"recovered": int(finite.size)}
    if finite.size:
        out["recovery_mean"] = float(finite.mean())
        out["recovery_p50"] = float(np.quantile(finite, 0.5, method="lower"))
        out["recovery_p90"] = float(np.quantile(finite, 0.9, method="lower"))
    return out


def _ensemble_payload(counts, times, active) -> dict:
    return {
        "counts": [int(v) for v in counts],
        "times": encode_times(times),
        "active": [bool(v) for v in active],
    }


def escape_time(
    protocol: Protocol,
    certificate: "LowerBoundCertificate",
    n: int,
    max_rounds: int,
    rng: np.random.Generator,
    recorder: Recorder = NULL_RECORDER,
) -> Optional[int]:
    """Rounds until the chain first crosses the certificate's escape threshold.

    Starts from the Theorem-12 witness configuration; the returned time
    lower-bounds the convergence time (the chain must cross the threshold to
    reach the correct consensus).  Returns ``None`` if the threshold was not
    crossed within ``max_rounds`` — for the lower-bound experiment a censored
    run is a *success* (the escape took even longer than the budget).
    """
    config = certificate.witness_configuration(n)
    recording = recorder.enabled
    if recording:
        recorder.run_started(
            run_provenance(
                "escape_time", protocol, rng,
                n=n, z=config.z, x0=config.x0, max_rounds=max_rounds,
                threshold=int(certificate.escape_threshold(n)),
                escape_is_upward=bool(certificate.escape_is_upward),
            )
        )
    x = config.x0
    escaped_at: Optional[int] = None
    if certificate.has_escaped(n, x):
        escaped_at = 0
    else:
        with span(recorder, "escape") as timing:
            for t in range(1, max_rounds + 1):
                x = step_count(protocol, n, config.z, x, rng, recorder)
                if recording:
                    recorder.round_recorded(t, x)
                if certificate.has_escaped(n, x):
                    escaped_at = t
                    break
            if recording:
                timing.incr(
                    "rounds", escaped_at if escaped_at is not None else max_rounds
                )
    if recording:
        recorder.run_finished(
            {"escaped": escaped_at is not None, "rounds": escaped_at, "final_count": x}
        )
    return escaped_at


def escape_time_ensemble(
    protocol: Protocol,
    certificate: "LowerBoundCertificate",
    n: int,
    max_rounds: int,
    rng: np.random.Generator,
    replicas: int,
    recorder: Recorder = NULL_RECORDER,
) -> np.ndarray:
    """Escape times of many independent witness runs, advanced in lock-step.

    Vectorized analogue of :func:`escape_time`: returns a float array with
    ``nan`` for replicas whose threshold was not crossed within the budget
    (which, for the lower-bound experiment, is a success).
    """
    if replicas < 1:
        raise ValueError(f"replicas must be >= 1, got {replicas}")
    config = certificate.witness_configuration(n)
    threshold = certificate.escape_threshold(n)
    recording = recorder.enabled
    if recording:
        recorder.run_started(
            run_provenance(
                "escape_time_ensemble", protocol, rng,
                n=n, z=config.z, x0=config.x0, max_rounds=max_rounds,
                replicas=replicas, threshold=int(threshold),
                escape_is_upward=bool(certificate.escape_is_upward),
            )
        )
    counts = np.full(replicas, config.x0, dtype=np.int64)
    times = np.full(replicas, np.nan)
    active = np.ones(replicas, dtype=bool)

    def escaped(values: np.ndarray) -> np.ndarray:
        if certificate.escape_is_upward:
            return values >= threshold
        return values <= threshold

    done = escaped(counts)
    times[done] = 0.0
    active &= ~done
    final_round = 0
    with span(recorder, "escape_ensemble") as timing:
        for t in range(1, max_rounds + 1):
            if not active.any():
                break
            counts[active] = step_counts_batch(
                protocol, n, config.z, counts[active], rng, recorder
            )
            done = active & escaped(counts)
            times[done] = float(t)
            active &= ~done
            final_round = t
            if recording:
                recorder.round_recorded(
                    t,
                    float(counts.mean()),
                    {"active": int(active.sum()), "newly_converged": int(done.sum())},
                )
        if recording:
            timing.incr("rounds", final_round)
    if recording:
        censored = int(np.isnan(times).sum())
        recorder.run_finished(
            {
                "escaped": replicas - censored,
                "censored": censored,
                "final_round": final_round,
            }
        )
    return times


def time_to_leave_consensus(
    protocol: Protocol,
    n: int,
    z: int,
    max_rounds: int,
    rng: np.random.Generator,
    recorder: Recorder = NULL_RECORDER,
) -> Optional[int]:
    """Rounds until the population first *leaves* the correct consensus.

    Used to demonstrate Proposition 3's necessity: when ``g[0](0) > 0`` (or
    symmetrically ``g[1](ell) < 1``), each round at consensus breaks it with
    probability ``1 - (1 - g)**(n-1)``, so the consensus decays geometrically
    fast.  Returns ``None`` when the consensus survived the budget (the
    expected outcome for Proposition-3-compliant protocols, for which the
    consensus is absorbing and the function short-circuits to ``None``).
    """
    if protocol.satisfies_boundary_conditions(tolerance=1e-12):
        return None
    recording = recorder.enabled
    if recording:
        recorder.run_started(
            run_provenance(
                "time_to_leave_consensus", protocol, rng,
                n=n, z=z, x0=n * z, max_rounds=max_rounds,
            )
        )
    target = n * z
    x = target
    left_at: Optional[int] = None
    with span(recorder, "leave_consensus") as timing:
        for t in range(1, max_rounds + 1):
            x = step_count(protocol, n, z, x, rng, recorder)
            if recording:
                recorder.round_recorded(t, x)
            if x != target:
                left_at = t
                break
        if recording:
            timing.incr("rounds", left_at if left_at is not None else max_rounds)
    if recording:
        recorder.run_finished(
            {"left": left_at is not None, "rounds": left_at, "final_count": x}
        )
    return left_at


def _as_array(trajectory) -> Optional[np.ndarray]:
    if trajectory is None:
        return None
    return np.asarray(trajectory, dtype=np.int64)
