"""Trajectory runners and convergence detection.

The convergence time ``tau_n`` (Section 1.1) is the first round from which
the population holds the correct consensus *forever*.  For protocols
satisfying Proposition 3 the correct consensus is absorbing, so ``tau_n`` is
simply the hitting time of ``X = n z`` and the runner stops there.  For
protocols violating Proposition 3 the consensus is left almost surely
(``tau_n`` is infinite); :func:`time_to_leave_consensus` measures how fast,
which is the E10 experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.core.protocol import Protocol

if TYPE_CHECKING:  # avoid a circular import: core.lower_bound needs dynamics.config
    from repro.core.lower_bound import LowerBoundCertificate
from repro.dynamics.config import Configuration
from repro.dynamics.engine import step_count, step_counts_batch

__all__ = [
    "RunResult",
    "simulate",
    "simulate_ensemble",
    "escape_time",
    "time_to_leave_consensus",
]


@dataclass(frozen=True)
class RunResult:
    """Outcome of a single run of the count chain.

    Attributes:
        config: the initial configuration.
        converged: whether the correct consensus was reached (and, the
            protocol being Proposition-3 compliant, held forever).
        rounds: the convergence time ``tau`` in parallel rounds, or ``None``
            if the run was censored at the round budget.
        final_count: the count when the run stopped.
        trajectory: the full count trajectory if recording was requested.
    """

    config: Configuration
    converged: bool
    rounds: Optional[int]
    final_count: int
    trajectory: Optional[np.ndarray] = None


def simulate(
    protocol: Protocol,
    config: Configuration,
    max_rounds: int,
    rng: np.random.Generator,
    record: bool = False,
) -> RunResult:
    """Run the count chain until the correct consensus or the round budget.

    Raises ``ValueError`` for protocols violating Proposition 3: their
    "consensus" is not absorbing, so a hitting time would misrepresent
    ``tau_n`` (use :func:`time_to_leave_consensus` for those).
    """
    if not protocol.satisfies_boundary_conditions(tolerance=1e-12):
        raise ValueError(
            f"protocol {protocol.name!r} violates Proposition 3; its "
            "convergence time is infinite (see time_to_leave_consensus)"
        )
    target = config.target_count
    x = config.x0
    trajectory = [x] if record else None
    for t in range(max_rounds + 1):
        if x == target:
            return RunResult(
                config=config,
                converged=True,
                rounds=t,
                final_count=x,
                trajectory=_as_array(trajectory),
            )
        if t == max_rounds:
            break
        x = step_count(protocol, config.n, config.z, x, rng)
        if record:
            trajectory.append(x)
    return RunResult(
        config=config,
        converged=False,
        rounds=None,
        final_count=x,
        trajectory=_as_array(trajectory),
    )


def simulate_ensemble(
    protocol: Protocol,
    config: Configuration,
    max_rounds: int,
    rng: np.random.Generator,
    replicas: int,
) -> np.ndarray:
    """Convergence times of ``replicas`` independent runs, advanced in lock-step.

    Returns a float array of length ``replicas``: the convergence time of
    each replica, or ``nan`` where the run was censored at ``max_rounds``.
    Vectorized across replicas via :func:`step_counts_batch`, so the cost is
    ``O(max_rounds)`` batched binomial draws rather than ``replicas`` full
    runs.
    """
    if replicas < 1:
        raise ValueError(f"replicas must be >= 1, got {replicas}")
    if not protocol.satisfies_boundary_conditions(tolerance=1e-12):
        raise ValueError(
            f"protocol {protocol.name!r} violates Proposition 3; its "
            "convergence time is infinite (see time_to_leave_consensus)"
        )
    target = config.target_count
    counts = np.full(replicas, config.x0, dtype=np.int64)
    times = np.full(replicas, np.nan)
    active = np.ones(replicas, dtype=bool)
    newly_done = counts == target
    times[newly_done] = 0.0
    active &= ~newly_done
    for t in range(1, max_rounds + 1):
        if not active.any():
            break
        counts[active] = step_counts_batch(
            protocol, config.n, config.z, counts[active], rng
        )
        newly_done = active & (counts == target)
        times[newly_done] = float(t)
        active &= ~newly_done
    return times


def escape_time(
    protocol: Protocol,
    certificate: "LowerBoundCertificate",
    n: int,
    max_rounds: int,
    rng: np.random.Generator,
) -> Optional[int]:
    """Rounds until the chain first crosses the certificate's escape threshold.

    Starts from the Theorem-12 witness configuration; the returned time
    lower-bounds the convergence time (the chain must cross the threshold to
    reach the correct consensus).  Returns ``None`` if the threshold was not
    crossed within ``max_rounds`` — for the lower-bound experiment a censored
    run is a *success* (the escape took even longer than the budget).
    """
    config = certificate.witness_configuration(n)
    x = config.x0
    if certificate.has_escaped(n, x):
        return 0
    for t in range(1, max_rounds + 1):
        x = step_count(protocol, n, config.z, x, rng)
        if certificate.has_escaped(n, x):
            return t
    return None


def escape_time_ensemble(
    protocol: Protocol,
    certificate: "LowerBoundCertificate",
    n: int,
    max_rounds: int,
    rng: np.random.Generator,
    replicas: int,
) -> np.ndarray:
    """Escape times of many independent witness runs, advanced in lock-step.

    Vectorized analogue of :func:`escape_time`: returns a float array with
    ``nan`` for replicas whose threshold was not crossed within the budget
    (which, for the lower-bound experiment, is a success).
    """
    if replicas < 1:
        raise ValueError(f"replicas must be >= 1, got {replicas}")
    config = certificate.witness_configuration(n)
    threshold = certificate.escape_threshold(n)
    counts = np.full(replicas, config.x0, dtype=np.int64)
    times = np.full(replicas, np.nan)
    active = np.ones(replicas, dtype=bool)

    def escaped(values: np.ndarray) -> np.ndarray:
        if certificate.escape_is_upward:
            return values >= threshold
        return values <= threshold

    done = escaped(counts)
    times[done] = 0.0
    active &= ~done
    for t in range(1, max_rounds + 1):
        if not active.any():
            break
        counts[active] = step_counts_batch(
            protocol, n, config.z, counts[active], rng
        )
        done = active & escaped(counts)
        times[done] = float(t)
        active &= ~done
    return times


def time_to_leave_consensus(
    protocol: Protocol,
    n: int,
    z: int,
    max_rounds: int,
    rng: np.random.Generator,
) -> Optional[int]:
    """Rounds until the population first *leaves* the correct consensus.

    Used to demonstrate Proposition 3's necessity: when ``g[0](0) > 0`` (or
    symmetrically ``g[1](ell) < 1``), each round at consensus breaks it with
    probability ``1 - (1 - g)**(n-1)``, so the consensus decays geometrically
    fast.  Returns ``None`` when the consensus survived the budget (the
    expected outcome for Proposition-3-compliant protocols, for which the
    consensus is absorbing and the function short-circuits to ``None``).
    """
    if protocol.satisfies_boundary_conditions(tolerance=1e-12):
        return None
    target = n * z
    x = target
    for t in range(1, max_rounds + 1):
        x = step_count(protocol, n, z, x, rng)
        if x != target:
            return t
    return None


def _as_array(trajectory) -> Optional[np.ndarray]:
    if trajectory is None:
        return None
    return np.asarray(trajectory, dtype=np.int64)
