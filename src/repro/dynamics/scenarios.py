"""Composable hostile-world scenarios for the count-level engines.

The paper's model assumes a static, truthful world: ``n`` fixed agents, a
source that always displays the correct opinion ``z``, and uncorrupted
samples.  This module makes each of those assumptions *optional*.  A
:class:`Scenario` is a bundle of pure functions of the round index ``t``
that perturb one run:

* ``population(t)`` — agent churn: a deterministic schedule ``n_t`` with
  ``n_0`` equal to the base ``n`` (arrivals draw fresh opinions, departures
  remove uniformly random free agents);
* ``pinned(t, z)`` — how many agents are pinned to display one/zero during
  round ``t``.  The default ``(z, 1 - z)`` is exactly the paper's truthful
  source; a lying source swaps it, zealot populations generalize it;
* ``true_opinion(t, z)`` — the *correct* opinion at round ``t`` (a source
  whose ``z`` flips mid-run changes this, a merely lying source does not);
* ``transform_responses(protocol, t, p, p0, p1)`` — message-level
  perturbations (loss, bit-flip corruption, scheduled protocol drift)
  applied to the protocol's response probabilities;
* ``settle_round(max_rounds)`` — the first round at which convergence may
  be declared.  *Recovery time* of a replica is its convergence round
  minus this settle round (see docs/SCENARIOS.md).

Determinism contract (the docs/ENGINES.md bit-identity contract, extended):
scenarios draw randomness from the **same counter-based per-replica
streams** as the clean engines — draw indices 0/1 stay reserved for the
protocol step exactly as in :func:`repro.dynamics.batched._step_keyed`,
churn arrivals claim draw index 2 and departures draw index 3.  Because
the streams are stateless functions of ``(key, t, draw)``, a scenario that
perturbs nothing consumes nothing, which makes the ``null`` scenario
bit-identical to running with no scenario at all — on the ``loop`` engine,
the ``batched`` engine, through checkpoint resume, and under any shard
split.

One step of the hostile world (round ``t - 1`` -> ``t``)::

    p           = x_{t-1} / n_{t-1}
    p0, p1      = transform_responses(protocol, t, p, *protocol(p))
    free_ones   = B(x_{t-1} - pin1_{t-1}, p1)                 # draw 0
                + B(n_{t-1} - x_{t-1} - pin0_{t-1}, p0)       # draw 1
    free_ones  += B(n_t - n_{t-1}, arrival_bias)              # draw 2 (growth)
    free_ones  -= Hypergeom(free_ones, free - free_ones,
                            n_{t-1} - n_t)                    # draw 3 (shrink)
    x_t         = pin1_t + free_ones

With the null scenario this collapses to the clean kernel term for term.

Scenarios are addressed by spec strings — ``NAME`` or ``NAME:k=v,...``,
composed with ``+`` (``churn:period=8+lossy:rate=0.2+flip-source:at=50``).
The registry (:func:`register_scenario`, :func:`available_scenarios`,
:func:`make_scenario`) mirrors the protocol registry; ``repro scenarios
list`` prints it with parameter schemas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np
from scipy import special

from repro.dynamics.batched import binomial_icdf, counter_uniforms
from repro.telemetry import NULL_RECORDER, Recorder, current_span

__all__ = [
    "Scenario",
    "ComposedScenario",
    "ScenarioParam",
    "ScenarioFamily",
    "register_scenario",
    "get_scenario_family",
    "available_scenarios",
    "make_scenario",
    "as_scenario",
    "scenario_step_counts",
    "scenario_step_count",
    "scenario_step_generator",
    "scenario_target",
    "hypergeometric_icdf",
]


# ----------------------------------------------------------------------
# The Scenario protocol (base class doubles as the null scenario)
# ----------------------------------------------------------------------


class Scenario:
    """A deterministic schedule of hostile-world perturbations.

    The base class *is* the null scenario: a static, truthful world whose
    step is bit-identical to the clean engines.  Subclasses override the
    hooks they perturb and declare what they touch via ``affects_source``
    (pinned counts / true opinion) and ``affects_population`` (churn), so
    :class:`ComposedScenario` can reject ambiguous compositions.

    All hooks are pure functions of ``t`` (and the base opinion ``z``) —
    scenarios carry **no mutable state**, which is what makes checkpoint
    resume trivially correct: the round index alone reconstructs the
    world.
    """

    name = "null"
    affects_source = False
    affects_population = False

    def __init__(self, n: int):
        if n < 2:
            raise ValueError(f"population must be at least 2, got {n}")
        self.n = int(n)

    # -- identity ------------------------------------------------------

    def params(self) -> Dict[str, object]:
        """The constructor parameters, for canonical spec strings."""
        return {}

    def spec(self) -> str:
        """Canonical spec string (folds into checkpoint signatures)."""
        params = self.params()
        if not params:
            return self.name
        body = ",".join(
            f"{key}={_format_param(params[key])}" for key in sorted(params)
        )
        return f"{self.name}:{body}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.spec()!r}, n={self.n})"

    # -- world schedule ------------------------------------------------

    def population(self, t: int) -> int:
        """Total agent count during round ``t`` (``population(0) == n``)."""
        return self.n

    def pinned(self, t: int, z: int) -> Tuple[int, int]:
        """``(ones, zeros)`` pinned displays during round ``t``.

        The default is the paper's truthful source: one agent pinned to
        display ``z``.  The pinned **total** must be constant over time
        (pinned agents do not churn).
        """
        return (z, 1 - z)

    def true_opinion(self, t: int, z: int) -> int:
        """The correct opinion at round ``t`` (the convergence target)."""
        return z

    def arrival_bias(self, t: int) -> float:
        """P(a churn arrival displays one) — only used under growth."""
        return 0.5

    def transform_responses(self, protocol, t: int, p, p0, p1):
        """Perturb the protocol's response probabilities for round ``t``."""
        return p0, p1

    # -- convergence & observability -----------------------------------

    def settle_round(self, max_rounds: int) -> int:
        """First round at which convergence may be declared.

        Replicas never retire before this round; ``recovery = tau -
        settle_round`` is the recovery-time statistic.  The null value 0
        reproduces plain rounds-to-consensus.
        """
        return 0

    def events(self, max_rounds: int) -> List[Tuple[int, str]]:
        """Scheduled world events ``(t, kind)`` for trace tagging."""
        return []


def _format_param(value) -> str:
    if isinstance(value, float):
        return format(value, "g")
    return str(value)


def scenario_target(scenario: Scenario, t: int, z: int) -> int:
    """The converged displayed-one count at round ``t``.

    Converged means every *free* agent displays the current true opinion;
    pinned ones are counted as displayed.  For the null scenario this is
    the familiar ``n * z``.
    """
    pin1, pin0 = scenario.pinned(t, z)
    n_t = scenario.population(t)
    z_t = scenario.true_opinion(t, z)
    return pin1 + (n_t - pin1 - pin0) * z_t


# ----------------------------------------------------------------------
# Built-in scenarios
# ----------------------------------------------------------------------


class ChurnScenario(Scenario):
    """Square-wave agent churn: ``amplitude`` extra agents every cycle.

    Phase ``t % period`` spends the first half of the cycle at the base
    population and the second half at ``n + amplitude``; the boundary
    crossings are the arrival/departure batches.  Arrivals display one
    with probability ``bias``; departures remove uniformly random free
    agents (pinned agents never churn).
    """

    name = "churn"
    affects_population = True

    def __init__(
        self,
        n: int,
        period: int = 16,
        amplitude: Optional[int] = None,
        bias: float = 0.5,
    ):
        super().__init__(n)
        if amplitude is None:
            amplitude = max(1, n // 8)
        period, amplitude, bias = int(period), int(amplitude), float(bias)
        if period < 2:
            raise ValueError(f"churn period must be at least 2, got {period}")
        if amplitude < 0:
            raise ValueError(f"churn amplitude must be >= 0, got {amplitude}")
        if not 0.0 <= bias <= 1.0:
            raise ValueError(f"churn bias must lie in [0, 1], got {bias}")
        self.period = period
        self.amplitude = amplitude
        self.bias = bias

    def params(self) -> Dict[str, object]:
        return {"period": self.period, "amplitude": self.amplitude, "bias": self.bias}

    def population(self, t: int) -> int:
        if t <= 0:
            return self.n
        high_phase = (t % self.period) >= (self.period + 1) // 2
        return self.n + self.amplitude if high_phase else self.n

    def arrival_bias(self, t: int) -> float:
        return self.bias

    def events(self, max_rounds: int) -> List[Tuple[int, str]]:
        out: List[Tuple[int, str]] = []
        for t in range(1, max_rounds + 1):
            before, after = self.population(t - 1), self.population(t)
            if after > before:
                out.append((t, "churn_up"))
            elif after < before:
                out.append((t, "churn_down"))
        return out


class LossyScenario(Scenario):
    """Per-sample message loss: each sample is dropped w.p. ``rate``.

    A memory-less agent whose sample is lost keeps its displayed opinion,
    so ``p1 -> rate + (1 - rate) * p1`` and ``p0 -> (1 - rate) * p0``.
    Consensus stays absorbing (loss can only slow convergence down).
    """

    name = "lossy"

    def __init__(self, n: int, rate: float = 0.1):
        super().__init__(n)
        rate = float(rate)
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"loss rate must lie in [0, 1), got {rate}")
        self.rate = rate

    def params(self) -> Dict[str, object]:
        return {"rate": self.rate}

    def transform_responses(self, protocol, t, p, p0, p1):
        return (1.0 - self.rate) * p0, self.rate + (1.0 - self.rate) * p1


class CorruptScenario(Scenario):
    """Per-sample bit-flip corruption at rate ``delta``.

    Each sampled opinion arrives flipped with probability ``delta``, so
    responses are re-evaluated at the distorted fraction ``p(1 - delta) +
    (1 - p)delta`` — exactly the model in :mod:`repro.dynamics.noise`
    (which is now a thin wrapper over this scenario).  Consensus is *not*
    absorbing under corruption; convergence keeps first-hit semantics.
    """

    name = "corrupt"

    def __init__(self, n: int, delta: float = 0.05):
        super().__init__(n)
        delta = float(delta)
        if not 0.0 <= delta <= 0.5:
            raise ValueError(f"corruption delta must lie in [0, 0.5], got {delta}")
        self.delta = delta

    def params(self) -> Dict[str, object]:
        return {"delta": self.delta}

    def transform_responses(self, protocol, t, p, p0, p1):
        # Same expression as noise.distorted_fraction, kept bit-identical
        # so the legacy step is exactly reproducible through this hook.
        distorted = p * (1.0 - self.delta) + (1.0 - p) * self.delta
        return protocol.response_probabilities(distorted)


class LyingSourceScenario(Scenario):
    """A source that displays ``1 - z`` during scheduled lie windows.

    Lies start at round ``start`` and last ``duration`` rounds; with
    ``period > 0`` the window repeats every ``period`` rounds.  The true
    opinion never changes — convergence is gated on ``settle_round``,
    the round after the last lie within the budget, so the recovery-time
    statistic measures healing after the final lie.
    """

    name = "lying-source"
    affects_source = True

    def __init__(self, n: int, start: int = 8, duration: int = 8, period: int = 0):
        super().__init__(n)
        start, duration, period = int(start), int(duration), int(period)
        if start < 1:
            raise ValueError(f"lie start must be >= 1, got {start}")
        if duration < 1:
            raise ValueError(f"lie duration must be >= 1, got {duration}")
        if period and period <= duration:
            raise ValueError(
                f"lie period must exceed the duration, got period={period} "
                f"<= duration={duration}"
            )
        self.start = start
        self.duration = duration
        self.period = period

    def params(self) -> Dict[str, object]:
        return {"start": self.start, "duration": self.duration, "period": self.period}

    def _lying(self, t: int) -> bool:
        if t < self.start:
            return False
        if self.period:
            return (t - self.start) % self.period < self.duration
        return t < self.start + self.duration

    def pinned(self, t: int, z: int) -> Tuple[int, int]:
        if self._lying(t):
            return (1 - z, z)
        return (z, 1 - z)

    def settle_round(self, max_rounds: int) -> int:
        if max_rounds < self.start:
            return 0
        if self.period:
            cycles = (max_rounds - self.start) // self.period
            offset = (max_rounds - self.start) % self.period
            if offset < self.duration:
                last = max_rounds
            else:
                last = self.start + cycles * self.period + self.duration - 1
        else:
            last = min(self.start + self.duration - 1, max_rounds)
        return last + 1

    def events(self, max_rounds: int) -> List[Tuple[int, str]]:
        out: List[Tuple[int, str]] = []
        for t in range(1, max_rounds + 1):
            lying, lied = self._lying(t), self._lying(t - 1)
            if lying and not lied:
                out.append((t, "lie_start"))
            elif lied and not lying:
                out.append((t, "lie_end"))
        return out


class FlipSourceScenario(Scenario):
    """The world changes its mind: ``z`` flips permanently at round ``at``.

    The source stays truthful throughout — it displays the *new* correct
    opinion from round ``at`` on — so the convergence target flips with
    it.  ``settle_round`` is the flip round: rounds-to-consensus measures
    time to the new truth, recovery time measures it from the flip.
    """

    name = "flip-source"
    affects_source = True

    def __init__(self, n: int, at: int = 16):
        super().__init__(n)
        at = int(at)
        if at < 1:
            raise ValueError(f"flip round must be >= 1, got {at}")
        self.at = at

    def params(self) -> Dict[str, object]:
        return {"at": self.at}

    def true_opinion(self, t: int, z: int) -> int:
        return z if t < self.at else 1 - z

    def pinned(self, t: int, z: int) -> Tuple[int, int]:
        z_t = self.true_opinion(t, z)
        return (z_t, 1 - z_t)

    def settle_round(self, max_rounds: int) -> int:
        return self.at if self.at <= max_rounds else 0

    def events(self, max_rounds: int) -> List[Tuple[int, str]]:
        return [(self.at, "source_flip")] if self.at <= max_rounds else []


class DriftScenario(Scenario):
    """Scheduled mixed-protocol drift: agents switch rule at ``switch``.

    From round ``switch`` on, responses come from the registered protocol
    family ``alt`` (resolved at the base population size), modelling a
    population whose behavioural program is updated mid-run.
    """

    name = "drift"

    def __init__(self, n: int, alt: str = "voter", switch: int = 32):
        super().__init__(n)
        switch = int(switch)
        if switch < 1:
            raise ValueError(f"drift switch round must be >= 1, got {switch}")
        from repro.protocols.registry import get_family

        self.alt = str(alt)
        self.switch = switch
        self.alt_protocol = get_family(self.alt).at(n)

    def params(self) -> Dict[str, object]:
        return {"alt": self.alt, "switch": self.switch}

    def transform_responses(self, protocol, t, p, p0, p1):
        if t < self.switch:
            return p0, p1
        return self.alt_protocol.response_probabilities(p)

    def events(self, max_rounds: int) -> List[Tuple[int, str]]:
        return [(self.switch, "protocol_drift")] if self.switch <= max_rounds else []


class ZealotsScenario(Scenario):
    """``s1`` agents pinned to display one and ``s0`` pinned to zero.

    Generalizes the single truthful source: there is no distinguished
    source at all, just immovable blocs.  :mod:`repro.dynamics.zealots`
    is now a thin wrapper over this scenario.  With zealots on both
    sides, full consensus is unreachable and runs simply censor.
    """

    name = "zealots"
    affects_source = True

    def __init__(self, n: int, s1: int = 1, s0: int = 0):
        super().__init__(n)
        s1, s0 = int(s1), int(s0)
        if s1 < 0 or s0 < 0:
            raise ValueError(f"zealot counts must be >= 0, got s1={s1}, s0={s0}")
        if s1 + s0 >= n:
            raise ValueError(
                f"zealots must leave at least one free agent: "
                f"s1={s1} + s0={s0} >= n={n}"
            )
        self.s1 = s1
        self.s0 = s0

    def params(self) -> Dict[str, object]:
        return {"s1": self.s1, "s0": self.s0}

    def pinned(self, t: int, z: int) -> Tuple[int, int]:
        return (self.s1, self.s0)


class ComposedScenario(Scenario):
    """Several scenarios applied to the same run.

    Composition semantics (docs/SCENARIOS.md): response transforms chain
    in listed order; at most one part may affect the source (pinned
    counts / true opinion) and at most one may affect the population, so
    the world stays well-defined; ``settle_round`` is the maximum over
    parts; events merge.
    """

    def __init__(self, parts: Sequence[Scenario]):
        parts = tuple(parts)
        if not parts:
            raise ValueError("a composed scenario needs at least one part")
        sizes = {part.n for part in parts}
        if len(sizes) != 1:
            raise ValueError(
                f"composed scenarios must share one base population, got {sorted(sizes)}"
            )
        super().__init__(parts[0].n)
        source_parts = [part for part in parts if part.affects_source]
        churn_parts = [part for part in parts if part.affects_population]
        if len(source_parts) > 1:
            raise ValueError(
                "at most one source-affecting scenario per composition, got "
                + " + ".join(part.name for part in source_parts)
            )
        if len(churn_parts) > 1:
            raise ValueError(
                "at most one population-affecting scenario per composition, got "
                + " + ".join(part.name for part in churn_parts)
            )
        self.parts = parts
        self._source = source_parts[0] if source_parts else None
        self._churn = churn_parts[0] if churn_parts else None

    @property
    def name(self) -> str:  # type: ignore[override]
        return "+".join(part.name for part in self.parts)

    @property
    def affects_source(self) -> bool:  # type: ignore[override]
        return self._source is not None

    @property
    def affects_population(self) -> bool:  # type: ignore[override]
        return self._churn is not None

    def spec(self) -> str:
        return "+".join(part.spec() for part in self.parts)

    def population(self, t: int) -> int:
        return self._churn.population(t) if self._churn else self.n

    def pinned(self, t: int, z: int) -> Tuple[int, int]:
        if self._source is not None:
            return self._source.pinned(t, z)
        return super().pinned(t, z)

    def true_opinion(self, t: int, z: int) -> int:
        if self._source is not None:
            return self._source.true_opinion(t, z)
        return z

    def arrival_bias(self, t: int) -> float:
        if self._churn is not None:
            return self._churn.arrival_bias(t)
        return super().arrival_bias(t)

    def transform_responses(self, protocol, t, p, p0, p1):
        for part in self.parts:
            p0, p1 = part.transform_responses(protocol, t, p, p0, p1)
        return p0, p1

    def settle_round(self, max_rounds: int) -> int:
        return max(part.settle_round(max_rounds) for part in self.parts)

    def events(self, max_rounds: int) -> List[Tuple[int, str]]:
        merged: List[Tuple[int, str]] = []
        for part in self.parts:
            merged.extend(part.events(max_rounds))
        return sorted(merged)


# ----------------------------------------------------------------------
# Registry & spec parsing (mirrors repro.protocols.registry)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ScenarioParam:
    """One spec parameter: ``kind`` is ``"int"``, ``"float"`` or ``"str"``."""

    name: str
    kind: str
    default: object
    doc: str


@dataclass(frozen=True)
class ScenarioFamily:
    """A registered scenario: factory ``(n, **params) -> Scenario``."""

    name: str
    summary: str
    params: Tuple[ScenarioParam, ...]
    factory: Callable[..., Scenario]


_REGISTRY: Dict[str, ScenarioFamily] = {}

_COERCE = {"int": int, "float": float, "str": str}


def register_scenario(family: ScenarioFamily) -> None:
    """Register a scenario family under its name (overwrites silently)."""
    _REGISTRY[family.name] = family


def get_scenario_family(name: str) -> ScenarioFamily:
    """Look up a registered scenario family by name."""
    if name not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown scenario {name!r}; known scenarios: {known}")
    return _REGISTRY[name]


def available_scenarios() -> List[str]:
    return sorted(_REGISTRY)


def _parse_params(family: ScenarioFamily, body: str) -> Dict[str, object]:
    schema = {param.name: param for param in family.params}
    parsed: Dict[str, object] = {}
    for item in body.split(","):
        item = item.strip()
        if not item:
            continue
        key, sep, raw = item.partition("=")
        key = key.strip()
        if not sep:
            raise ValueError(
                f"malformed scenario parameter {item!r} for {family.name!r} "
                f"(expected key=value)"
            )
        if key not in schema:
            known = ", ".join(sorted(schema)) or "(none)"
            raise ValueError(
                f"unknown parameter {key!r} for scenario {family.name!r}; "
                f"known parameters: {known}"
            )
        try:
            parsed[key] = _COERCE[schema[key].kind](raw.strip())
        except ValueError as error:
            raise ValueError(
                f"bad value {raw.strip()!r} for {family.name}:{key} "
                f"(expected {schema[key].kind})"
            ) from error
    return parsed


def make_scenario(spec: Union[str, Scenario], n: int) -> Scenario:
    """Build a scenario from a spec string at base population ``n``.

    Specs are ``NAME`` or ``NAME:k=v,...``, composed with ``+``::

        make_scenario("churn:period=8+lossy:rate=0.2+flip-source:at=50", 256)

    A :class:`Scenario` instance passes through unchanged.
    """
    if isinstance(spec, Scenario):
        return spec
    pieces = [piece.strip() for piece in str(spec).split("+")]
    pieces = [piece for piece in pieces if piece]
    if not pieces:
        raise ValueError(f"empty scenario spec {spec!r}")
    parts = []
    for piece in pieces:
        name, sep, body = piece.partition(":")
        family = get_scenario_family(name.strip())
        params = _parse_params(family, body) if sep else {}
        parts.append(family.factory(n, **params))
    if len(parts) == 1:
        return parts[0]
    return ComposedScenario(parts)


def as_scenario(scenario, n: int) -> Optional[Scenario]:
    """Normalize ``None`` / spec string / ``ScenarioConfig`` / ``Scenario``."""
    if scenario is None:
        return None
    if isinstance(scenario, Scenario):
        return scenario
    if isinstance(scenario, str):
        return make_scenario(scenario, n)
    spec = getattr(scenario, "spec", None)  # duck-typed ScenarioConfig
    if isinstance(spec, str):
        return make_scenario(spec, n)
    raise TypeError(f"cannot interpret {scenario!r} as a scenario")


def _register_builtins() -> None:
    register_scenario(ScenarioFamily(
        "null", "truthful static world — bit-identical to no scenario", (),
        lambda n: Scenario(n),
    ))
    register_scenario(ScenarioFamily(
        "churn",
        "square-wave arrivals/departures of free agents",
        (
            ScenarioParam("period", "int", 16, "cycle length in rounds"),
            ScenarioParam("amplitude", "int", None,
                          "extra agents at the high phase (default: max(1, n // 8))"),
            ScenarioParam("bias", "float", 0.5, "P(an arrival displays one)"),
        ),
        lambda n, **kw: ChurnScenario(n, **kw),
    ))
    register_scenario(ScenarioFamily(
        "lossy",
        "each sample lost w.p. rate; losers keep their displayed opinion",
        (ScenarioParam("rate", "float", 0.1, "per-sample loss probability"),),
        lambda n, **kw: LossyScenario(n, **kw),
    ))
    register_scenario(ScenarioFamily(
        "corrupt",
        "each sample bit-flipped w.p. delta (the noise.py model)",
        (ScenarioParam("delta", "float", 0.05, "per-sample flip probability"),),
        lambda n, **kw: CorruptScenario(n, **kw),
    ))
    register_scenario(ScenarioFamily(
        "lying-source",
        "source displays 1 - z during scheduled lie windows",
        (
            ScenarioParam("start", "int", 8, "first lying round (>= 1)"),
            ScenarioParam("duration", "int", 8, "lie window length in rounds"),
            ScenarioParam("period", "int", 0,
                          "repeat window every period rounds (0 = lie once)"),
        ),
        lambda n, **kw: LyingSourceScenario(n, **kw),
    ))
    register_scenario(ScenarioFamily(
        "flip-source",
        "the true opinion z flips permanently at a scheduled round",
        (ScenarioParam("at", "int", 16, "flip round (>= 1)"),),
        lambda n, **kw: FlipSourceScenario(n, **kw),
    ))
    register_scenario(ScenarioFamily(
        "drift",
        "agents switch to a different registered protocol mid-run",
        (
            ScenarioParam("alt", "str", "voter", "registered protocol family name"),
            ScenarioParam("switch", "int", 32, "round the switch happens"),
        ),
        lambda n, **kw: DriftScenario(n, **kw),
    ))
    register_scenario(ScenarioFamily(
        "zealots",
        "s1/s0 agents pinned to one/zero (the zealots.py model)",
        (
            ScenarioParam("s1", "int", 1, "agents pinned to display one"),
            ScenarioParam("s0", "int", 0, "agents pinned to display zero"),
        ),
        lambda n, **kw: ZealotsScenario(n, **kw),
    ))


# ----------------------------------------------------------------------
# Exact hypergeometric inverse CDF (churn departures, draw index 3)
# ----------------------------------------------------------------------


def _log_choose(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return special.gammaln(a + 1.0) - special.gammaln(b + 1.0) - special.gammaln(
        a - b + 1.0
    )


def hypergeometric_icdf(
    u: np.ndarray, ngood: np.ndarray, nbad: np.ndarray, draws: np.ndarray
) -> np.ndarray:
    """Elementwise exact ``min{k : P(H <= k) >= u}`` for a hypergeometric.

    ``H ~ Hypergeometric(ngood, nbad, draws)`` — ``draws`` samples without
    replacement from ``ngood`` successes and ``nbad`` failures.  Like
    :func:`repro.dynamics.batched.binomial_icdf`, every output element is
    a pure function of its own ``(u, ngood, nbad, draws)``, so batch
    membership cannot perturb a replica's stream.  The support is walked
    with the pmf recurrence from its lower edge; churn keeps ``draws``
    small, so the walk is O(draws) per round.
    """
    u = np.asarray(u, dtype=np.float64)
    ngood = np.asarray(ngood, dtype=np.int64)
    nbad = np.asarray(nbad, dtype=np.int64)
    draws = np.asarray(draws, dtype=np.int64)
    u, ngood, nbad, draws = np.broadcast_arrays(u, ngood, nbad, draws)
    shape = u.shape
    u, ngood, nbad, draws = (
        np.atleast_1d(u).ravel(),
        np.atleast_1d(ngood).ravel(),
        np.atleast_1d(nbad).ravel(),
        np.atleast_1d(draws).ravel(),
    )
    if np.any(draws < 0) or np.any(ngood < 0) or np.any(nbad < 0):
        raise ValueError("hypergeometric parameters must be non-negative")
    if np.any(draws > ngood + nbad):
        raise ValueError("cannot draw more agents than the population holds")

    k_low = np.maximum(0, draws - nbad)
    k_high = np.minimum(draws, ngood)
    k = k_low.astype(np.int64).copy()
    with np.errstate(divide="ignore", invalid="ignore"):
        log_pmf = (
            _log_choose(ngood.astype(np.float64), k.astype(np.float64))
            + _log_choose(nbad.astype(np.float64), (draws - k).astype(np.float64))
            - _log_choose((ngood + nbad).astype(np.float64), draws.astype(np.float64))
        )
    pmf = np.exp(log_pmf)
    cdf = pmf.copy()
    unresolved = np.flatnonzero(~((cdf >= u) | (k >= k_high)))
    while unresolved.size:
        ki = k[unresolved].astype(np.float64)
        numer = (ngood[unresolved] - ki) * (draws[unresolved] - ki)
        denom = (ki + 1.0) * (nbad[unresolved] - draws[unresolved] + ki + 1.0)
        pmf[unresolved] *= numer / denom
        k[unresolved] += 1
        cdf[unresolved] += pmf[unresolved]
        still = ~((cdf[unresolved] >= u[unresolved]) | (k[unresolved] >= k_high[unresolved]))
        unresolved = unresolved[still]
    return k.reshape(shape)


# ----------------------------------------------------------------------
# The scenario step kernels
# ----------------------------------------------------------------------


def _scenario_step(
    protocol,
    scenario: Scenario,
    z: int,
    counts: np.ndarray,
    keys: np.ndarray,
    t: int,
    use_numba: bool = False,
) -> np.ndarray:
    """One keyed hostile-world round for a batch of replica counts.

    Draw indices 0/1 are the protocol step (identical to
    :func:`repro.dynamics.batched._step_keyed` — the null scenario is
    bit-identical by construction); 2 is churn arrivals, 3 departures.
    """
    n_prev = scenario.population(t - 1)
    n_next = scenario.population(t)
    pin1_prev, pin0_prev = scenario.pinned(t - 1, z)
    pin1_next, pin0_next = scenario.pinned(t, z)
    pins_prev = pin1_prev + pin0_prev
    if pins_prev != pin1_next + pin0_next:
        raise ValueError(
            f"pinned totals must be constant over time, got {pins_prev} at "
            f"round {t - 1} vs {pin1_next + pin0_next} at round {t}"
        )

    p = counts / n_prev
    p0, p1 = protocol.response_probabilities(p)
    p0, p1 = scenario.transform_responses(protocol, t, p, p0, p1)
    m1 = counts - pin1_prev
    m0 = n_prev - counts - pin0_prev
    ones_kept = binomial_icdf(counter_uniforms(keys, t, 0, use_numba), m1, np.asarray(p1))
    zeros_flipped = binomial_icdf(counter_uniforms(keys, t, 1, use_numba), m0, np.asarray(p0))
    free_ones = ones_kept + zeros_flipped

    delta = n_next - n_prev
    if delta > 0:
        arrivals = binomial_icdf(
            counter_uniforms(keys, t, 2, use_numba),
            np.full(counts.shape, delta, dtype=np.int64),
            np.asarray(scenario.arrival_bias(t)),
        )
        free_ones = free_ones + arrivals
    elif delta < 0:
        free = n_prev - pins_prev
        if -delta > free:
            raise ValueError(
                f"churn removes {-delta} agents at round {t} but only "
                f"{free} free agents exist"
            )
        departed_ones = hypergeometric_icdf(
            counter_uniforms(keys, t, 3, use_numba),
            free_ones,
            free - free_ones,
            -delta,
        )
        free_ones = free_ones - departed_ones
    return pin1_next + free_ones


def _validate_scenario_counts(
    scenario: Scenario, counts: np.ndarray, t: int, z: int
) -> None:
    n_prev = scenario.population(t - 1)
    pin1, pin0 = scenario.pinned(t - 1, z)
    low, high = pin1, n_prev - pin0
    bad = (counts < low) | (counts > high)
    if np.any(bad):
        value = int(np.asarray(counts)[bad][0]) if np.ndim(counts) else int(counts)
        raise ValueError(
            f"count {value} outside the admissible range [{low}, {high}] "
            f"at round {t - 1} of scenario {scenario.spec()!r}"
        )


def scenario_step_counts(
    protocol,
    scenario: Scenario,
    z: int,
    counts: np.ndarray,
    keys: np.ndarray,
    t: int,
    recorder: Recorder = NULL_RECORDER,
    use_numba: bool = False,
) -> np.ndarray:
    """Advance a batch of replicas one hostile-world round (batched engine)."""
    counts = np.asarray(counts, dtype=np.int64)
    _validate_scenario_counts(scenario, counts, t, z)
    result = _scenario_step(protocol, scenario, z, counts, keys, t, use_numba)
    if recorder.enabled:
        timing = current_span(recorder)
        timing.incr("batch_steps")
        timing.incr("replica_steps", int(counts.size))
    return result


def scenario_step_count(
    protocol,
    scenario: Scenario,
    z: int,
    x: int,
    key: np.uint64,
    t: int,
    recorder: Recorder = NULL_RECORDER,
) -> int:
    """Advance one replica one hostile-world round (loop engine).

    Routes a one-element batch through the same kernel as
    :func:`scenario_step_counts`, so loop-vs-batched bit-identity holds
    by construction for every scenario.
    """
    counts = np.asarray([x], dtype=np.int64)
    _validate_scenario_counts(scenario, counts, t, z)
    keys = np.asarray([key], dtype=np.uint64)
    result = _scenario_step(protocol, scenario, z, counts, keys, t)
    if recorder.enabled:
        current_span(recorder).incr("steps")
    return int(result[0])


def scenario_step_generator(
    protocol,
    scenario: Scenario,
    x: int,
    t: int,
    z: int,
    rng: np.random.Generator,
) -> int:
    """One hostile-world round on a shared ``Generator`` stream.

    The legacy scalar helpers (:func:`repro.dynamics.zealots.step_count_zealots`,
    :func:`repro.dynamics.noise.step_count_noisy`) are thin wrappers over
    this function.  It reproduces their generator consumption exactly —
    including the ``m > 0`` guards that skip a ``binomial`` call (and so
    leave the stream untouched) when a bucket is empty.
    """
    n_prev = scenario.population(t - 1)
    n_next = scenario.population(t)
    pin1_prev, pin0_prev = scenario.pinned(t - 1, z)
    pin1_next, _ = scenario.pinned(t, z)
    low, high = pin1_prev, n_prev - pin0_prev
    if not low <= x <= high:
        raise ValueError(
            f"count {x} outside the admissible range [{low}, {high}] "
            f"at round {t - 1} of scenario {scenario.spec()!r}"
        )
    p = x / n_prev
    p0, p1 = protocol.response_probabilities(p)
    p0, p1 = scenario.transform_responses(protocol, t, p, p0, p1)
    m1 = x - pin1_prev
    m0 = n_prev - x - pin0_prev
    ones_kept = int(rng.binomial(m1, p1)) if m1 > 0 else 0
    zeros_flipped = int(rng.binomial(m0, p0)) if m0 > 0 else 0
    free_ones = ones_kept + zeros_flipped

    delta = n_next - n_prev
    if delta > 0:
        free_ones += int(rng.binomial(delta, scenario.arrival_bias(t)))
    elif delta < 0:
        free = n_prev - pin1_prev - pin0_prev
        if -delta > free:
            raise ValueError(
                f"churn removes {-delta} agents at round {t} but only "
                f"{free} free agents exist"
            )
        free_ones -= int(rng.hypergeometric(free_ones, free - free_ones, -delta))
    return pin1_next + free_ones


_register_builtins()
