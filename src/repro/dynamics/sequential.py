"""The sequential setting: one uniformly chosen agent activates per step.

In the sequential setting ([14], Section 1) a single non-source agent,
chosen uniformly at random, is activated in each step; ``n`` activations
make one parallel round.  Because only one opinion can change per step, the
count ``X_t`` is a *birth-death* chain — the structural fact behind the
``Omega(n)`` sequential lower bound of [14], and the reason the parallel
setting (where the chain can jump) is exponentially faster.

The engine exploits the chain's laziness: at each state it samples the
holding time (geometric) and then the jump direction, so quiet stretches
near consensus cost O(1) instead of O(n) activations of work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.protocol import Protocol
from repro.dynamics.config import Configuration, validate_count
from repro.telemetry import NULL_RECORDER, Recorder, run_provenance, span

__all__ = [
    "sequential_transition_probabilities",
    "SequentialRunResult",
    "simulate_sequential",
]


def sequential_transition_probabilities(
    protocol: Protocol, n: int, z: int, x: int
) -> Tuple[float, float]:
    """One-activation birth/death probabilities ``(p_up, p_down)`` at count ``x``.

    The activated agent is uniform among the ``n - 1`` non-source agents; it
    holds opinion 1 with probability ``(x - z) / (n - 1)`` and flips with the
    marginal response probability at fraction ``p = x / n`` (samples are
    drawn from the whole population, source included).
    """
    validate_count(n, z, x)
    p0, p1 = protocol.response_probabilities(x / n)
    zeros = n - x - (1 - z)
    ones = x - z
    p_up = (zeros / (n - 1)) * p0
    p_down = (ones / (n - 1)) * (1.0 - p1)
    return p_up, p_down


@dataclass(frozen=True)
class SequentialRunResult:
    """Outcome of a sequential run.

    Attributes:
        config: the initial configuration.
        converged: whether the correct consensus was reached.
        activations: total activations until convergence (or the budget).
        parallel_rounds: ``activations / n`` — the paper's unit of time.
        frozen: True if the chain reached a non-consensus state from which
            neither an up- nor a down-move has positive probability (possible
            only for degenerate protocols; reported rather than looping).
    """

    config: Configuration
    converged: bool
    activations: int
    frozen: bool = False

    @property
    def parallel_rounds(self) -> float:
        return self.activations / self.config.n


def simulate_sequential(
    protocol: Protocol,
    config: Configuration,
    max_activations: int,
    rng: np.random.Generator,
    recorder: Recorder = NULL_RECORDER,
) -> SequentialRunResult:
    """Run the sequential chain until the correct consensus or the budget.

    Uses holding-time acceleration: at state ``x`` with total move
    probability ``q``, the number of activations spent before the next move
    is ``Geometric(q)``, after which the move is up with probability
    ``p_up / q``.  Exact in distribution and dramatically faster than
    activation-by-activation simulation when the chain is lazy (the typical
    regime: near consensus ``q = O(1/n)``).

    ``recorder`` observes one record per *move* (not per activation): ``t``
    is the activation clock after the move and ``holding`` the activations
    spent waiting for it (see docs/OBSERVABILITY.md).
    """
    if not protocol.satisfies_boundary_conditions(tolerance=1e-12):
        raise ValueError(
            f"protocol {protocol.name!r} violates Proposition 3; its "
            "convergence time is infinite"
        )
    recording = recorder.enabled
    if recording:
        recorder.run_started(
            run_provenance(
                "simulate_sequential", protocol, rng,
                n=config.n, z=config.z, x0=config.x0,
                max_activations=max_activations,
            )
        )
    n, z = config.n, config.z
    target = config.target_count
    x = config.x0
    activations = 0
    frozen = False
    with span(recorder, "sequential") as timing:
        moves = 0
        while activations < max_activations:
            if x == target:
                break
            p_up, p_down = sequential_transition_probabilities(protocol, n, z, x)
            total = p_up + p_down
            if total <= 0.0:
                frozen = True
                break
            holding = int(rng.geometric(total))
            activations += holding
            if activations > max_activations:
                activations = max_activations
                break
            x += 1 if rng.random() < p_up / total else -1
            moves += 1
            if recording:
                recorder.round_recorded(activations, x, {"holding": holding})
        if recording:
            timing.incr("moves", moves)
            timing.incr("activations", activations)
    converged = not frozen and x == target
    result = SequentialRunResult(
        config=config, converged=converged, activations=activations, frozen=frozen
    )
    if recording:
        recorder.run_finished(
            {
                "converged": converged,
                "activations": activations,
                "parallel_rounds": result.parallel_rounds,
                "frozen": frozen,
                "final_count": x,
            }
        )
    return result
