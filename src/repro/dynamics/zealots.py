"""Competing stubborn agents ("zealots") — the related-work setting.

Section 1.3 situates the paper inside the opinion-dynamics literature on
stubborn/biased agents [24-28], where multiple immovable individuals may
hold *conflicting* opinions.  The bit-dissemination problem is the
one-sided case (one source, no opposition); this module implements the
general one at the count level:

* ``s1`` zealots permanently display opinion 1 and ``s0`` permanently
  display opinion 0; everyone else runs the memory-less protocol;
* with opposition on both sides no consensus is absorbing — the chain is
  ergodic and the long-run behaviour is a stationary profile.

Classical results this makes reproducible (experiment E22): under the
Voter dynamics the expected stationary fraction of opinion 1 equals the
zealot share ``s1 / (s1 + s0)`` exactly ([25]-flavoured), and the
fluctuations shrink as the zealot pool grows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.protocol import Protocol

__all__ = ["ZealotPopulation", "step_count_zealots", "stationary_profile"]


@dataclass(frozen=True)
class ZealotPopulation:
    """A population with immovable minorities on both sides.

    Attributes:
        n: total population.
        s1: zealots pinned to opinion 1.
        s0: zealots pinned to opinion 0.
    """

    n: int
    s1: int
    s0: int

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ValueError(f"population size n must be >= 2, got {self.n}")
        if self.s1 < 0 or self.s0 < 0:
            raise ValueError("zealot counts must be non-negative")
        if self.s1 + self.s0 > self.n:
            raise ValueError(
                f"zealots ({self.s1} + {self.s0}) exceed the population {self.n}"
            )

    @property
    def free_agents(self) -> int:
        return self.n - self.s1 - self.s0

    def count_bounds(self) -> tuple:
        """Admissible range of the opinion-1 count (zealots included)."""
        return (self.s1, self.n - self.s0)


def _zealots_scenario(population: ZealotPopulation):
    """The registered ``zealots`` scenario equivalent of ``population``.

    ``None`` in the degenerate everyone-is-a-zealot case, where no agent
    ever updates (the scenario registry requires at least one free agent).
    """
    if population.free_agents == 0:
        return None
    from repro.dynamics.scenarios import ZealotsScenario

    return ZealotsScenario(population.n, s1=population.s1, s0=population.s0)


def step_count_zealots(
    protocol: Protocol,
    population: ZealotPopulation,
    x: int,
    rng: np.random.Generator,
) -> int:
    """One parallel round: free agents update, zealots never do.

    A thin wrapper over the registered ``zealots`` scenario
    (:mod:`repro.dynamics.scenarios`); the shared-``Generator`` stream it
    consumes is bit-identical to the pre-scenario implementation,
    including the skipped draws when either free bucket is empty.
    """
    low, high = population.count_bounds()
    if not low <= x <= high:
        raise ValueError(f"count x must lie in [{low}, {high}], got {x}")
    scenario = _zealots_scenario(population)
    if scenario is None:
        return x  # everyone is pinned; nothing draws, nothing moves
    from repro.dynamics.scenarios import scenario_step_generator

    return scenario_step_generator(protocol, scenario, x, 1, 1, rng)


def stationary_profile(
    protocol: Protocol,
    population: ZealotPopulation,
    rounds: int,
    rng: np.random.Generator,
    burn_in: int = 0,
    x0: int = None,
) -> np.ndarray:
    """Sample the long-run count trajectory (after burn-in).

    Returns the post-burn-in counts; the caller summarizes (mean fraction,
    spread, histograms).  Starts from the midpoint of the admissible range
    unless ``x0`` is given.
    """
    if rounds <= burn_in:
        raise ValueError(f"rounds ({rounds}) must exceed burn_in ({burn_in})")
    low, high = population.count_bounds()
    x = (low + high) // 2 if x0 is None else x0
    if not low <= x <= high:
        raise ValueError(f"count x must lie in [{low}, {high}], got {x}")
    # Scenario built once, stepped directly: same stream as calling
    # step_count_zealots round by round, without rebuilding the scenario.
    scenario = _zealots_scenario(population)
    from repro.dynamics.scenarios import scenario_step_generator

    trace = np.empty(rounds - burn_in, dtype=np.int64)
    for t in range(rounds):
        if scenario is not None:
            x = scenario_step_generator(protocol, scenario, x, 1, 1, rng)
        if t >= burn_in:
            trace[t - burn_in] = x
    return trace
