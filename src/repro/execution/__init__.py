"""Durable execution: checkpoint/resume, graceful shutdown, fault injection.

The three legs of the durability story (docs/OBSERVABILITY.md, "Durability
& fault model"):

* :mod:`repro.execution.checkpoint` — atomic write-tmp-then-rename
  checkpoints carrying progress, the NumPy bit-generator state, and a
  provenance signature; a resumed run is bit-identical to an
  uninterrupted one.
* :mod:`repro.execution.shutdown` — SIGINT/SIGTERM become safe-point
  stops: flush and fsync open trace writers, write a final checkpoint,
  exit with :data:`EXIT_INTERRUPTED`.  Also home of the CLI's per-failure-
  class exit codes.
* :mod:`repro.execution.faults` — the ``REPRO_FAULT`` crashpoint registry
  that kills the process at seeded points so the two invariants above are
  proven by tests (``scripts/fault_smoke.py``) rather than asserted.

A fourth leg, :mod:`repro.execution.supervisor`, runs ensembles sharded
over a supervised worker pool (per-shard timeouts, capped-backoff retries,
quarantine, degraded-mode statistics).  It is imported on demand — via
``import repro.execution.supervisor`` or the ``workers=`` argument of the
runners — rather than re-exported here, because it sits *above* the
dynamics runners in the import graph.
"""

from repro.execution.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    DEFAULT_CHECKPOINT_EVERY,
    CheckpointError,
    Checkpointer,
    CheckpointState,
    decode_times,
    encode_times,
    load_checkpoint,
    run_signature,
    save_checkpoint,
)
from repro.execution.faults import (
    FAULT_ENV_VAR,
    FaultSpec,
    armed,
    crashpoint,
    parse_fault_spec,
)
from repro.execution.shutdown import (
    EXIT_BENCH_TIMEOUT,
    EXIT_CODES,
    EXIT_ERROR,
    EXIT_FAULT_INJECTED,
    EXIT_INTERRUPTED,
    EXIT_INVALID_TRACE,
    EXIT_NOT_CONVERGED,
    EXIT_OK,
    EXIT_PERF_REGRESSION,
    EXIT_SHARDS_LOST,
    GracefulExit,
    ShutdownGuard,
)

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "DEFAULT_CHECKPOINT_EVERY",
    "CheckpointError",
    "CheckpointState",
    "Checkpointer",
    "run_signature",
    "save_checkpoint",
    "load_checkpoint",
    "encode_times",
    "decode_times",
    "FAULT_ENV_VAR",
    "FaultSpec",
    "parse_fault_spec",
    "armed",
    "crashpoint",
    "GracefulExit",
    "ShutdownGuard",
    "EXIT_OK",
    "EXIT_ERROR",
    "EXIT_NOT_CONVERGED",
    "EXIT_INVALID_TRACE",
    "EXIT_PERF_REGRESSION",
    "EXIT_INTERRUPTED",
    "EXIT_BENCH_TIMEOUT",
    "EXIT_SHARDS_LOST",
    "EXIT_FAULT_INJECTED",
    "EXIT_CODES",
]
