"""Deterministic retry backoff with seeded jitter.

Retries across the repository share one delay schedule: capped exponential
growth with a *deterministic* jitter derived from a caller-supplied key.
Plain capped-exponential synchronizes retry storms (every failed shard of a
run wakes at the same instant); random jitter desynchronizes them but makes
retry timing — and therefore supervision logs, heartbeat sequences, and
wall-clock-sensitive tests — irreproducible.  Hashing ``(key, attempt)``
gives both properties at once: shards (or service jobs) with different keys
spread out, while re-running the same seed replays the exact same schedule.

Callers build the key from whatever pins their identity and randomness:

- the supervisor uses ``"<rng state hash>:shard<k>"`` so the schedule is a
  function of (run seed, shard index) — reruns of a seed retry at the same
  offsets, different shards never thunder together;
- the service job queue uses ``"<job seed>:<job id>"`` for the same reason.

The jitter multiplies the raw exponential delay into ``[raw/2, raw)``, so
delays stay bounded by ``cap_s`` and never collapse to zero.
"""

from __future__ import annotations

import hashlib

__all__ = ["backoff_delay_s", "seeded_jitter"]


def seeded_jitter(key: str, attempt: int) -> float:
    """A reproducible fraction in ``[0, 1)`` derived from ``(key, attempt)``.

    The fraction is the top 64 bits of ``sha256(f"{key}:{attempt}")`` scaled
    to the unit interval — uniform enough to desynchronize retry schedules,
    and a pure function of its inputs so schedules replay exactly.

    >>> seeded_jitter("run:shard0", 1) == seeded_jitter("run:shard0", 1)
    True
    >>> seeded_jitter("run:shard0", 1) != seeded_jitter("run:shard1", 1)
    True
    """
    digest = hashlib.sha256(f"{key}:{int(attempt)}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


def backoff_delay_s(
    attempt: int, *, base_s: float, cap_s: float, key: str
) -> float:
    """Delay in seconds before retry number ``attempt`` (1-based).

    The raw schedule is ``min(cap_s, base_s * 2**(attempt - 1))``; the
    seeded jitter then maps it into ``[raw/2, raw)``.  Properties relied on
    by the supervisor and the service job queue:

    - **bounded**: never exceeds ``cap_s``;
    - **non-degenerate**: never below ``base_s / 2`` (no hot-loop retries);
    - **reproducible**: a pure function of ``(attempt, base_s, cap_s, key)``;
    - **desynchronized**: distinct keys jitter independently.

    >>> d = backoff_delay_s(3, base_s=0.1, cap_s=5.0, key="run:shard2")
    >>> 0.2 <= d < 0.4
    True
    >>> d == backoff_delay_s(3, base_s=0.1, cap_s=5.0, key="run:shard2")
    True
    """
    if attempt < 1:
        raise ValueError(f"attempt must be >= 1, got {attempt}")
    raw = min(float(cap_s), float(base_s) * (2.0 ** (attempt - 1)))
    return raw * (0.5 + 0.5 * seeded_jitter(key, attempt))
