"""Atomic checkpoint/resume for long-running simulations.

A checkpoint is a single JSON document capturing everything a runner needs
to continue *bit-identically*: the last completed round, the runner-specific
progress payload (counts, completed replica times, active mask, ...), the
NumPy bit-generator state, and a provenance signature binding the file to
the exact run inputs (protocol fingerprint + parameters + generator type).
Restoring the bit-generator state is what makes resume determinism a
testable property rather than an aspiration — the resumed process replays
the very random stream the killed one would have drawn.

Writes are atomic: the document is written to ``<path>.tmp``, flushed and
fsynced, then renamed over ``path`` (``os.replace``), so a reader never
observes a half-written checkpoint — a crash mid-write leaves the previous
checkpoint intact.  Both sides of the rename carry crashpoints
(``checkpoint:after_tmp_write``, ``checkpoint:after_rename``) so that
exactly this window is exercised by the fault-injection suite.

File format and resume walkthrough: docs/OBSERVABILITY.md, "Durability &
fault model".
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Union

import numpy as np

from repro.execution import faults
from repro.telemetry.recorder import protocol_fingerprint

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "DEFAULT_CHECKPOINT_EVERY",
    "CheckpointError",
    "CheckpointState",
    "Checkpointer",
    "run_signature",
    "save_checkpoint",
    "load_checkpoint",
    "encode_times",
    "decode_times",
]

CHECKPOINT_SCHEMA_VERSION = 1

DEFAULT_CHECKPOINT_EVERY = 1000
"""Default cadence (in completed rounds) between checkpoint writes."""


class CheckpointError(ValueError):
    """A checkpoint file is missing, malformed, or belongs to another run."""


def run_signature(runner: str, protocol, rng, **params) -> str:
    """Provenance hash binding a checkpoint to one exact run.

    Covers the runner name, the protocol's content fingerprint (tables, not
    name), every scalar parameter that shapes the trajectory, and the
    bit-generator *type* (its state is stored separately and changes every
    draw, so it must not enter the signature).  Two calls agree iff a
    checkpoint from one is a valid resume point for the other.
    """
    payload = json.dumps(
        {
            "runner": runner,
            "protocol": protocol_fingerprint(protocol),
            "bit_generator": type(rng.bit_generator).__name__,
            "params": {key: params[key] for key in sorted(params)},
        },
        sort_keys=True,
        default=str,
    )
    return "sha256:" + hashlib.sha256(payload.encode()).hexdigest()[:16]


# ----------------------------------------------------------------------
# JSON-safe encoding of numpy state
# ----------------------------------------------------------------------


def _encode(value: Any) -> Any:
    """Recursively encode numpy scalars/arrays into JSON-safe structures."""
    if isinstance(value, np.ndarray):
        return {"__ndarray__": value.tolist(), "dtype": str(value.dtype)}
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, dict):
        return {key: _encode(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode(item) for item in value]
    return value


def _decode(value: Any) -> Any:
    if isinstance(value, dict):
        if "__ndarray__" in value:
            return np.asarray(value["__ndarray__"], dtype=value.get("dtype"))
        return {key: _decode(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_decode(item) for item in value]
    return value


def encode_times(times: np.ndarray) -> list:
    """Encode a float time array for JSON, mapping censored ``nan`` to None."""
    return [None if np.isnan(value) else float(value) for value in np.asarray(times)]


def decode_times(values) -> np.ndarray:
    """Inverse of :func:`encode_times`."""
    return np.asarray(
        [np.nan if value is None else float(value) for value in values], dtype=float
    )


# ----------------------------------------------------------------------
# Checkpoint documents
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CheckpointState:
    """One checkpoint document (see docs/OBSERVABILITY.md for the format).

    Attributes:
        runner: producing entry point (``"simulate"``, ``"simulate_ensemble"``).
        round: the last fully completed round.
        rng_state: the bit generator's ``.state`` at that boundary.
        payload: runner-specific progress (JSON-safe; arrays encoded).
        signature: :func:`run_signature` of the producing run — resume
            refuses a checkpoint whose signature does not match.
        complete: True when the run finished; resuming a complete
            checkpoint replays the stored result without re-simulating.
        meta: free-form caller context (the CLI stores the argv-level
            inputs here so ``repro resume`` can rebuild the run).
    """

    runner: str
    round: int
    rng_state: Dict[str, Any]
    payload: Dict[str, Any]
    signature: str
    complete: bool = False
    meta: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(
            {
                "schema": CHECKPOINT_SCHEMA_VERSION,
                "runner": self.runner,
                "round": int(self.round),
                "rng_state": _encode(self.rng_state),
                "payload": _encode(self.payload),
                "signature": self.signature,
                "complete": bool(self.complete),
                "meta": _encode(self.meta),
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str, source: str = "checkpoint") -> "CheckpointState":
        try:
            document = json.loads(text)
        except json.JSONDecodeError as error:
            raise CheckpointError(f"{source} is not valid JSON: {error}") from error
        if not isinstance(document, dict):
            raise CheckpointError(f"{source} must be a JSON object")
        if document.get("schema") != CHECKPOINT_SCHEMA_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint schema {document.get('schema')!r} in "
                f"{source} (expected {CHECKPOINT_SCHEMA_VERSION})"
            )
        for key in ("runner", "round", "rng_state", "payload", "signature"):
            if key not in document:
                raise CheckpointError(f"{source} is missing {key!r}")
        return cls(
            runner=document["runner"],
            round=int(document["round"]),
            rng_state=_decode(document["rng_state"]),
            payload=_decode(document["payload"]),
            signature=document["signature"],
            complete=bool(document.get("complete", False)),
            meta=_decode(document.get("meta", {})),
        )


def save_checkpoint(path: Union[str, Path], state: CheckpointState) -> None:
    """Atomically persist ``state`` at ``path`` (write tmp, fsync, rename)."""
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("w") as handle:
        handle.write(state.to_json() + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    # The window the fault-injection suite aims at: tmp durable, rename
    # pending.  A kill here must leave the previous checkpoint readable.
    faults.crashpoint("checkpoint:after_tmp_write")
    os.replace(tmp, path)
    faults.crashpoint("checkpoint:after_rename")


def load_checkpoint(path: Union[str, Path]) -> CheckpointState:
    """Read a checkpoint document back; :class:`CheckpointError` on problems."""
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"no checkpoint at {path}")
    return CheckpointState.from_json(path.read_text(), source=str(path))


# ----------------------------------------------------------------------
# Runner-facing cadence object
# ----------------------------------------------------------------------


class Checkpointer:
    """Cadenced atomic checkpointing for one runner call.

    Fresh run::

        cp = Checkpointer("run.ckpt", every=500)
        times = simulate_ensemble(..., checkpoint=cp)

    Resume (after a crash or :class:`~repro.execution.shutdown.GracefulExit`)::

        cp = Checkpointer.resume("run.ckpt")
        times = simulate_ensemble(<same inputs, same seed>, checkpoint=cp)

    The runner calls :meth:`begin` with its :func:`run_signature` — which
    validates and hands back the resume state, if any — then :meth:`due` /
    :meth:`save` at round boundaries, and :meth:`finish` on completion.
    ``guard`` (a :class:`~repro.execution.shutdown.ShutdownGuard`) makes
    :meth:`should_stop` true after SIGINT/SIGTERM, which runners honour by
    saving a final checkpoint and raising ``GracefulExit``.
    """

    def __init__(
        self,
        path: Union[str, Path],
        every: int = DEFAULT_CHECKPOINT_EVERY,
        guard=None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        if int(every) < 1:
            raise ValueError(f"checkpoint cadence must be >= 1 round, got {every}")
        self.path = Path(path)
        self.every = int(every)
        self.guard = guard
        self.meta = dict(meta or {})
        self.resume_state: Optional[CheckpointState] = None
        self.writes = 0
        self._signature: Optional[str] = None

    @classmethod
    def resume(
        cls,
        path: Union[str, Path],
        every: int = DEFAULT_CHECKPOINT_EVERY,
        guard=None,
    ) -> "Checkpointer":
        """A checkpointer primed with the state loaded from ``path``."""
        checkpointer = cls(path, every=every, guard=guard)
        checkpointer.resume_state = load_checkpoint(path)
        checkpointer.meta = dict(checkpointer.resume_state.meta)
        return checkpointer

    # -- runner protocol -------------------------------------------------

    def begin(self, runner: str, signature: str) -> Optional[CheckpointState]:
        """Validate the (optional) resume state against this run's identity."""
        self._signature = signature
        state = self.resume_state
        if state is None:
            return None
        if state.runner != runner:
            raise CheckpointError(
                f"checkpoint {self.path} was written by {state.runner!r}, "
                f"cannot resume a {runner!r} run"
            )
        if state.signature != signature:
            raise CheckpointError(
                f"checkpoint {self.path} belongs to a different run "
                f"(signature {state.signature} != {signature}); refusing to "
                "resume — protocol, parameters, seed, and generator must all match"
            )
        return state

    def due(self, completed_round: int) -> bool:
        """True when the cadence calls for a write at this round boundary."""
        return completed_round % self.every == 0

    def should_stop(self) -> bool:
        """True once the attached :class:`ShutdownGuard` saw SIGINT/SIGTERM."""
        return self.guard is not None and self.guard.requested

    def save(
        self,
        runner: str,
        completed_round: int,
        rng,
        payload: Dict[str, Any],
        complete: bool = False,
    ) -> CheckpointState:
        """Write one atomic checkpoint at a round boundary."""
        if self._signature is None:
            raise CheckpointError("Checkpointer.save before begin()")
        state = CheckpointState(
            runner=runner,
            round=int(completed_round),
            rng_state=rng.bit_generator.state,
            payload=payload,
            signature=self._signature,
            complete=complete,
            meta=self.meta,
        )
        save_checkpoint(self.path, state)
        self.writes += 1
        return state

    def finish(self, runner: str, completed_round: int, rng, payload) -> None:
        """Write the final ``complete=True`` checkpoint for a finished run."""
        self.save(runner, completed_round, rng, payload, complete=True)
