"""Deterministic fault injection: seeded crashpoints for durability tests.

A *crashpoint* is a named place in the code where the process may be made
to die — hard, via ``os._exit``, simulating a SIGKILL/OOM — on a chosen
visit.  Which crashpoint fires, and on which visit, is controlled entirely
by the ``REPRO_FAULT`` environment variable::

    REPRO_FAULT=ensemble:after_replica:7   # die when the 7th replica converges
    REPRO_FAULT=ensemble:after_round:25    # die after the 25th lock-step round
    REPRO_FAULT=checkpoint:after_tmp_write # die between tmp write and rename
    REPRO_FAULT=trace:mid_write:30         # die half-way through trace line 30

The spec is ``<site>[:<hit>]`` — the trailing integer (default 1, 1-based)
selects which visit to the site is fatal; everything before it is the site
name (which may itself contain colons).  With ``REPRO_FAULT`` unset every
crashpoint is a near-free dictionary lookup, and crashpoints are only
placed at round/write boundaries, never inside per-agent hot loops.

This is how the kill-and-resume invariants are *proven*: CI sets a spec,
watches the process die with :data:`~repro.execution.shutdown.
EXIT_FAULT_INJECTED`, resumes from the checkpoint, and asserts bit-identical
results (``scripts/fault_smoke.py``).  The registered site names are listed
in docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass
from typing import Dict, NoReturn, Optional

from repro.execution.shutdown import EXIT_FAULT_INJECTED

__all__ = [
    "FAULT_ENV_VAR",
    "FaultSpec",
    "parse_fault_spec",
    "armed",
    "crashpoint",
    "should_trip",
    "trip",
    "reset",
]

FAULT_ENV_VAR = "REPRO_FAULT"


@dataclass(frozen=True)
class FaultSpec:
    """A parsed ``REPRO_FAULT`` value: which site dies, on which visit."""

    site: str
    hit: int = 1


def parse_fault_spec(text: Optional[str]) -> Optional[FaultSpec]:
    """Parse ``<site>[:<hit>]`` (``None``/empty → no fault armed)."""
    if not text or not text.strip():
        return None
    text = text.strip()
    head, sep, tail = text.rpartition(":")
    if sep and tail.isdigit():
        site, hit = head, int(tail)
    else:
        site, hit = text, 1
    if not site:
        raise ValueError(f"invalid {FAULT_ENV_VAR} spec {text!r}: empty site name")
    if hit < 1:
        raise ValueError(f"invalid {FAULT_ENV_VAR} spec {text!r}: hit must be >= 1")
    return FaultSpec(site=site, hit=hit)


# Visit counters per site, keyed by the raw env value they were counted
# under so a spec change (tests flipping the env) resets the counts.
_counts: Dict[str, int] = {}
_counted_for: Optional[str] = None


def _active_spec() -> Optional[FaultSpec]:
    global _counted_for
    text = os.environ.get(FAULT_ENV_VAR)
    if not text:
        return None
    if text != _counted_for:
        _counts.clear()
        _counted_for = text
    return parse_fault_spec(text)


def armed() -> bool:
    """True when ``REPRO_FAULT`` is set (cheap guard for per-item loops)."""
    return bool(os.environ.get(FAULT_ENV_VAR))


def reset() -> None:
    """Forget all visit counts (test isolation helper)."""
    global _counted_for
    _counts.clear()
    _counted_for = None


def should_trip(site: str) -> bool:
    """Count a visit to ``site``; True when this visit is the fatal one.

    For call sites that must do last-words work *before* dying (e.g. the
    trace writer flushing a deliberately half-written line): check
    ``should_trip``, stage the wreckage, then call :func:`trip`.
    Plain call sites use :func:`crashpoint`, which combines both.
    """
    spec = _active_spec()
    if spec is None or spec.site != site:
        return False
    count = _counts.get(site, 0) + 1
    _counts[site] = count
    return count == spec.hit


def trip(site: str) -> NoReturn:
    """Die hard, like a SIGKILL would: no atexit, no finally, no flushing.

    stdio is flushed first so the death itself is observable in CI logs,
    but nothing else gets a chance to clean up — that is the point.
    """
    print(f"repro: fault injected at crashpoint {site!r}", file=sys.stderr)
    sys.stderr.flush()
    sys.stdout.flush()
    os._exit(EXIT_FAULT_INJECTED)


def crashpoint(site: str) -> None:
    """Die at ``site`` iff ``REPRO_FAULT`` selects this visit; else no-op."""
    if should_trip(site):
        trip(site)
