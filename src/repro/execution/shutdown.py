"""Graceful shutdown: signal handling, safe-point exits, and exit codes.

The durability contract (docs/OBSERVABILITY.md, "Durability & fault model"):
a run that is interrupted by SIGINT/SIGTERM does not die mid-write.  The
:class:`ShutdownGuard` handler only sets a flag; the runner notices it at
the next round boundary, writes a final checkpoint, flushes every
registered trace writer, and raises :class:`GracefulExit`, which the CLI
turns into :data:`EXIT_INTERRUPTED` — distinct from a crash, from a
censored run, and from a fault-injected kill, so callers (and CI) can key
off the exit code alone.
"""

from __future__ import annotations

import signal
from types import FrameType
from typing import List, Optional

__all__ = [
    "EXIT_CODES",
    "EXIT_OK",
    "EXIT_ERROR",
    "EXIT_NOT_CONVERGED",
    "EXIT_INVALID_TRACE",
    "EXIT_PERF_REGRESSION",
    "EXIT_INTERRUPTED",
    "EXIT_BENCH_TIMEOUT",
    "EXIT_SHARDS_LOST",
    "EXIT_FAULT_INJECTED",
    "GracefulExit",
    "ShutdownGuard",
]

# One exit code per failure class.  EXIT_CODES below is the single source
# of truth; the table in docs/API.md is generated from it by
# scripts/generate_api_docs.py — edit here, then regenerate.
EXIT_OK = 0
EXIT_ERROR = 1  # generic failure (argparse errors, missing inputs, ...)
EXIT_NOT_CONVERGED = 2  # `repro run`: the run was censored at its budget
EXIT_INVALID_TRACE = 3  # `repro trace validate|convert|index`: schema violation
EXIT_PERF_REGRESSION = 4  # `repro report --strict`: the ledger flagged a regression
EXIT_INTERRUPTED = 5  # SIGINT/SIGTERM with a final checkpoint written
EXIT_BENCH_TIMEOUT = 6  # `repro bench --timeout`: an experiment overran its budget
EXIT_SHARDS_LOST = 7  # supervised ensemble: partial results (shards quarantined)
EXIT_FAULT_INJECTED = 86  # a REPRO_FAULT crashpoint fired (deliberately loud)

EXIT_CODES = (
    ("EXIT_OK", EXIT_OK, "Success."),
    ("EXIT_ERROR", EXIT_ERROR,
     "Generic failure: argparse errors, missing inputs, unexpected exceptions."),
    ("EXIT_NOT_CONVERGED", EXIT_NOT_CONVERGED,
     "`repro run`: the run was censored at its round budget without converging."),
    ("EXIT_INVALID_TRACE", EXIT_INVALID_TRACE,
     "`repro trace validate|convert|index`: a trace (JSONL or columnar) "
     "violates the record schema or its container framing."),
    ("EXIT_PERF_REGRESSION", EXIT_PERF_REGRESSION,
     "`repro report --strict`: the benchmark ledger flagged a regression."),
    ("EXIT_INTERRUPTED", EXIT_INTERRUPTED,
     "SIGINT/SIGTERM honoured at a safe point, with a final checkpoint written."),
    ("EXIT_BENCH_TIMEOUT", EXIT_BENCH_TIMEOUT,
     "`repro bench --timeout`: an experiment overran its wall-clock budget."),
    ("EXIT_SHARDS_LOST", EXIT_SHARDS_LOST,
     "Supervised ensemble: results are partial because shards were quarantined."),
    ("EXIT_FAULT_INJECTED", EXIT_FAULT_INJECTED,
     "A `REPRO_FAULT` crashpoint fired (deliberately loud, test-only)."),
)
"""The full exit-code taxonomy as ``(name, value, description)`` triples.

Machine-readable so docs generation, tests, and future tooling consume one
list instead of re-stating the constants."""


class GracefulExit(RuntimeError):
    """Raised at a safe point after a shutdown signal was observed.

    By the time this propagates, the runner has already written its final
    checkpoint (when one was configured); ``checkpoint_path`` says where.
    """

    def __init__(self, signum: int, checkpoint_path=None) -> None:
        self.signum = int(signum)
        self.checkpoint_path = checkpoint_path
        where = f"; checkpoint at {checkpoint_path}" if checkpoint_path else ""
        super().__init__(f"interrupted by {self.signal_name}{where}")

    @property
    def signal_name(self) -> str:
        try:
            return signal.Signals(self.signum).name
        except ValueError:
            return f"signal {self.signum}"


class ShutdownGuard:
    """Context manager turning SIGINT/SIGTERM into a safe-point stop request.

    The handler does the absolute minimum — record which signal arrived —
    because Python signal handlers may run between any two bytecodes and
    must not touch half-updated state.  Runners poll :attr:`requested` at
    round boundaries (via their :class:`~repro.execution.checkpoint.
    Checkpointer`); anything registered with :meth:`register` (open trace
    writers, typically) is flushed by :meth:`flush_registered` before the
    runner raises :class:`GracefulExit`.

    A second signal while the first is being honoured is absorbed by the
    same handler — the guard stays installed until the ``with`` block
    exits, so a double Ctrl-C still leaves through the graceful path
    rather than corrupting the checkpoint mid-write.
    """

    def __init__(self, signals=(signal.SIGINT, signal.SIGTERM)) -> None:
        self.signals = tuple(signals)
        self._signum: Optional[int] = None
        self._previous: dict = {}
        self._flushables: List[object] = []

    # -- signal plumbing ------------------------------------------------

    def __enter__(self) -> "ShutdownGuard":
        for signum in self.signals:
            self._previous[signum] = signal.signal(signum, self._handle)
        return self

    def __exit__(self, *exc_info) -> None:
        for signum, previous in self._previous.items():
            signal.signal(signum, previous)
        self._previous.clear()

    def _handle(self, signum: int, frame: Optional[FrameType]) -> None:
        self._signum = signum

    # -- runner-facing state --------------------------------------------

    @property
    def requested(self) -> bool:
        """True once a shutdown signal has been observed."""
        return self._signum is not None

    @property
    def signum(self) -> int:
        """The observed signal number (SIGTERM if somehow unset)."""
        return self._signum if self._signum is not None else signal.SIGTERM

    def register(self, flushable) -> None:
        """Register an object with a ``flush()`` method (e.g. a trace writer)."""
        self._flushables.append(flushable)

    def flush_registered(self) -> None:
        """Flush (and thereby fsync, for trace writers) everything registered."""
        for flushable in self._flushables:
            flush = getattr(flushable, "flush", None)
            if flush is not None:
                flush()
