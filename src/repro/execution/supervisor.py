"""Supervised parallel ensembles: a process pool with retry and quarantine.

The headline experiments are ensembles of independent chains, which the
serial :func:`repro.dynamics.run.simulate_ensemble` advances in one
process — a single stall or kill loses everything, and wall-clock does not
scale with cores.  This module splits an ensemble into **shards** and runs
each shard in its own worker process under supervision:

* **Worker-count invariance.**  The shard count is fixed up front
  (independent of the worker count) and each shard's generator comes from
  one :func:`repro.dynamics.rng.spawn_rngs` call in the parent, so the
  random streams depend only on ``(seed, shards)`` — results for a given
  seed are byte-identical whether run with 1 or 16 workers.
* **Supervision.**  Each shard attempt runs with an optional per-shard
  wall-clock timeout; a worker that dies (crash, ``REPRO_FAULT`` kill,
  OOM) or overruns is retried with capped exponential backoff, and after
  ``max_retries`` retries the shard is quarantined as *failed*.
* **Graceful degradation.**  Failed-past-retry shards are excluded — never
  silently, mirroring the censoring philosophy: the surviving shards
  aggregate into :class:`~repro.analysis.ensemble.ConvergenceStats` whose
  ``failed_shards`` / ``attempted_trials`` fields report the loss, and the
  CLI exits :data:`~repro.execution.shutdown.EXIT_SHARDS_LOST` for partial
  results.
* **Durability.**  Each shard checkpoints to its own file
  (``<base>.shard<k>``) through the PR-4 machinery, so a killed worker's
  retry resumes its own shard checkpoint and replays the identical stream
  — the fault-smoke harness (``scripts/fault_smoke.py --parallel``) proves
  kill → retry → bit-identical stats.
* **Telemetry.**  Workers write timing-free per-shard JSONL traces which
  the parent merges deterministically (rounds sorted by ``(t, shard)``,
  every shard record tagged with its ``shard`` index) into one trace that
  ``repro trace validate`` accepts.

Fault-injection forwarding (how the smoke tests steer which worker dies):
``REPRO_FAULT`` is forwarded to *first attempts* only, so an injected kill
looks like a transient fault and the retry converges to the unfaulted
result; ``REPRO_FAULT_SHARD=<k>`` restricts arming to shard ``k``; setting
``REPRO_FAULT_STICKY=1`` keeps the fault armed on retries, which is how
the quarantine/degraded path is exercised deterministically.

``bench --timeout`` composition: the SIGALRM budget that
``REPRO_BENCH_TIMEOUT`` arms only fires in the main process, so a hung
worker would escape it.  The supervisor therefore folds the bench budget
into the per-shard timeout — the *tighter* (smaller) of the two wins — so
a stuck worker is killed by the supervisor before (or when) the alarm
fires in the parent.
"""

from __future__ import annotations

import json
import multiprocessing
import multiprocessing.connection
import os
import sys
import tempfile
import time
from collections import deque
from contextlib import nullcontext
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.dynamics.rng import spawn_rngs
from repro.execution import faults
from repro.execution.backoff import backoff_delay_s
from repro.execution.checkpoint import (
    DEFAULT_CHECKPOINT_EVERY,
    CheckpointError,
    Checkpointer,
    decode_times,
    encode_times,
)
from repro.execution.shutdown import GracefulExit
from repro.telemetry import (
    NULL_RECORDER,
    Recorder,
    compose_recorders,
    rng_provenance,
    run_provenance,
    span,
)
from repro.telemetry.heartbeat import (
    Heartbeat,
    HeartbeatRecorder,
    heartbeat_path,
    read_heartbeat,
    write_heartbeat,
)
from repro.telemetry.columnar import open_trace_writer, write_trace_records
from repro.telemetry.jsonl import read_trace
from repro.telemetry.recorder import TRACE_SCHEMA_VERSION
from repro.telemetry.resources import sample_resources

__all__ = [
    "DEFAULT_SHARD_COUNT",
    "DEFAULT_MAX_RETRIES",
    "FAULT_SHARD_ENV_VAR",
    "FAULT_STICKY_ENV_VAR",
    "SupervisorConfig",
    "ShardFailure",
    "ShardOutcome",
    "SupervisedTimes",
    "shard_sizes",
    "run_supervised_ensemble",
    "summarize_supervised",
    "supervisor_from",
]

DEFAULT_SHARD_COUNT = 8
"""Default number of shards (clamped to the replica count)."""

DEFAULT_MAX_RETRIES = 2
"""Default retries per shard before it is quarantined as failed."""

FAULT_SHARD_ENV_VAR = "REPRO_FAULT_SHARD"
"""Restrict ``REPRO_FAULT`` forwarding to one shard index."""

FAULT_STICKY_ENV_VAR = "REPRO_FAULT_STICKY"
"""When truthy, keep ``REPRO_FAULT`` armed on retries (exercises quarantine)."""


@dataclass(frozen=True)
class SupervisorConfig:
    """Knobs of the worker pool (see docs/OBSERVABILITY.md for guidance).

    Attributes:
        workers: concurrent worker processes.  Changing this never changes
            results — only shard count and seed do.
        shards: fixed shard count (default: ``min(replicas, 8)``).  This
            *is* part of the random-stream identity: rerun with the same
            value to reproduce.
        timeout_s: per-shard-attempt wall-clock budget; an overrunning
            worker is killed and the attempt counts as a failure.  The
            ``REPRO_BENCH_TIMEOUT`` budget is folded in — the tighter of
            the two wins.
        max_retries: retries per shard before quarantine (attempts are
            ``1 + max_retries``).
        backoff_base_s: delay before the first retry; doubles per failure.
            The actual delay carries deterministic seeded jitter (see
            :func:`repro.execution.backoff.backoff_delay_s`): a function of
            the run's RNG state and the shard index, so retry schedules are
            reproducible per seed while distinct shards never retry in
            lock-step.
        backoff_cap_s: upper bound on the backoff delay.
        poll_s: supervision loop wakeup interval.
        trace_timings: forward wall-clock fields into per-shard traces
            (default off so merged traces stay byte-identical per seed).
        trace_format: container for shard traces and the merged trace —
            ``"jsonl"`` or ``"columnar"`` (see docs/OBSERVABILITY.md,
            "Trace formats").
    """

    workers: int = 1
    shards: Optional[int] = None
    timeout_s: Optional[float] = None
    max_retries: int = DEFAULT_MAX_RETRIES
    backoff_base_s: float = 0.1
    backoff_cap_s: float = 5.0
    poll_s: float = 0.05
    trace_timings: bool = False
    trace_format: str = "jsonl"


@dataclass(frozen=True)
class ShardFailure:
    """One failed shard attempt, as observed by the supervisor.

    Attributes:
        shard: shard index.
        attempt: 1-based attempt number that failed.
        kind: ``"exit"`` (nonzero/killed exit), ``"timeout"`` (overran
            ``timeout_s`` and was killed), or ``"corrupt"`` (exited 0 but
            left no readable result).
        exitcode: the process exit code (negative = killed by that signal).
        elapsed_s: wall clock of the attempt.
    """

    shard: int
    attempt: int
    kind: str
    exitcode: Optional[int]
    elapsed_s: float


@dataclass(frozen=True)
class ShardOutcome:
    """Terminal state of one shard after supervision.

    Attributes:
        index: shard index (shards partition ``range(replicas)`` in order).
        replicas: replicas assigned to this shard.
        ok: True when some attempt completed and produced times.
        times: the shard's convergence times (``None`` for a failed shard).
        attempts: total attempts made.
        failures: every failed attempt, in order.
    """

    index: int
    replicas: int
    ok: bool
    times: Optional[np.ndarray]
    attempts: int
    failures: List[ShardFailure] = field(default_factory=list)


@dataclass(frozen=True)
class SupervisedTimes:
    """Result of a supervised ensemble: surviving times plus loss accounting.

    Attributes:
        times: concatenated times of the *surviving* shards, in shard
            order.  Lost shards are excluded, never padded with ``nan`` —
            a lost trial is not a censored trial.
        shard_sizes: replicas per shard (sums to the attempted total).
        failed_shards: shards quarantined after exhausting retries.
        retries: attempts beyond the first, summed over shards.
        timeouts: attempts killed for overrunning the per-shard budget.
        outcomes: per-shard detail, index order.
    """

    times: np.ndarray
    shard_sizes: List[int]
    failed_shards: int
    retries: int
    timeouts: int
    outcomes: List[ShardOutcome] = field(default_factory=list)

    @property
    def attempted_trials(self) -> int:
        """Replicas the caller asked for, surviving or not."""
        return int(sum(self.shard_sizes))

    @property
    def degraded(self) -> bool:
        """True when any shard was lost (partial results)."""
        return self.failed_shards > 0


def shard_sizes(replicas: int, shards: int) -> List[int]:
    """Balanced deterministic partition of ``replicas`` into ``shards``.

    The first ``replicas % shards`` shards get the extra replica, so the
    partition (and with it every shard's random stream) is a pure function
    of the two counts.

    >>> shard_sizes(10, 4)
    [3, 3, 2, 2]
    >>> shard_sizes(8, 8)
    [1, 1, 1, 1, 1, 1, 1, 1]
    """
    if replicas < 1:
        raise ValueError(f"replicas must be >= 1, got {replicas}")
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if shards > replicas:
        raise ValueError(f"shards ({shards}) cannot exceed replicas ({replicas})")
    base, extra = divmod(replicas, shards)
    return [base + (1 if k < extra else 0) for k in range(shards)]


def summarize_supervised(result: SupervisedTimes, budget: Optional[int] = None):
    """Fold a :class:`SupervisedTimes` into degradation-aware stats.

    Returns :class:`~repro.analysis.ensemble.ConvergenceStats` whose
    ``failed_shards`` / ``attempted_trials`` fields carry the loss
    accounting.  Raises ``RuntimeError`` when *every* shard failed — there
    is nothing left to summarize, and pretending otherwise would launder a
    total loss into a statistic.
    """
    from repro.analysis.ensemble import summarize_times

    if result.times.size == 0:
        raise RuntimeError(
            f"all {len(result.shard_sizes)} shards failed; no surviving "
            "trials to summarize"
        )
    return summarize_times(
        result.times,
        budget=budget,
        failed_shards=result.failed_shards,
        attempted_trials=result.attempted_trials,
    )


# ----------------------------------------------------------------------
# Worker body (module-level so it survives pickling under any start method)
# ----------------------------------------------------------------------


@dataclass
class _ShardTask:
    """Everything one worker attempt needs, shipped to the child process."""

    index: int
    replicas: int
    protocol: object
    config: object
    max_rounds: int
    rng: np.random.Generator
    checkpoint_path: Optional[str]
    checkpoint_every: int
    trace_path: Optional[str]
    trace_timings: bool
    trace_format: str
    times_path: str
    env: Dict[str, Optional[str]]
    engine: Optional[str] = None
    heartbeat_path: Optional[str] = None
    heartbeat_every_s: float = 1.0
    attempt: int = 1
    profile_path: Optional[str] = None
    scenario: object = None


def _shard_worker(task: _ShardTask) -> None:
    """Run one shard to completion inside a worker process.

    The shard is an ordinary serial :func:`~repro.dynamics.run.
    simulate_ensemble` call, so every existing crashpoint
    (``ensemble:after_round``, ``checkpoint:after_tmp_write``, ...) fires
    inside the worker and per-shard checkpoints come from the stock
    :class:`~repro.execution.checkpoint.Checkpointer`.  The result is
    published by an atomic tmp-then-rename file write — queues would lose
    data to ``os._exit`` kills.
    """
    from repro.dynamics.run import simulate_ensemble

    for key, value in task.env.items():
        if value is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = value
    # A forked child inherits the parent's crashpoint visit counters;
    # shards must count their own visits from zero.
    faults.reset()
    checkpoint = None
    if task.checkpoint_path is not None:
        path = Path(task.checkpoint_path)
        if path.exists():
            try:
                checkpoint = Checkpointer.resume(path, every=task.checkpoint_every)
            except CheckpointError as error:
                print(
                    f"repro: shard {task.index}: discarding unusable "
                    f"checkpoint ({error}); restarting the shard",
                    file=sys.stderr,
                )
        if checkpoint is None:
            checkpoint = Checkpointer(path, every=task.checkpoint_every)
    trace = (
        open_trace_writer(
            task.trace_path, task.trace_format,
            include_timings=task.trace_timings,
        )
        if task.trace_path is not None
        else None
    )
    beat = (
        HeartbeatRecorder(
            task.heartbeat_path,
            role="shard",
            shard=task.index,
            attempt=task.attempt,
            interval_s=task.heartbeat_every_s,
        )
        if task.heartbeat_path is not None
        else None
    )
    if task.profile_path is not None:
        from repro.telemetry.profiling import maybe_cprofile

        profiled = maybe_cprofile(task.profile_path)
    else:
        profiled = nullcontext()
    try:
        with profiled:
            times = simulate_ensemble(
                task.protocol, task.config, task.max_rounds, task.rng,
                task.replicas,
                recorder=compose_recorders(trace, beat),
                checkpoint=checkpoint,
                engine=task.engine,
                scenario=task.scenario,
            )
    finally:
        if trace is not None:
            trace.close()
    target = Path(task.times_path)
    tmp = target.with_name(target.name + ".tmp")
    tmp.write_text(
        json.dumps({"shard": task.index, "times": encode_times(times)}) + "\n"
    )
    os.replace(tmp, target)


# ----------------------------------------------------------------------
# Supervision loop
# ----------------------------------------------------------------------


@dataclass
class _Running:
    process: multiprocessing.process.BaseProcess
    attempt: int
    started_at: float
    deadline: Optional[float]


def _effective_timeout(timeout_s: Optional[float]) -> Optional[float]:
    """Per-shard budget after folding in ``REPRO_BENCH_TIMEOUT``.

    The tighter (smaller) of the two wins: the bench alarm only fires in
    the main process, so a hung worker must be killed by the supervisor's
    own deadline no later than the alarm would have fired.
    """
    raw = os.environ.get("REPRO_BENCH_TIMEOUT")
    bench: Optional[float] = None
    if raw:
        try:
            parsed = float(raw)
        except ValueError:
            parsed = None
        if parsed is not None and parsed > 0:
            bench = parsed
    candidates = [t for t in (timeout_s, bench) if t is not None]
    return min(candidates) if candidates else None


def _fault_env(shard: int, attempt: int) -> Dict[str, Optional[str]]:
    """Per-attempt environment overrides controlling fault forwarding."""
    overrides: Dict[str, Optional[str]] = {
        "REPRO_WORKER_SHARD": str(shard),
        "REPRO_WORKER_ATTEMPT": str(attempt),
    }
    spec = os.environ.get(faults.FAULT_ENV_VAR)
    if not spec:
        overrides[faults.FAULT_ENV_VAR] = None
        return overrides
    target = os.environ.get(FAULT_SHARD_ENV_VAR, "").strip()
    if target:
        try:
            target_index = int(target)
        except ValueError:
            raise ValueError(
                f"invalid {FAULT_SHARD_ENV_VAR} value {target!r}: expected "
                "a shard index"
            )
        if target_index != shard:
            overrides[faults.FAULT_ENV_VAR] = None
            return overrides
    sticky = os.environ.get(FAULT_STICKY_ENV_VAR, "").strip() not in ("", "0")
    if attempt > 1 and not sticky:
        # Transient-fault model: the retry runs clean, so the supervisor
        # recovers to the unfaulted result bit-for-bit.
        overrides[faults.FAULT_ENV_VAR] = None
        return overrides
    overrides[faults.FAULT_ENV_VAR] = spec
    return overrides


def _load_shard_times(path: Path) -> Optional[np.ndarray]:
    try:
        document = json.loads(path.read_text())
        return decode_times(document["times"])
    except (OSError, ValueError, KeyError, TypeError):
        return None


def run_supervised_ensemble(
    protocol,
    config,
    max_rounds: int,
    rng: np.random.Generator,
    replicas: int,
    *,
    supervisor: Optional[SupervisorConfig] = None,
    recorder: Recorder = NULL_RECORDER,
    checkpoint_base: Optional[Union[str, Path]] = None,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    trace_path: Optional[Union[str, Path]] = None,
    guard=None,
    workdir: Optional[Union[str, Path]] = None,
    engine: Optional[str] = None,
    heartbeat_base: Optional[Union[str, Path]] = None,
    heartbeat_every_s: float = 1.0,
    profile_dir: Optional[Union[str, Path]] = None,
    scenario=None,
    _worker=_shard_worker,
) -> SupervisedTimes:
    """Run ``replicas`` independent chains sharded over a worker pool.

    The ensemble is split by :func:`shard_sizes` into ``supervisor.shards``
    shards whose generators come from one ``spawn_rngs(rng, shards)`` call,
    so the result is a function of ``(seed, shards, engine)`` alone — the
    worker count only changes wall-clock.  Each shard runs the stock serial
    :func:`~repro.dynamics.run.simulate_ensemble` in a child process, so
    each shard steps its replicas as one array under the selected engine;
    see the module docstring for the supervision, degradation, and
    telemetry contracts.

    Args:
        supervisor: pool configuration (default :class:`SupervisorConfig`).
        engine: stepping backend forwarded to every shard's
            :func:`~repro.dynamics.run.simulate_ensemble` (``None`` means
            the default ``"batched"``; see docs/ENGINES.md).  Part of the
            result identity only through its engine *family* — the
            ``batched``/``loop`` families are bit-identical to each other,
            ``lockstep`` is a different (equally valid) stream.
        recorder: parent-side recorder; observes the run's provenance, a
            ``supervise`` span with shard/retry/timeout counters, and the
            closing summary (per-round records live in the merged trace).
        checkpoint_base: base path for per-shard checkpoints
            (``<base>.shard<k>``).  Shards whose checkpoint already exists
            resume it, so re-invoking after a crash (or ``GracefulExit``)
            continues where each shard left off.
        checkpoint_every: cadence forwarded to every shard checkpointer.
        trace_path: write one merged, deterministically-ordered JSONL
            trace here (per-shard traces are merged and removed).
        guard: a :class:`~repro.execution.shutdown.ShutdownGuard`; after
            SIGINT/SIGTERM the pool is torn down at the next supervision
            wakeup and :class:`GracefulExit` raised (shard checkpoints
            stay resumable).
        workdir: scratch directory for shard result files (default: a
            private temporary directory).
        heartbeat_base: base path for heartbeat files (default: the
            checkpoint base, when one is set).  The supervisor writes
            ``<base>.heartbeat.json`` and each worker writes
            ``<base>.shard<k>.heartbeat.json``, so ``repro watch <base>``
            and the ``/metrics`` exporter see live per-shard progress;
            ``None`` with no checkpoint base disables heartbeats entirely.
        heartbeat_every_s: minimum seconds between heartbeat rewrites
            (``0.0`` = every round/wakeup; quarantine transitions always
            force an immediate supervisor write so the degraded state is
            promptly scrapeable).
        profile_dir: when set, each shard attempt runs under cProfile and
            dumps ``<profile_dir>/shard<k>.prof`` (pstats format; the last
            attempt wins).
    """
    cfg = supervisor or SupervisorConfig()
    if cfg.workers < 1:
        raise ValueError(f"workers must be >= 1, got {cfg.workers}")
    if cfg.max_retries < 0:
        raise ValueError(f"max_retries must be >= 0, got {cfg.max_retries}")
    if replicas < 1:
        raise ValueError(f"replicas must be >= 1, got {replicas}")
    if not protocol.satisfies_boundary_conditions(tolerance=1e-12):
        raise ValueError(
            f"protocol {protocol.name!r} violates Proposition 3; its "
            "convergence time is infinite (see time_to_leave_consensus)"
        )
    from repro.dynamics.batched import engine_family, resolve_engine

    # Resolved in the parent so an invalid name fails fast (not as N worker
    # crash-retry cycles), and normalized to the stream-identity family so
    # provenance matches what the shards actually run.
    family = engine_family(resolve_engine(engine))
    # Resolved in the parent for the same reason as the engine: a bad spec
    # fails fast, and every shard then steps the exact same hostile world.
    from repro.dynamics.scenarios import as_scenario

    scenario = as_scenario(scenario, config.n)
    if scenario is not None and family not in ("batched", "loop"):
        raise ValueError(
            f"scenarios require a keyed engine family (batched/loop), got {family!r}"
        )
    settle = scenario.settle_round(max_rounds) if scenario is not None else 0
    shards = cfg.shards if cfg.shards is not None else min(replicas, DEFAULT_SHARD_COUNT)
    sizes = shard_sizes(replicas, shards)

    recording = recorder.enabled
    provenance = None
    if recording or trace_path is not None:
        # Captured before spawn_rngs consumes the parent stream, so the
        # provenance state hash pins the whole shard derivation.
        # ``workers`` is deliberately absent: results (and the merged
        # trace) are a function of (seed, shards) only, so the provenance
        # must not vary with the worker count.
        provenance_params = dict(
            n=config.n, z=config.z, x0=config.x0, max_rounds=max_rounds,
            replicas=replicas, shards=shards, engine=family,
        )
        if scenario is not None:
            provenance_params["scenario"] = scenario.spec()
        provenance = run_provenance(
            "supervised_ensemble", protocol, rng, **provenance_params,
        )
    # Backoff jitter key, captured before ``spawn_rngs`` consumes the parent
    # stream: the retry schedule becomes a pure function of (run seed, shard
    # index), reproducible across reruns and independent of worker count.
    backoff_key = rng_provenance(rng)["state_hash"]
    shard_rngs = spawn_rngs(rng, shards)
    timeout = _effective_timeout(cfg.timeout_s)

    scratch_ctx = None
    if workdir is None:
        scratch_ctx = tempfile.TemporaryDirectory(prefix="repro_supervisor_")
        scratch = Path(scratch_ctx.name)
    else:
        scratch = Path(workdir)
        scratch.mkdir(parents=True, exist_ok=True)

    def shard_trace_path(index: int) -> Optional[Path]:
        if trace_path is None:
            return None
        base = Path(trace_path)
        return base.with_name(base.name + f".shard{index}")

    def shard_checkpoint_path(index: int) -> Optional[str]:
        if checkpoint_base is None:
            return None
        base = Path(checkpoint_base)
        return str(base.with_name(base.name + f".shard{index}"))

    hb_base: Optional[Path] = None
    if heartbeat_base is not None:
        hb_base = Path(heartbeat_base)
    elif checkpoint_base is not None:
        hb_base = Path(checkpoint_base)
    if profile_dir is not None:
        Path(profile_dir).mkdir(parents=True, exist_ok=True)

    def shard_heartbeat_path(index: int) -> Optional[str]:
        if hb_base is None:
            return None
        shard_base = hb_base.with_name(hb_base.name + f".shard{index}")
        return str(heartbeat_path(shard_base))

    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        context = multiprocessing.get_context()

    pending = deque(range(shards))
    not_before: Dict[int, float] = {}
    attempts: Dict[int, int] = {k: 0 for k in range(shards)}
    failures: Dict[int, List[ShardFailure]] = {k: [] for k in range(shards)}
    shard_times: Dict[int, np.ndarray] = {}
    quarantined: set = set()
    running: Dict[int, _Running] = {}
    retries = 0
    timeouts = 0

    sup_beat: Optional[Heartbeat] = None
    sup_beat_path: Optional[Path] = None
    last_beat_at: Optional[float] = None
    if hb_base is not None:
        sup_beat_path = heartbeat_path(hb_base)
        sup_beat = Heartbeat(
            role="supervisor",
            pid=os.getpid(),
            shards=shards,
            replicas=replicas,
            replicas_done=0,
            max_rounds=max_rounds,
        )

    def flush_supervisor_heartbeat(
        force: bool = False, status: Optional[str] = None
    ) -> None:
        """Rewrite the supervisor heartbeat, throttled unless forced."""
        nonlocal last_beat_at
        if sup_beat is None:
            return
        now = time.monotonic()
        if (
            not force
            and status is None
            and last_beat_at is not None
            and now - last_beat_at < heartbeat_every_s
        ):
            return
        if status is not None:
            sup_beat.status = status
        sup_beat.replicas_done = sum(sizes[k] for k in shard_times)
        sup_beat.retries = retries
        sup_beat.timeouts = timeouts
        sup_beat.failed_shards = len(quarantined)
        sup_beat.updated_at = time.time()
        sample = sample_resources(include_children=True)
        sup_beat.rss_bytes = sample.rss_bytes
        sup_beat.peak_rss_bytes = sample.peak_rss_bytes
        sup_beat.cpu_s = sample.cpu_s
        write_heartbeat(sup_beat_path, sup_beat)
        last_beat_at = now

    def mark_shard_failed(index: int) -> None:
        """Overwrite a quarantined shard's heartbeat with status=failed.

        The worker died mid-write or mid-run, so its own heartbeat still
        says "running"; without this, watchers would render a dead shard
        as merely stale forever.
        """
        path = shard_heartbeat_path(index)
        if path is None:
            return
        beat = read_heartbeat(path) or Heartbeat(
            role="shard", shard=index, replicas=sizes[index]
        )
        beat.status = "failed"
        beat.attempt = attempts[index]
        beat.updated_at = time.time()
        write_heartbeat(path, beat)

    def launch(index: int) -> None:
        attempts[index] += 1
        attempt = attempts[index]
        task = _ShardTask(
            index=index,
            replicas=sizes[index],
            protocol=protocol,
            config=config,
            max_rounds=max_rounds,
            rng=shard_rngs[index],
            checkpoint_path=shard_checkpoint_path(index),
            checkpoint_every=checkpoint_every,
            trace_path=(
                str(shard_trace_path(index))
                if shard_trace_path(index) is not None
                else None
            ),
            trace_timings=cfg.trace_timings,
            trace_format=cfg.trace_format,
            times_path=str(scratch / f"shard{index}.times.json"),
            env=_fault_env(index, attempt),
            engine=family,
            heartbeat_path=shard_heartbeat_path(index),
            heartbeat_every_s=heartbeat_every_s,
            attempt=attempt,
            profile_path=(
                str(Path(profile_dir) / f"shard{index}.prof")
                if profile_dir is not None
                else None
            ),
            scenario=scenario,
        )
        process = context.Process(target=_worker, args=(task,), daemon=True)
        process.start()
        now = time.monotonic()
        running[index] = _Running(
            process=process,
            attempt=attempt,
            started_at=now,
            deadline=now + timeout if timeout is not None else None,
        )

    def record_failure(index: int, run: _Running, kind: str) -> None:
        nonlocal retries, timeouts
        now = time.monotonic()
        failures[index].append(
            ShardFailure(
                shard=index,
                attempt=run.attempt,
                kind=kind,
                exitcode=run.process.exitcode,
                elapsed_s=now - run.started_at,
            )
        )
        if kind == "timeout":
            timeouts += 1
        if attempts[index] > cfg.max_retries:
            quarantined.add(index)
            mark_shard_failed(index)
            # Forced write: the quarantine tick must be scrapeable now,
            # not one throttle interval from now.
            flush_supervisor_heartbeat(force=True)
            return
        retries += 1
        backoff = backoff_delay_s(
            len(failures[index]),
            base_s=cfg.backoff_base_s,
            cap_s=cfg.backoff_cap_s,
            key=f"{backoff_key}:shard{index}",
        )
        not_before[index] = now + backoff
        pending.append(index)

    def teardown() -> None:
        for run in running.values():
            if run.process.is_alive():
                run.process.terminate()
        for run in running.values():
            run.process.join(timeout=5.0)
            if run.process.is_alive():  # pragma: no cover - terminate sufficed so far
                run.process.kill()
                run.process.join()
        running.clear()

    with span(recorder, "supervise") as timing:
        if recording:
            recorder.run_started(provenance)
        try:
            while pending or running:
                if guard is not None and guard.requested:
                    teardown()
                    flush_supervisor_heartbeat(force=True, status="interrupted")
                    raise GracefulExit(guard.signum, checkpoint_base)
                flush_supervisor_heartbeat()
                now = time.monotonic()
                while pending and len(running) < cfg.workers:
                    index = next(
                        (s for s in pending if not_before.get(s, 0.0) <= now),
                        None,
                    )
                    if index is None:
                        break
                    pending.remove(index)
                    launch(index)
                if not running:
                    soonest = min(not_before.get(s, 0.0) for s in pending)
                    time.sleep(max(0.0, min(soonest - now, cfg.poll_s)) or 0.005)
                    continue
                wait_for = cfg.poll_s
                deadlines = [
                    r.deadline for r in running.values() if r.deadline is not None
                ]
                if deadlines:
                    wait_for = min(wait_for, max(0.0, min(deadlines) - now))
                multiprocessing.connection.wait(
                    [run.process.sentinel for run in running.values()],
                    timeout=wait_for,
                )
                now = time.monotonic()
                for index in [s for s, r in running.items() if not r.process.is_alive()]:
                    run = running.pop(index)
                    run.process.join()
                    if run.process.exitcode == 0:
                        times = _load_shard_times(
                            scratch / f"shard{index}.times.json"
                        )
                        if times is not None and len(times) == sizes[index]:
                            shard_times[index] = times
                            continue
                        record_failure(index, run, "corrupt")
                    else:
                        record_failure(index, run, "exit")
                for index in [
                    s
                    for s, r in running.items()
                    if r.deadline is not None and now >= r.deadline
                ]:
                    run = running.pop(index)
                    run.process.kill()
                    run.process.join()
                    record_failure(index, run, "timeout")
        finally:
            teardown()
            if scratch_ctx is not None:
                scratch_ctx.cleanup()

        outcomes = [
            ShardOutcome(
                index=k,
                replicas=sizes[k],
                ok=k in shard_times,
                times=shard_times.get(k),
                attempts=attempts[k],
                failures=list(failures[k]),
            )
            for k in range(shards)
        ]
        surviving = [shard_times[k] for k in sorted(shard_times)]
        result = SupervisedTimes(
            times=(
                np.concatenate(surviving) if surviving else np.empty(0, dtype=float)
            ),
            shard_sizes=sizes,
            failed_shards=len(quarantined),
            retries=retries,
            timeouts=timeouts,
            outcomes=outcomes,
        )
        flush_supervisor_heartbeat(force=True, status="done")
        if recording:
            timing.incr("shards", shards)
            timing.incr("workers", cfg.workers)
            timing.incr("retries", retries)
            timing.incr("timeouts", timeouts)
            timing.incr("failed_shards", result.failed_shards)
    scenario_summary = None
    if scenario is not None:
        from repro.dynamics.run import recovery_summary

        scenario_summary = {"scenario": scenario.spec(), "settle_round": settle}
        scenario_summary.update(recovery_summary(result.times, settle))
    if trace_path is not None:
        _write_merged_trace(
            Path(trace_path), provenance, result, shard_trace_path,
            trace_format=cfg.trace_format, scenario_summary=scenario_summary,
        )
    if recording:
        censored = int(np.isnan(result.times).sum())
        summary = {
            "converged": int(result.times.size) - censored,
            "censored": censored,
            "failed_shards": result.failed_shards,
            "attempted_trials": result.attempted_trials,
            "retries": retries,
            "timeouts": timeouts,
        }
        if scenario_summary is not None:
            summary.update(scenario_summary)
        recorder.run_finished(summary)
    return result


# ----------------------------------------------------------------------
# Deterministic trace merging
# ----------------------------------------------------------------------


def _write_merged_trace(
    target, provenance, result, shard_trace_path, trace_format="jsonl",
    scenario_summary=None,
) -> None:
    """Merge per-shard traces into one deterministic, validating trace.

    Layout: the supervisor's own ``run_start`` (runner
    ``supervised_ensemble``, params including ``shards``/``workers``), the
    shards' round records sorted by ``(t, shard)`` and tagged with their
    ``shard`` index (a stable order that keeps ``t`` non-decreasing, as
    the validator requires), the shards' span records likewise tagged, and
    one ``run_end`` carrying the degradation summary.  Shard traces are
    timing-free by default, so the merged bytes are a pure function of the
    seed, shard count, and container format.  A shard that resumed a
    *complete* checkpoint replays its stored result without re-simulating
    and thus contributes no round records.  Shard traces are read
    format-agnostically (sniffed) and the merge is emitted in
    ``trace_format``; written atomically (tmp + fsync + rename); consumed
    shard traces are removed.
    """
    rounds: List[dict] = []
    spans: List[dict] = []
    converged_total = 0
    censored_total = 0
    final_round = 0
    consumed: List[Path] = []
    for outcome in result.outcomes:
        if not outcome.ok:
            continue
        shard_path = shard_trace_path(outcome.index)
        if shard_path is None or not shard_path.exists():
            continue
        for record in read_trace(shard_path):
            kind = record.get("kind")
            if kind == "round":
                record["shard"] = outcome.index
                rounds.append(record)
            elif kind == "span":
                record["shard"] = outcome.index
                spans.append(record)
            elif kind == "run_end":
                converged_total += int(record.get("converged") or 0)
                censored_total += int(record.get("censored") or 0)
                final_round = max(final_round, int(record.get("final_round") or 0))
        consumed.append(shard_path)
    rounds.sort(key=lambda record: (record["t"], record["shard"]))
    end = {
        "kind": "run_end",
        "converged": converged_total,
        "censored": censored_total,
        "final_round": final_round,
        "failed_shards": result.failed_shards,
        "attempted_trials": result.attempted_trials,
        "retries": result.retries,
        "timeouts": result.timeouts,
        "rounds_recorded": len(rounds),
    }
    if scenario_summary:
        end.update(scenario_summary)
    start = {"kind": "run_start", "schema": TRACE_SCHEMA_VERSION}
    start.update(provenance.to_dict())
    write_trace_records(target, [start, *rounds, *spans, end], trace_format)
    for path in consumed:
        path.unlink(missing_ok=True)


def supervisor_from(
    base: Optional[SupervisorConfig],
    workers: Optional[int],
    shards: Optional[int],
) -> SupervisorConfig:
    """Overlay explicit ``workers=`` / ``shards=`` arguments on a config.

    >>> supervisor_from(None, workers=4, shards=2)
    SupervisorConfig(workers=4, shards=2, timeout_s=None, max_retries=2, \
backoff_base_s=0.1, backoff_cap_s=5.0, poll_s=0.05, trace_timings=False, \
trace_format='jsonl')
    >>> supervisor_from(SupervisorConfig(workers=8), None, None).workers
    8
    """
    cfg = base or SupervisorConfig()
    if workers is not None:
        cfg = replace(cfg, workers=workers)
    if shards is not None:
        cfg = replace(cfg, shards=shards)
    return cfg
