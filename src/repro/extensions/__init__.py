"""Escape hatches the paper contrasts with: memory and active communication."""

from repro.extensions.memory import (
    MemoryAgentsState,
    initial_memory_state,
    run_memory_protocol,
    step_memory_protocol,
)
from repro.extensions.undecided import (
    UndecidedState,
    initial_undecided_state,
    run_undecided,
    step_undecided,
)
from repro.extensions.population import (
    PopulationProtocol,
    PopulationRun,
    broadcast_initial_states,
    broadcast_opinion,
    run_population_protocol,
    source_broadcast_protocol,
)

__all__ = [
    "PopulationProtocol",
    "PopulationRun",
    "run_population_protocol",
    "source_broadcast_protocol",
    "broadcast_initial_states",
    "broadcast_opinion",
    "MemoryAgentsState",
    "initial_memory_state",
    "step_memory_protocol",
    "run_memory_protocol",
    "UndecidedState",
    "initial_undecided_state",
    "step_undecided",
    "run_undecided",
]
