"""Finite-memory agents in the parallel PULL setting (the [7] contrast).

Section 1.3: with ``O(log log n)`` bits of memory and logarithmic sample
sizes, bit-dissemination is solvable in polylogarithmic time ([7]) — memory
is exactly what the paper's lower bound forbids.  To exhibit the separation
(experiment E12) we implement a *trend-following* protocol inspired by [7]:

* each agent remembers one number from the previous round — the count of
  ones among its previous sample (a ``log(ell + 1)``-bit counter, which is
  ``O(log log n)`` bits for ``ell = O(polylog n)``);
* on activation it compares the fresh count to the remembered one: a rising
  count means opinion 1 is spreading, a falling one means opinion 0 is;
  ties fall back to following the sample majority;
* the source ignores all of this and keeps the correct opinion.

Why it works, informally: the source's fixed opinion biases the round-to-
round trend of the sample counts, and trend-following amplifies that bias
exponentially — so the population converges in ``O(polylog n)`` rounds with
``ell = Theta(log n)`` samples, while every *memory-less* protocol with
constant ``ell`` is stuck at ``n^(1-eps)`` (Theorem 1).  This module is a
demonstration of the model separation, not a reproduction of [7]'s analysis
(whose protocol also randomizes phase lengths to self-stabilize against
adversarial memory contents; here the adversary sets memory at t=0 and the
first round's comparison may be wrong, which costs one round).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["MemoryAgentsState", "initial_memory_state", "step_memory_protocol", "run_memory_protocol"]

SOURCE_INDEX = 0


@dataclass
class MemoryAgentsState:
    """Mutable state of the finite-memory population.

    Attributes:
        opinions: current opinions (length ``n``).
        remembered_counts: previous round's sample count per agent — the
            protocol's entire memory (integers in ``[0, ell]``).
    """

    opinions: np.ndarray
    remembered_counts: np.ndarray


def initial_memory_state(
    n: int,
    z: int,
    x0: int,
    ell: int,
    rng: np.random.Generator,
    adversarial_memory: bool = True,
) -> MemoryAgentsState:
    """An initial state with ``x0`` ones and adversarial memory contents."""
    if not 0 <= x0 <= n:
        raise ValueError(f"x0 must lie in [0, {n}], got {x0}")
    opinions = np.zeros(n, dtype=np.int8)
    opinions[SOURCE_INDEX] = z
    ones_needed = x0 - z
    if ones_needed < 0:
        ones_needed = 0
    if ones_needed > 0:
        chosen = rng.choice(np.arange(1, n), size=min(ones_needed, n - 1), replace=False)
        opinions[chosen] = 1
    if adversarial_memory:
        remembered = rng.integers(0, ell + 1, size=n)
    else:
        remembered = np.full(n, int(round(ell * opinions.mean())))
    return MemoryAgentsState(opinions=opinions, remembered_counts=remembered.astype(np.int64))


def step_memory_protocol(
    state: MemoryAgentsState,
    z: int,
    ell: int,
    rng: np.random.Generator,
) -> MemoryAgentsState:
    """One parallel round of the trend-following protocol."""
    opinions = state.opinions
    n = len(opinions)
    samples = rng.integers(0, n, size=(n, ell))
    counts = opinions[samples].sum(axis=1)
    rising = counts > state.remembered_counts
    falling = counts < state.remembered_counts
    majority_one = 2 * counts > ell
    majority_zero = 2 * counts < ell
    new_opinions = opinions.copy()
    new_opinions[rising] = 1
    new_opinions[falling] = 0
    steady = ~(rising | falling)
    new_opinions[steady & majority_one] = 1
    new_opinions[steady & majority_zero] = 0
    # exact ties on steady counts keep the current opinion
    new_opinions[SOURCE_INDEX] = z
    return MemoryAgentsState(opinions=new_opinions, remembered_counts=counts)


def run_memory_protocol(
    n: int,
    z: int,
    x0: int,
    ell: int,
    max_rounds: int,
    rng: np.random.Generator,
    stability_rounds: int = 8,
) -> int | None:
    """Rounds until the population sits on the correct consensus.

    The protocol is not absorbing in the memory-less sense (an agent's next
    move depends on its counter), so "converged" is operationalized as:
    all-correct and remaining all-correct for ``stability_rounds``
    consecutive rounds.  At the true consensus every sample count is ``ell``
    every round, so the trend is steady and the majority fallback holds the
    consensus — the stability window just confirms it empirically.  Returns
    the first round of the stable window, or ``None`` if the budget ran out.
    """
    state = initial_memory_state(n, z, x0, ell, rng)
    target = n * z if z == 1 else 0
    stable_since: int | None = None
    for t in range(1, max_rounds + 1):
        state = step_memory_protocol(state, z, ell, rng)
        at_consensus = int(state.opinions.sum()) == target
        if at_consensus:
            if stable_since is None:
                stable_since = t
            if t - stable_since + 1 >= stability_rounds:
                return stable_since
        else:
            stable_since = None
    return None
