"""A population-protocol engine, and the escape hatch the paper contrasts with.

Section 1.3 notes that [22] solves bit-dissemination with *constant-size
memory* in the population-protocol model — but that model uses *active*
communication: an interaction reveals the full state of both parties, not
just a binary opinion.  This module provides:

* a general pairwise population-protocol engine (states + transition
  function, uniformly random ordered pairs, [18]); and
* ``source_broadcast_protocol`` — a one-bit epidemic in which agents carry
  an ``informed`` flag besides their opinion.  The source is always
  informed; informed agents overwrite the opinion of whoever they meet and
  inform them.  It converges in ``O(n log n)`` interactions = ``O(log n)``
  parallel time from any initial configuration.

This is intentionally *simpler* than [22]'s construction (which also
self-stabilizes the informed flags themselves); the flags here are reset by
the adversary like all other state, and the protocol still converges because
the source re-seeds the epidemic.  What matters for experiment E12 is the
model separation it demonstrates: constant memory plus active communication
beats the memory-less passive lower bound by an exponential factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

import numpy as np

__all__ = [
    "PopulationProtocol",
    "PopulationRun",
    "run_population_protocol",
    "source_broadcast_protocol",
    "broadcast_initial_states",
    "broadcast_opinion",
]

SOURCE_INDEX = 0

# delta(initiator_state, responder_state) -> (initiator_state', responder_state')
TransitionFunction = Callable[[int, int], Tuple[int, int]]


@dataclass(frozen=True)
class PopulationProtocol:
    """A population protocol: finite states and a pairwise transition function.

    Attributes:
        states: number of states.
        delta: the interaction rule on ordered pairs (initiator, responder).
        output: map from state to binary opinion (what an observer "sees").
        name: label for experiment output.
    """

    states: int
    delta: TransitionFunction
    output: Callable[[int], int]
    name: str = "population-protocol"

    def transition_table(self) -> np.ndarray:
        """Materialize delta as an ``(states, states, 2)`` integer table."""
        table = np.empty((self.states, self.states, 2), dtype=np.int64)
        for a in range(self.states):
            for b in range(self.states):
                new_a, new_b = self.delta(a, b)
                if not (0 <= new_a < self.states and 0 <= new_b < self.states):
                    raise ValueError(
                        f"delta({a}, {b}) = ({new_a}, {new_b}) leaves the "
                        f"state space [0, {self.states})"
                    )
                table[a, b] = (new_a, new_b)
        return table


@dataclass(frozen=True)
class PopulationRun:
    """Outcome of a population-protocol run.

    Attributes:
        converged: all agents output the target opinion at the end.
        interactions: pairwise interactions executed.
        final_states: the final state vector.
    """

    converged: bool
    interactions: int
    final_states: np.ndarray

    def parallel_time(self, n: int) -> float:
        """Interactions divided by ``n`` (the standard parallel-time unit)."""
        return self.interactions / n


def run_population_protocol(
    protocol: PopulationProtocol,
    states: np.ndarray,
    target_opinion: int,
    max_interactions: int,
    rng: np.random.Generator,
    source_state: int | None = None,
    check_every: int = 64,
) -> PopulationRun:
    """Run the uniform random scheduler until consensus on ``target_opinion``.

    Each step picks an ordered pair of distinct agents uniformly at random
    and applies ``delta``.  If ``source_state`` is given, agent 0 is a source
    whose state is pinned back after every interaction (the model's analogue
    of the never-changing informed agent).  Convergence is checked every
    ``check_every`` interactions (outputs, not states, must agree).
    """
    states = np.asarray(states, dtype=np.int64).copy()
    n = len(states)
    if n < 2:
        raise ValueError(f"need at least 2 agents, got {n}")
    table = protocol.transition_table()
    outputs = np.array([protocol.output(s) for s in range(protocol.states)])
    if source_state is not None:
        states[SOURCE_INDEX] = source_state

    interactions = 0
    while interactions < max_interactions:
        block = min(check_every, max_interactions - interactions)
        initiators = rng.integers(0, n, size=block)
        responders = rng.integers(0, n - 1, size=block)
        responders[responders >= initiators] += 1  # distinct pair, uniform
        for i, j in zip(initiators, responders):
            new_i, new_j = table[states[i], states[j]]
            states[i] = new_i
            states[j] = new_j
            if source_state is not None:
                states[SOURCE_INDEX] = source_state
        interactions += block
        if np.all(outputs[states] == target_opinion):
            return PopulationRun(
                converged=True, interactions=interactions, final_states=states
            )
    return PopulationRun(
        converged=False, interactions=interactions, final_states=states
    )


# ----------------------------------------------------------------------
# The source-broadcast protocol: 4 states = (opinion, informed) pairs.
# ----------------------------------------------------------------------

def _encode(opinion: int, informed: int) -> int:
    return opinion * 2 + informed


def broadcast_opinion(state: int) -> int:
    return state // 2


def source_broadcast_protocol() -> PopulationProtocol:
    """One-bit epidemic with an informed flag (4 states).

    Interaction rule: if exactly one party is informed, the uninformed party
    adopts the informed party's opinion and becomes informed; two informed
    parties, or two uninformed parties, do nothing.  The source stays pinned
    to (correct opinion, informed), so the epidemic always restarts from it
    regardless of adversarial initialization of flags and opinions.
    """

    def delta(a: int, b: int) -> Tuple[int, int]:
        opinion_a, informed_a = a // 2, a % 2
        opinion_b, informed_b = b // 2, b % 2
        if informed_a and not informed_b:
            return a, _encode(opinion_a, 1)
        if informed_b and not informed_a:
            return _encode(opinion_b, 1), b
        return a, b

    return PopulationProtocol(
        states=4,
        delta=delta,
        output=broadcast_opinion,
        name="source-broadcast",
    )


def broadcast_initial_states(
    n: int,
    z: int,
    rng: np.random.Generator,
    adversarial_informed: bool = True,
) -> np.ndarray:
    """An adversarial initial state vector for the broadcast protocol.

    Every non-source agent holds the wrong opinion; with
    ``adversarial_informed`` they are additionally all (falsely) informed —
    the worst case, since false positives never listen.  Convergence then
    relies on informed-informed interactions doing nothing while the flags,
    in this simplified protocol, never reset; that worst case therefore
    *fails*, exactly the gap [22] closes with flag recycling.  Benchmarks use
    ``adversarial_informed=False`` (flags cleared, opinions adversarial) for
    the convergent demonstration and the flag-stuck case for the documented
    limitation.
    """
    if z not in (0, 1):
        raise ValueError(f"z must be 0 or 1, got {z}")
    wrong = 1 - z
    informed = 1 if adversarial_informed else 0
    states = np.full(n, _encode(wrong, informed), dtype=np.int64)
    states[SOURCE_INDEX] = _encode(z, 1)
    return states
