"""The undecided-state dynamics (USD) with a source — a third-state contrast.

The paper's introduction lists the undecided-state dynamics among the
classical small-sample opinion dynamics.  USD agents display one of three
signals — opinion 0, opinion 1, or *undecided* — and on observing a single
uniform sample:

* a decided agent meeting the opposite opinion becomes undecided;
* an undecided agent adopts any decided opinion it sees;
* all other meetings change nothing.

USD does not fit the paper's framework (the undecided signal is a third
displayed value, i.e. strictly more communication than one bit), which is
exactly why it is interesting as a contrast: one extra signal value buys
majority-consensus in ``O(log n)`` parallel rounds.  With a source pinned
to the correct opinion, the correct consensus is absorbing while the wrong
one is not — the source erodes it — so bit-dissemination is eventually
solved, but the erosion route through the wrong quasi-consensus is *slow*
(source-paced), mirroring the paper's broader point that small samples pay
a near-linear toll somewhere.

Implemented at the count level: the population state is the triple
``(ones, zeros, undecided)`` and one parallel round is three multinomial
draws, exact in distribution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["UndecidedState", "initial_undecided_state", "step_undecided", "run_undecided"]


@dataclass(frozen=True)
class UndecidedState:
    """Counts of the three displayed signals, source included.

    Attributes:
        n: population size.
        z: the source's (correct) opinion.
        ones/zeros/undecided: displayed-signal counts summing to ``n``.
    """

    n: int
    z: int
    ones: int
    zeros: int
    undecided: int

    def __post_init__(self) -> None:
        if self.ones + self.zeros + self.undecided != self.n:
            raise ValueError(
                f"counts must sum to n={self.n}, got "
                f"{self.ones}+{self.zeros}+{self.undecided}"
            )
        if min(self.ones, self.zeros, self.undecided) < 0:
            raise ValueError("counts must be non-negative")
        if self.z not in (0, 1):
            raise ValueError(f"z must be 0 or 1, got {self.z}")
        source_count = self.ones if self.z == 1 else self.zeros
        if source_count < 1:
            raise ValueError("the source's opinion class cannot be empty")

    @property
    def correct_count(self) -> int:
        return self.ones if self.z == 1 else self.zeros

    @property
    def is_correct_consensus(self) -> bool:
        return self.correct_count == self.n


def initial_undecided_state(
    n: int, z: int, ones: int, undecided: int
) -> UndecidedState:
    """Build a state from the counts of ones and undecided (zeros implied)."""
    return UndecidedState(
        n=n, z=z, ones=ones, zeros=n - ones - undecided, undecided=undecided
    )


def step_undecided(
    state: UndecidedState, rng: np.random.Generator
) -> UndecidedState:
    """One parallel round of USD at the count level.

    Each non-source agent samples one uniform agent (source included) and
    applies the USD rule; the draw per class is multinomial over observed
    signals.  The source never changes.
    """
    n, z = state.n, state.z
    probabilities = np.array(
        [state.ones / n, state.zeros / n, state.undecided / n]
    )
    non_source_ones = state.ones - (1 if z == 1 else 0)
    non_source_zeros = state.zeros - (1 if z == 0 else 0)

    # Decided agents become undecided when they observe the opposite opinion.
    ones_seeing = rng.multinomial(non_source_ones, probabilities)
    zeros_seeing = rng.multinomial(non_source_zeros, probabilities)
    # Undecided agents adopt any decided opinion they observe.
    undecided_seeing = rng.multinomial(state.undecided, probabilities)

    new_ones = (
        (1 if z == 1 else 0)
        + (non_source_ones - ones_seeing[1])  # ones that did not meet a zero
        + undecided_seeing[0]
    )
    new_zeros = (
        (1 if z == 0 else 0)
        + (non_source_zeros - zeros_seeing[0])
        + undecided_seeing[1]
    )
    new_undecided = ones_seeing[1] + zeros_seeing[0] + undecided_seeing[2]
    return UndecidedState(
        n=n, z=z, ones=int(new_ones), zeros=int(new_zeros), undecided=int(new_undecided)
    )


def run_undecided(
    state: UndecidedState,
    max_rounds: int,
    rng: np.random.Generator,
) -> tuple[bool, int, UndecidedState]:
    """Run USD until the correct consensus (absorbing) or the round budget.

    Returns ``(converged, rounds, final_state)``.
    """
    for t in range(max_rounds + 1):
        if state.is_correct_consensus:
            return True, t, state
        if t == max_rounds:
            break
        state = step_undecided(state, rng)
    return False, max_rounds, state
