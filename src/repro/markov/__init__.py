"""Markov-chain substrate: exact chains, birth-death analysis, martingale tools."""

from repro.markov.birth_death import BirthDeathChain, sequential_birth_death_chain
from repro.markov.chain import FiniteMarkovChain
from repro.markov.concentration import (
    azuma_tail,
    azuma_with_jumps_tail,
    empirical_tail_frequency,
    hoeffding_tail,
    hoeffding_two_sided,
)
from repro.markov.coupling import is_stochastically_monotone, tables_are_monotone
from repro.markov.doob import DoobDecomposition, count_chain_doob, doob_decomposition
from repro.markov.escape import EscapeProblem, EscapeVerdict, verify_escape_theorem
from repro.markov.absorption_time import (
    AbsorptionCdf,
    absorption_time_cdf,
    exceedance_probability,
)
from repro.markov.large_deviations import bernoulli_kl, quasi_potential, step_rate
from repro.markov.quasistationary import QuasiStationary, quasi_stationary
from repro.markov.sequential_bound import SequentialWorstCase, sequential_worst_case
from repro.markov.spectral import (
    SpectralSummary,
    mixing_time,
    spectral_summary,
    total_variation_distance,
)
from repro.markov.exact import (
    count_chain,
    exact_expected_convergence_time,
    transition_row,
)

__all__ = [
    "FiniteMarkovChain",
    "BirthDeathChain",
    "sequential_birth_death_chain",
    "transition_row",
    "count_chain",
    "exact_expected_convergence_time",
    "DoobDecomposition",
    "doob_decomposition",
    "count_chain_doob",
    "hoeffding_tail",
    "hoeffding_two_sided",
    "azuma_tail",
    "azuma_with_jumps_tail",
    "empirical_tail_frequency",
    "EscapeProblem",
    "EscapeVerdict",
    "verify_escape_theorem",
    "SpectralSummary",
    "spectral_summary",
    "total_variation_distance",
    "mixing_time",
    "QuasiStationary",
    "quasi_stationary",
    "AbsorptionCdf",
    "absorption_time_cdf",
    "exceedance_probability",
    "bernoulli_kl",
    "step_rate",
    "quasi_potential",
    "tables_are_monotone",
    "is_stochastically_monotone",
    "SequentialWorstCase",
    "sequential_worst_case",
]
