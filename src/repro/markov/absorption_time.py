"""Exact distribution of the convergence time (phase-type analysis).

For the exact count chain the convergence time ``tau`` is a discrete
phase-type random variable: ``P(tau <= t)`` is the mass that ``t``
distribution pushes place on the target set.  Computing the CDF exactly
turns the paper's "with high probability" statements into *checkable
identities* at small ``n`` — e.g. Theorem 2's
``P(tau_voter > 2 n ln n) <= 1/n`` is verified here with zero Monte-Carlo
error, for every admissible starting configuration at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from repro.markov.chain import FiniteMarkovChain

__all__ = ["AbsorptionCdf", "absorption_time_cdf", "exceedance_probability"]


@dataclass(frozen=True)
class AbsorptionCdf:
    """The exact law of the hitting time of a target set.

    Attributes:
        horizon: the largest time the CDF was computed to.
        cdf: array of length ``horizon + 1``; ``cdf[t] = P(tau <= t)``.
    """

    horizon: int
    cdf: np.ndarray

    def exceedance(self, t: int) -> float:
        """``P(tau > t)`` (t within the computed horizon)."""
        if not 0 <= t <= self.horizon:
            raise ValueError(f"t must lie in [0, {self.horizon}], got {t}")
        return float(1.0 - self.cdf[t])

    def quantile(self, q: float) -> Optional[int]:
        """Smallest ``t`` with ``P(tau <= t) >= q``, or None beyond horizon."""
        if not 0.0 < q < 1.0:
            raise ValueError(f"q must lie in (0, 1), got {q}")
        reached = np.nonzero(self.cdf >= q)[0]
        return int(reached[0]) if len(reached) else None

    def expected_value_lower_bound(self) -> float:
        """``sum_t P(tau > t)`` truncated at the horizon (a lower bound on E[tau])."""
        return float(np.sum(1.0 - self.cdf[:-1]) + (1.0 - self.cdf[0]) * 0)


def absorption_time_cdf(
    chain: FiniteMarkovChain,
    targets: Iterable[int],
    start: int,
    horizon: int,
) -> AbsorptionCdf:
    """Exact ``P(tau <= t)`` for ``t = 0..horizon`` from a single start.

    Implemented by pushing the sub-distribution on non-target states through
    the restricted matrix: the escaping mass per step is the hitting-time
    pmf.  Cost: ``horizon`` sparse-ish matrix-vector products.
    """
    if horizon < 0:
        raise ValueError(f"horizon must be >= 0, got {horizon}")
    if not 0 <= start < chain.size:
        raise ValueError(f"start must lie in [0, {chain.size - 1}], got {start}")
    target_mask = np.zeros(chain.size, dtype=bool)
    for t in targets:
        if not 0 <= t < chain.size:
            raise ValueError(f"target {t} outside [0, {chain.size - 1}]")
        target_mask[t] = True
    others = np.nonzero(~target_mask)[0]
    cdf = np.empty(horizon + 1)
    if target_mask[start]:
        cdf[:] = 1.0
        return AbsorptionCdf(horizon=horizon, cdf=cdf)
    restricted = chain.transition[np.ix_(others, others)]
    index_of = {state: i for i, state in enumerate(others)}
    mass = np.zeros(len(others))
    mass[index_of[start]] = 1.0
    cdf[0] = 0.0
    for t in range(1, horizon + 1):
        mass = mass @ restricted
        cdf[t] = 1.0 - float(mass.sum())
    return AbsorptionCdf(horizon=horizon, cdf=cdf)


def exceedance_probability(
    chain: FiniteMarkovChain,
    targets: Iterable[int],
    horizon: int,
) -> np.ndarray:
    """``P(tau > horizon)`` from *every* state simultaneously.

    One backward recursion: ``u_0 = 1`` off the targets, ``u_{t+1} = Q u_t``
    on the restricted block.  Used to check w.h.p. statements uniformly over
    all admissible starting configurations.
    """
    if horizon < 0:
        raise ValueError(f"horizon must be >= 0, got {horizon}")
    target_mask = np.zeros(chain.size, dtype=bool)
    for t in targets:
        target_mask[t] = True
    others = np.nonzero(~target_mask)[0]
    restricted = chain.transition[np.ix_(others, others)]
    survival = np.ones(len(others))
    for _ in range(horizon):
        survival = restricted @ survival
    result = np.zeros(chain.size)
    result[others] = survival
    return result
