"""Birth-death chains: the structure of the sequential setting.

In the sequential setting the count changes by at most one per activation,
so — *whatever the protocol* — the process is a birth-death chain.  All of
[14]'s sequential results rest on this observation (Section 1, "Previous
works").  This module provides the classical closed-form analysis: exact
expected hitting times and ruin probabilities from the up/down probability
profiles, plus a converter from a protocol to its sequential birth-death
chain.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.protocol import Protocol
from repro.dynamics.config import Configuration
from repro.dynamics.sequential import sequential_transition_probabilities

__all__ = ["BirthDeathChain", "sequential_birth_death_chain"]


@dataclass(frozen=True)
class BirthDeathChain:
    """A birth-death chain on ``{0, ..., N}``.

    Attributes:
        up: ``up[x] = P(x -> x+1)`` (``up[N]`` must be 0).
        down: ``down[x] = P(x -> x-1)`` (``down[0]`` must be 0).

    Holding probabilities are ``1 - up - down``.
    """

    up: np.ndarray
    down: np.ndarray

    def __post_init__(self) -> None:
        up = np.asarray(self.up, dtype=float)
        down = np.asarray(self.down, dtype=float)
        if up.shape != down.shape or up.ndim != 1:
            raise ValueError(
                f"up and down must be equal-length vectors, got {up.shape} "
                f"and {down.shape}"
            )
        if np.any(up < 0) or np.any(down < 0) or np.any(up + down > 1 + 1e-12):
            raise ValueError("up/down probabilities must be >= 0 with up + down <= 1")
        if up[-1] != 0.0:
            raise ValueError("up[N] must be 0 (no move past the top state)")
        if down[0] != 0.0:
            raise ValueError("down[0] must be 0 (no move below the bottom state)")
        object.__setattr__(self, "up", up)
        object.__setattr__(self, "down", down)
        up.setflags(write=False)
        down.setflags(write=False)

    @property
    def size(self) -> int:
        return len(self.up)

    # ------------------------------------------------------------------
    # Closed-form hitting analysis
    # ------------------------------------------------------------------

    def expected_time_to_top(self, start: int) -> float:
        """Exact ``E[steps to reach N]`` from ``start``.

        Uses the standard ladder identity: with
        ``rho_j = down[j] / up[j]`` and

            E[T_{x -> x+1}] = (1 / up[x]) + (down[x] / up[x]) E[T_{x-1 -> x}],

        accumulated bottom-up.  States with ``up[x] = 0`` below the top make
        the expectation infinite (the chain can get stuck under the target).
        """
        n_top = self.size - 1
        if not 0 <= start <= n_top:
            raise ValueError(f"start must lie in [0, {n_top}], got {start}")
        if start == n_top:
            return 0.0
        expected_up_step = np.zeros(n_top)  # E[T_{x -> x+1}]
        for x in range(n_top):
            if self.up[x] == 0.0:
                expected_up_step[x] = np.inf
                continue
            previous = expected_up_step[x - 1] if x > 0 else 0.0
            if self.down[x] == 0.0:
                # The chain cannot fall back from x, so an infinite time
                # below x (unreachable region) is irrelevant: avoid 0 * inf.
                expected_up_step[x] = 1.0 / self.up[x]
            else:
                expected_up_step[x] = (1.0 + self.down[x] * previous) / self.up[x]
        return float(np.sum(expected_up_step[start:n_top]))

    def expected_times_to_top(self) -> np.ndarray:
        """``E[steps to reach N]`` from every start, in one O(N) pass.

        Shares the ladder accumulation of :meth:`expected_time_to_top`:
        the time from ``start`` is the suffix sum of the per-rung times.
        """
        n_top = self.size - 1
        expected_up_step = np.zeros(n_top)
        for x in range(n_top):
            if self.up[x] == 0.0:
                expected_up_step[x] = np.inf
                continue
            previous = expected_up_step[x - 1] if x > 0 else 0.0
            if self.down[x] == 0.0:
                expected_up_step[x] = 1.0 / self.up[x]
            else:
                expected_up_step[x] = (1.0 + self.down[x] * previous) / self.up[x]
        suffix = np.concatenate([np.cumsum(expected_up_step[::-1])[::-1], [0.0]])
        return suffix

    def expected_time_to_bottom(self, start: int) -> float:
        """Exact ``E[steps to reach 0]`` from ``start`` (mirror of the above)."""
        return self.reverse().expected_time_to_top(self.size - 1 - start)

    def expected_times_to_bottom(self) -> np.ndarray:
        """``E[steps to reach 0]`` from every start (mirror, one pass)."""
        return self.reverse().expected_times_to_top()[::-1].copy()

    def ruin_probability(self, start: int) -> float:
        """P(reach 0 before N) from ``start`` (the classical gambler's ruin).

        With ``rho_j = down[j] / up[j]`` and ``pi_k = prod_{j<=k} rho_j``:

            P(ruin from x) = sum_{k=x}^{N-1} pi_k / sum_{k=0}^{N-1} pi_k

        where ``pi`` products run over interior states.  Computed in log
        space to survive the huge products of strongly drifted chains.
        """
        n_top = self.size - 1
        if not 0 <= start <= n_top:
            raise ValueError(f"start must lie in [0, {n_top}], got {start}")
        if start == 0:
            return 1.0
        if start == n_top:
            return 0.0
        interior_up = self.up[1:n_top]
        interior_down = self.down[1:n_top]
        if np.any(interior_up == 0.0) or np.any(interior_down == 0.0):
            raise ValueError(
                "ruin probability requires strictly positive interior "
                "up/down probabilities"
            )
        log_rho = np.log(interior_down) - np.log(interior_up)
        log_pi = np.concatenate([[0.0], np.cumsum(log_rho)])  # pi_0 = 1
        log_pi -= log_pi.max()  # stabilize
        pi = np.exp(log_pi)
        total = pi.sum()
        return float(pi[start:].sum() / total)

    def reverse(self) -> "BirthDeathChain":
        """The chain with the state axis flipped (top <-> bottom)."""
        return BirthDeathChain(up=self.down[::-1].copy(), down=self.up[::-1].copy())

    def transition_matrix(self) -> np.ndarray:
        """Materialize the full tridiagonal transition matrix."""
        size = self.size
        matrix = np.zeros((size, size))
        for x in range(size):
            if self.up[x] > 0:
                matrix[x, x + 1] = self.up[x]
            if self.down[x] > 0:
                matrix[x, x - 1] = self.down[x]
            matrix[x, x] = 1.0 - self.up[x] - self.down[x]
        return matrix


def sequential_birth_death_chain(
    protocol: Protocol, n: int, z: int
) -> BirthDeathChain:
    """The birth-death chain induced by ``protocol`` in the sequential setting.

    States are counts ``0..n``; inadmissible counts (disagreeing with the
    source's contribution) are frozen with ``up = down = 0``.
    """
    low, high = Configuration.count_bounds(n, z)
    up = np.zeros(n + 1)
    down = np.zeros(n + 1)
    for x in range(low, high + 1):
        p_up, p_down = sequential_transition_probabilities(protocol, n, z, x)
        if x < n:
            up[x] = p_up
        if x > 0:
            down[x] = p_down
    return BirthDeathChain(up=up, down=down)
