"""Generic finite Markov chains on ``{0, ..., N}``.

A small, dependency-free substrate used by the exact count chain
(:mod:`repro.markov.exact`) and the birth-death chain of the sequential
setting: transition-matrix validation, simulation, absorbing-state analysis,
exact hitting times and hitting probabilities via linear solves, and the
stationary distribution of ergodic chains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

__all__ = ["FiniteMarkovChain"]

_ROW_SUM_TOLERANCE = 1e-9


@dataclass(frozen=True)
class FiniteMarkovChain:
    """A time-homogeneous Markov chain given by a row-stochastic matrix.

    Attributes:
        transition: the ``(N+1) x (N+1)`` transition matrix;
            ``transition[i, j] = P(X_{t+1} = j | X_t = i)``.
    """

    transition: np.ndarray

    def __post_init__(self) -> None:
        matrix = np.asarray(self.transition, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError(f"transition matrix must be square, got {matrix.shape}")
        if np.any(matrix < -_ROW_SUM_TOLERANCE):
            raise ValueError("transition matrix has negative entries")
        row_sums = matrix.sum(axis=1)
        if np.any(np.abs(row_sums - 1.0) > _ROW_SUM_TOLERANCE):
            worst = int(np.argmax(np.abs(row_sums - 1.0)))
            raise ValueError(
                f"row {worst} of the transition matrix sums to {row_sums[worst]}, "
                "not 1"
            )
        normalized = np.clip(matrix, 0.0, None)
        normalized = normalized / normalized.sum(axis=1, keepdims=True)
        object.__setattr__(self, "transition", normalized)
        self.transition.setflags(write=False)

    @property
    def size(self) -> int:
        return self.transition.shape[0]

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def absorbing_states(self) -> np.ndarray:
        """Indices ``i`` with ``P(i, i) = 1``."""
        return np.nonzero(np.isclose(np.diag(self.transition), 1.0))[0]

    def expected_change(self, state: int) -> float:
        """One-step drift ``E[X_{t+1} - X_t | X_t = state]``."""
        states = np.arange(self.size)
        return float(self.transition[state] @ states - state)

    def step_distribution(self, distribution: np.ndarray) -> np.ndarray:
        """Push a distribution one step forward: ``mu P``."""
        mu = np.asarray(distribution, dtype=float)
        if mu.shape != (self.size,):
            raise ValueError(
                f"distribution must have shape ({self.size},), got {mu.shape}"
            )
        return mu @ self.transition

    # ------------------------------------------------------------------
    # Hitting analysis (exact, via linear solves)
    # ------------------------------------------------------------------

    def expected_hitting_times(self, targets: Iterable[int]) -> np.ndarray:
        """Expected time to reach any state in ``targets``, from every state.

        The expectation is finite exactly where the targets are hit *almost
        surely*, which is decided structurally: from state ``i`` the hit is
        a.s. iff no target-avoiding closed communicating class is reachable
        from ``i``.  On that region the standard first-step system
        ``(I - Q) h = 1`` is solved.  (Deciding almost-sureness numerically
        from hitting probabilities is unreliable for metastable chains,
        whose systems are ill-conditioned; so is the solve itself, but
        there only the magnitude suffers, not the finite/infinite verdict.)
        """
        target_set = self._target_mask(targets)
        others = np.nonzero(~target_set)[0]
        times = np.zeros(self.size)
        if len(others) == 0:
            return times
        certain = self.hits_almost_surely(targets)
        solution = np.full(len(others), np.inf)
        solvable = certain[others]
        if solvable.any():
            idx = np.nonzero(solvable)[0]
            # From an almost-surely-hitting state, transitions into the
            # complement of the almost-sure region have probability 0, so the
            # restricted system is exact.
            sub = np.eye(len(idx)) - self.transition[np.ix_(others[idx], others[idx])]
            rhs = np.ones(len(idx))
            values = np.linalg.solve(sub, rhs)
            if np.any(values < 0):
                # Metastable wells push the condition number past float64
                # (expected times ~1/escape-probability); redo the
                # elimination in extended precision.
                values = _solve_longdouble(sub, rhs)
            if np.any(values < 0):
                raise np.linalg.LinAlgError(
                    "hitting-time system is too ill-conditioned even in "
                    "extended precision (expected times beyond ~1e16; a "
                    "metastable well this deep should be reported as "
                    "effectively infinite by the caller)"
                )
            solution[idx] = values
        times[others] = solution
        return times

    def hits_almost_surely(self, targets: Iterable[int]) -> np.ndarray:
        """Boolean mask: from which states are the targets hit a.s.?

        A finite chain hits the targets with probability 1 from ``i`` iff
        every closed communicating class reachable from ``i`` contains a
        target (otherwise the chain can be absorbed into a target-free
        class and never return).  Closed classes are found via strongly
        connected components of the support graph.
        """
        target_set = self._target_mask(targets)
        import networkx as nx

        graph = nx.from_numpy_array(
            (self.transition > 0).astype(int), create_using=nx.DiGraph
        )
        doomed_seeds = np.zeros(self.size, dtype=bool)
        for component in nx.strongly_connected_components(graph):
            states = np.fromiter(component, dtype=int)
            if target_set[states].any():
                continue
            leaves = self.transition[states].sum(axis=1) - self.transition[
                np.ix_(states, states)
            ].sum(axis=1)
            if np.all(leaves <= 1e-15):  # closed class, no target inside
                doomed_seeds[states] = True
        # Doomed: any state that can reach a doomed closed class.
        adjacency = self.transition > 0
        doomed = doomed_seeds.copy()
        frontier = doomed_seeds.copy()
        while frontier.any():
            predecessors = adjacency[:, frontier].any(axis=1) & ~doomed
            doomed |= predecessors
            frontier = predecessors
        return ~doomed

    def eventual_hitting_probabilities(self, targets: Iterable[int]) -> np.ndarray:
        """Probability of *ever* reaching ``targets``, from every state.

        Computed as the minimal non-negative solution of the harmonic system:
        0 on states that cannot reach the targets, 1 on the targets, and the
        linear solve on the remaining (necessarily transient-relative) states
        with leaks to the cannot-reach region contributing 0.
        """
        target_set = self._target_mask(targets)
        can_reach = self._reaches_targets(target_set)
        probabilities = np.zeros(self.size)
        probabilities[target_set] = 1.0
        pending = np.nonzero(can_reach & ~target_set)[0]
        if len(pending) == 0:
            return probabilities
        # No closed recurrent class lies inside `pending` (a recurrent class
        # that reaches the targets would have to leave itself), so I - Q is
        # invertible on it.
        q = self.transition[np.ix_(pending, pending)]
        r = self.transition[pending][:, target_set].sum(axis=1)
        probabilities[pending] = np.linalg.solve(np.eye(len(pending)) - q, r)
        return np.clip(probabilities, 0.0, 1.0)

    def hitting_probabilities(self, targets: Iterable[int], avoid: Iterable[int]) -> np.ndarray:
        """Probability of reaching ``targets`` before ``avoid``, from every state.

        Standard first-step analysis: ``h = 1`` on targets, ``0`` on avoided
        states, harmonic elsewhere.
        """
        target_set = self._target_mask(targets)
        avoid_set = self._target_mask(avoid)
        if np.any(target_set & avoid_set):
            raise ValueError("targets and avoid sets must be disjoint")
        boundary = target_set | avoid_set
        others = np.nonzero(~boundary)[0]
        h = np.zeros(self.size)
        h[target_set] = 1.0
        if len(others) == 0:
            return h
        q = self.transition[np.ix_(others, others)]
        r = self.transition[others][:, target_set].sum(axis=1)
        h[others] = np.linalg.solve(np.eye(len(others)) - q, r)
        return h

    def stationary_distribution(self) -> np.ndarray:
        """The stationary distribution of an irreducible chain.

        Solved as the null space of ``P^T - I`` (normalized); raises when the
        chain has several recurrent classes (non-unique stationary vector).
        """
        matrix = self.transition.T - np.eye(self.size)
        _, singular_values, v = np.linalg.svd(matrix)
        null_dim = int(np.sum(singular_values < 1e-10))
        if null_dim != 1:
            raise ValueError(
                f"stationary distribution is not unique (null dimension "
                f"{null_dim}); the chain is reducible"
            )
        candidate = v[-1]
        candidate = np.abs(candidate)
        return candidate / candidate.sum()

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def sample_path(
        self, start: int, steps: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Simulate ``steps`` transitions from ``start``."""
        if not 0 <= start < self.size:
            raise ValueError(f"start must lie in [0, {self.size - 1}], got {start}")
        path = np.empty(steps + 1, dtype=np.int64)
        path[0] = start
        cumulative = np.cumsum(self.transition, axis=1)
        draws = rng.random(steps)
        for t in range(steps):
            path[t + 1] = int(np.searchsorted(cumulative[path[t]], draws[t]))
        return path

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _target_mask(self, targets: Iterable[int]) -> np.ndarray:
        mask = np.zeros(self.size, dtype=bool)
        for t in targets:
            if not 0 <= t < self.size:
                raise ValueError(f"state {t} outside [0, {self.size - 1}]")
            mask[t] = True
        return mask

    def _reaches_targets(self, target_set: np.ndarray) -> np.ndarray:
        """States from which the target set is reachable (backward BFS)."""
        adjacency = self.transition > 0
        reachable = target_set.copy()
        frontier = target_set.copy()
        while frontier.any():
            predecessors = adjacency[:, frontier].any(axis=1) & ~reachable
            reachable |= predecessors
            frontier = predecessors
        return reachable


def _solve_longdouble(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Gaussian elimination with partial pivoting in extended precision.

    LAPACK only offers float64; for the near-singular hitting systems of
    metastable chains the extra mantissa bits of ``np.longdouble`` (80-bit
    on x86) decide between a ~1e16 answer and a negative one.  Row
    operations are vectorized, so the O(n^3) cost stays practical for the
    exact-chain sizes this library targets.
    """
    a = np.array(matrix, dtype=np.longdouble)
    b = np.array(rhs, dtype=np.longdouble)
    size = len(b)
    order = np.arange(size)
    for col in range(size):
        pivot = col + int(np.argmax(np.abs(a[col:, col])))
        if a[pivot, col] == 0:
            raise np.linalg.LinAlgError("singular hitting-time system")
        if pivot != col:
            a[[col, pivot]] = a[[pivot, col]]
            b[[col, pivot]] = b[[pivot, col]]
        factors = a[col + 1 :, col] / a[col, col]
        a[col + 1 :, col:] -= factors[:, None] * a[col, col:]
        b[col + 1 :] -= factors * b[col]
    solution = np.zeros(size, dtype=np.longdouble)
    for row in range(size - 1, -1, -1):
        solution[row] = (b[row] - a[row, row + 1 :] @ solution[row + 1 :]) / a[row, row]
    return solution.astype(float)
