"""The concentration inequalities of Appendix A, as code.

Theorem 15 (Hoeffding) and Theorem 16 (Azuma-Hoeffding with rare large
jumps, after [29]) are the only probabilistic tools the paper uses.  The
functions here return the *bound* side of each inequality so experiments can
print "observed deviation frequency vs Hoeffding bound" rows, and so the
escape-theorem checker (:mod:`repro.markov.escape`) can instantiate the
paper's tail estimates with concrete numbers.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = [
    "hoeffding_tail",
    "hoeffding_two_sided",
    "azuma_tail",
    "azuma_with_jumps_tail",
    "empirical_tail_frequency",
]


def hoeffding_tail(n: int, delta: float) -> float:
    """Theorem 15: ``P(X <= mu - delta), P(X >= mu + delta) <= exp(-2 delta^2 / n)``.

    ``X`` is a sum of ``n`` independent ``{0,1}`` variables.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if delta < 0:
        raise ValueError(f"delta must be >= 0, got {delta}")
    return math.exp(-2.0 * delta * delta / n)


def hoeffding_two_sided(n: int, delta: float) -> float:
    """Two-sided version: ``P(|X - mu| >= delta) <= 2 exp(-2 delta^2 / n)``."""
    return min(1.0, 2.0 * hoeffding_tail(n, delta))


def azuma_tail(increments_bound: Sequence[float], delta: float) -> float:
    """Classical Azuma: ``P(|M_T - M_0| > delta) <= 2 exp(-delta^2 / (2 sum c_t^2))``.

    ``increments_bound[t]`` bounds ``|M_{t+1} - M_t|`` almost surely.
    """
    bounds = np.asarray(increments_bound, dtype=float)
    if np.any(bounds < 0):
        raise ValueError("increment bounds must be non-negative")
    denominator = 2.0 * float(np.sum(bounds * bounds))
    if denominator == 0.0:
        return 0.0 if delta > 0 else 1.0
    return min(1.0, 2.0 * math.exp(-delta * delta / denominator))


def azuma_with_jumps_tail(
    horizon: int, increment_bound: float, delta: float, jump_probability: float
) -> float:
    """Theorem 16 ([29], Section 8): Azuma allowing rare large jumps.

    If ``P(exists t <= T: M_t - M_{t-1} > c) <= p`` then

        P(|M_T - M_0| > delta) <= 2 exp(-delta^2 / (2 T c^2)) + p.

    This is the exact form used in Claim 8 of the paper, with
    ``c = n^(1/2 + eps/4)`` and ``p = 2 T exp(-2 n^(eps/2))`` supplied by the
    one-step Hoeffding bound.
    """
    if horizon < 1:
        raise ValueError(f"horizon must be >= 1, got {horizon}")
    if not 0 <= jump_probability <= 1:
        raise ValueError(f"jump_probability must lie in [0, 1], got {jump_probability}")
    base = 2.0 * math.exp(
        -delta * delta / (2.0 * horizon * increment_bound * increment_bound)
    )
    return min(1.0, base + jump_probability)


def empirical_tail_frequency(samples: np.ndarray, center: float, delta: float) -> float:
    """Fraction of ``samples`` deviating from ``center`` by more than ``delta``.

    The measured side of a Hoeffding/Azuma row in experiment output.
    """
    samples = np.asarray(samples, dtype=float)
    if samples.size == 0:
        raise ValueError("samples must be non-empty")
    return float(np.mean(np.abs(samples - center) > delta))
