"""Stochastic monotonicity of the count chain.

A chain is stochastically monotone when starting higher keeps you
(stochastically) higher: ``P(X' >= k | x)`` non-decreasing in ``x`` for
every ``k``.  For the count chain this holds whenever the protocol's
response tables are non-decreasing in the observed count and
``g1(k) >= g0(k)`` pointwise (more ones seen, or already holding 1, never
makes adopting 1 less likely) — e.g. the Voter and Majority, but *not* the
Minority, whose non-monotonicity is exactly what fuels the overshoot.

Monotonicity is what licenses worst-case reasoning like "the all-wrong
start is the slowest" (used for the Voter in the experiments); this module
provides both the table-level sufficient condition and the exact
matrix-level check, which the tests play against each other.
"""

from __future__ import annotations

import numpy as np

from repro.core.protocol import Protocol
from repro.markov.chain import FiniteMarkovChain

__all__ = [
    "tables_are_monotone",
    "is_stochastically_monotone",
]


def tables_are_monotone(protocol: Protocol, tolerance: float = 1e-12) -> bool:
    """The sufficient condition: g0, g1 non-decreasing and g1 >= g0.

    Under it, one round from a higher count dominates one round from a
    lower count (couple each agent's sample indicators monotonically).
    """
    g0_monotone = bool(np.all(np.diff(protocol.g0) >= -tolerance))
    g1_monotone = bool(np.all(np.diff(protocol.g1) >= -tolerance))
    ordered = bool(np.all(protocol.g1 - protocol.g0 >= -tolerance))
    return g0_monotone and g1_monotone and ordered


def is_stochastically_monotone(
    chain: FiniteMarkovChain, tolerance: float = 1e-9
) -> bool:
    """Exact check on the transition matrix.

    ``P(X' >= k | x)`` must be non-decreasing in ``x`` for every ``k``:
    equivalently every column of the row-wise survival matrix is sorted.
    """
    survival = 1.0 - np.cumsum(chain.transition, axis=1)
    # survival[x, k] = P(X' > k | x); monotone along x for each k.
    differences = np.diff(survival, axis=0)
    return bool(np.all(differences >= -tolerance))
