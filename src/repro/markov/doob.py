"""Doob decomposition of observed trajectories (the Figure-1 machinery).

The proof of Theorem 6 rewrites the shifted chain ``Y_t = X_t - t`` as
``Y_t = M_t + A_t`` with ``M`` a martingale and ``A`` the predictable
compensator; on the supermartingale interval ``A`` is non-increasing, so
``Y`` can never overtake ``M`` (Claim 7), while Azuma's inequality confines
``M`` near its start for ``n^(1-eps)`` rounds (Claim 8).

Because the one-step drift of the count chain is available in closed form
(:func:`repro.core.bias.expected_next_count`), the decomposition of a
*simulated* trajectory can be computed exactly, and the Figure-1 experiment
plots the resulting ``X_t``, ``M_t + t`` and confinement band as data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.bias import expected_next_count
from repro.core.protocol import Protocol

__all__ = ["DoobDecomposition", "doob_decomposition", "count_chain_doob"]

DriftFunction = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class DoobDecomposition:
    """The decomposition ``Y_t = M_t + A_t`` of a trajectory.

    Attributes:
        path: the observed trajectory ``Y_0..Y_T``.
        martingale: ``M_t = Y_0 + sum_{k<=t} (Y_k - E[Y_k | Y_{k-1}])``.
        compensator: ``A_t = sum_{k<=t} (E[Y_k | Y_{k-1}] - Y_{k-1})``
            (predictable; ``A_0 = 0``).
    """

    path: np.ndarray
    martingale: np.ndarray
    compensator: np.ndarray

    def reconstruction_error(self) -> float:
        """``max_t |Y_t - (M_t + A_t)|`` — zero up to float rounding."""
        return float(np.max(np.abs(self.path - (self.martingale + self.compensator))))

    def increments(self) -> np.ndarray:
        """Martingale increments ``M_{t+1} - M_t`` (inputs to Azuma bounds)."""
        return np.diff(self.martingale)


def doob_decomposition(path: np.ndarray, drift: DriftFunction) -> DoobDecomposition:
    """Decompose an observed path given its exact one-step drift function.

    Args:
        path: the trajectory ``Y_0..Y_T`` (1-D array).
        drift: vectorized map ``y -> E[Y_{t+1} | Y_t = y]``.
    """
    path = np.asarray(path, dtype=float)
    if path.ndim != 1 or len(path) < 1:
        raise ValueError(f"path must be a non-empty 1-D array, got shape {path.shape}")
    if len(path) == 1:
        return DoobDecomposition(
            path=path, martingale=path.copy(), compensator=np.zeros(1)
        )
    conditional_means = np.asarray(drift(path[:-1]), dtype=float)
    compensator_steps = conditional_means - path[:-1]
    martingale_steps = path[1:] - conditional_means
    compensator = np.concatenate([[0.0], np.cumsum(compensator_steps)])
    martingale = np.concatenate([[path[0]], path[0] + np.cumsum(martingale_steps)])
    return DoobDecomposition(
        path=path, martingale=martingale, compensator=compensator
    )


def count_chain_doob(
    protocol: Protocol, n: int, z: int, counts: np.ndarray, shifted: bool = True
) -> DoobDecomposition:
    """Doob decomposition of a count trajectory of the parallel chain.

    With ``shifted=True`` (the paper's choice) the decomposition is applied
    to ``Y_t = X_t - t``, whose drift is
    ``E[Y_{t+1} | Y_t] = E[X_{t+1} | X_t] - (t + 1)``; the time shift makes
    the drift condition of Theorem 6 (``E[X'] <= x + 1``) exactly the
    supermartingale property of ``Y``.
    """
    counts = np.asarray(counts, dtype=float)
    if not shifted:
        return doob_decomposition(
            counts, lambda x: np.asarray(expected_next_count(protocol, n, z, x))
        )
    times = np.arange(len(counts), dtype=float)
    shifted_path = counts - times
    # The drift of Y depends on t through the shift; decompose manually so
    # the conditional mean at step k uses X_k = Y_k + k.
    if len(counts) == 1:
        return DoobDecomposition(
            path=shifted_path,
            martingale=shifted_path.copy(),
            compensator=np.zeros(1),
        )
    x_means = np.asarray(expected_next_count(protocol, n, z, counts[:-1]))
    y_means = x_means - times[1:]
    compensator_steps = y_means - shifted_path[:-1]
    martingale_steps = shifted_path[1:] - y_means
    compensator = np.concatenate([[0.0], np.cumsum(compensator_steps)])
    martingale = np.concatenate(
        [[shifted_path[0]], shifted_path[0] + np.cumsum(martingale_steps)]
    )
    return DoobDecomposition(
        path=shifted_path, martingale=martingale, compensator=compensator
    )
