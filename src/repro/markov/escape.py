"""Theorem 6 / Corollary 10 as an executable checker on arbitrary chains.

The paper's escape theorem is stated for a general Markov chain on the
integers, not just the count chain; this module keeps that generality.
Given a chain description — a drift function plus an interval — it verifies
the three assumptions numerically and assembles the paper's quantitative
conclusion:

    starting from the middle of ``[a2 n, a3 n]``, the chain stays below
    ``a3 n`` for at least ``T = n^(1-eps)`` rounds, except with probability
    ``o(1)`` (the explicit union-bound expression of Claims 8 and 9).

The count-chain-specific instantiation lives in
:mod:`repro.core.lower_bound`; this checker is the black box it calls into
conceptually, and is exercised directly by the Figure-1 experiment and by
property tests on synthetic chains.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.markov.concentration import azuma_with_jumps_tail
from repro.telemetry import NULL_RECORDER, Recorder, span

__all__ = ["EscapeProblem", "EscapeVerdict", "verify_escape_theorem"]

DriftFunction = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class EscapeProblem:
    """An instance of Theorem 6's hypotheses.

    Attributes:
        n: the scale parameter.
        a1, a2, a3: the interval constants, ``a1 < a2 < a3``.
        epsilon: the exponent gap (``T = n^(1-eps)``).
        drift: vectorized ``x -> E[X_{t+1} | X_t = x]``.
        jump_tail: analytic bound on
            ``P(X_{t+1} > a2 n | X_t = x)`` over ``x < a1 n`` (assumption ii).
        step_tail: analytic bound on
            ``P(|X_{t+1} - E[X_{t+1}|X_t]| > n^(1/2 + eps/4))`` (assumption iii).
        increment_variance_proxy: sub-Gaussian variance proxy of one
            martingale increment conditioned on the past.  Defaults to
            ``n / 4``, which is exact (Hoeffding's lemma) for the count
            chain, whose one-step value is a sum of at most ``n``
            independent indicators.  Used by the sharpened confinement
            bound; set to ``None`` to fall back to the paper-literal
            worst-case-increment Azuma.
    """

    n: int
    a1: float
    a2: float
    a3: float
    epsilon: float
    drift: DriftFunction
    jump_tail: float
    step_tail: float
    increment_variance_proxy: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.a1 < self.a2 < self.a3:
            raise ValueError(
                f"need a1 < a2 < a3, got {self.a1}, {self.a2}, {self.a3}"
            )
        if not 0 < self.epsilon < 1:
            raise ValueError(f"epsilon must lie in (0, 1), got {self.epsilon}")
        if self.n < 2:
            raise ValueError(f"n must be >= 2, got {self.n}")

    @property
    def horizon(self) -> int:
        """``T = n^(1-eps)`` (rounded down)."""
        return max(1, int(self.n ** (1.0 - self.epsilon)))

    @property
    def start(self) -> int:
        """Theorem 6's starting state ``(a2 + a3) n / 2``."""
        return int(round((self.a2 + self.a3) / 2.0 * self.n))


@dataclass(frozen=True)
class EscapeVerdict:
    """Outcome of checking Theorem 6's assumptions and conclusion.

    Attributes:
        drift_ok: assumption (i) holds at every integer state in
            ``[a1 n, a3 n]`` (checked exactly against the drift function).
        worst_drift_margin: minimum of ``x + 1 - E[X'|x]`` over the interval.
        failure_probability: explicit union-bound on the probability that the
            chain escapes past ``a3 n`` within ``T`` rounds — the sum of the
            Claim-8 confinement tail (Azuma with rare jumps) and the Claim-9
            no-skip tail (``T`` times the assumption-(ii) bound).
        horizon: the protected number of rounds ``T``.
    """

    drift_ok: bool
    worst_drift_margin: float
    failure_probability: float
    horizon: int

    @property
    def holds_whp(self) -> bool:
        return self.drift_ok and self.failure_probability < 0.5


def verify_escape_theorem(
    problem: EscapeProblem, recorder: Recorder = NULL_RECORDER
) -> EscapeVerdict:
    """Check assumptions (i)-(iii) and assemble the explicit failure bound.

    Mirrors the proof: assumption (i) is verified pointwise; the martingale
    ``M_t`` must wander ``alpha n`` (with ``alpha = (a3 - a2)/4``) to exit
    the confinement band; the chain skipping the interval from below costs
    ``T`` times the assumption-(ii) tail (union bound).

    For the confinement tail, two bounds are computed and the smaller used:

    * the paper-literal Claim 8 — Azuma-with-jumps (Theorem 16) at the
      worst-case increment ``n^(1/2 + eps/4)``, union-bounded over rounds.
      Asymptotically ``exp(-Theta(n^(eps/2)))`` but vacuous at moderate
      ``n`` when ``alpha`` is small;
    * a sharpened version using the conditional sub-Gaussian increments
      (variance proxy ``n/4`` for the count chain, by Hoeffding's lemma)
      together with Doob's maximal inequality:
      ``P(max_{t<=T} |M_t - M_0| >= alpha n) <= 2 exp(-2 alpha^2 n^eps)``
      for ``T = n^(1-eps)`` — same theorem, usable at laptop scale.
    """
    n = problem.n
    horizon = problem.horizon
    with span(recorder, "escape_check") as timing:
        with span(recorder, "drift_scan") as drift_span:
            lo = int(math.ceil(problem.a1 * n))
            hi = int(math.floor(problem.a3 * n))
            states = np.arange(lo, hi + 1)
            drifts = np.asarray(problem.drift(states), dtype=float)
            margins = (states + 1.0) - drifts
            worst_margin = float(margins.min()) if len(margins) else float("inf")
            drift_ok = worst_margin >= 0.0
            drift_span.incr("states", int(states.size))

        with span(recorder, "tail_bounds"):
            alpha = (problem.a3 - problem.a2) / 4.0
            increment_bound = n ** (0.5 + problem.epsilon / 4.0)
            jump_probability = min(1.0, horizon * problem.step_tail)
            paper_tail = azuma_with_jumps_tail(
                horizon=horizon,
                increment_bound=increment_bound,
                delta=alpha * n,
                jump_probability=jump_probability,
            )
            paper_tail = min(1.0, horizon * paper_tail)  # Claim 8: all t <= T
            if problem.increment_variance_proxy is None:
                variance_proxy = n / 4.0
            else:
                variance_proxy = problem.increment_variance_proxy
            # Doob maximal + sub-Gaussian increments: no per-round union bound.
            sharp_exponent = (alpha * n) ** 2 / (2.0 * horizon * variance_proxy)
            sharp_tail = min(1.0, 2.0 * math.exp(-sharp_exponent))
            confinement_tail = min(paper_tail, sharp_tail)
            skip_tail = min(1.0, horizon * problem.jump_tail)
            failure = min(1.0, confinement_tail + skip_tail)
        timing.incr("horizon", horizon)
    return EscapeVerdict(
        drift_ok=drift_ok,
        worst_drift_margin=worst_margin,
        failure_probability=failure,
        horizon=horizon,
    )
