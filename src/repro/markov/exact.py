"""The exact transition matrix of the parallel count chain.

Conditioned on ``X_t = x``, the next count is ``z`` (the source) plus two
independent binomials — the surviving ones among the ``m1`` non-source
one-agents and the flips among the ``m0`` non-source zero-agents — so each
row of the transition matrix is the convolution of two binomial pmfs.  For
small ``n`` this gives the chain *exactly*, enabling:

* closed-loop validation of the sampling engines (their empirical transition
  frequencies must match these rows),
* exact expected convergence times via linear solves (no Monte-Carlo error),
* direct inspection of the Theorem-6 assumptions at every state.
"""

from __future__ import annotations

import numpy as np
from scipy.stats import binom

from repro.core.protocol import Protocol
from repro.dynamics.config import Configuration
from repro.markov.chain import FiniteMarkovChain

__all__ = [
    "transition_row",
    "count_chain",
    "exact_expected_convergence_time",
]

_MAX_EXACT_N = 4096


def transition_row(protocol: Protocol, n: int, z: int, x: int) -> np.ndarray:
    """The exact distribution of ``X_{t+1}`` given ``X_t = x`` (length ``n + 1``)."""
    low, high = Configuration.count_bounds(n, z)
    if not low <= x <= high:
        raise ValueError(f"count x must lie in [{low}, {high}] for n={n}, z={z}; got {x}")
    p0, p1 = protocol.response_probabilities(x / n)
    m1 = x - z
    m0 = n - x - (1 - z)
    ones_pmf = binom.pmf(np.arange(m1 + 1), m1, p1)
    zeros_pmf = binom.pmf(np.arange(m0 + 1), m0, p0)
    flips = np.convolve(ones_pmf, zeros_pmf)  # support 0 .. m1 + m0 = n - 1
    row = np.zeros(n + 1)
    row[z : z + len(flips)] = flips
    return row


def count_chain(protocol: Protocol, n: int, z: int) -> FiniteMarkovChain:
    """The full ``(n+1) x (n+1)`` chain of the parallel dynamics.

    States outside the admissible range ``[z, n - (1 - z)]`` (the count can
    never disagree with the source's contribution) are made absorbing
    self-loops so the matrix is stochastic; they are unreachable from
    admissible states.
    """
    if n > _MAX_EXACT_N:
        raise ValueError(
            f"exact chain construction is O(n^2) memory; n={n} exceeds the "
            f"guard {_MAX_EXACT_N} (use the sampling engines instead)"
        )
    low, high = Configuration.count_bounds(n, z)
    matrix = np.zeros((n + 1, n + 1))
    for x in range(low, high + 1):
        matrix[x] = transition_row(protocol, n, z, x)
    for x in range(0, n + 1):
        if not low <= x <= high:
            matrix[x, x] = 1.0
    return FiniteMarkovChain(matrix)


def exact_expected_convergence_time(
    protocol: Protocol, config: Configuration
) -> float:
    """Exact ``E[tau]`` from ``config`` via a linear solve on the full chain.

    Only meaningful for Proposition-3-compliant protocols (for which the
    correct consensus is absorbing and ``tau`` is its hitting time).
    Returns ``inf`` when the consensus is not reached almost surely — which
    cannot happen for compliant protocols with all response probabilities in
    ``(0, 1)`` interior, but can for degenerate tables with unreachable
    consensus (e.g. Majority from a frozen wrong consensus... Majority's
    wrong consensus is *not* absorbing thanks to the source, but the
    expected time can still be astronomically large rather than infinite).
    """
    if not protocol.satisfies_boundary_conditions(tolerance=1e-12):
        raise ValueError(
            f"protocol {protocol.name!r} violates Proposition 3; tau is infinite"
        )
    chain = count_chain(protocol, config.n, config.z)
    times = chain.expected_hitting_times([config.target_count])
    return float(times[config.x0])
