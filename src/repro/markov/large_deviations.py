"""Large deviations for the count chain: the well depth as an action.

Conditioned on ``X_t = pn``, one parallel round produces (essentially) a
mixture of two binomials, and the fraction ``X_{t+1}/n`` satisfies a large
deviation principle with the per-step rate

    I(p -> q) = min over (q1, q0) splits of
        p * KL(q1 || P1(p)) + (1-p) * KL(q0 || P0(p)),
        with p*q1 + (1-p)*q0 = q,

where ``P_b(p)`` are the response probabilities and KL is the Bernoulli
relative entropy.  The probability of an escape trajectory ``p_0..p_T``
scales like ``exp(-n * sum_t I(p_t -> p_{t+1}))``, so the depth of the
Theorem-1 well is ``exp(n * V)`` with the quasi-potential

    V = min over paths from the well bottom to the threshold of the action.

This module computes ``I`` (by convex one-dimensional minimization) and a
dynamic-programming approximation of ``V`` on a fraction grid, giving a
*predicted* exponential growth factor for the E18 well depths — an
independent third route to the same number.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np
from scipy.optimize import minimize_scalar

from repro.core.protocol import Protocol

__all__ = ["bernoulli_kl", "step_rate", "quasi_potential"]


def bernoulli_kl(q: float, p: float) -> float:
    """``KL(Bernoulli(q) || Bernoulli(p))`` with the usual conventions."""
    if not 0.0 <= q <= 1.0 or not 0.0 <= p <= 1.0:
        raise ValueError(f"arguments must lie in [0, 1], got q={q}, p={p}")
    if p in (0.0, 1.0):
        return 0.0 if q == p else float("inf")
    terms = 0.0
    if q > 0.0:
        terms += q * math.log(q / p)
    if q < 1.0:
        terms += (1.0 - q) * math.log((1.0 - q) / (1.0 - p))
    return terms


def step_rate(protocol: Protocol, p: float, q: float) -> float:
    """The one-round LDP rate ``I(p -> q)`` for the fraction chain.

    Minimizes the split of the target fraction ``q`` between the flip rates
    of the one-population (weight ``p``) and zero-population (weight
    ``1 - p``).  Convex in the split, solved by bounded scalar minimization.
    """
    if not 0.0 <= p <= 1.0 or not 0.0 <= q <= 1.0:
        raise ValueError(f"fractions must lie in [0, 1], got p={p}, q={q}")
    p0, p1 = protocol.response_probabilities(p)
    if p == 0.0:
        return bernoulli_kl(q, p0)
    if p == 1.0:
        return bernoulli_kl(q, p1)

    def cost(q1: float) -> float:
        q0 = (q - p * q1) / (1.0 - p)
        if not 0.0 <= q0 <= 1.0:
            return float("inf")
        return p * bernoulli_kl(q1, p1) + (1.0 - p) * bernoulli_kl(q0, p0)

    # Feasible q1 range keeps q0 in [0, 1].
    low = max(0.0, (q - (1.0 - p)) / p)
    high = min(1.0, q / p)
    if low > high:
        return float("inf")
    result = minimize_scalar(cost, bounds=(low, high), method="bounded")
    endpoint_best = min(cost(low), cost(high))
    return float(min(result.fun, endpoint_best))


def quasi_potential(
    protocol: Protocol,
    start: float,
    target: float,
    grid_points: int = 81,
    max_sweeps: int = 200,
) -> Tuple[float, np.ndarray]:
    """Minimal action to move the fraction from ``start`` past ``target``.

    Dynamic programming on a fraction grid: ``V[i]`` is the cheapest total
    action from grid point ``i`` to any point at or beyond ``target``
    (``V = 0`` there), relaxed by value-iteration sweeps of the step-rate
    matrix until convergence.  Returns ``(V(start), V_on_grid)``; the
    Theorem-1 well depth then scales like ``exp(n * V(start))``.
    """
    if not 0.0 <= start < target <= 1.0:
        raise ValueError(
            f"need 0 <= start < target <= 1, got start={start}, target={target}"
        )
    grid = np.linspace(0.0, 1.0, grid_points)
    rates = np.empty((grid_points, grid_points))
    for i, p in enumerate(grid):
        for j, q in enumerate(grid):
            rates[i, j] = step_rate(protocol, float(p), float(q))
    values = np.where(grid >= target, 0.0, np.inf)
    for _ in range(max_sweeps):
        candidate = (rates + values[None, :]).min(axis=1)
        candidate = np.where(grid >= target, 0.0, candidate)
        if np.allclose(candidate, values, rtol=1e-12, atol=1e-12, equal_nan=True):
            values = candidate
            break
        values = candidate
    start_index = int(np.argmin(np.abs(grid - start)))
    return float(values[start_index]), values
