"""Quasi-stationary analysis of metastable wells.

Theorem 1's slow region is, spectrally, a metastable well: the chain
restricted to the states below the escape threshold is substochastic, its
top eigenvalue ``lambda_1 < 1`` is the per-round survival probability in
quasi-stationarity, and the escape time from the well is geometric with
mean ``~ 1 / (1 - lambda_1)``.  This module computes:

* the quasi-stationary distribution (left Perron vector of the restricted
  matrix, by power iteration), and
* the escape rate ``1 - lambda_1`` and the implied mean escape time,

which the tests cross-check against the exact hitting-time solves — two
entirely different routes to the same ``exp(Omega(n))`` well depth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["QuasiStationary", "quasi_stationary"]

_MAX_ITERATIONS = 100_000
_CONVERGENCE_TOLERANCE = 1e-13


@dataclass(frozen=True)
class QuasiStationary:
    """Quasi-stationary data of a substochastic restriction.

    Attributes:
        distribution: the quasi-stationary distribution over the restricted
            states (left Perron vector, normalized).
        survival_rate: the Perron eigenvalue ``lambda_1`` — per-step
            probability of remaining in the well under quasi-stationarity.
        iterations: power-iteration steps used.
    """

    distribution: np.ndarray
    survival_rate: float
    iterations: int

    @property
    def escape_rate(self) -> float:
        return 1.0 - self.survival_rate

    @property
    def mean_escape_time(self) -> float:
        """``1 / (1 - lambda_1)`` — the geometric escape-time mean."""
        if self.escape_rate <= 0.0:
            return float("inf")
        return 1.0 / self.escape_rate


def quasi_stationary(restricted: np.ndarray) -> QuasiStationary:
    """Quasi-stationary distribution of a substochastic matrix.

    ``restricted[i, j]`` is the transition probability between well states;
    row sums at most 1, with the deficit being the per-state escape
    probability.  Power iteration on the left: ``mu <- mu Q / |mu Q|_1``;
    the normalizer converges to ``lambda_1``.
    """
    q = np.asarray(restricted, dtype=float)
    if q.ndim != 2 or q.shape[0] != q.shape[1]:
        raise ValueError(f"restricted matrix must be square, got {q.shape}")
    if np.any(q < 0) or np.any(q.sum(axis=1) > 1 + 1e-9):
        raise ValueError("restricted matrix must be substochastic")
    size = q.shape[0]
    mu = np.full(size, 1.0 / size)
    survival = 0.0
    for iteration in range(1, _MAX_ITERATIONS + 1):
        pushed = mu @ q
        mass = float(pushed.sum())
        if mass <= 0.0:
            raise ValueError("the well is escaped in one step from everywhere")
        new_mu = pushed / mass
        drift = float(np.abs(new_mu - mu).sum())
        mu = new_mu
        survival = mass
        if drift < _CONVERGENCE_TOLERANCE:
            break
    return QuasiStationary(
        distribution=mu, survival_rate=survival, iterations=iteration
    )
