"""The sequential lower bound ([14]) as an exact finite-n evaluation.

[14] proves that in the sequential setting *no* memory-less protocol
converges in fewer than ``Omega(n)`` parallel rounds in expectation,
exploiting the birth-death structure.  For a concrete protocol and size
this repository can do better than quote the asymptotic: it evaluates the
protocol's exact worst-case expected convergence time

    T_seq(P, n) = max over z, over admissible starts x0 of
                  E[activations to reach the z-consensus] / n,

from the closed-form birth-death ladder sums.  Benchmarks then exhibit
``T_seq / n`` bounded below across the entire protocol zoo — the finite-n
shadow of the theorem (for the zoo, not a proof over all protocols).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.protocol import Protocol
from repro.dynamics.config import Configuration
from repro.markov.birth_death import sequential_birth_death_chain

__all__ = ["SequentialWorstCase", "sequential_worst_case"]


@dataclass(frozen=True)
class SequentialWorstCase:
    """The exact sequential worst case of a protocol at size ``n``.

    Attributes:
        n: population size.
        parallel_rounds: worst-case expected convergence time in parallel
            rounds (activations / n), maximized over the source opinion and
            the starting count.  ``inf`` when some start can never converge.
        z: the adversarial source opinion.
        x0: the adversarial starting count.
    """

    n: int
    parallel_rounds: float
    z: int
    x0: int

    @property
    def rounds_per_n(self) -> float:
        """The [14] statistic: worst E[tau] / n (bounded below by Omega(1))."""
        return self.parallel_rounds / self.n


def sequential_worst_case(protocol: Protocol, n: int) -> SequentialWorstCase:
    """Exact worst-case sequential convergence time over (z, x0).

    For each source opinion the induced birth-death chain is analysed with
    the closed-form expected time to the absorbing consensus; the ladder
    accumulation yields the time from *every* start in one pass.
    """
    if not protocol.satisfies_boundary_conditions(tolerance=1e-12):
        raise ValueError(
            f"protocol {protocol.name!r} violates Proposition 3; its "
            "sequential convergence time is infinite everywhere"
        )
    worst = (-1.0, 1, 1)
    for z in (0, 1):
        chain = sequential_birth_death_chain(protocol, n, z)
        low, high = Configuration.count_bounds(n, z)
        if z == 1:
            all_times = chain.expected_times_to_top()
        else:
            all_times = chain.expected_times_to_bottom()
        for x0 in range(low, high + 1):
            rounds = all_times[x0] / n
            if rounds > worst[0]:
                worst = (float(rounds), z, x0)
    return SequentialWorstCase(
        n=n, parallel_rounds=worst[0], z=worst[1], x0=worst[2]
    )
