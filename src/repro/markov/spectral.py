"""Spectral analysis: relaxation and mixing estimates for finite chains.

The convergence-time language of the paper is hitting times, but the
slowness phenomena behind Theorem 1 are spectral at heart: the count chain
restricted between two roots of ``F`` behaves like a chain with a
metastable well, whose quasi-stationary escape rate is exponentially small.
This module provides the standard machinery — eigenvalue spectrum,
spectral gap, relaxation time, and total-variation mixing estimates — used
by the diagnostics and exercised against closed forms in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.markov.chain import FiniteMarkovChain

__all__ = [
    "SpectralSummary",
    "spectral_summary",
    "total_variation_distance",
    "mixing_time",
]


@dataclass(frozen=True)
class SpectralSummary:
    """Spectral data of a (sub)stochastic matrix.

    Attributes:
        eigenvalues: moduli-sorted (descending) eigenvalue moduli.
        spectral_gap: ``1 - |lambda_2|`` (second-largest modulus); for a
            reducible or periodic chain this is 0.
        relaxation_time: ``1 / gap`` (``inf`` when the gap is 0).
    """

    eigenvalues: np.ndarray
    spectral_gap: float

    @property
    def relaxation_time(self) -> float:
        if self.spectral_gap <= 0.0:
            return float("inf")
        return 1.0 / self.spectral_gap


def spectral_summary(chain: FiniteMarkovChain) -> SpectralSummary:
    """Eigenvalue moduli and the spectral gap of the chain."""
    eigenvalues = np.linalg.eigvals(chain.transition)
    moduli = np.sort(np.abs(eigenvalues))[::-1]
    # The top eigenvalue of a stochastic matrix is 1; the gap is measured
    # from the second-largest modulus.
    second = moduli[1] if len(moduli) > 1 else 0.0
    gap = max(0.0, 1.0 - float(second))
    return SpectralSummary(eigenvalues=moduli, spectral_gap=gap)


def total_variation_distance(mu: np.ndarray, nu: np.ndarray) -> float:
    """``TV(mu, nu) = (1/2) sum |mu_i - nu_i|``."""
    mu = np.asarray(mu, dtype=float)
    nu = np.asarray(nu, dtype=float)
    if mu.shape != nu.shape:
        raise ValueError(f"shape mismatch: {mu.shape} vs {nu.shape}")
    return 0.5 * float(np.abs(mu - nu).sum())


def mixing_time(
    chain: FiniteMarkovChain,
    threshold: float = 0.25,
    start: Optional[int] = None,
    max_steps: int = 100_000,
) -> int:
    """Steps until TV distance to stationarity drops below ``threshold``.

    Measured from the worst starting state (or a given one) by explicit
    distribution iteration; intended for the modest state spaces of the
    exact count chain.  Raises if the chain has no unique stationary
    distribution or if ``max_steps`` is hit.
    """
    if not 0 < threshold < 1:
        raise ValueError(f"threshold must lie in (0, 1), got {threshold}")
    pi = chain.stationary_distribution()
    starts = [start] if start is not None else list(range(chain.size))
    worst = 0
    for s in starts:
        mu = np.zeros(chain.size)
        mu[s] = 1.0
        steps = 0
        while total_variation_distance(mu, pi) > threshold:
            mu = chain.step_distribution(mu)
            steps += 1
            if steps > max_steps:
                raise RuntimeError(
                    f"TV distance still above {threshold} after {max_steps} "
                    f"steps from state {s}"
                )
        worst = max(worst, steps)
    return worst
