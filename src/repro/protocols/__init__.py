"""The protocol zoo: named memory-less dynamics from the paper and its context."""

from repro.protocols.blends import biased_voter, double_lobe, voter_minority_blend
from repro.protocols.majority import majority, majority_family
from repro.protocols.minority import (
    minority,
    minority_ell3_bias,
    minority_family,
    minority_sqrt_family,
)
from repro.protocols.parametric import contrarian_quorum, quorum
from repro.protocols.registry import available_protocols, get_family, register
from repro.protocols.two_choices import two_choices, two_choices_bias, two_choices_family
from repro.protocols.table import random_protocol, table_protocol
from repro.protocols.voter import voter, voter_family

__all__ = [
    "voter",
    "voter_family",
    "minority",
    "minority_family",
    "minority_sqrt_family",
    "minority_ell3_bias",
    "majority",
    "majority_family",
    "voter_minority_blend",
    "biased_voter",
    "double_lobe",
    "table_protocol",
    "random_protocol",
    "available_protocols",
    "get_family",
    "register",
    "two_choices",
    "two_choices_family",
    "two_choices_bias",
    "quorum",
    "contrarian_quorum",
]
