"""Blended and biased protocols: concrete Case-1 / Case-2 specimens.

The lower-bound proof (Theorem 12) splits on the sign of the bias polynomial
on its last definite-sign interval.  This module manufactures protocols that
land in each branch with *known* landscapes, used by the Fig-2/Fig-3
experiment (E4) and by tests of the classification pipeline:

* ``voter_minority_blend`` interpolates between the zero-bias Voter and the
  Case-1 Minority, shrinking the negative lobe continuously;
* ``biased_voter`` perturbs a single Voter response entry, producing a bias
  polynomial with a single signed lobe on all of ``(0, 1)`` — positive
  perturbations give Case 2, negative ones give Case 1;
* ``double_lobe`` has bias ``c p (1-p) (p - r)``-shaped landscapes with an
  interior root at a chosen position, exercising the root finder away from
  the symmetric ``1/2``.
"""

from __future__ import annotations

import numpy as np

from repro.core.protocol import Protocol
from repro.protocols.minority import minority
from repro.protocols.voter import voter

__all__ = [
    "voter_minority_blend",
    "biased_voter",
    "double_lobe",
]


def voter_minority_blend(ell: int, weight: float) -> Protocol:
    """Convex blend ``(1 - weight) * voter + weight * minority`` at sample size ``ell``.

    ``weight = 0`` is exactly the Voter (zero bias); any ``weight > 0`` keeps
    the Minority's sign structure scaled by ``weight`` (the bias map is
    linear in the response table), so for odd ``ell >= 3`` the blend is a
    Case-1 protocol with bias ``weight * F_minority``.
    """
    if not 0.0 <= weight <= 1.0:
        raise ValueError(f"weight must lie in [0, 1], got {weight}")
    voter_protocol = voter(ell)
    minority_protocol = minority(ell)
    g0 = (1.0 - weight) * voter_protocol.g0 + weight * minority_protocol.g0
    g1 = (1.0 - weight) * voter_protocol.g1 + weight * minority_protocol.g1
    return Protocol(
        ell=ell, g0=g0, g1=g1, name=f"blend(ell={ell},w={weight:g})"
    )


def biased_voter(ell: int, k: int, delta: float) -> Protocol:
    """Voter with its response at ``k`` perturbed by ``delta`` (both opinions).

    The resulting bias polynomial is the single Bernstein lobe

        F(p) = delta * C(ell, k) p^k (1 - p)^(ell - k),

    which is strictly positive (``delta > 0``, Case 2) or strictly negative
    (``delta < 0``, Case 1) on all of ``(0, 1)``.  ``k`` must be interior
    (``1 <= k <= ell - 1``) so Proposition 3 still holds.
    """
    if not 1 <= k <= ell - 1:
        raise ValueError(
            f"k must be interior (1 <= k <= ell - 1 = {ell - 1}) to preserve "
            f"Proposition 3, got {k}"
        )
    base = voter(ell)
    g = np.array(base.g0, dtype=float)
    perturbed = g[k] + delta
    if not 0.0 <= perturbed <= 1.0:
        raise ValueError(
            f"perturbed response g({k}) = {perturbed} falls outside [0, 1]; "
            f"delta={delta} is too large for ell={ell}"
        )
    g[k] = perturbed
    return Protocol(ell=ell, g0=g, g1=g, name=f"biased-voter(ell={ell},k={k},d={delta:g})")


def double_lobe(root: float, strength: float = 0.5) -> Protocol:
    """An ``ell = 2`` protocol whose bias has an interior root at ``root``.

    Construction: perturb the Voter at ``k = 1`` by opinion-*dependent*
    amounts ``d0`` (for opinion-0 agents) and ``d1`` (for opinion-1 agents).
    The bias becomes

        F(p) = 2 p (1 - p) ( (1 - p) d0 + p d1 ),

    a cubic vanishing at 0, 1, and ``r = d0 / (d0 - d1)``; choosing
    ``d0 = strength * root`` and ``d1 = -strength * (1 - root)`` puts the
    interior root exactly at ``root``, with ``F > 0`` on ``(0, root)`` and
    ``F < 0`` on ``(root, 1)`` (a Case-1 protocol with an asymmetric
    landscape).
    """
    if not 0.0 < root < 1.0:
        raise ValueError(f"root must lie in (0, 1), got {root}")
    if not 0.0 < strength <= 1.0:
        raise ValueError(f"strength must lie in (0, 1], got {strength}")
    d0 = strength * root
    d1 = -strength * (1.0 - root)
    base = voter(2)
    g0 = np.array(base.g0, dtype=float)
    g1 = np.array(base.g1, dtype=float)
    g0[1] = g0[1] + d0
    g1[1] = g1[1] + d1
    if not (0.0 <= g0[1] <= 1.0 and 0.0 <= g1[1] <= 1.0):
        raise ValueError(
            f"strength={strength} with root={root} pushes a response outside "
            f"[0, 1] (g0(1)={g0[1]}, g1(1)={g1[1]})"
        )
    return Protocol(
        ell=2, g0=g0, g1=g1, name=f"double-lobe(root={root:g},s={strength:g})"
    )
