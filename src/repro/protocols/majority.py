"""The classical Majority dynamics — an instructive *non*-solution.

An activated agent adopts the majority opinion of its sample (ties broken
uniformly).  Majority-like rules are excellent at plain consensus [16], but,
as the paper's introduction notes, they "lack sensitivity towards an informed
individual, and in fact, fail in general to solve the bit-dissemination
problem": from a wrong-consensus-leaning configuration the crowd reinforces
itself and the single source cannot tip it.  Majority is therefore kept as a
baseline that the benchmarks show *failing* (stuck on the wrong consensus for
the full round budget) where Voter and Minority eventually succeed.

Note that Majority *does* satisfy Proposition 3's boundary conditions — the
conditions are necessary, not sufficient.
"""

from __future__ import annotations

import numpy as np

from repro.core.protocol import Protocol, ProtocolFamily

__all__ = ["majority", "majority_family"]


def majority(ell: int = 3) -> Protocol:
    """The Majority dynamics with sample size ``ell`` (u.a.r. tie-break)."""
    g = np.empty(ell + 1, dtype=float)
    for k in range(ell + 1):
        if 2 * k > ell:
            g[k] = 1.0
        elif 2 * k < ell:
            g[k] = 0.0
        else:
            g[k] = 0.5
    return Protocol(ell=ell, g0=g, g1=g, name=f"majority(ell={ell})")


def majority_family(ell: int = 3) -> ProtocolFamily:
    protocol = majority(ell)
    return ProtocolFamily(factory=lambda n: protocol, name=protocol.name)
