"""Protocol 2: the Minority dynamics.

An activated agent adopts the *minority* opinion of its sample — unless the
sample is unanimous, in which case it adopts the unanimous opinion (Eq. 2).
Ties at ``k = ell / 2`` are broken uniformly at random by default; two
deterministic tie-break variants are provided for the ablation experiment
(E11), since the tie-break is the only degree of freedom in the rule and it
shifts the bias polynomial's middle root.

The Minority dynamics is the paper's flagship:

* with ``ell = Omega(sqrt(n log n))`` it converges in ``O(log^2 n)`` parallel
  rounds w.h.p. ([15]); the mechanism is an *overshoot*: the population first
  swings so that the correct opinion becomes the perceived minority, after
  which (almost) everyone adopts it simultaneously;
* with constant ``ell`` it falls under Theorem 1: its bias polynomial for
  odd ``ell`` has a root at ``p = 1/2`` with ``F < 0`` on ``(1/2, 1)``
  (Case 1), so it needs ``n^(1-eps)`` rounds from the witness configuration.

For ``ell = 3`` the bias polynomial has the closed form
``F(p) = 2 p (1 - p) (1 - 2 p)``, used as a cross-check in the tests.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.protocol import Protocol, ProtocolFamily

__all__ = [
    "minority",
    "minority_family",
    "minority_sqrt_family",
    "minority_ell3_bias",
    "TIE_BREAK_RULES",
]

TIE_BREAK_RULES = ("uniform", "stay", "adopt-one")


def minority(ell: int = 3, tie_break: str = "uniform") -> Protocol:
    """The Minority dynamics with sample size ``ell``.

    Args:
        ell: sample size.
        tie_break: what an agent does when exactly half of an even-size
            sample holds each opinion — ``"uniform"`` (the paper's rule,
            adopt 1 with probability 1/2), ``"stay"`` (keep the current
            opinion; the only variant that uses the agent's own opinion), or
            ``"adopt-one"`` (deterministically adopt opinion 1; breaks
            opinion symmetry).
    """
    if tie_break not in TIE_BREAK_RULES:
        raise ValueError(f"tie_break must be one of {TIE_BREAK_RULES}, got {tie_break!r}")
    g = np.empty(ell + 1, dtype=float)
    for k in range(ell + 1):
        if k == 0:
            g[k] = 0.0  # unanimous zeros
        elif k == ell:
            g[k] = 1.0  # unanimous ones
        elif 2 * k < ell:
            g[k] = 1.0  # ones are the minority -> adopt 1
        elif 2 * k > ell:
            g[k] = 0.0  # zeros are the minority -> adopt 0
        else:
            g[k] = 0.5  # exact tie (even ell only)
    g0 = g.copy()
    g1 = g.copy()
    if ell % 2 == 0 and ell >= 2:
        tie = ell // 2
        if tie_break == "stay":
            g0[tie] = 0.0
            g1[tie] = 1.0
        elif tie_break == "adopt-one":
            g0[tie] = 1.0
            g1[tie] = 1.0
    suffix = "" if tie_break == "uniform" else f",tie={tie_break}"
    return Protocol(ell=ell, g0=g0, g1=g1, name=f"minority(ell={ell}{suffix})")


def minority_family(ell: int = 3, tie_break: str = "uniform") -> ProtocolFamily:
    """Constant-sample-size Minority as a protocol family (Theorem-1 regime)."""
    protocol = minority(ell, tie_break)
    return ProtocolFamily(factory=lambda n: protocol, name=protocol.name)


def minority_sqrt_family(constant: float = 1.0) -> ProtocolFamily:
    """The [15] regime: Minority with ``ell(n) = ceil(c sqrt(n log n))``, odd.

    Odd sample sizes avoid ties, matching the analysis in [15].
    """
    if constant <= 0:
        raise ValueError(f"constant must be positive, got {constant}")

    def factory(n: int) -> Protocol:
        ell = math.ceil(constant * math.sqrt(n * math.log(max(n, 3))))
        if ell % 2 == 0:
            ell += 1
        return minority(ell=max(ell, 3))

    return ProtocolFamily(factory=factory, name=f"minority(ell~{constant}*sqrt(n log n))")


def minority_ell3_bias(p):
    """Closed-form bias of Minority at ``ell = 3``: ``F(p) = 2 p (1-p) (1-2p)``.

    Derivation: ``F(p) = 3 p (1-p)^2 + p^3 - p`` (the ``k = 1`` and ``k = 3``
    terms adopt opinion 1), which factors as above.  Used to validate the
    generic Eq.-3 expansion.
    """
    p = np.asarray(p, dtype=float)
    return 2.0 * p * (1.0 - p) * (1.0 - 2.0 * p)
