"""Parametric protocol families: smooth thresholds and quorum rules.

The paper's biology motivation names quorum sensing [12] as a behaviour the
memory-less model captures.  A quorum rule is a (possibly soft) threshold
on the number of ones observed; this module provides a logistic-response
family interpolating between the Voter-like linear response and the hard
Majority/Minority thresholds:

    g(k) = sigmoid(sharpness * (k - center)),

with the Proposition-3 boundary entries pinned.  Sweeping ``sharpness``
and ``center`` produces the whole spectrum of Case-1/Case-2 landscapes,
used by property tests of the classification pipeline and by the quorum
example.
"""

from __future__ import annotations

import numpy as np

from repro.core.protocol import Protocol

__all__ = ["quorum", "contrarian_quorum"]


def _logistic(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


def quorum(ell: int, center: float, sharpness: float) -> Protocol:
    """A soft-threshold (quorum-sensing) rule: adopt 1 when enough 1s seen.

    Args:
        ell: sample size.
        center: the quorum level in units of observed ones (``ell / 2``
            gives a symmetric rule; lower values make opinion 1 easier to
            adopt).
        sharpness: logistic steepness; ``-> 0`` approaches an indifferent
            coin, large values approach the hard Majority threshold.

    The endpoint entries are pinned to 0 and 1 (Proposition 3), so every
    quorum rule is a candidate solver.
    """
    if ell < 2:
        raise ValueError(f"ell must be >= 2 so interior entries exist, got {ell}")
    if sharpness <= 0:
        raise ValueError(f"sharpness must be positive, got {sharpness}")
    k = np.arange(ell + 1, dtype=float)
    g = _logistic(sharpness * (k - center))
    g[0] = 0.0
    g[ell] = 1.0
    return Protocol(
        ell=ell, g0=g, g1=g.copy(),
        name=f"quorum(ell={ell},c={center:g},s={sharpness:g})",
    )


def contrarian_quorum(ell: int, center: float, sharpness: float) -> Protocol:
    """The minority-flavoured mirror: adopt 1 when *few* ones are seen.

    ``g(k) = sigmoid(-sharpness (k - center))`` with unanimity still
    followed (``g(0) = 0``, ``g(ell) = 1``), the soft analogue of
    Protocol 2's "join the minority unless the sample is unanimous".
    """
    if ell < 2:
        raise ValueError(f"ell must be >= 2 so interior entries exist, got {ell}")
    if sharpness <= 0:
        raise ValueError(f"sharpness must be positive, got {sharpness}")
    k = np.arange(ell + 1, dtype=float)
    g = _logistic(-sharpness * (k - center))
    g[0] = 0.0
    g[ell] = 1.0
    return Protocol(
        ell=ell, g0=g, g1=g.copy(),
        name=f"contrarian-quorum(ell={ell},c={center:g},s={sharpness:g})",
    )
