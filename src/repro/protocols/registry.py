"""Name -> protocol-family registry used by examples and benchmarks.

Keeps experiment scripts declarative: a bench asks for ``"minority-3"`` and
gets the corresponding :class:`~repro.core.protocol.ProtocolFamily` without
hard-coding constructor calls everywhere.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.core.protocol import ProtocolFamily, constant_family
from repro.protocols.blends import biased_voter, double_lobe, voter_minority_blend
from repro.protocols.majority import majority
from repro.protocols.minority import minority, minority_sqrt_family
from repro.protocols.two_choices import two_choices
from repro.protocols.voter import voter

__all__ = ["available_protocols", "get_family", "register"]

_REGISTRY: Dict[str, Callable[[], ProtocolFamily]] = {}


def register(name: str, factory: Callable[[], ProtocolFamily]) -> None:
    """Register a protocol family under ``name`` (overwrites silently)."""
    _REGISTRY[name] = factory


def get_family(name: str) -> ProtocolFamily:
    """Look up a registered protocol family by name."""
    if name not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown protocol {name!r}; known protocols: {known}")
    return _REGISTRY[name]()


def available_protocols() -> List[str]:
    return sorted(_REGISTRY)


def _register_builtins() -> None:
    register("voter", lambda: constant_family(voter(1)))
    register("voter-3", lambda: constant_family(voter(3)))
    register("minority-3", lambda: constant_family(minority(3)))
    register("minority-5", lambda: constant_family(minority(5)))
    register("minority-sqrt", minority_sqrt_family)
    register("majority-3", lambda: constant_family(majority(3)))
    register("majority-5", lambda: constant_family(majority(5)))
    register(
        "blend-half", lambda: constant_family(voter_minority_blend(3, 0.5))
    )
    register(
        "biased-voter-up",
        lambda: constant_family(biased_voter(3, k=1, delta=0.2)),
    )
    register(
        "biased-voter-down",
        lambda: constant_family(biased_voter(3, k=2, delta=-0.2)),
    )
    register(
        "double-lobe-0.3", lambda: constant_family(double_lobe(0.3))
    )
    register("two-choices", lambda: constant_family(two_choices()))


_register_builtins()
