"""Arbitrary table protocols and random-protocol sampling.

Theorem 1 quantifies over *every* memory-less protocol, so the test suite
exercises the analysis pipeline on random response tables, not just on the
named dynamics.  This module builds protocols from raw ``g`` vectors and
samples random ones (optionally constrained to satisfy Proposition 3, to be
oblivious, or to be opinion-symmetric).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.protocol import Protocol

__all__ = ["table_protocol", "random_protocol"]


def table_protocol(
    g0: Sequence[float],
    g1: Optional[Sequence[float]] = None,
    name: str = "table",
) -> Protocol:
    """Build a protocol from explicit response vectors.

    ``g1`` defaults to ``g0`` (an oblivious protocol).  The sample size is
    inferred from the vector length.
    """
    g0_array = np.asarray(g0, dtype=float)
    if g0_array.ndim != 1 or len(g0_array) < 2:
        raise ValueError(
            f"g0 must be a vector of length ell + 1 >= 2, got shape {g0_array.shape}"
        )
    ell = len(g0_array) - 1
    g1_array = g0_array if g1 is None else np.asarray(g1, dtype=float)
    return Protocol(ell=ell, g0=g0_array, g1=g1_array, name=name)


def random_protocol(
    ell: int,
    rng: np.random.Generator,
    solving: bool = True,
    oblivious: bool = False,
    symmetric: bool = False,
) -> Protocol:
    """Sample a uniformly random response table.

    Args:
        ell: sample size.
        rng: random source.
        solving: force the Proposition-3 boundary conditions
            (``g[0](0) = 0``, ``g[1](ell) = 1``), making the consensus
            absorbing.
        oblivious: force ``g0 == g1``.
        symmetric: force opinion symmetry ``g[1-b](ell-k) = 1 - g[b](k)``
            (implies both boundary conditions are coupled, so with
            ``solving`` the whole boundary is pinned).
    """
    g0 = rng.random(ell + 1)
    g1 = g0.copy() if oblivious else rng.random(ell + 1)
    if symmetric:
        # Symmetrize: average the table with its opinion-flipped image.
        flipped_g0 = 1.0 - g1[::-1]
        flipped_g1 = 1.0 - g0[::-1]
        g0 = (g0 + flipped_g0) / 2.0
        g1 = (g1 + flipped_g1) / 2.0
        if oblivious:
            merged = (g0 + g1) / 2.0
            # Keep both properties: merging preserves symmetry because the
            # symmetry map swaps g0 and g1.
            g0 = merged
            g1 = merged
    if solving:
        g0[0] = 0.0
        g1[ell] = 1.0
        if symmetric:
            g1[ell] = 1.0
            g0[0] = 0.0
            # Opinion symmetry maps g0[0] to 1 - g1[ell]; both pins agree.
    return Protocol(ell=ell, g0=g0, g1=g1, name=f"random(ell={ell})")
