"""The 2-Choices dynamics — a classical *non-oblivious* small-sample rule.

Sample two agents; if they agree, adopt their opinion, otherwise keep your
own.  A staple of the consensus literature (a close relative of 3-Majority,
[16]), included here because:

* it is the natural non-oblivious member of the zoo (``g0 != g1``),
  exercising the own-opinion-dependent paths of the whole pipeline;
* its bias polynomial has the clean closed form

      F(p) = -p (1 - p) (1 - 2p),

  exactly the *negative* of Minority(3)'s up to the factor 2 — majority-like
  drift, so it lands in Case 2 of Theorem 12 and fails bit-dissemination
  from a wrong majority despite being an excellent plain-consensus rule.
"""

from __future__ import annotations

import numpy as np

from repro.core.protocol import Protocol, ProtocolFamily

__all__ = ["two_choices", "two_choices_family", "two_choices_bias"]


def two_choices() -> Protocol:
    """The 2-Choices dynamics (``ell = 2``, keep own opinion on disagreement)."""
    # k ones seen: 0 -> adopt 0; 2 -> adopt 1; 1 -> keep own opinion.
    g0 = np.array([0.0, 0.0, 1.0])
    g1 = np.array([0.0, 1.0, 1.0])
    return Protocol(ell=2, g0=g0, g1=g1, name="two-choices")


def two_choices_family() -> ProtocolFamily:
    protocol = two_choices()
    return ProtocolFamily(factory=lambda n: protocol, name=protocol.name)


def two_choices_bias(p):
    """Closed-form bias: ``F(p) = -p (1 - p) (1 - 2 p)``.

    Derivation: ``P1 = 2p(1-p) + p^2``, ``P0 = p^2``, so
    ``F = p P1 + (1-p) P0 - p = -p + 3p^2 - 2p^3``.
    """
    p = np.asarray(p, dtype=float)
    return -p * (1.0 - p) * (1.0 - 2.0 * p)
