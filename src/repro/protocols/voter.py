"""Protocol 1: the Voter dynamics.

Each activated agent adopts the opinion of one uniformly sampled agent.  For
a sample of size ``ell`` drawn uniformly with replacement this is equivalent
to ``g(k) = k / ell`` (Eq. 1): adopting a uniform element of the sample.

The Voter dynamics is the paper's canonical *zero-bias* protocol
(``F_n = 0``, Section 4.1): it is a martingale in expectation, solves the
problem in ``O(n log n)`` parallel rounds w.h.p. (Theorem 2, via the
coalescing-random-walk dual of Appendix B), and witnesses that the
Theorem-1 lower bound is nearly tight in ``n``.
"""

from __future__ import annotations

import numpy as np

from repro.core.protocol import Protocol, ProtocolFamily

__all__ = ["voter", "voter_family"]


def voter(ell: int = 1) -> Protocol:
    """The Voter dynamics with sample size ``ell``.

    The behaviour does not depend on ``ell`` (a uniform element of a uniform
    sample is a uniform agent), so ``ell = 1`` is the canonical choice; other
    values are useful for testing the ``F_n = 0`` invariance.
    """
    g = np.arange(ell + 1, dtype=float) / ell
    return Protocol(ell=ell, g0=g, g1=g, name=f"voter(ell={ell})")


def voter_family(ell: int = 1) -> ProtocolFamily:
    """The Voter dynamics as an ``n``-independent protocol family."""
    protocol = voter(ell)
    return ProtocolFamily(factory=lambda n: protocol, name=protocol.name)
