"""Simulation-as-a-service: a crash-safe job queue over the experiment stack.

``repro serve`` turns the CLI-only runner into a long-lived service:

- :mod:`repro.service.jobstore` — the journaled job store: an append-only
  CRC-framed WAL of job-state transitions with fsync'd commits, torn-tail
  salvage, a compacting snapshot, and idempotent replay, so every
  acknowledged job survives ``kill -9`` at any instruction.
- :mod:`repro.service.worker` — job execution through the existing
  checkpoint machinery: attempts resume from their own checkpoints and
  publish attempt-stamped results atomically.
- :mod:`repro.service.server` — the worker pool, heartbeat watchdog,
  restart recovery, and the stdlib HTTP API (submit, status/long-poll,
  trace tails, ``/metrics``).

Recovery semantics, the journal format, and the crashpoint table live in
docs/SERVICE.md.
"""

from repro.service.jobstore import (
    ACTIVE_STATES,
    JOB_STATES,
    JOBSTORE_SCHEMA_VERSION,
    LEGAL_TRANSITIONS,
    TERMINAL_STATES,
    Job,
    JobStore,
    JobStoreError,
    load_jobs,
)
from repro.service.server import (
    Service,
    ServiceConfig,
    ServiceServer,
    exit_taxonomy,
    serve,
)
from repro.service.worker import SpecError, validate_spec

__all__ = [
    "ACTIVE_STATES",
    "JOB_STATES",
    "JOBSTORE_SCHEMA_VERSION",
    "LEGAL_TRANSITIONS",
    "TERMINAL_STATES",
    "Job",
    "JobStore",
    "JobStoreError",
    "load_jobs",
    "Service",
    "ServiceConfig",
    "ServiceServer",
    "SpecError",
    "exit_taxonomy",
    "serve",
    "validate_spec",
]
