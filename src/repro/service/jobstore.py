"""Journaled job store: crash-safe state for the simulation service.

Every job-state change is committed to an append-only write-ahead journal
*before* the in-memory view changes, so the store's durable state is always
at least as advanced as anything the service has acknowledged.  Restarting
after a crash — mid-append, mid-compaction, ``kill -9`` — replays the
journal back to exactly the acknowledged state:

- **Framing** mirrors the columnar trace container
  (:mod:`repro.telemetry.columnar`): each record is
  ``b"RJNL" | body_len:u32 | body(JSON) | crc32(body):u32 | rec_len:u32``,
  little-endian.  A torn final record (crash mid-``write``) fails its
  length or CRC check and is salvaged away — the journal is truncated to
  the longest valid prefix on the next open, and every complete record
  survives.
- **Commits** are atomic at the record level: the frame is written in one
  ``write`` call, flushed, and ``fsync``'d before the transition is
  applied in memory or acknowledged to a client.
- **Replay is idempotent**: every record carries a monotonic ``seq``;
  records at or below the last applied sequence are skipped, so duplicated
  records (a crash between append and acknowledge, then a retried append)
  cannot double-apply.  Records that are illegal against the replayed
  state (e.g. a stale transition for a job that already reached a terminal
  state) are skipped and counted rather than trusted — on replay the
  journal is evidence, not authority.
- **Compaction** folds the journal into an atomically-published snapshot
  (``jobs.snapshot.json``, tmp + fsync + rename) and then resets the
  journal the same way.  A crash between the two leaves a snapshot *and* a
  journal whose records are all ``seq <=`` the snapshot's — replay skips
  them, so recovery is correct from either side of the window.
- **Version skew is refused**, not guessed at: a journal record or
  snapshot written by a newer schema raises :class:`JobStoreError` with
  instructions instead of silently dropping state.  (Contrast with the
  trace index, which may rebuild because it is a pure cache — the journal
  is the *only* copy of job state.)

Deterministic crashpoints (``REPRO_FAULT``, :mod:`repro.execution.faults`)
cover the two interesting windows: ``jobstore:mid_commit`` tears a journal
append in half, ``jobstore:mid_compact`` dies between snapshot publish and
journal reset.  ``scripts/service_smoke.py`` drives both end to end.

Job lifecycle (full state machine in docs/SERVICE.md)::

    queued ──> running ──> done | failed | cancelled
      │  ^        │
      │  └────────┤  (requeue: worker died / heartbeat stale)
      └─> degraded ┘  (re-dispatch after >= 1 failure)

``degraded`` is "running, but not on the first attempt" — the service
analogue of the supervisor's degraded-mode statistics: visible at a
glance, never silently folded into ``running``.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.execution import faults

__all__ = [
    "JOBSTORE_SCHEMA_VERSION",
    "JOURNAL_MAGIC",
    "JOB_STATES",
    "ACTIVE_STATES",
    "TERMINAL_STATES",
    "LEGAL_TRANSITIONS",
    "JobStoreError",
    "Job",
    "JobStore",
    "load_jobs",
    "frame_record",
    "iter_journal_records",
]

JOBSTORE_SCHEMA_VERSION = 1
JOURNAL_MAGIC = b"RJNL"
JOURNAL_NAME = "jobs.journal"
SNAPSHOT_NAME = "jobs.snapshot.json"

#: Journal size that triggers an automatic compaction on the next commit.
DEFAULT_COMPACT_BYTES = 256 * 1024

JOB_STATES = ("queued", "running", "degraded", "done", "failed", "cancelled")
ACTIVE_STATES = frozenset({"running", "degraded"})
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})

#: Legal state transitions.  ``queued -> degraded`` is the re-dispatch of a
#: previously failed attempt; ``running|degraded -> queued`` is a requeue
#: after a worker death or stale heartbeat.  The active-state self-loops
#: are *field-update* records (the dispatcher journals the worker pid the
#: instant it knows it).  Terminal states are absorbing.
LEGAL_TRANSITIONS: Dict[str, frozenset] = {
    "queued": frozenset({"running", "degraded", "cancelled"}),
    "running": frozenset(
        {"queued", "running", "degraded", "done", "failed", "cancelled"}
    ),
    "degraded": frozenset({"queued", "degraded", "done", "failed", "cancelled"}),
    "done": frozenset(),
    "failed": frozenset(),
    "cancelled": frozenset(),
}

_U32 = struct.Struct("<I")
_HEAD_LEN = len(JOURNAL_MAGIC) + _U32.size          # magic + body_len
_TAIL_LEN = 2 * _U32.size                            # crc32 + rec_len

#: Job fields a transition record may update (beyond ``state``).
_MUTABLE_FIELDS = frozenset({
    "attempt", "retries", "max_retries", "not_before", "backoff_s",
    "worker_pid", "error", "exit_code", "exit_name", "result",
})


class JobStoreError(RuntimeError):
    """Raised for corrupt-beyond-salvage or version-skewed store files."""


# ---------------------------------------------------------------------------
# Journal framing


def frame_record(body: bytes) -> bytes:
    """Frame one journal record: magic, length, body, CRC, total length."""
    rec_len = _HEAD_LEN + len(body) + _TAIL_LEN
    return b"".join((
        JOURNAL_MAGIC,
        _U32.pack(len(body)),
        body,
        _U32.pack(zlib.crc32(body) & 0xFFFFFFFF),
        _U32.pack(rec_len),
    ))


def iter_journal_records(data: bytes) -> Iterator[Tuple[Dict[str, Any], int]]:
    """Yield ``(record, end_offset)`` for the longest valid journal prefix.

    Walks frames from offset 0; stops at the first torn or corrupt frame
    (truncated header/body, bad CRC, unparseable JSON) — that is the
    salvage boundary, exactly the ``telemetry.columnar`` idiom.  A frame
    whose magic is wrong at offset 0 means the file is not a journal at
    all and raises :class:`JobStoreError`; mid-file it ends the walk like
    any other torn tail.  A *valid* frame whose record declares a newer
    ``schema`` raises :class:`JobStoreError`: version skew must refuse,
    never silently drop job state.
    """
    size = len(data)
    pos = 0
    while pos < size:
        if size - pos < _HEAD_LEN:
            return  # torn header
        magic = bytes(data[pos:pos + len(JOURNAL_MAGIC)])
        if magic != JOURNAL_MAGIC:
            if pos == 0:
                raise JobStoreError(
                    f"not a job journal: bad magic {magic!r} at offset 0 "
                    f"(expected {JOURNAL_MAGIC!r})"
                )
            return  # garbage tail
        (body_len,) = _U32.unpack(data[pos + len(JOURNAL_MAGIC):pos + _HEAD_LEN])
        end = pos + _HEAD_LEN + body_len + _TAIL_LEN
        if end > size:
            return  # torn body/tail
        body = bytes(data[pos + _HEAD_LEN:pos + _HEAD_LEN + body_len])
        stored_crc, stored_len = struct.unpack(
            "<II", data[pos + _HEAD_LEN + body_len:end]
        )
        if stored_crc != (zlib.crc32(body) & 0xFFFFFFFF) or stored_len != end - pos:
            return  # corrupt record: salvage boundary
        try:
            record = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return
        if not isinstance(record, dict):
            return
        schema = record.get("schema")
        if schema != JOBSTORE_SCHEMA_VERSION:
            raise JobStoreError(
                f"job journal record schema v{schema!r} is not supported by "
                f"this build (expected v{JOBSTORE_SCHEMA_VERSION}); refusing "
                f"to replay — upgrade repro, or move the journal aside to "
                f"start fresh"
            )
        yield record, end
        pos = end


# ---------------------------------------------------------------------------
# Job model


@dataclass
class Job:
    """One submitted job and everything the service knows about it.

    Attributes:
        id: store-assigned identifier (``J000001``, ...), unique per root.
        spec: the validated submission payload (kind, protocol, sizes,
            seed — see :func:`repro.service.worker.validate_spec`).
        state: one of :data:`JOB_STATES`.
        created_at / updated_at: wall-clock (``time.time``) bounds.
        attempt: 1-based count of dispatches so far (0 = never dispatched).
        retries: failed attempts so far; compared against ``max_retries``.
        max_retries: failure budget before the job lands in ``failed``.
        not_before: earliest wall-clock time the next dispatch may happen
            (set by the seeded-backoff requeue path).
        backoff_s: the exact delay the last requeue computed — journaled so
            retry schedules are auditable and testable after the fact.
        worker_pid: pid of the worker process while active, else ``None``.
        error: human-readable failure description (terminal failures and
            intermediate requeues both record one).
        exit_code / exit_name: the ``execution.shutdown.EXIT_CODES``
            taxonomy entry for the final failure (the job error contract).
        result: worker-produced result payload once ``done``.
    """

    id: str
    spec: Dict[str, Any]
    state: str = "queued"
    created_at: float = 0.0
    updated_at: float = 0.0
    attempt: int = 0
    retries: int = 0
    max_retries: int = 2
    not_before: float = 0.0
    backoff_s: Optional[float] = None
    worker_pid: Optional[int] = None
    error: Optional[str] = None
    exit_code: Optional[int] = None
    exit_name: Optional[str] = None
    result: Optional[Dict[str, Any]] = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "spec": dict(self.spec),
            "state": self.state,
            "created_at": self.created_at,
            "updated_at": self.updated_at,
            "attempt": self.attempt,
            "retries": self.retries,
            "max_retries": self.max_retries,
            "not_before": self.not_before,
            "backoff_s": self.backoff_s,
            "worker_pid": self.worker_pid,
            "error": self.error,
            "exit_code": self.exit_code,
            "exit_name": self.exit_name,
            "result": self.result,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Job":
        known = {f for f in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        return cls(**{k: v for k, v in payload.items() if k in known})


# ---------------------------------------------------------------------------
# The store


class JobStore:
    """Durable job state backed by the WAL + snapshot pair under ``root``.

    Thread-safe: every public method takes the internal lock, so the HTTP
    handler threads and the dispatch loop can share one instance.  All
    mutations are journaled before they are applied; see the module
    docstring for the crash-consistency argument.

    Opening a root salvages a torn journal tail (truncating the file to
    the longest valid prefix, recorded in :attr:`salvaged_bytes`) and
    counts replay anomalies in :attr:`replay_skipped` — duplicated or
    stale records that idempotent replay ignored.
    """

    def __init__(
        self,
        root,
        *,
        compact_bytes: int = DEFAULT_COMPACT_BYTES,
        readonly: bool = False,
    ) -> None:
        self.root = Path(root)
        self.compact_bytes = int(compact_bytes)
        self.readonly = bool(readonly)
        self._lock = threading.RLock()
        self._jobs: Dict[str, Job] = {}
        self._seq = 0
        self._next_job = 1
        self._handle = None
        self.salvaged_bytes = 0
        self.replay_skipped = 0
        if not self.readonly:
            self.root.mkdir(parents=True, exist_ok=True)
        self._load_snapshot()
        self._replay_journal()
        if not self.readonly:
            self._handle = open(self.journal_path, "ab")

    # -- paths ------------------------------------------------------------

    @property
    def journal_path(self) -> Path:
        return self.root / JOURNAL_NAME

    @property
    def snapshot_path(self) -> Path:
        return self.root / SNAPSHOT_NAME

    def job_dir(self, job_id: str) -> Path:
        """Scratch directory for one job's checkpoint/heartbeat/trace."""
        return self.root / job_id

    # -- recovery ---------------------------------------------------------

    def _load_snapshot(self) -> None:
        try:
            raw = self.snapshot_path.read_text()
        except FileNotFoundError:
            return
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise JobStoreError(
                f"job snapshot {self.snapshot_path} is corrupt ({exc}); "
                f"refusing to guess — move it aside to rebuild from the "
                f"journal alone"
            ) from exc
        schema = payload.get("schema") if isinstance(payload, dict) else None
        if schema != JOBSTORE_SCHEMA_VERSION:
            raise JobStoreError(
                f"job snapshot schema v{schema!r} is not supported by this "
                f"build (expected v{JOBSTORE_SCHEMA_VERSION}); refusing to "
                f"replay — upgrade repro, or move the snapshot aside"
            )
        self._seq = int(payload.get("seq", 0))
        self._next_job = int(payload.get("next_job", 1))
        for job_id, doc in payload.get("jobs", {}).items():
            self._jobs[job_id] = Job.from_dict(doc)

    def _replay_journal(self) -> None:
        try:
            data = self.journal_path.read_bytes()
        except FileNotFoundError:
            return
        valid_end = 0
        for record, end in iter_journal_records(data):
            self._apply(record, strict=False)
            valid_end = end
        if valid_end < len(data):
            self.salvaged_bytes = len(data) - valid_end
            if not self.readonly:
                # Durable salvage: truncate the torn tail so the next append
                # starts on a record boundary (the torn bytes are by
                # definition unacknowledged, so nothing is lost).
                with open(self.journal_path, "r+b") as handle:
                    handle.truncate(valid_end)
                    handle.flush()
                    os.fsync(handle.fileno())

    # -- record application ----------------------------------------------

    def _apply(self, record: Dict[str, Any], *, strict: bool) -> Optional[Job]:
        seq = int(record.get("seq", 0))
        if seq <= self._seq and not strict:
            # Idempotent replay: at-or-below the applied watermark means the
            # record (or its effect, via the snapshot) is already in.
            self.replay_skipped += 1
            return None
        job_id = record.get("job")
        to = record.get("to")
        at = float(record.get("at", 0.0))
        fields = record.get("fields") or {}
        job = self._jobs.get(job_id)
        if job is None:
            if to == "queued" and "spec" in fields:
                job = Job(
                    id=job_id,
                    spec=fields["spec"],
                    state="queued",
                    created_at=at,
                    updated_at=at,
                    max_retries=int(fields.get("max_retries", 2)),
                )
                self._jobs[job_id] = job
                self._seq = max(self._seq, seq)
                self._bump_next_job(job_id)
                return job
            if strict:
                raise JobStoreError(f"unknown job {job_id!r}")
            self.replay_skipped += 1
            self._seq = max(self._seq, seq)
            return None
        if to == "queued" and "spec" in fields:
            # Duplicate submit for an existing id: replay-only, skip.
            if strict:
                raise JobStoreError(f"job {job_id!r} already exists")
            self.replay_skipped += 1
            self._seq = max(self._seq, seq)
            return job
        if to not in LEGAL_TRANSITIONS.get(job.state, frozenset()):
            if strict:
                raise JobStoreError(
                    f"illegal transition {job.state!r} -> {to!r} for job "
                    f"{job_id!r}"
                )
            self.replay_skipped += 1
            self._seq = max(self._seq, seq)
            return job
        job.state = to
        job.updated_at = at
        for key, value in fields.items():
            if key in _MUTABLE_FIELDS:
                setattr(job, key, value)
        self._seq = max(self._seq, seq)
        return job

    def _bump_next_job(self, job_id: str) -> None:
        if job_id.startswith("J"):
            try:
                self._next_job = max(self._next_job, int(job_id[1:]) + 1)
            except ValueError:
                pass

    # -- the committed write path ----------------------------------------

    def _append(self, record: Dict[str, Any]) -> None:
        if self.readonly or self._handle is None:
            raise JobStoreError("job store opened read-only")
        frame = frame_record(
            json.dumps(record, sort_keys=True, separators=(",", ":")).encode()
        )
        if faults.should_trip("jobstore:mid_commit"):
            # Deterministic torn commit: half the frame reaches the disk,
            # then the process dies.  Restart must salvage the torn tail
            # and recover every previously committed record.
            self._handle.write(frame[: len(frame) // 2])
            self._handle.flush()
            os.fsync(self._handle.fileno())
            faults.trip("jobstore:mid_commit")
        self._handle.write(frame)
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def _commit(self, job_id: str, to: str, at: float, fields: Dict[str, Any]) -> Job:
        record = {
            "schema": JOBSTORE_SCHEMA_VERSION,
            "seq": self._seq + 1,
            "job": job_id,
            "to": to,
            "at": at,
            "fields": fields,
        }
        self._append(record)
        job = self._apply(record, strict=True)
        assert job is not None
        self._maybe_compact()
        return job

    # -- public mutations -------------------------------------------------

    def submit(
        self,
        spec: Dict[str, Any],
        *,
        max_retries: int = 2,
        at: Optional[float] = None,
    ) -> Job:
        """Durably enqueue a new job; returns it once the WAL holds it."""
        with self._lock:
            job_id = f"J{self._next_job:06d}"
            self._next_job += 1
            return self._commit(
                job_id,
                "queued",
                time.time() if at is None else at,
                {"spec": spec, "max_retries": int(max_retries)},
            )

    def transition(
        self, job_id: str, to: str, *, at: Optional[float] = None, **fields: Any
    ) -> Job:
        """Durably move ``job_id`` to state ``to``, updating ``fields``.

        Raises :class:`JobStoreError` if the job is unknown or the
        transition is illegal — the live path is strict; only crash
        *replay* is forgiving.
        """
        with self._lock:
            if job_id not in self._jobs:
                raise JobStoreError(f"unknown job {job_id!r}")
            unknown = set(fields) - _MUTABLE_FIELDS
            if unknown:
                raise JobStoreError(f"unknown job fields {sorted(unknown)!r}")
            return self._commit(
                job_id, to, time.time() if at is None else at, fields
            )

    # -- queries ----------------------------------------------------------

    def get(self, job_id: str) -> Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise JobStoreError(f"unknown job {job_id!r}") from None

    def jobs(self) -> List[Job]:
        """All jobs, oldest submission first."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.id)

    def counts(self) -> Dict[str, int]:
        """Number of jobs per state (every state present, zeros included)."""
        out = {state: 0 for state in JOB_STATES}
        with self._lock:
            for job in self._jobs.values():
                out[job.state] = out.get(job.state, 0) + 1
        return out

    @property
    def seq(self) -> int:
        return self._seq

    # -- compaction -------------------------------------------------------

    def _maybe_compact(self) -> None:
        if self._handle is None:
            return
        try:
            size = self.journal_path.stat().st_size
        except OSError:
            return
        if size >= self.compact_bytes:
            self.compact()

    def compact(self) -> None:
        """Fold the journal into a fresh snapshot and reset the journal.

        Both publishes are atomic (tmp + fsync + rename); the
        ``jobstore:mid_compact`` crashpoint sits in the window between
        them, where the snapshot already covers every journal record —
        replay after a crash there skips the stale records by sequence
        number, so no state is lost or duplicated.
        """
        with self._lock:
            if self.readonly or self._handle is None:
                raise JobStoreError("job store opened read-only")
            snapshot = {
                "schema": JOBSTORE_SCHEMA_VERSION,
                "seq": self._seq,
                "next_job": self._next_job,
                "jobs": {job_id: job.to_dict() for job_id, job in self._jobs.items()},
            }
            tmp = self.snapshot_path.with_suffix(".json.tmp")
            with open(tmp, "w") as handle:
                json.dump(snapshot, handle, sort_keys=True, indent=None)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.snapshot_path)
            faults.crashpoint("jobstore:mid_compact")
            self._handle.close()
            jtmp = self.journal_path.with_suffix(".journal.tmp")
            with open(jtmp, "wb") as handle:
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(jtmp, self.journal_path)
            self._handle = open(self.journal_path, "ab")

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def load_jobs(root) -> JobStore:
    """Read-only view of a service root (no salvage truncation, no appends).

    This is what ``repro watch`` and other observers use: it replays the
    snapshot + journal entirely in memory, tolerating a torn tail, and
    never mutates the files it reads.
    """
    return JobStore(root, readonly=True)
