"""The simulation service: worker pool, watchdog, recovery, and HTTP API.

:class:`Service` owns a :class:`~repro.service.jobstore.JobStore` and
drives jobs through their lifecycle with three synchronous ingredients,
all exercised from one :meth:`Service.tick` so tests can single-step the
whole machine deterministically:

- **dispatch** — pops ripe ``queued`` jobs (``not_before`` respected)
  into forked worker processes, up to ``workers`` concurrent children.
  The state is journaled *before* the fork (crashpoint
  ``service:mid_dispatch`` sits in between), so a crash there leaves a
  durable ``running`` record whose orphanhood is detected on restart.
- **reap** — collects exited workers: exit 0 plus an attempt-stamped
  ``result.json`` is ``done``; anything else consults the retry budget
  and either requeues with :func:`~repro.execution.backoff.
  backoff_delay_s` (deterministic seeded jitter keyed on the job's seed
  and id) or lands the job in ``failed`` with an
  ``execution.shutdown.EXIT_CODES`` taxonomy entry — the job error
  contract.
- **watchdog** — a live worker whose heartbeat file has gone stale
  (beyond ``stale_after_s``) is presumed stuck, killed, and fed to the
  same retry path.  This is the PR-7 heartbeat reused as a liveness
  signal rather than merely a dashboard feed.

**Recovery** (:meth:`Service.recover`, run at startup) replays the same
rules against whatever a crash left behind: an active job with a
published result for its attempt is adopted as ``done`` (never re-run,
never double-counted); any other active job is orphaned — its recorded
worker pid is killed if still alive — and requeued through the seeded
backoff, so a crash-restart loop is bounded by ``max_retries``.

The HTTP layer (:class:`ServiceServer`) is a stdlib
``ThreadingHTTPServer`` sharing the store lock with the dispatch loop.
``GET /jobs/<id>`` supports ``?wait_s=`` long-polling so clients can
stream status cheaply; ``GET /jobs/<id>/trace`` tails the job's trace via
:func:`repro.analysis.watch.tail_trace_round` (columnar or JSONL);
``/metrics`` renders the same exposition
:class:`repro.telemetry.prometheus.MetricsServer` serves when a separate
metrics port is configured.
"""

from __future__ import annotations

import gc
import json
import multiprocessing
import os
import signal
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.execution import faults
from repro.execution.backoff import backoff_delay_s
from repro.execution.shutdown import EXIT_CODES, EXIT_ERROR, EXIT_INTERRUPTED, EXIT_OK
from repro.service.jobstore import (
    ACTIVE_STATES,
    JOB_STATES,
    JobStore,
    JobStoreError,
    Job,
)
from repro.service.worker import (
    SpecError,
    job_trace_path,
    job_worker_main,
    read_result,
    validate_spec,
)

__all__ = [
    "ServiceConfig",
    "Service",
    "ServiceServer",
    "serve",
    "exit_taxonomy",
]

_EXIT_NAMES = {value: name for name, value, _ in EXIT_CODES}


def exit_taxonomy(exitcode: Optional[int], *, stalled: bool = False) -> Tuple[int, str]:
    """Map a worker's death to the ``EXIT_CODES`` taxonomy entry.

    A stalled worker (killed by the watchdog) and any signal death map to
    ``EXIT_INTERRUPTED`` — the run was cut down mid-flight, not wrong.
    A worker that exited with a known taxonomy code keeps it; anything
    else is ``EXIT_ERROR``.
    """
    if stalled or exitcode is None or exitcode < 0:
        return EXIT_INTERRUPTED, _EXIT_NAMES[EXIT_INTERRUPTED]
    if exitcode in _EXIT_NAMES:
        return exitcode, _EXIT_NAMES[exitcode]
    return EXIT_ERROR, _EXIT_NAMES[EXIT_ERROR]


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables for the service loop.

    Attributes:
        workers: concurrent worker processes draining the queue.
        poll_s: dispatch-loop wakeup interval.
        stale_after_s: heartbeat age past which a live worker is presumed
            stuck and killed (the watchdog clock).
        dispatch_grace_s: how long a freshly dispatched worker may run
            before its first heartbeat must exist.
        backoff_base_s / backoff_cap_s: the requeue delay schedule fed to
            :func:`~repro.execution.backoff.backoff_delay_s`.
        default_max_retries: failure budget for submissions that don't
            name their own.
        compact_bytes: journal size that triggers auto-compaction.
    """

    workers: int = 1
    poll_s: float = 0.05
    stale_after_s: float = 30.0
    dispatch_grace_s: float = 10.0
    backoff_base_s: float = 0.5
    backoff_cap_s: float = 30.0
    default_max_retries: int = 2
    compact_bytes: int = 256 * 1024


class Service:
    """The job machine: store + worker pool + watchdog + recovery."""

    def __init__(self, root, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.store = JobStore(root, compact_bytes=self.config.compact_bytes)
        self.root = self.store.root
        try:
            self._context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            self._context = multiprocessing.get_context()
        self._children: Dict[str, Any] = {}
        self._dispatched_at: Dict[str, float] = {}
        self._stale_checked_at: Dict[str, float] = {}
        self._lock = threading.RLock()
        self.recover()

    # -- recovery ---------------------------------------------------------

    def recover(self) -> List[str]:
        """Reconcile journal state with reality after a (re)start.

        Returns the ids of jobs whose state changed.  Active jobs are
        orphans by construction here (no child of this process exists
        yet): adopt a published result when the attempt stamp matches,
        otherwise kill any surviving worker pid and requeue through the
        retry budget.
        """
        changed: List[str] = []
        for job in self.store.jobs():
            if job.state not in ACTIVE_STATES:
                continue
            result = read_result(self.store.job_dir(job.id), attempt=job.attempt)
            if result is not None:
                self.store.transition(
                    job.id, "done", result=result, worker_pid=None
                )
                changed.append(job.id)
                continue
            self._kill_pid(job.worker_pid)
            self._fail_or_requeue(
                job, error=f"orphaned at attempt {job.attempt} by server restart"
            )
            changed.append(job.id)
        return changed

    @staticmethod
    def _kill_pid(pid: Optional[int]) -> None:
        if not pid or pid == os.getpid():
            return
        try:
            os.kill(pid, signal.SIGKILL)
        except (OSError, ProcessLookupError):
            pass

    # -- the retry path ---------------------------------------------------

    def _fail_or_requeue(
        self,
        job: Job,
        *,
        error: str,
        exitcode: Optional[int] = None,
        stalled: bool = False,
    ) -> Job:
        retries = job.retries + 1
        if retries > job.max_retries:
            code, name = exit_taxonomy(exitcode, stalled=stalled)
            return self.store.transition(
                job.id,
                "failed",
                retries=retries,
                worker_pid=None,
                error=error,
                exit_code=code,
                exit_name=name,
            )
        delay = backoff_delay_s(
            retries,
            base_s=self.config.backoff_base_s,
            cap_s=self.config.backoff_cap_s,
            key=f"{job.spec.get('seed', 0)}:{job.id}",
        )
        return self.store.transition(
            job.id,
            "queued",
            retries=retries,
            worker_pid=None,
            not_before=time.time() + delay,
            backoff_s=delay,
            error=error,
        )

    # -- submission / cancellation ----------------------------------------

    def submit(
        self, payload: Dict[str, Any], *, max_retries: Optional[int] = None
    ) -> Job:
        """Validate and durably enqueue a submission payload."""
        spec = validate_spec(payload)
        budget = (
            self.config.default_max_retries
            if max_retries is None
            else int(max_retries)
        )
        return self.store.submit(spec, max_retries=budget)

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued or active job (kills its worker if one runs)."""
        with self._lock:
            job = self.store.get(job_id)
            if job.terminal:
                raise JobStoreError(
                    f"job {job_id} is already {job.state}; cannot cancel"
                )
            process = self._children.pop(job_id, None)
            self._dispatched_at.pop(job_id, None)
            self._stale_checked_at.pop(job_id, None)
            if process is not None and process.is_alive():
                process.kill()
                process.join(timeout=5.0)
            return self.store.transition(
                job_id, "cancelled", worker_pid=None, error="cancelled by client"
            )

    # -- the loop ----------------------------------------------------------

    def tick(self) -> int:
        """One synchronous step of reap + watchdog + dispatch.

        Returns the number of jobs whose state changed, so callers (and
        tests) can drive the machine to quiescence deterministically.
        """
        with self._lock:
            changed = self._reap()
            changed += self._dispatch_ready()
        return changed

    def _reap(self) -> int:
        changed = 0
        now = time.time()
        for job_id, process in list(self._children.items()):
            job = self.store.get(job_id)
            if process.is_alive():
                if self._watchdog_due(job_id) and self._is_stalled(job_id, now):
                    process.kill()
                    process.join(timeout=5.0)
                    self._forget(job_id)
                    self._fail_or_requeue(
                        job,
                        error=(
                            f"worker heartbeat stale beyond "
                            f"{self.config.stale_after_s}s; killed"
                        ),
                        stalled=True,
                    )
                    changed += 1
                continue
            process.join()
            exitcode = process.exitcode
            self._forget(job_id)
            result = read_result(self.store.job_dir(job_id), attempt=job.attempt)
            if exitcode == EXIT_OK and result is not None:
                self.store.transition(
                    job_id, "done", result=result, worker_pid=None, error=None
                )
            else:
                error = (
                    f"worker exited {exitcode} without a valid result"
                    if result is None
                    else f"worker exited {exitcode}"
                )
                self._fail_or_requeue(job, error=error, exitcode=exitcode)
            changed += 1
        return changed

    def _watchdog_due(self, job_id: str) -> bool:
        """Rate-limit the stale check: it reads the heartbeat file.

        Staleness only needs to be noticed within a fraction of
        ``stale_after_s``, so polling the file every tick (potentially
        every 10ms) would just steal disk and CPU from the workers —
        measurable on single-core runners.
        """
        interval = min(1.0, self.config.stale_after_s / 4.0)
        mono = time.monotonic()
        if mono - self._stale_checked_at.get(job_id, 0.0) < interval:
            return False
        self._stale_checked_at[job_id] = mono
        return True

    def _is_stalled(self, job_id: str, now: float) -> bool:
        from repro.telemetry.heartbeat import heartbeat_path, read_heartbeat

        beat = read_heartbeat(heartbeat_path(self.store.job_dir(job_id) / "job"))
        started = self._dispatched_at.get(job_id)
        if beat is None:
            # No heartbeat yet (or torn): allow the dispatch grace period.
            return (
                started is not None
                and time.monotonic() - started > self.config.dispatch_grace_s
            )
        return beat.age_s(now) > self.config.stale_after_s

    def _forget(self, job_id: str) -> None:
        self._children.pop(job_id, None)
        self._dispatched_at.pop(job_id, None)
        self._stale_checked_at.pop(job_id, None)

    def _dispatch_ready(self) -> int:
        changed = 0
        now = time.time()
        for job in self.store.jobs():
            if len(self._children) >= self.config.workers:
                break
            if job.state != "queued" or job.not_before > now:
                continue
            self._dispatch(job)
            changed += 1
        return changed

    def _dispatch(self, job: Job) -> None:
        attempt = job.attempt + 1
        # First attempts run as ``running``; re-dispatches surface as
        # ``degraded`` so the dashboard never hides a retried job.
        to = "running" if attempt == 1 else "degraded"
        self.store.transition(job.id, to, attempt=attempt, error=None)
        # The durable state says "running" but no worker exists yet — the
        # window the restart recovery path must close.
        faults.crashpoint("service:mid_dispatch")
        jobdir = self.store.job_dir(job.id)
        jobdir.mkdir(parents=True, exist_ok=True)
        process = self._context.Process(
            target=job_worker_main,
            args=(job.spec, str(jobdir), attempt),
            daemon=True,
        )
        # Freeze the heap across the fork so the child's first garbage
        # collection does not sweep (and so copy-on-write fault) every
        # inherited page: the child forks with the frozen view, then the
        # parent unfreezes itself.  Without this the worker pays a
        # heap-sized page-fault tax that E13f measures at 10-20% of a
        # smoke-sized job.
        gc.freeze()
        try:
            process.start()
        finally:
            gc.unfreeze()
        # Self-loop transition: same state, records the worker pid so a
        # later recovery can put the orphan down before requeueing.
        self.store.transition(job.id, to, worker_pid=process.pid)
        self._children[job.id] = process
        self._dispatched_at[job.id] = time.monotonic()

    def _idle_wait(self) -> None:
        """Sleep until there is plausibly work to do.

        With live workers this blocks on their process sentinels — the
        loop wakes *instantly* when a child exits instead of discovering
        it up to ``poll_s`` later, and in between it only wakes at the
        watchdog cadence.  Busy-polling here is not just latency: on a
        single-core host every wake steals CPU from the workers
        themselves (measured by E13f).  With no children it naps
        ``poll_s`` so submissions and expiring backoffs stay responsive.
        """
        with self._lock:
            sentinels = [p.sentinel for p in self._children.values()]
        if not sentinels:
            time.sleep(self.config.poll_s)
            return
        from multiprocessing.connection import wait as sentinel_wait

        watchdog_cadence = max(
            self.config.poll_s, min(1.0, self.config.stale_after_s / 4.0)
        )
        sentinel_wait(sentinels, timeout=watchdog_cadence)

    def drain(self, *, timeout_s: float = 60.0) -> bool:
        """Tick until no queued/active jobs remain; True if fully drained."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            self.tick()
            counts = self.store.counts()
            if not any(counts[state] for state in ("queued", *ACTIVE_STATES)):
                return True
            self._idle_wait()
        return False

    def run(self, guard=None) -> None:
        """Loop :meth:`tick` until ``guard`` requests a stop (or forever)."""
        try:
            while guard is None or not guard.requested:
                self.tick()
                self._idle_wait()
        finally:
            self.shutdown()

    def shutdown(self) -> None:
        """Graceful stop: park active jobs back in the queue, compact, close.

        A shutdown requeue does *not* consume a retry — stopping the
        server is not the job's failure — so a rolling restart never
        burns a job's budget.
        """
        with self._lock:
            for job_id, process in list(self._children.items()):
                if process.is_alive():
                    process.kill()
                    process.join(timeout=5.0)
                self._forget(job_id)
                job = self.store.get(job_id)
                if job.state in ACTIVE_STATES:
                    self.store.transition(
                        job_id,
                        "queued",
                        worker_pid=None,
                        not_before=0.0,
                        error="requeued by server shutdown",
                    )
            try:
                self.store.compact()
            except JobStoreError:
                pass
            self.store.close()

    # -- observability -----------------------------------------------------

    def job_heartbeats(self) -> List[Any]:
        from repro.telemetry.heartbeat import heartbeat_path, read_heartbeat

        beats = []
        for job in self.store.jobs():
            beat = read_heartbeat(heartbeat_path(self.store.job_dir(job.id) / "job"))
            if beat is not None:
                beats.append(beat)
        return beats

    def metrics_text(self) -> str:
        """Prometheus exposition: job-state gauges + live job heartbeats."""
        from repro.telemetry.prometheus import MetricFamily, render_exposition
        from repro.telemetry.prometheus import heartbeat_families

        counts = self.store.counts()
        jobs = self.store.jobs()
        families = [
            MetricFamily(
                "repro_service_jobs", "gauge",
                "Jobs per lifecycle state.",
                [((("state", state),), float(counts[state]))
                 for state in JOB_STATES],
            ),
            MetricFamily(
                "repro_service_journal_seq", "gauge",
                "Last applied job-journal sequence number.",
                [((), float(self.store.seq))],
            ),
            MetricFamily(
                "repro_service_retries_total", "counter",
                "Worker attempts beyond the first, summed over jobs.",
                [((), float(sum(job.retries for job in jobs)))],
            ),
            MetricFamily(
                "repro_service_workers_busy", "gauge",
                "Worker processes currently attached to a job.",
                [((), float(len(self._children)))],
            ),
        ]
        families.extend(heartbeat_families(self.job_heartbeats()))
        return render_exposition(families)

    def job_document(self, job_id: str) -> Dict[str, Any]:
        """A job plus its live heartbeat, as served by the API."""
        from repro.telemetry.heartbeat import heartbeat_path, read_heartbeat

        job = self.store.get(job_id)
        doc = job.to_dict()
        beat = read_heartbeat(heartbeat_path(self.store.job_dir(job_id) / "job"))
        doc["heartbeat"] = beat.to_dict() if beat is not None else None
        return doc

    def trace_tail(self, job_id: str) -> Dict[str, Any]:
        """The last complete round of the job's trace (404 material if off)."""
        from repro.analysis.watch import tail_trace_round

        job = self.store.get(job_id)
        path = job_trace_path(self.store.job_dir(job_id), job.spec)
        if path is None:
            raise JobStoreError(
                f"job {job_id} was submitted without tracing "
                f"(spec 'trace' is null)"
            )
        tail = tail_trace_round(path) if path.exists() else None
        return {"job": job_id, "trace": str(path), "round": tail}


# ---------------------------------------------------------------------------
# HTTP layer


class _ServiceHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    service: Service


class _Handler(BaseHTTPRequestHandler):
    server: _ServiceHTTPServer

    # -- plumbing ---------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # the service loop owns stderr; HTTP chatter stays quiet

    def _send_json(self, status: int, payload: Any) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b"{}"
        try:
            payload = json.loads(raw.decode() or "{}")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise SpecError(f"request body is not JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise SpecError("request body must be a JSON object")
        return payload

    # -- routes -----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        service = self.server.service
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if url.path in ("/", "/healthz"):
                self._send_json(200, {
                    "ok": True,
                    "pid": os.getpid(),
                    "root": str(service.root),
                    "counts": service.store.counts(),
                    "seq": service.store.seq,
                })
            elif url.path == "/metrics":
                self._send_text(
                    200,
                    service.metrics_text(),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            elif url.path == "/jobs":
                self._send_json(200, {
                    "jobs": [job.to_dict() for job in service.store.jobs()],
                    "counts": service.store.counts(),
                })
            elif len(parts) == 2 and parts[0] == "jobs":
                query = parse_qs(url.query)
                wait_s = float(query.get("wait_s", ["0"])[0])
                doc = self._wait_for_job(service, parts[1], wait_s)
                self._send_json(200, doc)
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "result":
                job = service.store.get(parts[1])
                if job.result is None:
                    self._send_json(404, {
                        "error": f"job {parts[1]} has no result "
                                 f"(state: {job.state})"
                    })
                else:
                    self._send_json(200, {"job": job.id, "result": job.result})
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "trace":
                self._send_json(200, service.trace_tail(parts[1]))
            else:
                self._send_json(404, {"error": f"no such endpoint {url.path}"})
        except JobStoreError as exc:
            self._send_json(404, {"error": str(exc)})
        except Exception as exc:  # pragma: no cover - defensive 500
            self._send_json(500, {"error": str(exc)})

    def _wait_for_job(self, service: Service, job_id: str, wait_s: float) -> Dict[str, Any]:
        """Long-poll: return early state changes, else the deadline's view."""
        deadline = time.monotonic() + min(max(wait_s, 0.0), 60.0)
        doc = service.job_document(job_id)
        initial = (doc["state"], doc["attempt"])
        while time.monotonic() < deadline:
            if doc["state"] in ("done", "failed", "cancelled"):
                break
            if (doc["state"], doc["attempt"]) != initial:
                break
            time.sleep(0.05)
            doc = service.job_document(job_id)
        return doc

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        service = self.server.service
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if url.path == "/jobs":
                payload = self._read_body()
                max_retries = payload.pop("max_retries", None)
                job = service.submit(payload, max_retries=max_retries)
                self._send_json(201, {"job": job.to_dict()})
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel":
                job = service.cancel(parts[1])
                self._send_json(200, {"job": job.to_dict()})
            elif url.path == "/admin/compact":
                service.store.compact()
                self._send_json(200, {
                    "ok": True,
                    "seq": service.store.seq,
                    "journal_bytes": service.store.journal_path.stat().st_size,
                })
            else:
                self._send_json(404, {"error": f"no such endpoint {url.path}"})
        except SpecError as exc:
            self._send_json(400, {"error": str(exc)})
        except JobStoreError as exc:
            self._send_json(409, {"error": str(exc)})
        except Exception as exc:  # pragma: no cover - defensive 500
            self._send_json(500, {"error": str(exc)})


class ServiceServer:
    """The HTTP front: a daemon-threaded stdlib server bound to ``service``.

    ``port=0`` binds an ephemeral port; :attr:`url` reports the real one.
    Start/stop mirrors :class:`repro.telemetry.prometheus.MetricsServer`
    so the CLI can manage both uniformly.
    """

    def __init__(
        self, service: Service, *, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.service = service
        self._httpd = _ServiceHTTPServer((host, port), _Handler)
        self._httpd.service = service
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "ServiceServer":
        thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-service-http",
            daemon=True,
        )
        thread.start()
        self._thread = thread
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def serve(
    root,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    metrics_port: Optional[int] = None,
    config: Optional[ServiceConfig] = None,
    guard=None,
    stream=None,
) -> int:
    """Run the service until the guard asks to stop; returns an exit code.

    Prints ``service: listening on <url>`` (and ``metrics: serving
    <url>`` when a metrics port is requested) to ``stream`` — the
    machine-readable handshake `scripts/service_smoke.py` parses, in the
    same shape as the CLI's metrics announcement.
    """
    import sys

    out = sys.stderr if stream is None else stream
    service = Service(root, config)
    server = ServiceServer(service, host=host, port=port)
    server.start()
    print(f"service: listening on {server.url}", file=out, flush=True)
    metrics_server = None
    if metrics_port is not None:
        from repro.telemetry.prometheus import MetricsServer

        metrics_server = MetricsServer(
            service.metrics_text, port=metrics_port, host=host
        ).start()
        print(f"metrics: serving {metrics_server.url}", file=out, flush=True)
    try:
        service.run(guard)
    finally:
        server.stop()
        if metrics_server is not None:
            metrics_server.stop()
    return EXIT_OK
