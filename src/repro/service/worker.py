"""Job execution: what one service worker process actually runs.

A worker is a forked child that executes exactly one job attempt through
the repository's existing durability machinery and then exits with a
taxonomy code (:mod:`repro.execution.shutdown`):

- the ensemble runs through :func:`repro.analysis.ensemble.
  convergence_ensemble` with a :class:`~repro.execution.checkpoint.
  Checkpointer` rooted in the job's directory, so a re-dispatched attempt
  *resumes* from the previous attempt's checkpoint — bit-identical to an
  uninterrupted run, never recomputed from scratch;
- progress is published through a :class:`~repro.telemetry.heartbeat.
  HeartbeatRecorder` at ``<jobdir>/job.heartbeat.json`` — the service's
  watchdog (and ``repro watch``) read staleness off that file;
- the result is published atomically (``result.json.tmp`` → fsync →
  rename) and stamped with the attempt number, so a half-written result
  can never be adopted and a stale one can never be double-counted.

Job specs (validated by :func:`validate_spec`) come in three kinds:

- ``run``: a single replica; the result carries its convergence time.
- ``ensemble``: ``replicas`` independent chains, summarized as
  :class:`~repro.analysis.ensemble.ConvergenceStats`.
- ``sweep``: one ensemble per value of ``sweep["param"]`` over
  ``sweep["values"]``, each on a deterministically derived seed
  (``seed + index``) so the whole sweep is reproducible from the spec.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path
from typing import Any, Dict, Optional

__all__ = [
    "RESULT_NAME",
    "SpecError",
    "validate_spec",
    "execute_job",
    "job_worker_main",
    "result_path",
    "read_result",
    "job_trace_path",
]

RESULT_NAME = "result.json"

_KINDS = ("run", "ensemble", "sweep")
_SWEEP_PARAMS = ("n", "z", "x0", "replicas", "max_rounds", "seed")


class SpecError(ValueError):
    """A job submission that cannot be executed (bad kind, sizes, sweep)."""


def validate_spec(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Normalize and validate a job submission payload.

    Returns a plain-JSON dict with every field the worker needs, defaults
    applied.  Raises :class:`SpecError` with a message suitable for a 400
    response on anything malformed — validation happens at submit time so
    the queue never holds a job that is doomed to fail parsing.
    """
    if not isinstance(payload, dict):
        raise SpecError("job spec must be a JSON object")
    kind = payload.get("kind", "ensemble")
    if kind not in _KINDS:
        raise SpecError(f"unknown job kind {kind!r} (expected one of {_KINDS})")
    spec: Dict[str, Any] = {"kind": kind}
    spec["protocol"] = str(payload.get("protocol", "minority-3"))
    try:
        spec["n"] = int(payload.get("n", 100))
        spec["z"] = int(payload.get("z", 1))
        spec["max_rounds"] = int(payload.get("max_rounds", 10_000))
        spec["seed"] = int(payload.get("seed", 0))
        spec["replicas"] = int(payload.get("replicas", 1 if kind == "run" else 10))
        spec["checkpoint_every"] = int(payload.get("checkpoint_every", 25))
    except (TypeError, ValueError) as exc:
        raise SpecError(f"non-integer job parameter: {exc}") from exc
    if spec["n"] <= 0 or spec["replicas"] <= 0 or spec["max_rounds"] <= 0:
        raise SpecError("n, replicas, and max_rounds must be positive")
    if kind == "run" and spec["replicas"] != 1:
        raise SpecError("kind 'run' is a single replica; use kind 'ensemble'")
    x0 = payload.get("x0")
    spec["x0"] = None if x0 is None else int(x0)
    engine = payload.get("engine")
    spec["engine"] = None if engine is None else str(engine)
    scenario = payload.get("scenario")
    spec["scenario"] = None if scenario is None else str(scenario)
    trace = payload.get("trace")
    if trace not in (None, "jsonl", "columnar"):
        raise SpecError(f"trace must be 'jsonl' or 'columnar', got {trace!r}")
    spec["trace"] = trace
    spec["heartbeat_every_s"] = float(payload.get("heartbeat_every_s", 1.0))
    if kind == "sweep":
        sweep = payload.get("sweep")
        if not isinstance(sweep, dict):
            raise SpecError("kind 'sweep' requires a 'sweep' object")
        param = sweep.get("param")
        values = sweep.get("values")
        if param not in _SWEEP_PARAMS:
            raise SpecError(
                f"sweep param {param!r} not in {_SWEEP_PARAMS}"
            )
        if not isinstance(values, list) or not values:
            raise SpecError("sweep.values must be a non-empty list")
        spec["sweep"] = {"param": str(param), "values": [int(v) for v in values]}
    return spec


def result_path(jobdir) -> Path:
    return Path(jobdir) / RESULT_NAME


def job_trace_path(jobdir, spec: Dict[str, Any]) -> Optional[Path]:
    """Where this job's trace lives, or ``None`` when tracing is off."""
    fmt = spec.get("trace")
    if fmt is None:
        return None
    suffix = "rcol" if fmt == "columnar" else "jsonl"
    return Path(jobdir) / f"trace.{suffix}"


def read_result(jobdir, *, attempt: Optional[int] = None) -> Optional[Dict[str, Any]]:
    """The job's published result, or ``None`` if absent/torn/stale.

    ``attempt`` (when given) must match the attempt stamped into the
    result: a result left behind by attempt 1 is never adopted as the
    outcome of attempt 2.
    """
    path = result_path(jobdir)
    try:
        payload = json.loads(path.read_text())
    except (FileNotFoundError, json.JSONDecodeError, UnicodeDecodeError):
        return None
    if not isinstance(payload, dict):
        return None
    if attempt is not None and payload.get("attempt") != attempt:
        return None
    return payload


def _build_config(spec: Dict[str, Any], n: int):
    from repro.dynamics.config import Configuration, wrong_consensus_configuration

    z = spec["z"]
    low, high = Configuration.count_bounds(n, z)
    x0 = spec.get("x0")
    if x0 is None:
        x0 = wrong_consensus_configuration(n, z).x0
    return Configuration(n=n, z=z, x0=min(max(int(x0), low), high))


def _run_ensemble(spec: Dict[str, Any], jobdir: Path, *, recorder, seed: int,
                  n: int, replicas: int, max_rounds: int,
                  checkpoint_suffix: str = "") -> Dict[str, Any]:
    from repro.analysis.ensemble import convergence_ensemble
    from repro.cli import resolve_protocol
    from repro.dynamics.rng import make_rng
    from repro.execution.checkpoint import Checkpointer

    protocol = resolve_protocol(spec["protocol"], n)
    config = _build_config(spec, n)
    ckpt_path = jobdir / f"job{checkpoint_suffix}.ckpt"
    resumed = ckpt_path.exists()
    checkpoint = Checkpointer(ckpt_path, every=spec["checkpoint_every"])
    stats = convergence_ensemble(
        protocol,
        config,
        max_rounds,
        make_rng(seed),
        replicas,
        recorder=recorder,
        checkpoint=checkpoint,
        engine=spec.get("engine"),
        scenario=spec.get("scenario"),
    )
    return {"stats": dataclasses.asdict(stats), "resumed": resumed}


def execute_job(spec: Dict[str, Any], jobdir, *, attempt: int = 1) -> Dict[str, Any]:
    """Run one job attempt and return its result payload (pure compute).

    The heavy imports live inside so that merely importing the service
    package stays cheap; the trace writer (when the spec asks for one) and
    the heartbeat recorder compose exactly like the CLI's observability
    plumbing.
    """
    from repro.telemetry import compose_recorders
    from repro.telemetry.heartbeat import HeartbeatRecorder, heartbeat_path

    jobdir = Path(jobdir)
    jobdir.mkdir(parents=True, exist_ok=True)
    recorders = [
        HeartbeatRecorder(
            heartbeat_path(jobdir / "job"),
            role="job",
            attempt=attempt,
            interval_s=spec.get("heartbeat_every_s", 1.0),
        )
    ]
    trace_target = job_trace_path(jobdir, spec)
    trace_writer = None
    if trace_target is not None:
        from repro.telemetry.columnar import open_trace_writer

        trace_writer = open_trace_writer(trace_target, spec["trace"])
        recorders.append(trace_writer)
    recorder = compose_recorders(*recorders)
    try:
        result: Dict[str, Any] = {"kind": spec["kind"], "attempt": attempt}
        if spec["kind"] in ("run", "ensemble"):
            out = _run_ensemble(
                spec, jobdir, recorder=recorder, seed=spec["seed"],
                n=spec["n"], replicas=spec["replicas"],
                max_rounds=spec["max_rounds"],
            )
            result.update(out)
            if spec["kind"] == "run":
                # A run is a one-replica ensemble; surface its single time.
                stats = out["stats"]
                result["tau"] = (
                    None if stats["censored"] else stats["mean_converged"]
                )
        else:
            param = spec["sweep"]["param"]
            points = []
            resumed_any = False
            for index, value in enumerate(spec["sweep"]["values"]):
                overrides = {
                    "n": spec["n"], "replicas": spec["replicas"],
                    "max_rounds": spec["max_rounds"],
                    "seed": spec["seed"] + index,
                }
                point_spec = dict(spec)
                if param in ("n", "z", "x0"):
                    point_spec[param] = value
                else:
                    overrides[param] = value
                if param == "seed":
                    overrides["seed"] = value
                out = _run_ensemble(
                    point_spec, jobdir, recorder=recorder,
                    seed=overrides["seed"], n=point_spec["n"],
                    replicas=overrides["replicas"],
                    max_rounds=overrides["max_rounds"],
                    checkpoint_suffix=f".point{index}",
                )
                resumed_any = resumed_any or out["resumed"]
                points.append({param: value, "stats": out["stats"]})
            result["points"] = points
            result["resumed"] = resumed_any
        return result
    finally:
        if trace_writer is not None:
            trace_writer.close()


def _publish_result(jobdir: Path, payload: Dict[str, Any]) -> None:
    target = result_path(jobdir)
    tmp = target.with_suffix(".json.tmp")
    with open(tmp, "w") as handle:
        json.dump(payload, handle, sort_keys=True)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, target)


def job_worker_main(spec: Dict[str, Any], jobdir: str, attempt: int) -> None:
    """Child-process entry point: run the attempt, publish, exit by taxonomy.

    The ``REPRO_FAULT`` crashpoints of this PR target the *server* (journal
    commits, compaction, dispatch) — a forked worker strips the fault spec
    so a server-aimed fault can never fire inside a job and masquerade as a
    compute failure.
    """
    import sys

    from repro.execution import faults
    from repro.execution.shutdown import EXIT_ERROR, EXIT_OK

    os.environ.pop(faults.FAULT_ENV_VAR, None)
    faults.reset()
    try:
        payload = execute_job(spec, jobdir, attempt=attempt)
        _publish_result(Path(jobdir), payload)
    except Exception as exc:  # the exit code *is* the error channel
        print(f"repro-service worker: {exc}", file=sys.stderr)
        sys.stderr.flush()
        os._exit(EXIT_ERROR)
    os._exit(EXIT_OK)
