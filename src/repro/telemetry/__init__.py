"""Run telemetry: structured traces, per-round metrics, timing hooks.

Every dynamics runner accepts an optional ``recorder=`` argument (default:
the no-op :data:`NULL_RECORDER`, whose disabled flag keeps the hot loops on
the exact pre-telemetry code path).  Three concrete recorders ship:

* :class:`MetricsRecorder` — O(1)-memory aggregates: rounds, wall-clock,
  rounds/sec, realized drift.
* :class:`JsonlTraceWriter` — streams one JSON record per round, plus a
  provenance header (protocol fingerprint, RNG state hash, parameters) and
  a closing summary.
* :class:`ColumnarTraceWriter` — the same record stream in a chunked
  binary column container (``--trace-format columnar``): cheaper on the
  hot path, memory-mappable for analytics, losslessly convertible to and
  from JSONL (:func:`jsonl_to_columnar` / :func:`columnar_to_jsonl`);
  :func:`open_trace_writer` picks the sink from a format name.
* :class:`TeeRecorder` / :func:`compose_recorders` — fan events out to both.

Stage-level timing uses :func:`span` — named, nestable wall-clock spans
with counters that runners open around their hot loops; spans land in
:class:`MetricsRecorder` aggregates and in traces as ``span`` records.

The *live* observability plane builds on the same hooks:

* :class:`HeartbeatRecorder` (:mod:`repro.telemetry.heartbeat`) — rewrites
  an atomic heartbeat file with progress, throughput, and a
  :mod:`~repro.telemetry.resources` sample; ``repro watch`` and the
  Prometheus exporter read those files with no IPC to the run.
* :mod:`repro.telemetry.prometheus` and :mod:`repro.telemetry.profiling`
  are deliberately **not** re-exported here — they are demand-imported by
  the CLI so that importing a runner never pays for the HTTP server or
  cProfile machinery.

See docs/OBSERVABILITY.md for the record schema, overhead measurements and
a worked trace-reading example.
"""

from repro.telemetry.heartbeat import (
    HEARTBEAT_SCHEMA_VERSION,
    HEARTBEAT_SUFFIX,
    Heartbeat,
    HeartbeatRecorder,
    discover_heartbeats,
    heartbeat_path,
    read_heartbeat,
    write_heartbeat,
)
from repro.telemetry.columnar import (
    COLUMNAR_SUFFIX,
    TRACE_FORMATS,
    ColumnarTraceData,
    ColumnarTraceWriter,
    columnar_tail_round,
    columnar_to_jsonl,
    detect_trace_format,
    jsonl_to_columnar,
    load_columnar_data,
    open_trace_writer,
    read_columnar_trace,
    write_trace_records,
)
from repro.telemetry.jsonl import (
    JsonlTraceWriter,
    read_trace,
    trace_counts,
    trace_to_series,
    validate_records,
    validate_trace,
)
from repro.telemetry.recorder import (
    NULL_RECORDER,
    MetricsRecorder,
    NullRecorder,
    Recorder,
    RunMetrics,
    RunProvenance,
    TeeRecorder,
    compose_recorders,
    protocol_fingerprint,
    rng_provenance,
    run_provenance,
)
from repro.telemetry.resources import (
    ResourceSample,
    cpu_seconds,
    peak_rss_bytes,
    rss_bytes,
    sample_resources,
)
from repro.telemetry.spans import (
    NULL_SPAN,
    NullSpan,
    Span,
    SpanAggregate,
    SpanRecord,
    current_span,
    span,
)

__all__ = [
    "Span",
    "SpanRecord",
    "SpanAggregate",
    "NullSpan",
    "NULL_SPAN",
    "span",
    "current_span",
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "MetricsRecorder",
    "RunMetrics",
    "TeeRecorder",
    "compose_recorders",
    "RunProvenance",
    "run_provenance",
    "protocol_fingerprint",
    "rng_provenance",
    "JsonlTraceWriter",
    "ColumnarTraceData",
    "ColumnarTraceWriter",
    "COLUMNAR_SUFFIX",
    "TRACE_FORMATS",
    "columnar_tail_round",
    "columnar_to_jsonl",
    "load_columnar_data",
    "detect_trace_format",
    "jsonl_to_columnar",
    "open_trace_writer",
    "read_columnar_trace",
    "read_trace",
    "trace_counts",
    "trace_to_series",
    "validate_records",
    "validate_trace",
    "write_trace_records",
    "HEARTBEAT_SCHEMA_VERSION",
    "HEARTBEAT_SUFFIX",
    "Heartbeat",
    "HeartbeatRecorder",
    "discover_heartbeats",
    "heartbeat_path",
    "read_heartbeat",
    "write_heartbeat",
    "ResourceSample",
    "cpu_seconds",
    "peak_rss_bytes",
    "rss_bytes",
    "sample_resources",
]
