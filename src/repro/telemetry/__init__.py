"""Run telemetry: structured traces, per-round metrics, timing hooks.

Every dynamics runner accepts an optional ``recorder=`` argument (default:
the no-op :data:`NULL_RECORDER`, whose disabled flag keeps the hot loops on
the exact pre-telemetry code path).  Three concrete recorders ship:

* :class:`MetricsRecorder` — O(1)-memory aggregates: rounds, wall-clock,
  rounds/sec, realized drift.
* :class:`JsonlTraceWriter` — streams one JSON record per round, plus a
  provenance header (protocol fingerprint, RNG state hash, parameters) and
  a closing summary.
* :class:`TeeRecorder` / :func:`compose_recorders` — fan events out to both.

Stage-level timing uses :func:`span` — named, nestable wall-clock spans
with counters that runners open around their hot loops; spans land in
:class:`MetricsRecorder` aggregates and in traces as ``span`` records.

See docs/OBSERVABILITY.md for the record schema, overhead measurements and
a worked trace-reading example.
"""

from repro.telemetry.jsonl import (
    JsonlTraceWriter,
    read_trace,
    trace_counts,
    trace_to_series,
    validate_trace,
)
from repro.telemetry.recorder import (
    NULL_RECORDER,
    MetricsRecorder,
    NullRecorder,
    Recorder,
    RunMetrics,
    RunProvenance,
    TeeRecorder,
    compose_recorders,
    protocol_fingerprint,
    rng_provenance,
    run_provenance,
)
from repro.telemetry.spans import (
    NULL_SPAN,
    NullSpan,
    Span,
    SpanAggregate,
    SpanRecord,
    current_span,
    span,
)

__all__ = [
    "Span",
    "SpanRecord",
    "SpanAggregate",
    "NullSpan",
    "NULL_SPAN",
    "span",
    "current_span",
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "MetricsRecorder",
    "RunMetrics",
    "TeeRecorder",
    "compose_recorders",
    "RunProvenance",
    "run_provenance",
    "protocol_fingerprint",
    "rng_provenance",
    "JsonlTraceWriter",
    "read_trace",
    "trace_counts",
    "trace_to_series",
    "validate_trace",
]
