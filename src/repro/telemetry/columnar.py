"""Columnar binary traces: chunked column batches with JSONL-equal records.

The JSONL sink (:mod:`repro.telemetry.jsonl`) pays a text encode and a
``write(2)`` per round — measured at double-digit percent overhead on the
hot path — and every analytics query re-parses the text.  This module
stores the same schema-v1 record stream in a chunked binary container
instead: ``round`` records are buffered and written as typed numpy column
batches (one ``int64``/``float64`` buffer per field), while the rare
structural records (``run_start``, ``span``, ``run_end``) are embedded as
compact JSON payloads in their stream position.  Readers decode back to
the *exact* record dicts the JSONL sink would have produced, so
conversion between the formats is lossless in both directions and every
consumer of :func:`~repro.telemetry.jsonl.read_trace` /
:func:`~repro.telemetry.jsonl.validate_trace` works on either format
unchanged (both sniff the ``RCOL`` magic and delegate here).

Container layout — a flat sequence of self-delimiting chunks::

    chunk := "RCOL" | body_len:u32 | body | crc32(body):u32 | chunk_len:u32
    body  := meta_len:u32 | meta(JSON) | payload

All integers are little-endian.  ``meta`` describes the payload: either a
``{"kind": "json", "count": N}`` chunk whose payload is ``N`` JSON lines,
or a ``{"kind": "rounds", "rows": N, "columns": [...]}`` chunk whose
payload is the concatenated presence masks and column buffers.  The CRC
detects corruption mid-file; the trailing ``chunk_len`` makes the chunk
walkable from either end.  Integer-valued fields keep their JSON int-ness
through an ``int64`` column (or an int-mask on promoted float columns),
so ``jsonl → columnar → jsonl`` reproduces the original bytes.

Durability matches the JSONL sink contract, at chunk granularity: the
writer streams to ``<path>.tmp`` (one write per chunk), renames into
place on close after flush + fsync, honours the ``trace:mid_write``
crashpoint by tearing a chunk mid-write, and torn or corrupt tails are
recoverable with ``salvage=True``.  The trade-off is buffering: up to
``chunk_rounds`` rounds live in memory between chunk writes, so a hard
kill can lose the buffered tail — ``flush()`` (called by
:class:`~repro.execution.ShutdownGuard` on graceful exits) drains it.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, IO, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.execution import faults
from repro.telemetry.jsonl import (
    COLUMNAR_MAGIC,
    JsonlTraceWriter,
    TraceWriterBase,
    read_trace,
    validate_records,
)

__all__ = [
    "COLUMNAR_FORMAT_VERSION",
    "COLUMNAR_SUFFIX",
    "DEFAULT_CHUNK_ROUNDS",
    "TRACE_FORMATS",
    "ColumnarTraceData",
    "ColumnarTraceWriter",
    "columnar_tail_round",
    "columnar_to_jsonl",
    "detect_trace_format",
    "jsonl_to_columnar",
    "load_columnar_data",
    "open_trace_writer",
    "read_columnar_trace",
    "write_trace_records",
]

COLUMNAR_FORMAT_VERSION = 1
"""Container version stamped into every chunk's meta block."""

COLUMNAR_SUFFIX = ".ctrace"
"""Conventional file suffix for columnar traces (discovery globs use it)."""

DEFAULT_CHUNK_ROUNDS = 4096
"""Round records buffered per column chunk (the durability granularity)."""

TRACE_FORMATS = ("jsonl", "columnar")
"""Recognised ``--trace-format`` values, in default-first order."""

_U32 = struct.Struct("<I")
_HEAD_LEN = len(COLUMNAR_MAGIC) + _U32.size          # magic + body_len
_FOOT_LEN = 2 * _U32.size                            # crc + chunk_len
# json.dumps with a fresh encoder per call is the cost the JSONL satellite
# fix removed; bind one encoder here too.
_ENCODE = json.JSONEncoder(sort_keys=True).encode
_META_ENCODE = json.JSONEncoder(sort_keys=True, separators=(",", ":")).encode

# The float64 span inside which every integer is exactly representable —
# int-valued entries of a promoted float column beyond it would corrupt
# on round-trip, so such columns fall back to JSON encoding.
_EXACT_INT = 2 ** 53
_I64_MIN, _I64_MAX = -(2 ** 63), 2 ** 63 - 1


# ----------------------------------------------------------------------
# Chunk encoding
# ----------------------------------------------------------------------


def _frame(meta: Dict[str, Any], payload: bytes) -> bytes:
    meta_bytes = _META_ENCODE(meta).encode("utf-8")
    body = _U32.pack(len(meta_bytes)) + meta_bytes + payload
    chunk_len = _HEAD_LEN + len(body) + _FOOT_LEN
    return b"".join(
        (
            COLUMNAR_MAGIC,
            _U32.pack(len(body)),
            body,
            _U32.pack(zlib.crc32(body)),
            _U32.pack(chunk_len),
        )
    )


def _encode_json_chunk(records: List[Dict[str, Any]]) -> bytes:
    payload = "".join(_ENCODE(record) + "\n" for record in records).encode("utf-8")
    meta = {"v": COLUMNAR_FORMAT_VERSION, "kind": "json", "count": len(records)}
    return _frame(meta, payload)


_MISSING = object()


def _column_parts(key: str, values: List[Any]):
    """Encode one round-record field as (column-meta, payload bytes...)."""
    present = [value is not _MISSING for value in values]
    mask = None if all(present) else np.asarray(present, dtype=np.uint8)
    given = [value for value in values if value is not _MISSING]
    # bool is an int subclass; it must not be flattened into a number column.
    all_int = all(type(value) is int for value in given)
    numeric = all(type(value) in (int, float) for value in given)
    if all_int and all(_I64_MIN <= value <= _I64_MAX for value in given):
        data = np.asarray(
            [0 if value is _MISSING else value for value in values], dtype="<i8"
        )
        code, imask = "i8", None
    elif numeric and all(
        type(value) is float or abs(value) <= _EXACT_INT for value in given
    ):
        data = np.asarray(
            [0.0 if value is _MISSING else float(value) for value in values],
            dtype="<f8",
        )
        code = "f8"
        ints = [value is not _MISSING and type(value) is int for value in values]
        imask = np.asarray(ints, dtype=np.uint8) if any(ints) else None
    else:
        # Non-numeric, bool, or float64-inexact values: keep them as JSON.
        text = json.dumps(
            [None if value is _MISSING else value for value in values]
        )
        data = text.encode("utf-8")
        code, imask = "j", None
    data_bytes = data if isinstance(data, bytes) else data.tobytes()
    entry = {
        "k": key,
        "c": code,
        "m": int(mask is not None),
        "im": int(imask is not None),
        "n": len(data_bytes),
    }
    parts = []
    if mask is not None:
        parts.append(mask.tobytes())
    if imask is not None:
        parts.append(imask.tobytes())
    parts.append(data_bytes)
    return entry, parts


def _encode_rounds_chunk(records: List[Dict[str, Any]]) -> bytes:
    rows = len(records)
    keys = sorted({key for record in records for key in record if key != "kind"})
    columns = []
    parts: List[bytes] = []
    for key in keys:
        values = [record.get(key, _MISSING) for record in records]
        entry, column_parts = _column_parts(key, values)
        columns.append(entry)
        parts.extend(column_parts)
    meta = {
        "v": COLUMNAR_FORMAT_VERSION,
        "kind": "rounds",
        "rows": rows,
        "columns": columns,
    }
    return _frame(meta, b"".join(parts))


# ----------------------------------------------------------------------
# Chunk decoding
# ----------------------------------------------------------------------


def _iter_chunks(
    data, size: int, salvage: bool
) -> Iterator[Tuple[Dict[str, Any], Any, int]]:
    """Yield ``(meta, payload, payload_offset)`` per chunk, in file order.

    ``data`` is any buffer (bytes or mmap).  A torn tail, bad magic, CRC
    mismatch, or undecodable meta ends the walk in salvage mode and raises
    ``ValueError`` otherwise — mirroring the JSONL reader's torn-line
    semantics at chunk granularity.
    """

    class _Corrupt(Exception):
        pass

    pos = 0
    try:
        while pos < size:
            if size - pos < _HEAD_LEN + _FOOT_LEN:
                raise _Corrupt("torn chunk header (truncated file?)")
            if bytes(data[pos:pos + len(COLUMNAR_MAGIC)]) != COLUMNAR_MAGIC:
                raise _Corrupt("bad magic (not a chunk boundary)")
            (body_len,) = _U32.unpack(
                data[pos + len(COLUMNAR_MAGIC):pos + _HEAD_LEN]
            )
            end = pos + _HEAD_LEN + body_len + _FOOT_LEN
            if end > size:
                raise _Corrupt("torn chunk body (truncated file?)")
            body = bytes(data[pos + _HEAD_LEN:pos + _HEAD_LEN + body_len])
            (crc,) = _U32.unpack(data[end - _FOOT_LEN:end - _U32.size])
            (chunk_len,) = _U32.unpack(data[end - _U32.size:end])
            if chunk_len != end - pos or zlib.crc32(body) != crc:
                raise _Corrupt("CRC or length mismatch (corrupt chunk)")
            if len(body) < _U32.size:
                raise _Corrupt("chunk body too short for its meta block")
            (meta_len,) = _U32.unpack(body[:_U32.size])
            if _U32.size + meta_len > len(body):
                raise _Corrupt("meta block overruns the chunk body")
            try:
                meta = json.loads(body[_U32.size:_U32.size + meta_len])
            except ValueError:
                raise _Corrupt("meta block is not valid JSON")
            if meta.get("v") != COLUMNAR_FORMAT_VERSION:
                raise _Corrupt(
                    f"unsupported container version {meta.get('v')!r} "
                    f"(expected {COLUMNAR_FORMAT_VERSION})"
                )
            payload = body[_U32.size + meta_len:]
            yield meta, payload, pos + _HEAD_LEN + _U32.size + meta_len
            pos = end
    except _Corrupt as problem:
        if not salvage:
            raise ValueError(f"columnar trace chunk at byte {pos}: {problem}")


def _decode_round_columns(
    meta: Dict[str, Any], payload: bytes
) -> Tuple[int, Dict[str, Tuple[Any, Optional[np.ndarray]]]]:
    """Decode a rounds chunk to ``{key: (values, present_mask)}``.

    ``values`` is an ``int64``/``float64`` array for numeric columns (the
    zero-copy path the analytics fast path consumes) or a plain list for
    JSON-coded columns; ``present_mask`` is a bool array, or ``None`` when
    every row carries the field.  Promoted-int entries are *not* folded
    back here — :func:`_decode_rounds_chunk` applies the int-mask when
    materialising records.
    """
    rows = int(meta.get("rows", 0))
    columns: Dict[str, Tuple[Any, Optional[np.ndarray]]] = {}
    offset = 0
    for entry in meta.get("columns", []):
        mask = imask = None
        if entry.get("m"):
            mask = np.frombuffer(payload, dtype=np.uint8, count=rows, offset=offset)
            mask = mask.astype(bool)
            offset += rows
        if entry.get("im"):
            imask = np.frombuffer(payload, dtype=np.uint8, count=rows, offset=offset)
            imask = imask.astype(bool)
            offset += rows
        nbytes = int(entry["n"])
        code = entry["c"]
        if code == "i8":
            values: Any = np.frombuffer(payload, dtype="<i8", count=rows, offset=offset)
        elif code == "f8":
            values = np.frombuffer(payload, dtype="<f8", count=rows, offset=offset)
        elif code == "j":
            values = json.loads(payload[offset:offset + nbytes])
            if len(values) != rows:
                raise ValueError(
                    f"JSON column {entry.get('k')!r} holds {len(values)} rows, "
                    f"chunk declares {rows}"
                )
        else:
            raise ValueError(f"unknown column code {code!r}")
        offset += nbytes
        columns[entry["k"]] = (values, mask)
        if imask is not None:
            # Int-mask rides alongside under a reserved key (field names in
            # records never contain NUL), consumed when materialising dicts.
            columns[entry["k"] + "\x00imask"] = (imask, None)
    return rows, columns


def _decode_rounds_chunk(meta: Dict[str, Any], payload: bytes) -> List[Dict[str, Any]]:
    rows, columns = _decode_round_columns(meta, payload)
    records: List[Dict[str, Any]] = [{"kind": "round"} for _ in range(rows)]
    for key, (values, mask) in columns.items():
        if key.endswith("\x00imask"):
            continue
        imask_entry = columns.get(key + "\x00imask")
        imask = imask_entry[0] if imask_entry is not None else None
        if isinstance(values, np.ndarray):
            if values.dtype.kind == "i":
                pylist: List[Any] = [int(v) for v in values]
            else:
                pylist = [float(v) for v in values]
                if imask is not None:
                    pylist = [
                        int(v) if is_int else v
                        for v, is_int in zip(pylist, imask)
                    ]
        else:
            pylist = values
        if mask is None:
            for record, value in zip(records, pylist):
                record[key] = value
        else:
            for record, value, present in zip(records, pylist, mask):
                if present:
                    record[key] = value
    return records


def _decode_json_chunk(meta: Dict[str, Any], payload: bytes) -> List[Dict[str, Any]]:
    records = []
    for line in payload.decode("utf-8").splitlines():
        if line.strip():
            records.append(json.loads(line))
    if len(records) != meta.get("count", len(records)):
        raise ValueError(
            f"JSON chunk holds {len(records)} records, "
            f"meta declares {meta.get('count')}"
        )
    return records


def _open_buffer(path: Union[str, Path]):
    """Memory-map ``path`` read-only; fall back to bytes for empty files."""
    with Path(path).open("rb") as handle:
        size = os.fstat(handle.fileno()).st_size
        if size == 0:
            return b"", 0
        return mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ), size


def read_columnar_trace(
    path: Union[str, Path], salvage: bool = False
) -> List[Dict[str, Any]]:
    """Decode a columnar container back to its record dicts, in order.

    The inverse of :class:`ColumnarTraceWriter`: the returned records are
    value-identical to what the JSONL sink would have written for the same
    run.  With ``salvage=True`` a torn or corrupt chunk ends the decode
    and the preceding records are returned; strictly, it raises
    ``ValueError`` naming the offending byte offset.
    """
    data, size = _open_buffer(path)
    records: List[Dict[str, Any]] = []
    try:
        for meta, payload, _ in _iter_chunks(data, size, salvage):
            if meta.get("kind") == "rounds":
                records.extend(_decode_rounds_chunk(meta, payload))
            elif meta.get("kind") == "json":
                records.extend(_decode_json_chunk(meta, payload))
            else:
                if salvage:
                    break
                raise ValueError(f"unknown chunk kind {meta.get('kind')!r}")
    finally:
        if isinstance(data, mmap.mmap):
            data.close()
    return records


# ----------------------------------------------------------------------
# The sink
# ----------------------------------------------------------------------


class ColumnarTraceWriter(TraceWriterBase):
    """Stream a run into the chunked columnar container.

    Drop-in alternative to :class:`~repro.telemetry.jsonl.
    JsonlTraceWriter` (same Recorder hooks, same record contents — both
    build records through :class:`~repro.telemetry.jsonl.
    TraceWriterBase`): ``round`` records are buffered and flushed as one
    typed column chunk per ``chunk_rounds`` records, so the hot path pays
    a dict append instead of a JSON encode + ``write(2)``.  Structural
    records (``run_start``, ``span``, ``run_end``) flush the pending
    rounds first and are embedded as JSON chunks, preserving stream
    order.

    Durability contract (docs/OBSERVABILITY.md, "Trace formats"): lazy
    ``<path>.tmp`` open, one write per chunk, ``flush()`` drains the
    round buffer and fsyncs (wired to :class:`~repro.execution.
    ShutdownGuard`), :meth:`close` renames into place, and the
    ``trace:mid_write`` crashpoint tears a chunk mid-write for the salvage
    tests.  Only path targets are supported — the container is binary.

    Args:
        target: output path (``str`` or ``Path``).
        include_timings: as on the JSONL sink — ``False`` omits wall-clock
            fields so seed-identical runs produce byte-identical files.
        chunk_rounds: round records buffered per column chunk; smaller
            values tighten durability, larger ones amortise better.
    """

    def __init__(
        self,
        target: Union[str, Path],
        include_timings: bool = True,
        chunk_rounds: int = DEFAULT_CHUNK_ROUNDS,
    ) -> None:
        if not isinstance(target, (str, Path)):
            raise TypeError(
                "ColumnarTraceWriter needs a filesystem path "
                "(the container is binary; open file objects are not supported)"
            )
        if chunk_rounds < 1:
            raise ValueError(f"chunk_rounds must be >= 1, got {chunk_rounds}")
        super().__init__(include_timings)
        self.chunk_rounds = chunk_rounds
        self.chunks_written = 0
        self._path = Path(target)
        self._tmp_path: Optional[Path] = None
        self._file: Optional[IO[bytes]] = None
        self._pending: List[Dict[str, Any]] = []
        self._closed = False

    def _write(self, record: Dict[str, Any]) -> None:
        if self._closed:
            raise ValueError("trace writer already closed")
        if record.get("kind") == "round":
            self._pending.append(record)
            self.records_written += 1
            if len(self._pending) >= self.chunk_rounds:
                self._drain_rounds()
        else:
            self._drain_rounds()
            self._write_chunk(_encode_json_chunk([record]))
            self.records_written += 1

    def _drain_rounds(self) -> None:
        if self._pending:
            pending, self._pending = self._pending, []
            self._write_chunk(_encode_rounds_chunk(pending))

    def _write_chunk(self, frame: bytes) -> None:
        if self._file is None:
            self._tmp_path = self._path.with_name(self._path.name + ".tmp")
            # Unbuffered: one write(2) per chunk, so every completed chunk
            # reaches the OS as it is written (same salvage story as the
            # JSONL sink, at chunk granularity).
            self._file = self._tmp_path.open("wb", buffering=0)
        if faults.should_trip("trace:mid_write"):
            # A deterministically torn chunk: half the frame, durable on
            # disk, then death — what salvage-prefix recovery exists for.
            self._file.write(frame[: max(1, len(frame) // 2)])
            self._fsync()
            faults.trip("trace:mid_write")
        self._file.write(frame)
        self.chunks_written += 1
        if faults.should_trip("trace:after_write"):
            self._fsync()
            faults.trip("trace:after_write")

    def _fsync(self) -> None:
        if self._file is not None:
            self._file.flush()
            try:
                os.fsync(self._file.fileno())
            except (OSError, ValueError):  # pragma: no cover - exotic targets
                pass

    def flush(self) -> None:
        """Drain buffered rounds into a chunk, then flush + fsync.

        Wired to :class:`~repro.execution.ShutdownGuard` exactly like the
        JSONL sink's flush, so a graceful interrupt loses nothing; only a
        hard kill can drop the (at most ``chunk_rounds``-record) buffer.
        """
        self._drain_rounds()
        self._fsync()

    def close(self) -> None:
        """Drain, fsync, close, and atomically publish at the target path."""
        if self._closed:
            return
        self._drain_rounds()
        self._closed = True
        if self._file is None:
            return
        self._fsync()
        self._file.close()
        self._file = None
        if self._tmp_path is not None:
            os.replace(self._tmp_path, self._path)
            self._tmp_path = None


def open_trace_writer(
    target: Union[str, Path],
    trace_format: str = "jsonl",
    include_timings: bool = True,
    **kwargs: Any,
) -> TraceWriterBase:
    """Build the trace sink for ``--trace-format``: JSONL or columnar.

    The single construction point the CLI, supervisor shards, and smoke
    scripts share, so a format name is interpreted identically everywhere.
    Extra keyword arguments are forwarded to the sink (e.g.
    ``chunk_rounds=`` for the columnar writer).
    """
    if trace_format == "jsonl":
        return JsonlTraceWriter(target, include_timings=include_timings, **kwargs)
    if trace_format == "columnar":
        return ColumnarTraceWriter(target, include_timings=include_timings, **kwargs)
    raise ValueError(
        f"unknown trace format {trace_format!r} (expected one of {TRACE_FORMATS})"
    )


def detect_trace_format(path: Union[str, Path]) -> str:
    """``"columnar"`` when ``path`` starts with the container magic, else ``"jsonl"``."""
    try:
        with Path(path).open("rb") as handle:
            head = handle.read(len(COLUMNAR_MAGIC))
    except OSError as error:
        raise ValueError(f"cannot sniff trace format of {path}: {error}") from error
    return "columnar" if head == COLUMNAR_MAGIC else "jsonl"


# ----------------------------------------------------------------------
# Whole-trace writes and converters
# ----------------------------------------------------------------------


def write_trace_records(
    target: Union[str, Path],
    records: List[Dict[str, Any]],
    trace_format: str = "jsonl",
    chunk_rounds: int = DEFAULT_CHUNK_ROUNDS,
) -> None:
    """Write an in-memory record stream as a complete trace file, atomically.

    Consecutive runs of ``round`` records become column chunks (columnar)
    or JSON lines (jsonl); everything is staged at ``<target>.tmp``,
    fsynced, and renamed into place — the write discipline the supervisor's
    merged-trace publisher and the converters share.
    """
    target = Path(target)
    tmp = target.with_name(target.name + ".tmp")
    if trace_format == "jsonl":
        payload = "".join(_ENCODE(record) + "\n" for record in records).encode("utf-8")
        frames = [payload]
    elif trace_format == "columnar":
        frames = []
        run: List[Dict[str, Any]] = []
        for record in records:
            if record.get("kind") == "round":
                run.append(record)
                if len(run) >= chunk_rounds:
                    frames.append(_encode_rounds_chunk(run))
                    run = []
            else:
                if run:
                    frames.append(_encode_rounds_chunk(run))
                    run = []
                frames.append(_encode_json_chunk([record]))
        if run:
            frames.append(_encode_rounds_chunk(run))
    else:
        raise ValueError(
            f"unknown trace format {trace_format!r} (expected one of {TRACE_FORMATS})"
        )
    with tmp.open("wb") as handle:
        for frame in frames:
            handle.write(frame)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, target)


def jsonl_to_columnar(
    source: Union[str, Path],
    target: Union[str, Path],
    salvage: bool = False,
    chunk_rounds: int = DEFAULT_CHUNK_ROUNDS,
) -> int:
    """Convert a JSONL trace to the columnar container; return record count.

    Validation runs first (so an invalid trace cannot silently change
    format); with ``salvage=True`` the recovered prefix is converted
    instead.  Round-tripping back through :func:`columnar_to_jsonl`
    reproduces the original file byte for byte.
    """
    records = validate_records(read_trace(source, salvage=salvage), salvage=salvage)
    write_trace_records(target, records, "columnar", chunk_rounds=chunk_rounds)
    return len(records)


def columnar_to_jsonl(
    source: Union[str, Path],
    target: Union[str, Path],
    salvage: bool = False,
) -> int:
    """Convert a columnar container to JSONL; return the record count.

    The emitted lines are exactly ``json.dumps(record, sort_keys=True)``
    — the JSONL sink's own bytes — so conversion is an identity on record
    values in both directions.
    """
    records = validate_records(
        read_columnar_trace(source, salvage=salvage), salvage=salvage
    )
    write_trace_records(target, records, "jsonl")
    return len(records)


# ----------------------------------------------------------------------
# Zero-reparse access paths
# ----------------------------------------------------------------------


def columnar_tail_round(path: Union[str, Path]) -> Optional[Dict[str, Any]]:
    """The last ``round`` record of a columnar trace, without a full decode.

    Walks chunk *headers* only (a few dozen bytes per chunk, skipping
    payloads via their declared lengths) to find the final chunk holding
    round records, then decodes just that chunk.  Torn tails — the live
    ``.tmp`` of a running writer — simply end the walk, so tailing a
    file mid-write returns the last *complete* round.  ``None`` when no
    complete round record exists.
    """
    try:
        data, size = _open_buffer(path)
    except OSError:
        return None
    last: Optional[Tuple[Dict[str, Any], bytes]] = None
    try:
        for meta, payload, _ in _iter_chunks(data, size, salvage=True):
            if meta.get("kind") == "rounds" and meta.get("rows"):
                last = (meta, payload)
            elif meta.get("kind") == "json":
                try:
                    records = _decode_json_chunk(meta, payload)
                except ValueError:
                    continue
                if any(r.get("kind") == "round" for r in records):
                    last = (meta, payload)
        if last is None:
            return None
        meta, payload = last
        if meta.get("kind") == "rounds":
            records = _decode_rounds_chunk(meta, payload)
        else:
            records = _decode_json_chunk(meta, payload)
        rounds = [r for r in records if r.get("kind") == "round"]
        return rounds[-1] if rounds else None
    except ValueError:
        return None
    finally:
        if isinstance(data, mmap.mmap):
            data.close()


@dataclass(frozen=True)
class ColumnarTraceData:
    """A validated columnar trace, exposed as columns instead of dicts.

    What the analytics fast path (``repro report`` over a trace
    directory) consumes: the structural records as dicts, and the round
    records as numpy columns straight out of the memory-mapped chunks —
    no per-record dict was ever materialised.

    Attributes:
        start: the ``run_start`` record.
        end: the ``run_end`` record (validated present).
        spans: ``span`` records, in stream order.
        rounds: number of round records.
        columns: field name → float64/int64 array over *all* round
            records (missing entries hold fill values — consult
            ``masks``); JSON-coded fields are plain lists.
        masks: field name → bool presence array, for fields that were
            missing somewhere.
    """

    start: Dict[str, Any]
    end: Dict[str, Any]
    spans: List[Dict[str, Any]] = field(default_factory=list)
    rounds: int = 0
    columns: Dict[str, Any] = field(default_factory=dict)
    masks: Dict[str, np.ndarray] = field(default_factory=dict)

    def column(self, key: str) -> Optional[np.ndarray]:
        """A field's values over the rounds where it is present (numeric only)."""
        values = self.columns.get(key)
        if values is None or not isinstance(values, np.ndarray):
            return None
        mask = self.masks.get(key)
        return values if mask is None else values[mask]


def load_columnar_data(path: Union[str, Path]) -> ColumnarTraceData:
    """Decode + validate a columnar trace without materialising round dicts.

    Runs the same schema checks as :func:`~repro.telemetry.jsonl.
    validate_trace` — header provenance, round ``t`` integer and
    non-decreasing, finite counts and drifts, span shape, single trailing
    ``run_end`` with a truthful ``rounds_recorded`` — but vectorised over
    the column buffers, which is what makes ``repro report`` on a
    million-record directory answer in milliseconds instead of re-parsing
    text.  Raises ``ValueError`` on the first violation, like the strict
    validator.
    """
    from repro.telemetry.jsonl import _validate_span_record

    data, size = _open_buffer(path)
    start: Optional[Dict[str, Any]] = None
    end: Optional[Dict[str, Any]] = None
    spans: List[Dict[str, Any]] = []
    per_chunk: List[Tuple[int, Dict[str, Tuple[Any, Optional[np.ndarray]]]]] = []
    rounds = 0
    previous_t: Optional[int] = None
    index = 0  # running record index, for validator-compatible messages
    try:
        for meta, payload, _ in _iter_chunks(data, size, salvage=False):
            if meta.get("kind") == "json":
                for record in _decode_json_chunk(meta, payload):
                    index += 1
                    kind = record.get("kind")
                    if index == 1:
                        if kind != "run_start":
                            raise ValueError(
                                f"first record must be run_start, got {kind!r}"
                            )
                        validate_records([record], salvage=True)
                        start = record
                    elif kind == "run_end":
                        if end is not None:
                            raise ValueError(f"record {index} is a second run_end")
                        end = record
                    elif kind == "span":
                        _validate_span_record(record, index)
                        spans.append(record)
                    elif kind == "round":
                        # Converted traces may carry rounds in JSON chunks;
                        # route them through the shared scalar checks.
                        raise ValueError(
                            f"round record {index} outside a rounds chunk"
                        )
                    else:
                        raise ValueError(
                            f"record {index} has unknown kind {kind!r} "
                            "(expected round, span, or run_end)"
                        )
            elif meta.get("kind") == "rounds":
                if start is None:
                    raise ValueError("first record must be run_start, got 'round'")
                if end is not None:
                    raise ValueError(
                        f"round record {index + 1} appears after run_end "
                        "(truncated or spliced trace?)"
                    )
                rows, columns = _decode_round_columns(meta, payload)
                index += rows
                previous_t = _validate_round_columns(
                    rows, columns, previous_t, first_index=index - rows + 1
                )
                rounds += rows
                per_chunk.append((rows, columns))
            else:
                raise ValueError(f"unknown chunk kind {meta.get('kind')!r}")
        if start is None:
            raise ValueError("trace is empty")
        if end is None:
            raise ValueError("last record must be run_end (truncated trace?)")
        if end.get("rounds_recorded") != rounds:
            raise ValueError(
                f"run_end claims {end.get('rounds_recorded')} rounds but the "
                f"trace holds {rounds}"
            )
        columns, masks = _concatenate_columns(per_chunk, rounds)
    finally:
        if isinstance(data, mmap.mmap):
            data.close()
    return ColumnarTraceData(
        start=start, end=end, spans=spans, rounds=rounds,
        columns=columns, masks=masks,
    )


def _validate_round_columns(
    rows: int,
    columns: Dict[str, Tuple[Any, Optional[np.ndarray]]],
    previous_t: Optional[int],
    first_index: int,
) -> Optional[int]:
    """Vectorised round-record checks for one chunk; returns the last t."""
    entry = columns.get("t")
    if entry is None:
        raise ValueError(f"round record {first_index} has non-integer t: None")
    t_values, t_mask = entry
    if (
        not isinstance(t_values, np.ndarray)
        or t_values.dtype.kind != "i"
        or t_mask is not None
    ):
        raise ValueError(
            f"round record {first_index} has non-integer t (column-coded "
            f"{type(t_values).__name__})"
        )
    if rows:
        diffs = np.diff(t_values)
        if np.any(diffs < 0):
            row = int(np.flatnonzero(diffs < 0)[0]) + 1
            raise ValueError(
                f"round record {first_index + row} goes back in time: "
                f"t={int(t_values[row])} after t={int(t_values[row - 1])}"
            )
        if previous_t is not None and int(t_values[0]) < previous_t:
            raise ValueError(
                f"round record {first_index} goes back in time: "
                f"t={int(t_values[0])} after t={previous_t}"
            )
    entry = columns.get("count")
    if entry is None:
        raise ValueError(f"round record {first_index} has non-finite count: None")
    counts, count_mask = entry
    if not isinstance(counts, np.ndarray) or count_mask is not None:
        raise ValueError(
            f"round record {first_index} has non-finite or missing count"
        )
    finite = np.isfinite(counts)
    if not np.all(finite):
        row = int(np.flatnonzero(~finite)[0])
        raise ValueError(
            f"round record {first_index + row} has non-finite count: "
            f"{float(counts[row])!r}"
        )
    drift_entry = columns.get("drift")
    if drift_entry is not None:
        drifts, drift_mask = drift_entry
        if not isinstance(drifts, np.ndarray):
            raise ValueError(
                f"round record {first_index} has non-numeric drift"
            )
        checked = drifts if drift_mask is None else drifts[drift_mask]
        if not np.all(np.isfinite(checked)):
            raise ValueError(
                f"round record {first_index} chunk has non-finite drift"
            )
    return int(t_values[-1]) if rows else previous_t


def _concatenate_columns(
    per_chunk: List[Tuple[int, Dict[str, Tuple[Any, Optional[np.ndarray]]]]],
    total_rows: int,
):
    """Stitch per-chunk columns into whole-trace arrays + presence masks."""
    keys = sorted(
        {
            key
            for _, columns in per_chunk
            for key in columns
            if "\x00" not in key and key != "__imask__"
        }
    )
    out_columns: Dict[str, Any] = {}
    out_masks: Dict[str, np.ndarray] = {}
    for key in keys:
        numeric = all(
            isinstance(columns[key][0], np.ndarray)
            for _, columns in per_chunk
            if key in columns
        )
        everywhere = all(key in columns for _, columns in per_chunk)
        any_mask = any(
            columns[key][1] is not None
            for _, columns in per_chunk
            if key in columns
        )
        if numeric:
            dtypes = {
                columns[key][0].dtype.kind
                for _, columns in per_chunk
                if key in columns
            }
            dtype = np.int64 if dtypes == {"i"} else np.float64
            values = np.empty(total_rows, dtype=dtype)
            mask = (
                np.zeros(total_rows, dtype=bool)
                if (any_mask or not everywhere)
                else None
            )
            cursor = 0
            for rows, columns in per_chunk:
                block = slice(cursor, cursor + rows)
                if key in columns:
                    chunk_values, chunk_mask = columns[key]
                    values[block] = chunk_values
                    if mask is not None:
                        mask[block] = True if chunk_mask is None else chunk_mask
                else:
                    values[block] = 0
                cursor += rows
        else:
            values = []
            mask_list: List[bool] = []
            for rows, columns in per_chunk:
                if key in columns:
                    chunk_values, chunk_mask = columns[key]
                    chunk_list = (
                        list(chunk_values)
                        if not isinstance(chunk_values, np.ndarray)
                        else chunk_values.tolist()
                    )
                    values.extend(chunk_list)
                    mask_list.extend(
                        [True] * rows if chunk_mask is None else list(chunk_mask)
                    )
                else:
                    values.extend([None] * rows)
                    mask_list.extend([False] * rows)
            mask = (
                None
                if all(mask_list)
                else np.asarray(mask_list, dtype=bool)
            )
        out_columns[key] = values
        if mask is not None:
            out_masks[key] = mask
    return out_columns, out_masks
