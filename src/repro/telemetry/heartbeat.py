"""Atomic heartbeat files: a crash-safe, externally readable progress surface.

A *heartbeat* is a small JSON document a running process rewrites
periodically — last round, replicas done, rounds/sec, attempt count, and a
:mod:`~repro.telemetry.resources` sample — published with the repo's
standard write-tmp-fsync-rename discipline so readers never see a torn
file from a well-behaved writer.  Heartbeats live next to the run's
checkpoints (``<base>.heartbeat.json``; per-shard workers write
``<base>.shard<k>.heartbeat.json``) and are the *only* thing ``repro
watch`` and the ``/metrics`` endpoint need: no IPC with the run, so both
keep working on a dead run as a post-mortem view.

Readers are salvage-tolerant by construction: :func:`read_heartbeat`
returns ``None`` for a missing, truncated, or otherwise unparsable file
instead of raising, because a heartbeat is a *hint*, never a source of
truth — the checkpoint is.  The ``heartbeat:mid_write`` crashpoint
(:mod:`repro.execution.faults`) deliberately publishes a half-written
payload and dies, so the fault-smoke protocol can prove that tolerance
instead of asserting it.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass, fields
from pathlib import Path
from typing import Any, List, Mapping, Optional, Tuple, Union

from repro.execution import faults
from repro.telemetry.recorder import Recorder, RunProvenance
from repro.telemetry.resources import sample_resources

__all__ = [
    "HEARTBEAT_SCHEMA_VERSION",
    "HEARTBEAT_SUFFIX",
    "Heartbeat",
    "HeartbeatRecorder",
    "discover_heartbeats",
    "heartbeat_path",
    "read_heartbeat",
    "write_heartbeat",
]

HEARTBEAT_SCHEMA_VERSION = 1

HEARTBEAT_SUFFIX = ".heartbeat.json"
"""Filename suffix shared by every heartbeat, so discovery is one glob."""


@dataclass
class Heartbeat:
    """One process's most recent progress report (the heartbeat file schema).

    Attributes:
        role: ``"run"`` (serial runner), ``"shard"`` (pool worker), or
            ``"supervisor"`` (the parent supervision loop).
        status: ``"running"``, ``"done"``, ``"failed"`` (quarantined), or
            ``"interrupted"`` (graceful shutdown).
        pid: writer's process id.
        updated_at: Unix wall-clock time of the last write; staleness
            relative to now is how watchers tell *stuck* from *slow*.
        round: last completed round (the runner's ``t``).
        max_rounds: round budget, when known (ETA denominator).
        replicas / replicas_done: assigned vs converged-or-censored chains.
        rounds_per_second: writer-measured throughput since its start.
        shard: shard index (``role="shard"`` only).
        shards: total shard count (``role="supervisor"`` only).
        attempt: 1-based attempt number of this shard execution.
        retries / timeouts / failed_shards: supervision counters
            (``role="supervisor"`` only).
        rss_bytes / peak_rss_bytes / cpu_s: the writer's
            :class:`~repro.telemetry.resources.ResourceSample`.
        schema: heartbeat schema version (:data:`HEARTBEAT_SCHEMA_VERSION`).
    """

    role: str
    status: str = "running"
    pid: int = 0
    updated_at: float = 0.0
    round: int = 0
    max_rounds: Optional[int] = None
    replicas: Optional[int] = None
    replicas_done: Optional[int] = None
    rounds_per_second: Optional[float] = None
    shard: Optional[int] = None
    shards: Optional[int] = None
    attempt: Optional[int] = None
    retries: int = 0
    timeouts: int = 0
    failed_shards: int = 0
    rss_bytes: Optional[int] = None
    peak_rss_bytes: Optional[int] = None
    cpu_s: Optional[float] = None
    schema: int = HEARTBEAT_SCHEMA_VERSION

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "Heartbeat":
        """Rebuild a heartbeat, ignoring unknown keys (schema tolerance)."""
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in document.items() if k in known})

    def age_s(self, now: Optional[float] = None) -> float:
        """Seconds since the last write (against ``now`` or the wall clock)."""
        return max(0.0, (time.time() if now is None else now) - self.updated_at)

    @property
    def terminal(self) -> bool:
        """True once the writer reported it will not write again."""
        return self.status in ("done", "failed", "interrupted")


def heartbeat_path(base: Union[str, Path]) -> Path:
    """The heartbeat file belonging to a checkpoint/run base path."""
    base = Path(base)
    return base.with_name(base.name + HEARTBEAT_SUFFIX)


def write_heartbeat(path: Union[str, Path], heartbeat: Heartbeat) -> Path:
    """Atomically publish ``heartbeat`` at ``path`` (tmp + fsync + rename).

    Carries the ``heartbeat:mid_write`` crashpoint: when armed, half the
    serialized payload is published *through the rename* and the process
    dies — the one way a reader can ever meet a torn heartbeat, kept
    deliberately reachable so salvage tolerance stays proven.
    """
    path = Path(path)
    payload = json.dumps(heartbeat.to_dict(), sort_keys=True) + "\n"
    torn = faults.should_trip("heartbeat:mid_write")
    if torn:
        payload = payload[: len(payload) // 2]
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("w") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    if torn:
        faults.trip("heartbeat:mid_write")
    return path


def read_heartbeat(path: Union[str, Path]) -> Optional[Heartbeat]:
    """Read one heartbeat; ``None`` when missing, torn, or unparsable.

    Never raises on bad content: a heartbeat is advisory, and the reader
    may race a crash (or the ``heartbeat:mid_write`` fault) that left half
    a document behind.
    """
    try:
        document = json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(document, dict) or "role" not in document:
        return None
    try:
        return Heartbeat.from_dict(document)
    except TypeError:
        return None


def discover_heartbeats(
    path: Union[str, Path],
) -> List[Tuple[Path, Optional[Heartbeat]]]:
    """Every heartbeat file belonging to ``path``, parsed salvage-tolerantly.

    ``path`` may be a directory (all heartbeats inside it) or a run/
    checkpoint base path (``<base>*.heartbeat.json`` next to it, which
    collects the run's own heartbeat plus every ``.shard<k>`` one).
    Entries are ``(file, heartbeat-or-None)`` sorted by filename; ``None``
    marks a torn file, which watchers render instead of hiding.
    """
    path = Path(path)
    if path.is_dir():
        candidates = sorted(path.glob(f"*{HEARTBEAT_SUFFIX}"))
    else:
        candidates = sorted(path.parent.glob(f"{path.name}*{HEARTBEAT_SUFFIX}"))
    return [(candidate, read_heartbeat(candidate)) for candidate in candidates]


class HeartbeatRecorder(Recorder):
    """A :class:`~repro.telemetry.recorder.Recorder` that writes heartbeats.

    Composes with any other recorder via
    :func:`~repro.telemetry.recorder.compose_recorders`; it harvests the
    budget and replica count from the run's provenance, tracks progress
    through ``round_recorded`` (the ``active`` extra turns into
    ``replicas_done``), and rewrites the heartbeat file at most once per
    ``interval_s`` of wall clock (``0.0`` = every round, used by the
    fault-smoke harness for deterministic crashpoint visit counts).
    """

    enabled = True

    def __init__(
        self,
        path: Union[str, Path],
        *,
        role: str = "run",
        shard: Optional[int] = None,
        attempt: Optional[int] = None,
        interval_s: float = 1.0,
        _clock=time.monotonic,
    ) -> None:
        self.path = Path(path)
        self.interval_s = float(interval_s)
        self.writes = 0
        self._clock = _clock
        self._started_at: Optional[float] = None
        self._last_write: Optional[float] = None
        self._rounds_seen = 0
        self._beat = Heartbeat(
            role=role, shard=shard, attempt=attempt, pid=os.getpid()
        )

    # -- Recorder hooks --------------------------------------------------

    def run_started(self, provenance: RunProvenance) -> None:
        params = provenance.params if provenance is not None else {}
        beat = self._beat
        beat.status = "running"
        budget = params.get("max_rounds")
        beat.max_rounds = int(budget) if budget is not None else None
        replicas = params.get("replicas")
        beat.replicas = int(replicas) if replicas is not None else None
        if beat.replicas is not None:
            beat.replicas_done = 0
        self._started_at = self._clock()
        self._flush()

    def round_recorded(self, t, count, extra=None) -> None:
        beat = self._beat
        beat.round = int(t)
        self._rounds_seen += 1
        if extra:
            active = extra.get("active")
            if active is not None and beat.replicas is not None:
                beat.replicas_done = max(0, beat.replicas - int(active))
        now = self._clock()
        if self._last_write is None or now - self._last_write >= self.interval_s:
            self._flush()

    def run_finished(self, summary) -> None:
        beat = self._beat
        beat.status = "done"
        if summary:
            converged = summary.get("converged")
            if beat.replicas is not None and converged is not None:
                beat.replicas_done = int(converged) + int(
                    summary.get("censored") or 0
                )
            final_round = summary.get("final_round")
            if final_round:
                beat.round = max(beat.round, int(final_round))
        self._flush()

    # -- plumbing --------------------------------------------------------

    def _flush(self) -> None:
        beat = self._beat
        beat.updated_at = time.time()
        sample = sample_resources()
        beat.rss_bytes = sample.rss_bytes
        beat.peak_rss_bytes = sample.peak_rss_bytes
        beat.cpu_s = sample.cpu_s
        now = self._clock()
        if self._started_at is not None and now > self._started_at:
            beat.rounds_per_second = self._rounds_seen / (now - self._started_at)
        write_heartbeat(self.path, beat)
        self.writes += 1
        self._last_write = now
