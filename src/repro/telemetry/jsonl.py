"""Streaming JSON-lines traces: write, read back, and validate.

A trace is one ``run_start`` record, zero or more ``round`` and ``span``
records, and one ``run_end`` record, one JSON object per line.  The exact
field-by-field schema is documented in ``docs/OBSERVABILITY.md``;
:func:`validate_trace` is that document's executable counterpart and is
what ``make trace-smoke`` runs.

Durability: path-targeted traces are streamed to ``<path>.tmp`` — one
unbuffered binary write per record, so every completed record reaches the
OS as it happens — and renamed over ``path`` on
:meth:`JsonlTraceWriter.close` (after a flush + fsync), so a trace
observed at its target path is never half-written; a hard kill leaves the
written prefix in the ``.tmp`` file instead.  ``read_trace``/
``validate_trace`` accept ``salvage=True`` to recover the valid prefix of
such a truncated trace; strict rejection stays the default.  See
docs/OBSERVABILITY.md, "Durability & fault model".

Both functions sniff the on-disk format: pointed at a columnar container
(:mod:`repro.telemetry.columnar`, magic ``RCOL``) they delegate to its
reader and validate the decoded records against the *same* schema, so
every trace consumer works on either format transparently.
"""

from __future__ import annotations

import io
import json
import math
import os
import time
from pathlib import Path
from typing import Any, Dict, IO, List, Mapping, Optional, Union

from repro.execution import faults

from repro.telemetry.recorder import Recorder, RunProvenance, TRACE_SCHEMA_VERSION
from repro.telemetry.spans import SpanRecord

__all__ = [
    "COLUMNAR_MAGIC",
    "JsonlTraceWriter",
    "read_trace",
    "trace_counts",
    "trace_to_series",
    "validate_records",
    "validate_trace",
]

PathOrFile = Union[str, Path, IO[str]]

COLUMNAR_MAGIC = b"RCOL"
"""First bytes of a columnar trace container (see :mod:`.columnar`).

Defined here — not in :mod:`repro.telemetry.columnar` — so the JSONL
reader can sniff the format without importing the columnar machinery
until a columnar file is actually met.
"""

# json.dumps(..., sort_keys=True) constructs a fresh JSONEncoder on every
# call; binding one encoder once removes that per-record cost.  Same
# defaults as json.dumps, so the emitted bytes are unchanged.
_ENCODE = json.JSONEncoder(sort_keys=True).encode


class TraceWriterBase(Recorder):
    """Recorder that turns run events into schema-v1 trace records.

    Subclasses implement the storage: :meth:`_write` receives each
    finished record dict in stream order (:class:`JsonlTraceWriter` dumps
    it as a JSON line, :class:`~repro.telemetry.columnar.
    ColumnarTraceWriter` batches rounds into binary column chunks).  The
    record-*building* logic lives here, once, so both sinks emit
    value-identical records and a trace converted between formats is
    lossless by construction.
    """

    def __init__(self, include_timings: bool = True) -> None:
        self.include_timings = include_timings
        self.records_written = 0
        self._previous_count: Optional[float] = None
        self._started_at: Optional[float] = None
        self._last_seen_at: Optional[float] = None
        self._rounds = 0

    # ------------------------------------------------------------------
    # Recorder hooks
    # ------------------------------------------------------------------

    def run_started(self, provenance: RunProvenance) -> None:
        record: Dict[str, Any] = {
            "kind": "run_start",
            "schema": TRACE_SCHEMA_VERSION,
        }
        record.update(provenance.to_dict())
        # Resumed runs anchor the first drift on the restored count, not x0,
        # so a resumed trace's round records match the uninterrupted run's.
        anchor = provenance.params.get("resumed_count")
        if anchor is None:
            anchor = provenance.params.get("x0")
        self._previous_count = float(anchor) if anchor is not None else None
        self._started_at = self._last_seen_at = time.perf_counter()
        self._write(record)

    def round_recorded(
        self, t: int, count: float, extra: Optional[Mapping[str, Any]] = None
    ) -> None:
        record: Dict[str, Any] = {"kind": "round", "t": int(t), "count": _number(count)}
        if self._previous_count is not None:
            record["drift"] = _number(float(count) - self._previous_count)
        self._previous_count = float(count)
        if self.include_timings:
            now = time.perf_counter()
            if self._last_seen_at is not None:
                record["wall_s"] = now - self._last_seen_at
            self._last_seen_at = now
        if extra:
            record.update({key: _number(value) for key, value in extra.items()})
        self._rounds += 1
        self._write(record)

    def span_recorded(self, span: SpanRecord) -> None:
        record: Dict[str, Any] = {
            "kind": "span",
            "name": span.name,
            "path": span.path,
            "depth": span.depth,
            "counters": {key: _number(value) for key, value in span.counters.items()},
        }
        if self.include_timings:
            record["wall_s"] = span.wall_s
        self._write(record)

    def run_finished(self, summary: Mapping[str, Any]) -> None:
        record: Dict[str, Any] = {"kind": "run_end"}
        record.update({key: _number(value) for key, value in summary.items()})
        record["rounds_recorded"] = self._rounds
        if self.include_timings and self._started_at is not None:
            wall = time.perf_counter() - self._started_at
            record["wall_clock_s"] = wall
            record["rounds_per_second"] = self._rounds / wall if wall > 0 else 0.0
        self._write(record)

    # ------------------------------------------------------------------
    # Storage interface
    # ------------------------------------------------------------------

    def _write(self, record: Dict[str, Any]) -> None:
        raise NotImplementedError

    def flush(self) -> None:  # pragma: no cover - trivially overridden
        pass

    def close(self) -> None:  # pragma: no cover - trivially overridden
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class JsonlTraceWriter(TraceWriterBase):
    """Stream a run as JSON-lines records to a path or an open text file.

    One ``round`` record is written per observed round as a single
    unbuffered binary write, so every completed record reaches the OS as
    it happens and a process that dies mid-run leaves a salvageable prefix
    (see ``salvage=True`` on :func:`read_trace`/:func:`validate_trace`).
    A path target is written as ``<path>.tmp`` and atomically renamed into
    place on :meth:`close`, so the trace at the target path is never
    observably half-written.  Use as a context manager, or call
    :meth:`close` explicitly; the file is opened lazily on the first
    record.

    Args:
        target: output path or an already-open text file (not closed by us,
            and written in place — no tmp-then-rename for caller-owned files).
        include_timings: when ``False``, omit the wall-clock fields
            (``wall_s``, ``wall_clock_s``, ``rounds_per_second``) so that
            traces of seed-identical runs are byte-identical — the mode the
            determinism tests use.
    """

    def __init__(self, target: PathOrFile, include_timings: bool = True) -> None:
        super().__init__(include_timings)
        self._path: Optional[Path] = None
        self._tmp_path: Optional[Path] = None
        self._file: Optional[IO] = None
        self._owns_file = False
        if isinstance(target, (str, Path)):
            self._path = Path(target)
            self._owns_file = True
        else:
            self._file = target

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def flush(self) -> None:
        """Flush Python buffers and fsync, as far as the target supports it.

        :class:`~repro.execution.ShutdownGuard` calls this (via
        ``register``) before a graceful exit so an interrupted trace is
        durable on disk, not sitting in user-space buffers.
        """
        if self._file is None:
            return
        self._file.flush()
        try:
            os.fsync(self._file.fileno())
        except (OSError, ValueError, io.UnsupportedOperation):
            pass  # not a real file descriptor (StringIO, pipes, ...)

    def close(self) -> None:
        """Flush, fsync, close, and publish the trace at its target path.

        For path targets, the tmp file is atomically renamed over the
        target only here — a completed trace is never observably
        half-written, and a hard kill leaves ``<path>.tmp`` for salvage.
        """
        if self._file is None:
            return
        self.flush()
        if self._owns_file:
            self._file.close()
            self._file = None
            if self._tmp_path is not None:
                os.replace(self._tmp_path, self._path)
                self._tmp_path = None

    def _write(self, record: Dict[str, Any]) -> None:
        if self._file is None:
            if self._path is None:
                raise ValueError("trace writer already closed")
            self._tmp_path = self._path.with_name(self._path.name + ".tmp")
            # Unbuffered raw binary: each record is one write(2) straight
            # to the OS, so a killed process leaves a salvageable prefix —
            # the line-buffered TextIOWrapper gave the same guarantee but
            # paid a per-write newline scan and encoder pass on top.
            self._file = self._tmp_path.open("wb", buffering=0)
        line = _ENCODE(record) + "\n"
        data = line.encode("utf-8") if self._owns_file else line
        if faults.should_trip("trace:mid_write"):
            # Deterministically manufacture a torn write: half the record,
            # durable on disk, then death — the scenario salvage mode exists
            # for, produced on demand instead of waited for.
            self._file.write(data[: max(1, len(data) // 2)])
            self.flush()
            faults.trip("trace:mid_write")
        self._file.write(data)
        self.records_written += 1
        if faults.should_trip("trace:after_write"):
            self.flush()
            faults.trip("trace:after_write")


def _number(value):
    """Coerce numpy scalars to plain Python so json keeps the trace portable."""
    if hasattr(value, "item"):
        return value.item()
    return value


def _is_columnar(path: PathOrFile) -> bool:
    """True when ``path`` names an on-disk columnar container (by magic)."""
    if not isinstance(path, (str, Path)):
        return False
    try:
        with Path(path).open("rb") as handle:
            return handle.read(len(COLUMNAR_MAGIC)) == COLUMNAR_MAGIC
    except OSError:
        return False


def read_trace(path: PathOrFile, salvage: bool = False) -> List[Dict[str, Any]]:
    """Parse a trace back into a list of record dicts (in file order).

    The format is sniffed: JSONL text is parsed line by line, a columnar
    container (magic ``RCOL``) is decoded chunk by chunk — the returned
    records are value-identical either way.  With ``salvage=True``, an
    undecodable line (or torn/corrupt chunk — the final write of a killed
    process, typically) ends the parse: the valid prefix is returned
    instead of raising.  Everything *after* the first bad line is dropped
    too — a trace is an ordered stream, and records beyond a corruption
    point have lost their provenance.
    """
    if _is_columnar(path):
        from repro.telemetry.columnar import read_columnar_trace

        return read_columnar_trace(path, salvage=salvage)
    text = Path(path).read_text() if isinstance(path, (str, Path)) else path.read()
    records = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as error:
            if salvage:
                break
            raise ValueError(f"trace line {line_number} is not valid JSON: {error}")
    return records


def trace_counts(records: List[Dict[str, Any]]):
    """The count trajectory of a trace: ``x0`` (from ``run_start``) then rounds."""
    import numpy as np

    counts = []
    for record in records:
        if record.get("kind") == "run_start":
            x0 = record.get("params", {}).get("x0")
            if x0 is not None:
                counts.append(x0)
        elif record.get("kind") == "round":
            counts.append(record["count"])
    return np.asarray(counts)


def trace_to_series(path: PathOrFile, name: Optional[str] = None):
    """Read a trace back as an :class:`repro.analysis.series.Series`.

    The worked example of docs/OBSERVABILITY.md: the x-axis is the round
    index (0 = the initial configuration) and the y-axis the count, ready
    for :func:`repro.analysis.series.ascii_plot` or CSV export.
    """
    import numpy as np

    from repro.analysis.series import Series

    records = read_trace(path)
    if not records:
        raise ValueError("trace is empty: no records to turn into a series")
    counts = trace_counts(records).astype(float)
    if counts.size == 0:
        raise ValueError(
            "trace holds no counts (no round records and no x0 in run_start)"
        )
    if not np.all(np.isfinite(counts)):
        raise ValueError("trace counts contain non-finite values")
    if name is None:
        start = next((r for r in records if r.get("kind") == "run_start"), {})
        protocol = start.get("protocol", {}).get("name", "trace")
        name = f"count ({protocol})"
    return Series(name, np.arange(len(counts), dtype=float), counts)


_REQUIRED_START_KEYS = ("schema", "runner", "protocol", "params", "rng")


def validate_trace(path: PathOrFile, salvage: bool = False) -> List[Dict[str, Any]]:
    """Validate a trace against the documented schema; return its records.

    Works on both sinks — the format is sniffed exactly as in
    :func:`read_trace`, and the decoded records face the same
    :func:`validate_records` checks: the first record is a ``run_start``
    with the supported schema version and all provenance sections; every
    ``round`` record has an integer ``t`` (non-decreasing) and a finite
    numeric ``count``; ``span`` records carry a name/path and finite
    timings; there is exactly one ``run_end``, all rounds precede it, and
    only spans (the ones enclosing the whole run) may trail it.  Raises
    ``ValueError`` on the first violation.  This is the check behind
    ``make trace-smoke``.

    With ``salvage=True`` — the recovery mode for traces truncated by a
    crash, OOM kill, or fault injection — the *valid prefix* is returned
    instead: parsing and validation stop at the first bad line, torn
    chunk, or invalid record, and a missing ``run_end`` is tolerated.  The
    ``run_start`` header must still be fully valid (a trace without its
    provenance has lost the run it describes, so there is nothing worth
    salvaging), and a ``run_end`` whose ``rounds_recorded`` claim
    contradicts the salvaged rounds is dropped along with everything after
    it.
    """
    records = read_trace(path, salvage=salvage)
    return validate_records(records, salvage=salvage)


def validate_records(
    records: List[Dict[str, Any]], salvage: bool = False
) -> List[Dict[str, Any]]:
    """The record-level schema checks behind :func:`validate_trace`.

    Shared by both trace formats (the JSONL reader and the columnar
    decoder both produce plain record dicts) and by the converters, which
    validate before writing so an invalid trace can never silently change
    format.  Semantics are exactly those documented on
    :func:`validate_trace`; ``salvage=True`` returns the valid prefix
    instead of raising on the first bad record.
    """
    if not records:
        raise ValueError("trace is empty" + (": nothing to salvage" if salvage else ""))
    start = records[0]
    if start.get("kind") != "run_start":
        raise ValueError(f"first record must be run_start, got {start.get('kind')!r}")
    if start.get("schema") != TRACE_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported trace schema {start.get('schema')!r} "
            f"(expected {TRACE_SCHEMA_VERSION})"
        )
    for key in _REQUIRED_START_KEYS:
        if key not in start:
            raise ValueError(f"run_start record is missing {key!r}")
    for key in ("bit_generator", "state_hash"):
        if key not in start["rng"]:
            raise ValueError(f"run_start rng provenance is missing {key!r}")
    for key in ("name", "ell", "fingerprint"):
        if key not in start["protocol"]:
            raise ValueError(f"run_start protocol provenance is missing {key!r}")
    valid = [start]
    end = None
    previous_t = None
    round_records = 0
    for index, record in enumerate(records[1:], start=2):
        try:
            kind = record.get("kind")
            if kind == "run_end":
                if end is not None:
                    raise ValueError(f"record {index} is a second run_end")
                end = record
            elif kind == "span":
                _validate_span_record(record, index)
            elif kind == "round":
                if end is not None:
                    raise ValueError(
                        f"round record {index} appears after run_end "
                        "(truncated or spliced trace?)"
                    )
                t = record.get("t")
                if not isinstance(t, int):
                    raise ValueError(f"round record {index} has non-integer t: {t!r}")
                if previous_t is not None and t < previous_t:
                    raise ValueError(
                        f"round record {index} goes back in time: "
                        f"t={t} after t={previous_t}"
                    )
                previous_t = t
                count = record.get("count")
                if not isinstance(count, (int, float)) or not math.isfinite(count):
                    raise ValueError(
                        f"round record {index} has non-finite count: {count!r}"
                    )
                drift = record.get("drift")
                if drift is not None and (
                    not isinstance(drift, (int, float)) or not math.isfinite(drift)
                ):
                    raise ValueError(
                        f"round record {index} has non-finite drift: {drift!r}"
                    )
                round_records += 1
            else:
                raise ValueError(
                    f"record {index} has unknown kind {kind!r} "
                    "(expected round, span, or run_end)"
                )
        except ValueError:
            if salvage:
                return valid
            raise
        valid.append(record)
    if end is None:
        if salvage:
            return valid
        raise ValueError(
            f"last record must be run_end, got {records[-1].get('kind')!r} "
            "(truncated trace?)"
        )
    if end.get("rounds_recorded") != round_records:
        if salvage:
            return valid[: valid.index(end)]
        raise ValueError(
            f"run_end claims {end.get('rounds_recorded')} rounds but the trace "
            f"holds {round_records}"
        )
    return records


def _validate_span_record(record: Dict[str, Any], index: int) -> None:
    for key in ("name", "path"):
        if not isinstance(record.get(key), str) or not record.get(key):
            raise ValueError(f"span record {index} has invalid {key}: {record.get(key)!r}")
    wall = record.get("wall_s")
    if wall is not None and (
        not isinstance(wall, (int, float)) or not math.isfinite(wall)
    ):
        raise ValueError(f"span record {index} has non-finite wall_s: {wall!r}")
    counters = record.get("counters", {})
    if not isinstance(counters, dict):
        raise ValueError(f"span record {index} counters must be an object")
    for key, value in counters.items():
        if not isinstance(value, (int, float)) or not math.isfinite(value):
            raise ValueError(
                f"span record {index} counter {key!r} is non-finite: {value!r}"
            )
