"""Profiling hooks: per-process cProfile capture and speedscope export.

``repro run --profile DIR`` wires two complementary views of where a run's
time went, both stdlib-only:

* :func:`maybe_cprofile` wraps a run (or a shard worker) in a
  :class:`cProfile.Profile` and dumps standard ``pstats`` data — full
  function-level detail, loadable with ``python -m pstats`` or snakeviz.
* :func:`spans_to_speedscope` converts the
  :class:`~repro.telemetry.spans.SpanAggregate` totals a
  :class:`~repro.telemetry.recorder.MetricsRecorder` already holds into a
  `speedscope <https://www.speedscope.app>`_ "sampled" profile — a
  flamegraph of the repo's *own* stage taxonomy (runner / ensemble /
  engine spans), which is usually the right granularity for the batched
  hot path.

Span paths are slash-joined (``"a/b/c"``); each aggregate becomes one
synthetic sample whose stack is the path's segments and whose weight is
the span's **self time** — its wall clock minus the wall clock of its
direct children — so the flamegraph's widths add up instead of double
counting nested spans.
"""

from __future__ import annotations

import cProfile
import json
import os
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, Mapping, Optional, Union

from repro.telemetry.spans import SpanAggregate

__all__ = [
    "maybe_cprofile",
    "spans_to_speedscope",
    "write_speedscope",
]

_SPEEDSCOPE_SCHEMA = "https://www.speedscope.app/file-format-schema.json"


def spans_to_speedscope(
    spans: Mapping[str, SpanAggregate],
    name: str = "repro spans",
) -> dict:
    """Convert span aggregates into a speedscope "sampled" profile document.

    Each span path contributes one sample whose stack is the path's
    segments and whose weight is the path's self time (total wall minus
    direct children's wall, clamped at zero; zero-weight paths are
    dropped).  The result renders in speedscope's Time Order / Left Heavy
    / Sandwich views like any sampled profile.
    """
    frames: list = []
    frame_index: Dict[str, int] = {}

    def frame_of(segment: str) -> int:
        if segment not in frame_index:
            frame_index[segment] = len(frames)
            frames.append({"name": segment})
        return frame_index[segment]

    paths = sorted(spans)
    samples = []
    weights = []
    for path in paths:
        segments = path.split("/")
        child_wall = sum(
            spans[other].wall_s
            for other in paths
            if other.startswith(path + "/")
            and other.count("/") == len(segments)
        )
        self_wall = max(0.0, spans[path].wall_s - child_wall)
        if self_wall <= 0.0:
            continue
        samples.append([frame_of(segment) for segment in segments])
        weights.append(self_wall)
    total = sum(weights)
    return {
        "$schema": _SPEEDSCOPE_SCHEMA,
        "name": name,
        "activeProfileIndex": 0,
        "shared": {"frames": frames},
        "profiles": [
            {
                "type": "sampled",
                "name": name,
                "unit": "seconds",
                "startValue": 0,
                "endValue": total,
                "samples": samples,
                "weights": weights,
            }
        ],
    }


def write_speedscope(path: Union[str, Path], document: dict) -> Path:
    """Atomically write a speedscope JSON document (tmp + fsync + rename)."""
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("w") as handle:
        json.dump(document, handle, sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


@contextmanager
def maybe_cprofile(path: Optional[Union[str, Path]]) -> Iterator[Optional[cProfile.Profile]]:
    """Profile the enclosed block into ``path``, or do nothing when ``None``.

    The no-op branch keeps call sites unconditional::

        with maybe_cprofile(profile_path):
            simulate_ensemble(...)

    Stats are dumped even when the block raises (the profile of a failed
    attempt is often the interesting one).  Parent directories are created
    as needed.
    """
    if path is None:
        yield None
        return
    path = Path(path)
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        path.parent.mkdir(parents=True, exist_ok=True)
        profiler.dump_stats(str(path))
