"""Prometheus text exposition (v0.0.4) with no dependencies beyond stdlib.

Three pieces, all scrape-compatible with a stock Prometheus server:

* **Renderer** — :class:`MetricFamily` + :func:`render_exposition` emit the
  text format (``# HELP`` / ``# TYPE`` pairs, escaped labels, Go-style
  values), and :func:`metrics_families` / :func:`heartbeat_families` map
  the repo's own telemetry (a live
  :class:`~repro.telemetry.recorder.MetricsRecorder` snapshot and the
  heartbeat files of :mod:`~repro.telemetry.heartbeat`) onto metric
  families.  :func:`render_metrics` is the one-call convenience.
* **Validator** — :func:`validate_exposition` is a strict line-grammar
  checker (metric-name and label-name charsets, HELP/TYPE pairing and
  ordering, contiguous families, label-escape correctness, value syntax,
  counters end in ``_total``) so CI can assert scrape compatibility
  without installing promtool.
* **Transports** — :class:`MetricsServer` serves a collector callback from
  a stdlib ``http.server`` background thread (``repro run
  --metrics-port``), and :func:`write_textfile` is the atomic textfile
  sink for node-exporter-style collection.

The exporter never *computes* anything new: every number already exists in
``MetricsRecorder``/``SpanAggregate`` aggregates or in heartbeat files, so
serving ``/metrics`` adds no per-round cost to a run.
"""

from __future__ import annotations

import math
import os
import re
import threading
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.telemetry.heartbeat import Heartbeat
from repro.telemetry.recorder import RunMetrics

__all__ = [
    "CONTENT_TYPE",
    "LABEL_NAME_RE",
    "METRIC_NAME_RE",
    "ExpositionError",
    "MetricFamily",
    "MetricsServer",
    "escape_help",
    "escape_label_value",
    "format_value",
    "heartbeat_families",
    "metrics_families",
    "render_exposition",
    "render_metrics",
    "validate_exposition",
    "write_textfile",
]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
"""The exposition-format content type a Prometheus scraper expects."""

METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
"""Legal metric names (exposition format, colons reserved for rules)."""

LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
"""Legal label names (leading ``__`` is reserved but syntactically valid)."""

_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


class ExpositionError(ValueError):
    """A payload violated the exposition grammar (message says where)."""


def escape_label_value(value: object) -> str:
    """Escape a label value: ``\\`` then ``"`` then newlines, per the spec."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def escape_help(text: str) -> str:
    """Escape HELP text: only ``\\`` and newlines (quotes stay literal)."""
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def format_value(value: float) -> str:
    """Render a sample value the Go-parser way (NaN/+Inf/-Inf, no exponent
    games); integral floats render without a decimal point for stability."""
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


@dataclass(frozen=True)
class MetricFamily:
    """One metric family: name, type, help, and its samples.

    Samples are ``(labels, value)`` pairs where ``labels`` is a sequence of
    ``(name, value)`` tuples (order is preserved in the output, so built
    families render deterministically).

    Raises ``ValueError`` at construction on an illegal name, type, or —
    for counters — a name that does not end in ``_total`` (the naming
    convention the validator enforces so our own output stays idiomatic).
    """

    name: str
    kind: str
    help: str
    samples: Sequence[Tuple[Sequence[Tuple[str, object]], float]] = field(
        default_factory=tuple
    )

    def __post_init__(self) -> None:
        if not METRIC_NAME_RE.match(self.name):
            raise ValueError(f"illegal metric name {self.name!r}")
        if self.kind not in _TYPES:
            raise ValueError(f"illegal metric type {self.kind!r}")
        if self.kind == "counter" and not self.name.endswith("_total"):
            raise ValueError(
                f"counter {self.name!r} must end in _total (naming convention)"
            )
        for labels, _ in self.samples:
            for label_name, _ in labels:
                if not LABEL_NAME_RE.match(label_name):
                    raise ValueError(f"illegal label name {label_name!r}")


def render_exposition(families: Iterable[MetricFamily]) -> str:
    """Render metric families as one exposition payload (trailing newline)."""
    lines: List[str] = []
    for family in families:
        lines.append(f"# HELP {family.name} {escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for labels, value in family.samples:
            if labels:
                body = ",".join(
                    f'{name}="{escape_label_value(value_)}"'
                    for name, value_ in labels
                )
                lines.append(f"{family.name}{{{body}}} {format_value(value)}")
            else:
                lines.append(f"{family.name} {format_value(value)}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Strict line-grammar validator (promtool-free scrape compatibility)
# ----------------------------------------------------------------------


def _parse_labels(body: str, where: str) -> List[Tuple[str, str]]:
    """Parse the inside of ``{...}``, validating names and escapes."""
    labels: List[Tuple[str, str]] = []
    i, n = 0, len(body)
    while i < n:
        eq = body.find("=", i)
        if eq < 0:
            raise ExpositionError(f"{where}: label without '=' in {body!r}")
        name = body[i:eq]
        if not LABEL_NAME_RE.match(name):
            raise ExpositionError(f"{where}: illegal label name {name!r}")
        if eq + 1 >= n or body[eq + 1] != '"':
            raise ExpositionError(f"{where}: label value of {name!r} not quoted")
        i = eq + 2
        value_chars: List[str] = []
        closed = False
        while i < n:
            ch = body[i]
            if ch == "\\":
                if i + 1 >= n or body[i + 1] not in ('\\', '"', "n"):
                    raise ExpositionError(
                        f"{where}: bad escape in label {name!r} "
                        f"(only \\\\, \\\" and \\n are legal)"
                    )
                value_chars.append(body[i : i + 2])
                i += 2
                continue
            if ch == '"':
                closed = True
                i += 1
                break
            value_chars.append(ch)
            i += 1
        if not closed:
            raise ExpositionError(f"{where}: unterminated label value for {name!r}")
        if any(name == seen for seen, _ in labels):
            raise ExpositionError(f"{where}: duplicate label name {name!r}")
        labels.append((name, "".join(value_chars)))
        if i < n:
            if body[i] != ",":
                raise ExpositionError(
                    f"{where}: expected ',' between labels, got {body[i]!r}"
                )
            i += 1
            if i == n:
                raise ExpositionError(f"{where}: trailing ',' in label set")
    return labels


def _parse_value(token: str, where: str) -> float:
    if token in ("NaN", "+Inf", "-Inf", "Inf"):
        return float("nan") if token == "NaN" else float(token.replace("Inf", "inf"))
    try:
        return float(token)
    except ValueError:
        raise ExpositionError(f"{where}: unparsable value {token!r}") from None


def _family_of(sample_name: str, declared: Dict[str, dict]) -> Optional[str]:
    """Resolve a sample name to its declared family (histogram/summary
    samples may carry a ``_bucket``/``_sum``/``_count`` suffix)."""
    if sample_name in declared:
        return sample_name
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix) and sample_name[: -len(suffix)] in declared:
            base = sample_name[: -len(suffix)]
            if declared[base]["type"] in ("histogram", "summary"):
                return base
    return None


def validate_exposition(text: str) -> Dict[str, int]:
    """Strictly validate an exposition payload; raise :class:`ExpositionError`.

    Enforced grammar (a strict subset of what a Prometheus scraper accepts,
    so passing here implies scrapeability):

    * payload ends with a newline; lines are comments, samples, or blank;
    * ``# HELP``/``# TYPE`` appear exactly once per family, HELP first,
      both before any of the family's samples;
    * a family's lines are contiguous — once another family starts, an
      earlier name may not reappear;
    * metric names match :data:`METRIC_NAME_RE`; ``counter`` families end
      in ``_total``; a sample's name must match a declared family
      (histogram/summary suffixes allowed for those types);
    * label names match :data:`LABEL_NAME_RE`, are unique per sample, and
      label values use only the ``\\\\``, ``\\"``, ``\\n`` escapes;
    * values parse as Go floats (``NaN``, ``+Inf``, ``-Inf`` included) and
      the optional trailing timestamp is an integer.

    Returns ``{"families": ..., "samples": ...}`` on success.
    """
    if not text:
        raise ExpositionError("empty payload")
    if not text.endswith("\n"):
        raise ExpositionError("payload must end with a newline")
    declared: Dict[str, dict] = {}
    current: Optional[str] = None
    closed: set = set()
    samples = 0

    def open_family(name: str, where: str) -> dict:
        nonlocal current
        if name in closed:
            raise ExpositionError(
                f"{where}: family {name!r} reappears after other families "
                "(families must be contiguous)"
            )
        if current is not None and current != name:
            closed.add(current)
        current = name
        if name not in declared:
            declared[name] = {"help": False, "type": None, "samples": 0}
        return declared[name]

    for lineno, line in enumerate(text.splitlines(), start=1):
        where = f"line {lineno}"
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                if len(parts) < 3:
                    raise ExpositionError(f"{where}: {parts[1]} without a metric name")
                name = parts[2]
                if not METRIC_NAME_RE.match(name):
                    raise ExpositionError(f"{where}: illegal metric name {name!r}")
                family = open_family(name, where)
                if family["samples"]:
                    raise ExpositionError(
                        f"{where}: {parts[1]} for {name!r} after its samples"
                    )
                if parts[1] == "HELP":
                    if family["help"]:
                        raise ExpositionError(f"{where}: duplicate HELP for {name!r}")
                    if family["type"] is not None:
                        raise ExpositionError(
                            f"{where}: HELP for {name!r} must precede TYPE"
                        )
                    family["help"] = True
                else:
                    kind = parts[3].strip() if len(parts) > 3 else ""
                    if kind not in _TYPES:
                        raise ExpositionError(
                            f"{where}: illegal TYPE {kind!r} for {name!r}"
                        )
                    if family["type"] is not None:
                        raise ExpositionError(f"{where}: duplicate TYPE for {name!r}")
                    if not family["help"]:
                        raise ExpositionError(
                            f"{where}: TYPE for {name!r} without a preceding HELP"
                        )
                    if kind == "counter" and not name.endswith("_total"):
                        raise ExpositionError(
                            f"{where}: counter {name!r} must end in _total"
                        )
                    family["type"] = kind
            continue
        # Sample line: name[{labels}] value [timestamp]
        match = re.match(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)", line)
        if not match:
            raise ExpositionError(f"{where}: illegal sample line {line!r}")
        sample_name = match.group(1)
        rest = line[match.end():]
        if rest.startswith("{"):
            end = rest.rfind("}")
            if end < 0:
                raise ExpositionError(f"{where}: unterminated label set")
            _parse_labels(rest[1:end], where)
            rest = rest[end + 1 :]
        tokens = rest.split()
        if not tokens or len(tokens) > 2:
            raise ExpositionError(f"{where}: expected 'value [timestamp]' in {line!r}")
        _parse_value(tokens[0], where)
        if len(tokens) == 2:
            try:
                int(tokens[1])
            except ValueError:
                raise ExpositionError(
                    f"{where}: timestamp {tokens[1]!r} is not an integer"
                ) from None
        base = _family_of(sample_name, declared)
        if base is None:
            raise ExpositionError(
                f"{where}: sample {sample_name!r} has no preceding HELP/TYPE"
            )
        open_family(base, where)
        if declared[base]["type"] is None:
            raise ExpositionError(f"{where}: sample {sample_name!r} without a TYPE")
        declared[base]["samples"] += 1
        samples += 1
    return {"families": len(declared), "samples": samples}


# ----------------------------------------------------------------------
# Family builders over the repo's own telemetry
# ----------------------------------------------------------------------


def _finite(value: Optional[float]) -> bool:
    return value is not None and math.isfinite(float(value))


def metrics_families(metrics: RunMetrics) -> List[MetricFamily]:
    """Metric families from a live :class:`MetricsRecorder` snapshot."""
    families = [
        MetricFamily(
            "repro_rounds_total", "counter",
            "Rounds observed by the recorder.",
            [((), float(metrics.rounds))],
        ),
        MetricFamily(
            "repro_run_wall_clock_seconds", "gauge",
            "Wall clock from run start to the last observation.",
            [((), float(metrics.wall_clock_s))],
        ),
        MetricFamily(
            "repro_run_rounds_per_second", "gauge",
            "Observed rounds per wall-clock second.",
            [((), float(metrics.rounds_per_second))],
        ),
    ]
    if _finite(metrics.final_count):
        families.append(
            MetricFamily(
                "repro_run_final_count", "gauge",
                "Most recently observed count.",
                [((), float(metrics.final_count))],
            )
        )
    if _finite(metrics.mean_abs_drift):
        families.append(
            MetricFamily(
                "repro_run_mean_abs_drift", "gauge",
                "Mean absolute per-round drift of the count.",
                [((), float(metrics.mean_abs_drift))],
            )
        )
    if metrics.spans:
        paths = sorted(metrics.spans)
        families.append(
            MetricFamily(
                "repro_span_calls_total", "counter",
                "Completed calls per span path.",
                [((("path", p),), float(metrics.spans[p].calls)) for p in paths],
            )
        )
        families.append(
            MetricFamily(
                "repro_span_wall_seconds_total", "counter",
                "Cumulative wall clock per span path.",
                [((("path", p),), float(metrics.spans[p].wall_s)) for p in paths],
            )
        )
        counter_samples = [
            ((("path", p), ("counter", key)), float(value))
            for p in paths
            for key, value in sorted(metrics.spans[p].counters.items())
        ]
        if counter_samples:
            families.append(
                MetricFamily(
                    "repro_span_events_total", "counter",
                    "Span counter increments per span path and counter name.",
                    counter_samples,
                )
            )
    return families


def heartbeat_families(beats: Iterable[Heartbeat]) -> List[MetricFamily]:
    """Metric families from heartbeat files (shard progress + supervision).

    Shard/run heartbeats carry ``role``/``shard`` labels; the supervisor
    heartbeat additionally feeds the retry/timeout counters and the
    ``repro_shards_quarantined`` gauge the CI smoke asserts on.
    """
    beats = list(beats)
    if not beats:
        return []

    def labels(beat: Heartbeat) -> Tuple[Tuple[str, str], ...]:
        pairs: List[Tuple[str, str]] = [("role", beat.role)]
        if beat.shard is not None:
            pairs.append(("shard", str(beat.shard)))
        return tuple(pairs)

    def gauge(name: str, help_text: str, pick) -> Optional[MetricFamily]:
        samples = [
            (labels(beat), float(pick(beat)))
            for beat in beats
            if pick(beat) is not None
        ]
        return MetricFamily(name, "gauge", help_text, samples) if samples else None

    families = [
        gauge(
            "repro_heartbeat_timestamp_seconds",
            "Unix time of each writer's last heartbeat.",
            lambda b: b.updated_at,
        ),
        gauge(
            "repro_heartbeat_up",
            "1 while the writer reports running, 0 once terminal.",
            lambda b: 0.0 if b.terminal else 1.0,
        ),
        gauge(
            "repro_progress_rounds",
            "Last completed round per writer.",
            lambda b: b.round,
        ),
        gauge(
            "repro_progress_max_rounds",
            "Round budget per writer, when known.",
            lambda b: b.max_rounds,
        ),
        gauge(
            "repro_progress_replicas",
            "Replicas assigned to each writer.",
            lambda b: b.replicas,
        ),
        gauge(
            "repro_progress_replicas_done",
            "Replicas finished (converged or censored) per writer.",
            lambda b: b.replicas_done,
        ),
        gauge(
            "repro_progress_rounds_per_second",
            "Writer-measured simulation throughput.",
            lambda b: b.rounds_per_second,
        ),
        gauge(
            "repro_shard_attempt",
            "1-based attempt number of the current shard execution.",
            lambda b: b.attempt,
        ),
        gauge(
            "repro_rss_bytes",
            "Current resident set size per writer.",
            lambda b: b.rss_bytes,
        ),
        gauge(
            "repro_peak_rss_bytes",
            "Lifetime peak resident set size per writer.",
            lambda b: b.peak_rss_bytes,
        ),
    ]
    cpu_samples = [
        (labels(beat), float(beat.cpu_s)) for beat in beats if beat.cpu_s is not None
    ]
    if cpu_samples:
        families.append(
            MetricFamily(
                "repro_cpu_seconds_total", "counter",
                "CPU seconds consumed per writer.",
                cpu_samples,
            )
        )
    supervisors = [beat for beat in beats if beat.role == "supervisor"]
    if supervisors:
        sup = supervisors[0]
        families.extend(
            [
                MetricFamily(
                    "repro_shards", "gauge",
                    "Shard count of the supervised ensemble.",
                    [((), float(sup.shards))] if sup.shards is not None else [],
                ),
                MetricFamily(
                    "repro_shard_retries_total", "counter",
                    "Shard attempts beyond the first.",
                    [((), float(sup.retries))],
                ),
                MetricFamily(
                    "repro_shard_timeouts_total", "counter",
                    "Shard attempts killed for overrunning their budget.",
                    [((), float(sup.timeouts))],
                ),
                MetricFamily(
                    "repro_shards_quarantined", "gauge",
                    "Shards quarantined after exhausting their retries.",
                    [((), float(sup.failed_shards))],
                ),
            ]
        )
    return [family for family in families if family is not None and family.samples]


def render_metrics(
    metrics: Optional[RunMetrics] = None,
    heartbeats: Iterable[Heartbeat] = (),
) -> str:
    """Render a recorder snapshot and/or heartbeats as one payload."""
    families: List[MetricFamily] = []
    if metrics is not None:
        families.extend(metrics_families(metrics))
    families.extend(heartbeat_families(heartbeats))
    if not families:
        families.append(
            MetricFamily(
                "repro_up", "gauge",
                "The exporter is alive (no run telemetry yet).",
                [((), 1.0)],
            )
        )
    return render_exposition(families)


# ----------------------------------------------------------------------
# Transports: background HTTP server + atomic textfile sink
# ----------------------------------------------------------------------


def write_textfile(path: Union[str, Path], text: str) -> Path:
    """Atomically publish an exposition payload (node-exporter textfile
    collector convention: readers never observe a partial file)."""
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("w") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


class MetricsServer:
    """Serve ``GET /metrics`` from a daemon thread; stdlib only.

    ``collect`` is called per scrape and must return a full exposition
    payload — typically :func:`render_metrics` over a live recorder and
    freshly re-read heartbeat files, so the endpoint reflects mid-run
    state without any coupling to the runner.  ``port=0`` binds an
    ephemeral port; read :attr:`port`/:attr:`url` after :meth:`start`.
    Usable as a context manager.
    """

    def __init__(
        self,
        collect: Callable[[], str],
        port: int = 0,
        host: str = "127.0.0.1",
    ) -> None:
        self._collect = collect
        self.host = host
        self.port = int(port)
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def start(self) -> "MetricsServer":
        if self._server is not None:
            return self
        collect = self._collect

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                if self.path.partition("?")[0] not in ("/metrics", "/"):
                    self.send_error(404, "only /metrics is served")
                    return
                try:
                    body = collect().encode("utf-8")
                except Exception as error:  # noqa: BLE001 - surfaced as a 500
                    body = f"collector error: {error}\n".encode("utf-8")
                    self.send_response(500)
                else:
                    self.send_response(200)
                    self.send_header("Content-Type", CONTENT_TYPE)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:  # scrapes are not news
                pass

        self._server = ThreadingHTTPServer((self.host, self.port), Handler)
        self.port = self._server.server_address[1]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
