"""Recorder protocol and in-memory recorders.

A :class:`Recorder` observes one run of a dynamics runner: it is told the
run's provenance (protocol fingerprint, configuration, RNG state, budget)
when the run starts, each per-round observation as the run progresses, and
a summary when the run stops.  Runners accept a ``recorder=`` argument
defaulting to :data:`NULL_RECORDER`, whose ``enabled`` flag is ``False``;
every hot loop guards its telemetry calls behind that flag, so a run with
the default recorder executes exactly the pre-telemetry code path.

The schema of every emitted field is documented in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.telemetry.spans import SpanAggregate, SpanRecord

__all__ = [
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "MetricsRecorder",
    "RunMetrics",
    "TeeRecorder",
    "compose_recorders",
    "RunProvenance",
    "run_provenance",
    "protocol_fingerprint",
    "rng_provenance",
]

TRACE_SCHEMA_VERSION = 1


def protocol_fingerprint(protocol) -> str:
    """A short stable content hash of a protocol's response tables.

    Two protocols fingerprint equally iff they have the same ``ell`` and the
    same ``g0``/``g1`` vectors (to float repr precision) — the name is
    deliberately excluded so renamed-but-identical tables stay attributable
    to the same dynamics.
    """
    payload = json.dumps(
        {
            "ell": int(protocol.ell),
            "g0": [repr(float(v)) for v in protocol.g0],
            "g1": [repr(float(v)) for v in protocol.g1],
        },
        sort_keys=True,
    )
    return "sha256:" + hashlib.sha256(payload.encode()).hexdigest()[:16]


def rng_provenance(rng) -> Dict[str, str]:
    """Bit-generator name and a stable hash of the generator's current state.

    Captured *before* the run consumes randomness, the state hash pins down
    the entire trajectory: two runs with equal provenance (and equal inputs)
    are sample-for-sample identical.  The raw state is hashed rather than
    embedded because it is hundreds of digits long and its layout is a numpy
    implementation detail.
    """
    state = rng.bit_generator.state
    payload = json.dumps(state, sort_keys=True, default=str)
    return {
        "bit_generator": str(state.get("bit_generator", type(rng.bit_generator).__name__)),
        "state_hash": "sha256:" + hashlib.sha256(payload.encode()).hexdigest()[:16],
    }


@dataclass(frozen=True)
class RunProvenance:
    """Everything needed to attribute and reproduce a recorded run.

    Attributes:
        runner: name of the entry point (``"simulate"``, ``"escape_time"``, ...).
        protocol: ``{"name", "ell", "fingerprint"}`` of the protocol under test.
        params: runner-specific scalar parameters (``n``, ``z``, ``x0``,
            budgets, replica counts, thresholds — see docs/OBSERVABILITY.md).
        rng: output of :func:`rng_provenance` at run start.
    """

    runner: str
    protocol: Dict[str, Any]
    params: Dict[str, Any]
    rng: Dict[str, str]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "runner": self.runner,
            "protocol": dict(self.protocol),
            "params": dict(self.params),
            "rng": dict(self.rng),
        }


def run_provenance(runner: str, protocol, rng, **params) -> RunProvenance:
    """Assemble a :class:`RunProvenance` for a run that is about to start."""
    return RunProvenance(
        runner=runner,
        protocol={
            "name": protocol.name,
            "ell": int(protocol.ell),
            "fingerprint": protocol_fingerprint(protocol),
            # The full response tables make the trace self-contained: the
            # report layer rebuilds F_n from them (Prop. 5 drift prediction)
            # without having to resolve the name against a registry.
            "g0": [float(v) for v in protocol.g0],
            "g1": [float(v) for v in protocol.g1],
        },
        params=params,
        rng=rng_provenance(rng),
    )


class Recorder:
    """Base class / protocol for run instrumentation.

    Subclasses override any of the three hooks; the base implementations do
    nothing, so a recorder only pays for what it observes.  ``enabled`` is
    the zero-overhead contract: runners skip *all* telemetry work (including
    building provenance) when it is ``False``.
    """

    enabled: bool = True

    def run_started(self, provenance: RunProvenance) -> None:
        """Called once, before the first round, with the run's provenance."""

    def round_recorded(
        self, t: int, count: float, extra: Optional[Mapping[str, Any]] = None
    ) -> None:
        """Called after each round with the round index and the new count.

        ``count`` is the scalar count for single-run runners and the mean
        count across live replicas for ensemble runners; ``extra`` carries
        runner-specific fields (``active``, ``newly_converged``, ``holding``).
        """

    def run_finished(self, summary: Mapping[str, Any]) -> None:
        """Called once when the run stops, with a runner-specific summary."""

    def span_recorded(self, record: SpanRecord) -> None:
        """Called when a :class:`~repro.telemetry.spans.Span` exits."""


class NullRecorder(Recorder):
    """The do-nothing recorder: the default for every runner.

    Its ``enabled`` flag is ``False``, which runners use to skip telemetry
    entirely — the hot loop with a :class:`NullRecorder` is byte-for-byte
    the pre-telemetry loop.
    """

    enabled = False

    def __repr__(self) -> str:
        return "NullRecorder()"


NULL_RECORDER = NullRecorder()
"""Module-level singleton used as the default ``recorder=`` argument."""


@dataclass(frozen=True)
class RunMetrics:
    """Aggregate metrics of one recorded run.

    Attributes:
        rounds: number of rounds observed (telemetry records, not the
            runner's own round budget accounting).
        wall_clock_s: wall-clock seconds from ``run_started`` to the last
            observation.
        rounds_per_second: ``rounds / wall_clock_s`` (``0.0`` for an empty
            or instantaneous run).
        mean_abs_drift: mean ``|count_t - count_{t-1}|`` over observed
            rounds (``nan`` if no rounds were observed).
        final_count: the last observed count (``nan`` if none).
        provenance: the run's :class:`RunProvenance` (``None`` until
            ``run_started`` fires).
        summary: the runner's ``run_finished`` payload (``None`` until then).
        spans: per-path :class:`~repro.telemetry.spans.SpanAggregate` totals
            of every span that finished on this recorder.
    """

    rounds: int
    wall_clock_s: float
    rounds_per_second: float
    mean_abs_drift: float
    final_count: float
    provenance: Optional[RunProvenance]
    summary: Optional[Dict[str, Any]]
    spans: Dict[str, SpanAggregate] = field(default_factory=dict)


class MetricsRecorder(Recorder):
    """Accumulate per-round statistics in memory; read them via :meth:`metrics`.

    Records the round count, realized per-round drift, wall-clock per round
    (via :func:`time.perf_counter`), and the run's provenance and summary.
    Suitable for long runs: memory is O(1), not O(rounds), unless
    ``keep_wall_times=True`` asks for the full per-round timing vector.
    """

    def __init__(self, keep_wall_times: bool = False) -> None:
        self.keep_wall_times = keep_wall_times
        self.wall_times: List[float] = []
        self.provenance: Optional[RunProvenance] = None
        self.summary: Optional[Dict[str, Any]] = None
        self._rounds = 0
        self._abs_drift_sum = 0.0
        self._previous_count: Optional[float] = None
        self._started_at: Optional[float] = None
        self._last_seen_at: Optional[float] = None
        self._spans: Dict[str, SpanAggregate] = {}

    def run_started(self, provenance: RunProvenance) -> None:
        self.provenance = provenance
        x0 = provenance.params.get("x0")
        self._previous_count = float(x0) if x0 is not None else None
        self._started_at = self._last_seen_at = time.perf_counter()

    def round_recorded(
        self, t: int, count: float, extra: Optional[Mapping[str, Any]] = None
    ) -> None:
        now = time.perf_counter()
        if self.keep_wall_times and self._last_seen_at is not None:
            self.wall_times.append(now - self._last_seen_at)
        self._last_seen_at = now
        if self._previous_count is not None:
            self._abs_drift_sum += abs(float(count) - self._previous_count)
        self._previous_count = float(count)
        self._rounds += 1

    def run_finished(self, summary: Mapping[str, Any]) -> None:
        self.summary = dict(summary)
        self._last_seen_at = time.perf_counter()

    def span_recorded(self, record: SpanRecord) -> None:
        aggregate = self._spans.get(record.path)
        if aggregate is None:
            aggregate = self._spans[record.path] = SpanAggregate()
        aggregate.add(record)

    def metrics(self) -> RunMetrics:
        """Snapshot the accumulated metrics (valid at any point in the run)."""
        if self._started_at is None or self._last_seen_at is None:
            wall = 0.0
        else:
            wall = self._last_seen_at - self._started_at
        return RunMetrics(
            rounds=self._rounds,
            wall_clock_s=wall,
            rounds_per_second=self._rounds / wall if wall > 0 else 0.0,
            mean_abs_drift=(
                self._abs_drift_sum / self._rounds if self._rounds else float("nan")
            ),
            final_count=(
                self._previous_count if self._previous_count is not None else float("nan")
            ),
            provenance=self.provenance,
            summary=self.summary,
            spans=dict(self._spans),
        )


@dataclass
class TeeRecorder(Recorder):
    """Fan one run's events out to several recorders (e.g. metrics + trace)."""

    recorders: List[Recorder] = field(default_factory=list)

    def run_started(self, provenance: RunProvenance) -> None:
        for recorder in self.recorders:
            recorder.run_started(provenance)

    def round_recorded(
        self, t: int, count: float, extra: Optional[Mapping[str, Any]] = None
    ) -> None:
        for recorder in self.recorders:
            recorder.round_recorded(t, count, extra)

    def run_finished(self, summary: Mapping[str, Any]) -> None:
        for recorder in self.recorders:
            recorder.run_finished(summary)

    def span_recorded(self, record: SpanRecord) -> None:
        for recorder in self.recorders:
            recorder.span_recorded(record)


def compose_recorders(*recorders: Optional[Recorder]) -> Recorder:
    """Combine any number of recorders into one (dropping ``None`` entries).

    Returns :data:`NULL_RECORDER` for zero recorders and the recorder itself
    for one, so callers can build their recorder stack unconditionally.
    """
    live = [r for r in recorders if r is not None and r.enabled]
    if not live:
        return NULL_RECORDER
    if len(live) == 1:
        return live[0]
    return TeeRecorder(live)
