"""Process resource sampling through the stdlib: RSS, peak RSS, CPU time.

Observability needs memory and CPU numbers, but the container images this
repo targets carry no ``psutil``; everything here reads what POSIX already
provides.  Current RSS comes from ``/proc/self/status`` (Linux — ``None``
elsewhere), peak RSS and CPU time from :func:`resource.getrusage`.  All
three are cheap enough to call once per heartbeat or benchmark, not once
per simulated round.

Unit normalization: Linux reports ``ru_maxrss`` in KiB while macOS reports
bytes; both are converted to **bytes** here so downstream consumers
(heartbeats, ``BENCH_*.json`` records, the Prometheus exporter) never see
a platform-dependent unit.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Optional

try:  # POSIX only; Windows runs with peak-RSS/CPU reported as None/0.0.
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX fallback
    _resource = None

__all__ = [
    "ResourceSample",
    "cpu_seconds",
    "peak_rss_bytes",
    "rss_bytes",
    "sample_resources",
]

# ru_maxrss unit: bytes on macOS, KiB everywhere else that has getrusage.
_RU_MAXRSS_UNIT = 1 if sys.platform == "darwin" else 1024


def rss_bytes() -> Optional[int]:
    """Current resident set size in bytes, or ``None`` off-Linux.

    Reads ``VmRSS`` from ``/proc/self/status``; the value moves with
    allocation and reclaim, unlike the monotone high-water mark of
    :func:`peak_rss_bytes`.
    """
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    return None


def peak_rss_bytes(include_children: bool = False) -> Optional[int]:
    """Lifetime peak resident set size in bytes (``None`` without getrusage).

    With ``include_children=True`` the maximum over waited-for child
    processes is folded in — what a supervisor wants, since the heavy
    allocation happens inside its shard workers.
    """
    if _resource is None:  # pragma: no cover - non-POSIX fallback
        return None
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    if include_children:
        peak = max(peak, _resource.getrusage(_resource.RUSAGE_CHILDREN).ru_maxrss)
    return int(peak) * _RU_MAXRSS_UNIT


def cpu_seconds(include_children: bool = False) -> float:
    """User + system CPU seconds consumed so far (0.0 without getrusage)."""
    if _resource is None:  # pragma: no cover - non-POSIX fallback
        return 0.0
    usage = _resource.getrusage(_resource.RUSAGE_SELF)
    total = usage.ru_utime + usage.ru_stime
    if include_children:
        children = _resource.getrusage(_resource.RUSAGE_CHILDREN)
        total += children.ru_utime + children.ru_stime
    return float(total)


@dataclass(frozen=True)
class ResourceSample:
    """One point-in-time resource reading (all byte/second units).

    Attributes:
        rss_bytes: current resident set size (``None`` off-Linux).
        peak_rss_bytes: lifetime high-water RSS (``None`` without getrusage).
        cpu_s: user + system CPU seconds consumed so far.
    """

    rss_bytes: Optional[int]
    peak_rss_bytes: Optional[int]
    cpu_s: float


def sample_resources(include_children: bool = False) -> ResourceSample:
    """Take one :class:`ResourceSample` (children folded in on request)."""
    return ResourceSample(
        rss_bytes=rss_bytes(),
        peak_rss_bytes=peak_rss_bytes(include_children),
        cpu_s=cpu_seconds(include_children),
    )
