"""Named, nestable wall-clock spans with counters.

A span times one stage of a run — the step loop of a runner, the drift
check of the escape verifier — and carries named counters that hot kernels
increment cheaply.  Spans nest: entering a span inside another records a
``parent/child`` path, so a trace or a :class:`~repro.telemetry.recorder.
MetricsRecorder` aggregate shows where the wall clock went, level by level.

The zero-overhead contract extends to spans: :func:`span` returns the
shared no-op :data:`NULL_SPAN` when the recorder is disabled, so guarded
call sites cost one attribute check.  Enabled spans are emitted through the
``span_recorded`` hook of :class:`~repro.telemetry.recorder.Recorder` when
they exit — :class:`MetricsRecorder` aggregates them, ``JsonlTraceWriter``
streams them as ``span`` records (schema in docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = [
    "Span",
    "SpanRecord",
    "SpanAggregate",
    "NullSpan",
    "NULL_SPAN",
    "span",
    "current_span",
]


@dataclass(frozen=True)
class SpanRecord:
    """One finished span, as handed to ``Recorder.span_recorded``.

    Attributes:
        name: the span's own label (``"steps"``).
        path: slash-joined label chain from the outermost open span
            (``"convergence_ensemble/ensemble"``) — the aggregation key.
        depth: nesting depth (0 for a top-level span).
        wall_s: wall-clock seconds from entry to exit.
        counters: named totals incremented during the span via
            :meth:`Span.incr` (e.g. ``{"rounds": 341}``).
    """

    name: str
    path: str
    depth: int
    wall_s: float
    counters: Dict[str, float] = field(default_factory=dict)


@dataclass
class SpanAggregate:
    """Running totals for one span path (how ``MetricsRecorder`` folds spans).

    Attributes:
        calls: number of finished spans with this path.
        wall_s: summed wall clock across those spans.
        counters: per-key sums of the spans' counters.
    """

    calls: int = 0
    wall_s: float = 0.0
    counters: Dict[str, float] = field(default_factory=dict)

    def add(self, record: SpanRecord) -> None:
        self.calls += 1
        self.wall_s += record.wall_s
        for key, value in record.counters.items():
            self.counters[key] = self.counters.get(key, 0) + value


class Span:
    """A live timing span bound to a recorder; use as a context manager.

    Entering pushes the span on the recorder's span stack (giving nested
    spans their path); exiting pops it, stamps the wall clock, and emits a
    :class:`SpanRecord` through ``recorder.span_recorded``.
    """

    __slots__ = ("recorder", "name", "path", "depth", "counters", "_started_at")

    def __init__(self, recorder, name: str) -> None:
        self.recorder = recorder
        self.name = name
        self.path = name
        self.depth = 0
        self.counters: Dict[str, float] = {}
        self._started_at: Optional[float] = None

    def incr(self, key: str, amount: float = 1) -> None:
        """Add ``amount`` to the named counter (created at zero)."""
        self.counters[key] = self.counters.get(key, 0) + amount

    def __enter__(self) -> "Span":
        stack = _stack_of(self.recorder)
        if stack:
            parent = stack[-1]
            self.path = f"{parent.path}/{self.name}"
            self.depth = parent.depth + 1
        stack.append(self)
        self._started_at = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        wall = time.perf_counter() - (self._started_at or 0.0)
        stack = _stack_of(self.recorder)
        if stack and stack[-1] is self:
            stack.pop()
        self.recorder.span_recorded(
            SpanRecord(
                name=self.name,
                path=self.path,
                depth=self.depth,
                wall_s=wall,
                counters=dict(self.counters),
            )
        )


class NullSpan:
    """The do-nothing span: what disabled recorders hand out.

    Stateless and reusable, so one module-level instance serves every
    disabled call site; ``incr`` and the context protocol are no-ops.
    """

    __slots__ = ()

    def incr(self, key: str, amount: float = 1) -> None:
        pass

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass

    def __repr__(self) -> str:
        return "NullSpan()"


NULL_SPAN = NullSpan()
"""Shared no-op span returned for disabled recorders."""


def span(recorder, name: str):
    """Open a (not-yet-entered) span on ``recorder``, or :data:`NULL_SPAN`.

    The single entry point hot code uses::

        with span(recorder, "steps") as sp:
            ...
            sp.incr("rounds", executed)

    With a disabled recorder this returns the shared no-op span, so the
    ``with`` block costs two no-op calls and the loop body is unchanged.
    """
    if not recorder.enabled:
        return NULL_SPAN
    return Span(recorder, name)


def current_span(recorder):
    """The innermost open span on ``recorder``, or :data:`NULL_SPAN`.

    Lets leaf kernels (e.g. ``step_counts_batch``) attribute counters to
    whatever stage is timing them without threading a span object through
    every signature.
    """
    if not recorder.enabled:
        return NULL_SPAN
    stack = getattr(recorder, "_span_stack", None)
    if not stack:
        return NULL_SPAN
    return stack[-1]


def _stack_of(recorder):
    stack = getattr(recorder, "_span_stack", None)
    if stack is None:
        stack = []
        try:
            recorder._span_stack = stack
        except AttributeError:  # frozen/slotted recorder: spans stay flat
            return stack
    return stack
