"""Tests for ensemble statistics, scaling fits and series rendering."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.ensemble import ConvergenceStats, convergence_ensemble, summarize_times
from repro.analysis.scaling import (
    fit_power_law,
    is_bounded_shape,
    normalized_ratios,
    ratio_drift,
)
from repro.analysis.series import Series, Table, ascii_plot
from repro.dynamics.config import Configuration
from repro.protocols import voter


class TestSummaries:
    def test_basic_statistics(self):
        stats = summarize_times(np.array([10.0, 20.0, 30.0, 40.0, 50.0]))
        assert stats.trials == 5
        assert stats.censored == 0
        assert stats.median == 30.0
        assert stats.mean_converged == 30.0
        assert stats.success_rate == 1.0

    def test_censored_runs(self):
        stats = summarize_times(np.array([10.0, np.nan, np.nan]), budget=100)
        assert stats.censored == 2
        assert stats.success_rate == pytest.approx(1 / 3)
        assert math.isinf(stats.median)
        assert stats.quantile_is_lower_bound(0.5)
        assert not stats.quantile_is_lower_bound(0.1)

    def test_all_censored(self):
        stats = summarize_times(np.array([np.nan, np.nan]))
        assert math.isnan(stats.mean_converged)
        assert math.isinf(stats.q90)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_times(np.array([]))

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            summarize_times([])

    def test_all_censored_quantiles_are_lower_bounds(self):
        stats = summarize_times(np.array([np.nan] * 4), budget=500)
        assert math.isinf(stats.median)
        assert math.isinf(stats.q10)
        assert math.isinf(stats.q90)
        # Every quantile of an all-censored ensemble only bounds tau below.
        for q in (0.1, 0.5, 0.9):
            assert stats.quantile_is_lower_bound(q)
        assert math.isnan(stats.mean_converged)
        assert math.isnan(stats.min)
        assert math.isnan(stats.max_converged)
        assert stats.success_rate == 0.0
        assert stats.budget == 500

    def test_single_trial_converged(self):
        stats = summarize_times(np.array([42.0]))
        assert stats.trials == 1
        assert stats.censored == 0
        assert stats.median == stats.q10 == stats.q90 == 42.0
        assert stats.mean_converged == stats.min == stats.max_converged == 42.0
        assert not stats.quantile_is_lower_bound(0.5)

    def test_single_trial_censored(self):
        stats = summarize_times(np.array([np.nan]), budget=10)
        assert stats.trials == 1
        assert stats.censored == 1
        assert math.isinf(stats.median)
        assert stats.quantile_is_lower_bound(0.9)
        assert stats.success_rate == 0.0

    def test_convergence_ensemble_integration(self, rng):
        stats = convergence_ensemble(
            voter(1), Configuration(n=60, z=1, x0=30), 50_000, rng, replicas=20
        )
        assert stats.censored == 0
        assert stats.q10 <= stats.median <= stats.q90


class TestPowerLawFit:
    def test_exact_power_law_recovered(self):
        x = np.array([10.0, 100.0, 1000.0])
        fit = fit_power_law(x, 3.0 * x**1.5)
        assert fit.exponent == pytest.approx(1.5)
        assert fit.prefactor == pytest.approx(3.0)
        assert fit.r_squared == pytest.approx(1.0)

    @given(
        st.floats(min_value=-2.0, max_value=3.0),
        st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_recovery_property(self, exponent, prefactor):
        x = np.array([4.0, 16.0, 64.0, 256.0])
        fit = fit_power_law(x, prefactor * x**exponent)
        assert fit.exponent == pytest.approx(exponent, abs=1e-9)

    def test_prediction(self):
        fit = fit_power_law([1.0, 2.0, 4.0], [2.0, 4.0, 8.0])
        np.testing.assert_allclose(fit.predict([8.0]), [16.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0], [1.0])
        with pytest.raises(ValueError):
            fit_power_law([1.0, -2.0], [1.0, 2.0])
        with pytest.raises(ValueError, match="non-finite"):
            fit_power_law([1.0, 2.0], [1.0, np.inf])


class TestRatios:
    def test_normalized_ratios(self):
        ratios = normalized_ratios([10, 100], [20.0, 200.0], lambda n: float(n))
        np.testing.assert_allclose(ratios, [2.0, 2.0])

    def test_ratio_drift_flat(self):
        assert ratio_drift([2.0, 2.0, 2.0, 2.0]) == pytest.approx(0.0, abs=1e-9)

    def test_ratio_drift_detects_growth(self):
        assert ratio_drift([1.0, 2.0, 4.0, 8.0]) > 0.5

    def test_bounded_shape(self):
        assert is_bounded_shape([1.0, 2.0, 3.0])
        assert not is_bounded_shape([1.0, 100.0])


class TestSeriesRendering:
    def test_series_csv(self):
        series = Series("tau", np.array([1.0, 2.0]), np.array([3.0, 4.0]))
        csv = series.to_csv(x_label="n")
        assert csv.splitlines() == ["n,tau", "1,3", "2,4"]

    def test_series_shape_validation(self):
        with pytest.raises(ValueError):
            Series("bad", np.array([1.0]), np.array([1.0, 2.0]))

    def test_table_rendering(self):
        table = Table("caption", ["n", "tau"])
        table.add_row(100, 42.5)
        text = table.render()
        assert "caption" in text and "100" in text and "42.5" in text
        assert table.to_csv().splitlines()[0] == "n,tau"

    def test_table_row_length_checked(self):
        table = Table("caption", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_ascii_plot_contains_markers_and_legend(self):
        series = Series("growth", np.arange(10.0), np.arange(10.0) ** 2)
        plot = ascii_plot([series])
        assert "*" in plot
        assert "growth" in plot

    def test_ascii_plot_handles_nan(self):
        series = Series("gaps", np.arange(4.0), np.array([1.0, np.nan, 3.0, 4.0]))
        plot = ascii_plot([series])
        assert "gaps" in plot

    def test_ascii_plot_rejects_empty(self):
        with pytest.raises(ValueError):
            ascii_plot([])


class TestTableEdgeCases:
    def test_empty_table_renders_header_only(self):
        table = Table("empty", ["a", "b"])
        text = table.render()
        assert "empty" in text and "a" in text
        assert table.to_csv() == "a,b\n"

    def test_inf_and_nan_formatting(self):
        table = Table("specials", ["v"])
        table.add_row(float("inf"))
        table.add_row(float("nan"))
        table.add_row(float("-inf"))
        csv = table.to_csv().splitlines()
        assert csv[1:] == ["inf", "nan", "-inf"]


class TestAsciiPlotBounds:
    def test_explicit_y_bounds_respected(self):
        series = Series("s", np.arange(5.0), np.arange(5.0))
        plot = ascii_plot([series], y_min=0.0, y_max=10.0)
        assert "10" in plot.splitlines()[0]

    def test_constant_series(self):
        series = Series("flat", np.arange(4.0), np.full(4, 2.0))
        plot = ascii_plot([series])
        assert "flat" in plot
