"""Tests for the persistent trace-directory index (TRACE_INDEX.json)."""

from __future__ import annotations

import json

import pytest

from repro.analysis.index import (
    INDEX_FILENAME,
    INDEX_SCHEMA_VERSION,
    index_path,
    load_trace_index,
    refresh_trace_index,
    summaries_from_index,
    write_trace_index,
)
from repro.analysis.report import summarize_trace_dir
from repro.dynamics.config import wrong_consensus_configuration
from repro.dynamics.rng import make_rng
from repro.dynamics.run import simulate
from repro.protocols import voter
from repro.telemetry import jsonl_to_columnar, open_trace_writer


def _write_trace(path, trace_format="jsonl", seed=0):
    config = wrong_consensus_configuration(64, z=1)
    with open_trace_writer(path, trace_format, include_timings=False) as writer:
        return simulate(voter(1), config, 50_000, make_rng(seed), recorder=writer)


@pytest.fixture
def trace_dir(tmp_path):
    _write_trace(tmp_path / "a.jsonl", seed=1)
    _write_trace(tmp_path / "b.ctrace", trace_format="columnar", seed=2)
    return tmp_path


class TestRefresh:
    def test_cold_refresh_summarizes_every_file(self, trace_dir):
        index = refresh_trace_index(trace_dir)
        assert index["refreshed"] == 2
        assert sorted(index["entries"]) == ["a.jsonl", "b.ctrace"]
        assert index["entries"]["a.jsonl"]["format"] == "jsonl"
        assert index["entries"]["b.ctrace"]["format"] == "columnar"
        assert index_path(trace_dir).exists()

    def test_warm_refresh_reuses_unchanged_entries(self, trace_dir):
        refresh_trace_index(trace_dir)
        assert refresh_trace_index(trace_dir)["refreshed"] == 0

    def test_rewritten_file_is_resummarized(self, trace_dir):
        refresh_trace_index(trace_dir)
        _write_trace(trace_dir / "a.jsonl", seed=9)
        index = refresh_trace_index(trace_dir)
        assert index["refreshed"] == 1

    def test_deleted_file_drops_its_entry(self, trace_dir):
        refresh_trace_index(trace_dir)
        (trace_dir / "a.jsonl").unlink()
        index = refresh_trace_index(trace_dir)
        assert sorted(index["entries"]) == ["b.ctrace"]

    def test_rebuild_ignores_cached_entries(self, trace_dir):
        refresh_trace_index(trace_dir)
        index = refresh_trace_index(trace_dir, rebuild=True)
        assert index["refreshed"] == 2

    def test_tmp_and_shard_files_excluded(self, trace_dir):
        (trace_dir / "live.jsonl.tmp").write_text("")
        (trace_dir / "run.jsonl.shard0").write_text("")
        index = refresh_trace_index(trace_dir)
        assert sorted(index["entries"]) == ["a.jsonl", "b.ctrace"]

    def test_corrupt_trace_fails_loudly_naming_the_file(self, trace_dir):
        (trace_dir / "bad.jsonl").write_text("not json\n")
        with pytest.raises(ValueError, match="bad.jsonl"):
            refresh_trace_index(trace_dir)

    def test_read_only_directory_serves_in_memory(self, trace_dir, monkeypatch):
        # chmod is not reliable under root, so fail the publish directly.
        import repro.analysis.index as index_module

        def refuse(directory, index):
            raise OSError(30, "Read-only file system")

        monkeypatch.setattr(index_module, "write_trace_index", refuse)
        index = refresh_trace_index(trace_dir)
        assert index["refreshed"] == 2
        assert sorted(index["entries"]) == ["a.jsonl", "b.ctrace"]
        assert not index_path(trace_dir).exists()

    def test_round_range_reaches_the_tail(self, trace_dir):
        index = refresh_trace_index(trace_dir)
        for entry in index["entries"].values():
            low, high = entry["round_range"]
            assert low == 0 and high >= entry["counts"]["rounds"]


class TestIndexFile:
    def test_corrupt_index_treated_as_missing(self, trace_dir):
        index_path(trace_dir).write_text("{half a docum")
        assert load_trace_index(trace_dir)["entries"] == {}
        assert refresh_trace_index(trace_dir)["refreshed"] == 2

    def test_version_skew_treated_as_missing(self, trace_dir):
        write_trace_index(
            trace_dir, {"schema": INDEX_SCHEMA_VERSION + 1, "entries": {"x": {}}}
        )
        assert load_trace_index(trace_dir)["entries"] == {}

    def test_written_atomically_and_json_parsable(self, trace_dir):
        refresh_trace_index(trace_dir)
        snapshot = json.loads(index_path(trace_dir).read_text())
        assert snapshot["schema"] == INDEX_SCHEMA_VERSION
        assert not (trace_dir / (INDEX_FILENAME + ".tmp")).exists()


class TestSummariesFromIndex:
    def test_index_answers_equal_direct_summaries(self, trace_dir):
        direct = summarize_trace_dir(trace_dir)
        indexed = summaries_from_index(trace_dir, refresh_trace_index(trace_dir))
        assert [s.path for s in indexed] == [s.path for s in direct]
        assert [s.fingerprint for s in indexed] == [s.fingerprint for s in direct]
        assert [s.rounds for s in indexed] == [s.rounds for s in direct]
        assert [
            s.mean_realized_drift for s in indexed
        ] == [s.mean_realized_drift for s in direct]

    def test_paths_reanchor_when_directory_moves(self, trace_dir, tmp_path):
        index = refresh_trace_index(trace_dir)
        moved = tmp_path / "mirror"
        moved.mkdir()
        for name in ("a.jsonl", "b.ctrace", INDEX_FILENAME):
            (moved / name).write_bytes((trace_dir / name).read_bytes())
        summaries = summaries_from_index(moved, load_trace_index(moved))
        assert all(s.path.startswith(str(moved)) for s in summaries)

    def test_summarize_trace_dir_use_index(self, trace_dir):
        direct = summarize_trace_dir(trace_dir)
        via_index = summarize_trace_dir(trace_dir, use_index=True)
        assert [s.fingerprint for s in via_index] == [
            s.fingerprint for s in direct
        ]
        # A second call answers purely from the cache.
        assert refresh_trace_index(trace_dir)["refreshed"] == 0

    def test_formats_agree_through_the_index(self, tmp_path):
        _write_trace(tmp_path / "a.jsonl", seed=5)
        jsonl_to_columnar(tmp_path / "a.jsonl", tmp_path / "b.ctrace")
        summaries = summaries_from_index(
            tmp_path, refresh_trace_index(tmp_path)
        )
        a, b = summaries
        assert a.fingerprint == b.fingerprint
        assert a.rounds == b.rounds
        assert a.mean_realized_drift == pytest.approx(b.mean_realized_drift)
